//! Integration pins for the verified rewrite driver `analysis::optimize`
//! and its `SimConfig::optimize` factory knob.
//!
//! * **Idempotence**: `optimize ∘ optimize == optimize` on random
//!   circuits (the fixpoint driver must converge, and its output must
//!   offer the passes nothing further).
//! * **Factory bit-identity**: `build_sampler` with `optimize: true`
//!   samples bit-identically per seed to building the same engine from
//!   the optimizer's output circuit directly.
//! * **Rollback**: a deliberately unsound rule is caught by translation
//!   validation, rolled back, and surfaced as `SP100`.
//! * **Scale**: a million-round `REPEAT` memory circuit optimizes in
//!   bounded time — the driver is O(file) and never expands the loop.
//! * **Fault injection**: on circuits whose Paulis propagate into record
//!   flips, every measurement expression of the optimized circuit equals
//!   the original's under the same fault assignment, XOR the declared
//!   flip.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use symphase::analysis::{optimize, optimize_with, OptConfig, Pass, ProofStatus};
use symphase::backend::{build_sampler, EngineKind, SimConfig};
use symphase::bitmat::BitVec;
use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase::circuit::{Circuit, Gate, NoiseChannel};
use symphase::core::SymPhaseSampler;

const GATES1: [Gate; 9] = [
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::SDag,
    Gate::SqrtX,
    Gate::SqrtY,
    Gate::SqrtXDag,
];
const GATES2: [Gate; 3] = [Gate::Cx, Gate::Cz, Gate::Swap];

/// A compact random-circuit description biased toward what the passes
/// act on: single-qubit runs, standalone Paulis, noise, collapses, and
/// the occasional detector/observable to bar records.
#[derive(Clone, Debug)]
enum Step {
    Gate1(u8, u32),
    Gate2(u8, u32, u32),
    XError(u32),
    ZError(u32),
    Measure(u32),
    Reset(u32),
    Detector,
    Observable,
}

fn build(qubits: u32, steps: &[Step]) -> Circuit {
    let mut c = Circuit::new(qubits);
    let mut measured = 0usize;
    for step in steps {
        match *step {
            Step::Gate1(g, q) => {
                c.gate(GATES1[g as usize], &[q]);
            }
            Step::Gate2(g, a, b) => {
                c.gate(GATES2[g as usize], &[a, b]);
            }
            Step::XError(q) => {
                c.noise(NoiseChannel::XError(0.25), &[q]);
            }
            Step::ZError(q) => {
                c.noise(NoiseChannel::ZError(0.25), &[q]);
            }
            Step::Measure(q) => {
                c.measure(q);
                measured += 1;
            }
            Step::Reset(q) => {
                c.reset(q);
            }
            Step::Detector => {
                if measured > 0 {
                    c.detector(&[-1]);
                }
            }
            Step::Observable => {
                if measured > 1 {
                    c.observable_include(0, &[-2]);
                }
            }
        }
    }
    c
}

fn plan_strategy() -> impl Strategy<Value = (u32, Vec<Step>)> {
    (
        2u32..5,
        proptest::collection::vec((0u8..10, 0u8..9, any::<u16>()), 8..40),
    )
        .prop_map(|(qubits, raw)| {
            let steps = raw
                .into_iter()
                .map(|(kind, g, r)| {
                    let q = r as u32 % qubits;
                    let q2 = (q + 1 + (r as u32 >> 4) % (qubits - 1)) % qubits;
                    match kind {
                        0..=2 => Step::Gate1(g % 9, q),
                        3 => Step::Gate2(g % 3, q, q2),
                        4 => Step::XError(q),
                        5 => Step::ZError(q),
                        6 | 7 => Step::Measure(q),
                        8 => Step::Reset(q),
                        _ if g % 2 == 0 => Step::Detector,
                        _ => Step::Observable,
                    }
                })
                .collect();
            (qubits, steps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimize_is_idempotent(plan in plan_strategy()) {
        let c = build(plan.0, &plan.1);
        let r1 = optimize(&c);
        for p in &r1.proof {
            prop_assert!(
                matches!(p.status, ProofStatus::Verified { .. }),
                "rolled back on:\n{}\n{:?}", c, p
            );
        }
        let r2 = optimize(&r1.circuit);
        prop_assert_eq!(
            &r2.circuit, &r1.circuit,
            "optimize∘optimize ≠ optimize on:\n{}", c
        );
        prop_assert!(r2.flipped_records.is_empty(), "second run flipped records");
        prop_assert!(!r2.changed(), "second run applied rewrites");
    }
}

/// The `SimConfig::optimize` acceptance criterion: per seed, the knob is
/// bit-identical to sampling the optimizer's output circuit directly, on
/// every engine.
#[test]
fn factory_optimize_knob_is_bit_identical_to_preoptimizing() {
    let texts = [
        "H 0\nH 0\nX 1\nX_ERROR(0.2) 0\nCX 0 1\nM 0 1\nDETECTOR rec[-2]\nS 1\n",
        "R 0 1 2\nX 0\nCX 0 1\nZ_ERROR(0.3) 2\nH 2\nM 0 1 2\nOBSERVABLE_INCLUDE(0) rec[-1]\n",
    ];
    for text in texts {
        let c = Circuit::parse(text).expect("parse");
        let r = optimize(&c);
        assert!(r.changed(), "workload not redundant:\n{text}");
        for kind in EngineKind::ALL {
            let knob = build_sampler(&c, &SimConfig::new().with_engine(kind).with_optimize(true))
                .expect("builds with optimize");
            let direct =
                build_sampler(&r.circuit, &SimConfig::new().with_engine(kind)).expect("builds");
            assert_eq!(
                knob.sample_seeded(128, 0xFEED),
                direct.sample_seeded(128, 0xFEED),
                "{} diverged from pre-optimized build on:\n{text}",
                kind.name()
            );
        }
    }
}

/// The deliberately-broken-rule pin: translation validation must catch
/// the unsound rewrite, leave the circuit untouched, and report `SP100`.
#[test]
fn broken_rule_is_rolled_back_and_reported() {
    let c = Circuit::parse("H 0\nM 0\nDETECTOR rec[-1]\n").expect("parse");
    let r = optimize_with(
        &c,
        &OptConfig {
            passes: vec![Pass::BrokenForTests],
        },
    );
    assert_eq!(r.circuit, c, "broken rewrite leaked into the output");
    assert!(!r.changed());
    assert_eq!(r.proof.len(), 1);
    assert!(
        matches!(r.proof[0].status, ProofStatus::RolledBack { .. }),
        "{:?}",
        r.proof[0]
    );
    assert_eq!(r.diagnostics.len(), 1);
    assert_eq!(r.diagnostics[0].code, "SP100");
}

/// Scale pin: optimizing million-round memory circuits — one clean, one
/// with body redundancy — stays under five seconds, because every pass
/// and the (clamped) validator are O(file).
#[test]
fn million_round_memory_optimizes_in_bounded_time() {
    let clean = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 1_000_000,
        data_error: 0.001,
        measure_error: 0.001,
    });
    let redundant = Circuit::parse(
        "R 0 1\nM 1\nREPEAT 1000000 {\n    H 0\n    H 0\n    X_ERROR(0.001) 1\n    M 1\n    \
         DETECTOR rec[-1] rec[-2]\n}\nM 0\n",
    )
    .expect("parse");

    let t0 = Instant::now();
    let clean_result = optimize(&clean);
    let redundant_result = optimize(&redundant);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "million-round optimize took {elapsed:?}"
    );

    for p in clean_result.proof.iter().chain(&redundant_result.proof) {
        assert!(matches!(p.status, ProofStatus::Verified { .. }), "{p:?}");
    }
    // The fusable pair inside the body is gone — and its proof had to
    // clamp the trip count to replay.
    assert!(redundant_result.report.gates_after < redundant_result.report.gates_before);
    assert!(redundant_result
        .proof
        .iter()
        .any(|p| matches!(p.status, ProofStatus::Verified { clamped: true })));
    assert_eq!(
        redundant_result.circuit.num_measurements(),
        redundant.num_measurements()
    );
}

/// Fault-injection equivalence with propagated Paulis: for circuits
/// whose noise stays live (so the symbol tables align one-to-one) and
/// whose standalone Paulis become record flips, every measurement
/// expression of the optimized circuit must equal the original's under
/// the same fault assignment, XOR membership in `flipped_records`.
#[test]
fn fault_injection_agrees_on_propagated_pauli_circuits() {
    let texts = [
        "X_ERROR(0.4) 0\nCX 0 1\nM 1\nDETECTOR rec[-1]\nX 0\nM 0\n",
        "X_ERROR(0.5) 0\nM 0\nDETECTOR rec[-1]\nX 1\nCX 1 2\nM 1 2\n",
        "Z_ERROR(0.4) 1\nH 1\nM 1\nDETECTOR rec[-1]\nM 0\nX 0\nM 0\n",
    ];
    for text in texts {
        let c = Circuit::parse(text).expect("parse");
        let r = optimize(&c);
        assert!(
            !r.flipped_records.is_empty(),
            "no propagated flips in:\n{text}"
        );
        let a = SymPhaseSampler::new(&c);
        let b = SymPhaseSampler::new(&r.circuit);
        let len = a.symbol_table().assignment_len();
        assert_eq!(
            len,
            b.symbol_table().assignment_len(),
            "symbol tables diverged on:\n{text}"
        );
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..16 {
            let mut assignment = BitVec::zeros(len);
            for i in 1..len {
                assignment.set(i, rng.random_bool(0.5));
            }
            for m in 0..a.num_measurements() {
                assert_eq!(
                    b.measurement_expr(m).eval(&assignment),
                    a.measurement_expr(m).eval(&assignment) ^ r.flipped_records.contains(&m),
                    "record {m} under fault injection on:\n{text}"
                );
            }
        }
    }
}
