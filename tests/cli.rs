//! In-process tests of the `symphase` CLI.

use std::io::Write;

use symphase::cli::{run, run_bytes};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn write_circuit(content: &str) -> tempfile_lite::TempPath {
    tempfile_lite::write(content)
}

/// A minimal self-cleaning temp-file helper (no external crates).
mod tempfile_lite {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 path")
        }
    }

    pub fn write(content: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("symphase-cli-test-{}-{n}.stim", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("create temp file");
        super::Write::write_all(&mut f, content.as_bytes()).expect("write temp file");
        TempPath(path)
    }
}

#[test]
fn sample_01_deterministic_circuit() {
    let f = write_circuit("X 0\nM 0 1\n");
    let out = run(&args(&["sample", "-c", f.as_str(), "--shots", "3"])).expect("runs");
    assert_eq!(out, "10\n10\n10\n");
}

#[test]
fn sample_counts_format() {
    let f = write_circuit("X 0\nM 0\n");
    let out = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "5",
        "--format",
        "counts",
    ]))
    .expect("runs");
    assert_eq!(out, "1 5\n");
}

#[test]
fn sample_frame_engine_agrees_on_deterministic() {
    let f = write_circuit("X 0\nCX 0 1\nM 0 1\n");
    let a = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "2",
        "--engine",
        "frame",
    ]))
    .expect("runs");
    assert_eq!(a, "11\n11\n");
}

#[test]
fn analyze_reports_expressions() {
    let f = write_circuit("H 0\nCX 0 1\nX_ERROR(0.25) 1\nM 0 1\n");
    let out = run(&args(&["analyze", "-c", f.as_str()])).expect("runs");
    assert!(out.contains("qubits:        2"));
    assert!(out.contains("m0 = s2"));
    assert!(out.contains("m1 = s1 ⊕ s2"));
}

#[test]
fn dem_output() {
    let f =
        write_circuit("X_ERROR(0.25) 0\nM 0\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-1]\n");
    let out = run(&args(&["dem", "-c", f.as_str()])).expect("runs");
    assert_eq!(out, "error(0.25) D0 L0\n");
}

#[test]
fn reference_output() {
    let f = write_circuit("X 0\nH 1\nM 0 1\n");
    let out = run(&args(&["reference", "-c", f.as_str()])).expect("runs");
    assert_eq!(out, "10\n"); // random outcome fixed to 0
}

#[test]
fn detect_output_shapes() {
    let f = write_circuit(
        "X_ERROR(1.0) 0\nM 0 1\nDETECTOR rec[-2]\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-2]\n",
    );
    let out = run(&args(&["detect", "-c", f.as_str(), "--shots", "2"])).expect("runs");
    assert_eq!(out, "10 1\n10 1\n");
}

#[test]
fn seed_makes_sampling_reproducible() {
    let f = write_circuit("H 0\nM 0\n");
    let a = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "7",
    ]))
    .unwrap();
    let b = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "7",
    ]))
    .unwrap();
    let c = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "8",
    ]))
    .unwrap();
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn stats_reports_structural_counts_past_the_old_cap() {
    // 6×10⁹ flattened gates: the old flatten-on-parse front-end refused
    // anything past 50M materialized instructions; the structured parse
    // computes the statistics from the REPEAT node in O(file).
    let f = write_circuit("REPEAT 60000 {\n REPEAT 100000 {\n X 0\n }\n}\n");
    let out = run(&args(&["stats", "-c", f.as_str()])).expect("runs");
    assert!(out.contains("gates:         6000000000"), "{out}");
    assert!(out.contains("instructions:  1 (structured)"), "{out}");
}

#[test]
fn gen_emits_structured_rounds_that_roundtrip() {
    let out = run(&args(&[
        "gen",
        "surface-code",
        "--distance",
        "3",
        "--rounds",
        "50",
    ]))
    .expect("runs");
    assert!(out.contains("REPEAT 49 {"), "{out}");
    // The emitted text parses back and reports structural counts.
    let f = write_circuit(&out);
    let stats = run(&args(&["stats", "-c", f.as_str()])).expect("runs");
    assert!(stats.contains("measurements:  409"), "{stats}"); // 8×50 + 9
                                                              // …and samples end to end through the default engine.
    let detect = run(&args(&["detect", "-c", f.as_str(), "--shots", "4"])).expect("runs");
    assert_eq!(detect.lines().count(), 4);
}

#[test]
fn gen_repetition_code_and_bad_names() {
    let out = run(&args(&["gen", "repetition-code", "--rounds", "10"])).expect("runs");
    assert!(out.contains("REPEAT 9 {"), "{out}");
    assert!(run(&args(&["gen"])).is_err(), "missing generator name");
    assert!(run(&args(&["gen", "bogus"])).is_err(), "unknown generator");
    assert!(
        run(&args(&["gen", "surface-code", "--distance", "4"])).is_err(),
        "even distance"
    );
}

#[test]
fn gen_surface_code_memory_x() {
    let out = run(&args(&[
        "gen",
        "surface-code",
        "--distance",
        "3",
        "--rounds",
        "20",
        "--basis",
        "x",
    ]))
    .expect("runs");
    assert!(out.starts_with("RX 0 1 2 3 4 5 6 7 8\n"), "{out}");
    assert!(out.contains("MX "), "{out}");
    assert!(out.contains("REPEAT 19 {"), "{out}");
    // End to end: parse, sample detectors through the default engine, and
    // print the detector error model.
    let f = write_circuit(&out);
    let detect = run(&args(&["detect", "-c", f.as_str(), "--shots", "8"])).expect("runs");
    assert_eq!(detect.lines().count(), 8);
    let dem = run(&args(&["dem", "-c", f.as_str()])).expect("runs");
    assert!(dem.contains("error("), "{dem}");
    // Bad basis values fail as usage errors.
    let e = run(&args(&["gen", "surface-code", "--basis", "q"])).unwrap_err();
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--basis"), "{}", e.message);
}

#[test]
fn gen_phase_memory_mpp_and_correlated_noise() {
    let out = run(&args(&[
        "gen",
        "phase-memory",
        "--distance",
        "4",
        "--rounds",
        "10",
        "--data-error",
        "0.01",
        "--pair-error",
        "0.005",
    ]))
    .expect("runs");
    assert!(out.contains("MPP X0*X1 X1*X2 X2*X3"), "{out}");
    assert!(out.contains("E(0.005) Z0 Z1"), "{out}");
    assert!(out.contains("ELSE_CORRELATED_ERROR(0.005) Z1 Z2"), "{out}");
    assert!(out.contains("REPEAT 9 {"), "{out}");
    let f = write_circuit(&out);
    let detect = run(&args(&["detect", "-c", f.as_str(), "--shots", "6"])).expect("runs");
    assert_eq!(detect.lines().count(), 6);
    let e = run(&args(&["gen", "phase-memory", "--pair-error", "1.5"])).unwrap_err();
    assert!(e.message.contains("[0, 1]"), "{}", e.message);
}

#[test]
fn gen_rejects_inapplicable_flags() {
    // Flags a generator does not understand must error, not be silently
    // ignored (the user would otherwise get wrong noise/basis settings).
    let e = run(&args(&["gen", "phase-memory", "--measure-error", "0.01"])).unwrap_err();
    assert_eq!(e.code, 2);
    assert!(e.message.contains("does not apply"), "{}", e.message);
    let e = run(&args(&["gen", "repetition-code", "--basis", "x"])).unwrap_err();
    assert!(e.message.contains("does not apply"), "{}", e.message);
    let e = run(&args(&["gen", "repetition-code", "--pair-error", "0.1"])).unwrap_err();
    assert!(e.message.contains("does not apply"), "{}", e.message);
    let e = run(&args(&["gen", "surface-code", "--pair-error", "0.1"])).unwrap_err();
    assert!(e.message.contains("does not apply"), "{}", e.message);
    // Explicit defaults still work where the flag applies.
    assert!(run(&args(&["gen", "surface-code", "--basis", "z"])).is_ok());
    assert!(run(&args(&["gen", "phase-memory", "--pair-error", "0"])).is_ok());
}

#[test]
fn gen_rejects_bad_probabilities_and_zero_rounds() {
    let e = run(&args(&["gen", "surface-code", "--data-error", "1.5"])).unwrap_err();
    assert!(e.message.contains("[0, 1]"), "{}", e.message);
    let e = run(&args(&[
        "gen",
        "repetition-code",
        "--measure-error",
        "-0.1",
    ]))
    .unwrap_err();
    assert!(e.message.contains("[0, 1]"), "{}", e.message);
    let e = run(&args(&["gen", "surface-code", "--rounds", "0"])).unwrap_err();
    assert!(e.message.contains("at least 1"), "{}", e.message);
}

#[test]
fn bare_arguments_outside_gen_are_rejected() {
    // A dropped flag name must not be silently swallowed.
    let f = write_circuit("X 0\nM 0\n");
    let e = run(&args(&["sample", "-c", f.as_str(), "100"])).unwrap_err();
    assert!(
        e.message.contains("unexpected argument '100'"),
        "{}",
        e.message
    );
    // gen takes exactly one bare argument.
    assert!(run(&args(&["gen", "surface-code", "extra"])).is_err());
}

#[test]
fn errors_are_reported() {
    assert!(run(&args(&["sample"])).is_err(), "missing circuit");
    assert!(run(&args(&["bogus"])).is_err(), "unknown command");
    let f = write_circuit("FROB 0\n");
    let e = run(&args(&["sample", "-c", f.as_str()])).unwrap_err();
    assert!(e.message.contains("parse error"));
    let e = run(&args(&["sample", "-c", "/nonexistent/x.stim"])).unwrap_err();
    assert!(e.message.contains("reading"));
}

#[test]
fn help_exits_zero() {
    let e = run(&args(&["sample", "--help"])).unwrap_err();
    assert_eq!(e.code, 0);
    assert!(e.message.contains("usage"));
}

#[test]
fn usage_and_runtime_errors_have_distinct_exit_codes() {
    // Usage errors (malformed invocation): exit code 2.
    for bad in [
        vec!["bogus"],
        vec!["sample"], // missing --circuit
        vec!["sample", "-c", "/nonexistent/x.stim", "--format", "base64"],
        vec!["sample", "-c", "/nonexistent/x.stim", "--engine", "warp"],
        vec!["sample", "-c", "/nonexistent/x.stim", "--sampling", "q"],
        vec!["sample", "-c", "x.stim", "--threads", "0"],
        vec![
            "detect",
            "-c",
            "x.stim",
            "--sampling",
            "dense",
            "--engine",
            "frame",
        ],
    ] {
        let e = run(&args(&bad)).unwrap_err();
        assert_eq!(e.code, 2, "{bad:?}: {}", e.message);
    }
    // Runtime errors (well-formed invocation, bad inputs): exit code 1.
    let unparsable = write_circuit("FROB 0\n");
    for bad in [
        vec!["sample", "-c", "/nonexistent/x.stim"],
        vec!["sample", "-c", unparsable.as_str()],
    ] {
        let e = run(&args(&bad)).unwrap_err();
        assert_eq!(e.code, 1, "{bad:?}: {}", e.message);
    }
}

#[test]
fn option_values_are_validated_before_the_circuit_loads() {
    // A bad --format must fail as a usage error even when the circuit
    // file does not exist (i.e. before any loading/sampling).
    let e = run(&args(&[
        "sample",
        "-c",
        "/nonexistent/never-read.stim",
        "--format",
        "base64",
    ]))
    .unwrap_err();
    assert_eq!(e.code, 2);
    assert!(e.message.contains("unknown format"), "{}", e.message);
    // Same for detect, and for dets misapplied to sample.
    let e = run(&args(&[
        "sample",
        "-c",
        "/nonexistent/never-read.stim",
        "--format",
        "dets",
    ]))
    .unwrap_err();
    assert_eq!(e.code, 2);
    assert!(e.message.contains("detect"), "{}", e.message);
}

#[test]
fn zero_shots_emit_empty_output_across_commands_and_formats() {
    let f =
        write_circuit("X_ERROR(0.5) 0\nM 0 1\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-2]\n");
    for format in ["01", "counts", "b8", "hits"] {
        let out = run_bytes(&args(&[
            "sample",
            "-c",
            f.as_str(),
            "--shots",
            "0",
            "--format",
            format,
        ]))
        .expect("runs");
        assert!(out.is_empty(), "sample --format {format}: {out:?}");
    }
    for format in ["01", "counts", "b8", "hits", "dets"] {
        let out = run_bytes(&args(&[
            "detect",
            "-c",
            f.as_str(),
            "--shots",
            "0",
            "--format",
            format,
        ]))
        .expect("runs");
        assert!(out.is_empty(), "detect --format {format}: {out:?}");
    }
    // The parallel path agrees.
    let out = run_bytes(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "0",
        "--par",
    ]))
    .expect("runs");
    assert!(out.is_empty());
}

#[test]
fn b8_format_packs_bits_little_endian() {
    let f = write_circuit("X 0\nM 0 1\n");
    // m0 = 1, m1 = 0 -> one byte per shot, value 0b01.
    let out = run_bytes(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "3",
        "--format",
        "b8",
    ]))
    .expect("runs");
    assert_eq!(out, vec![1u8, 1, 1]);
}

#[test]
fn hits_format_lists_set_indices() {
    let f = write_circuit("X 1\nM 0 1 2\n");
    let out = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "2",
        "--format",
        "hits",
    ]))
    .expect("runs");
    assert_eq!(out, "1\n1\n");
}

#[test]
fn dets_format_labels_events() {
    let f = write_circuit(
        "X_ERROR(1.0) 0\nM 0 1\nDETECTOR rec[-2]\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-2]\n",
    );
    let out = run(&args(&[
        "detect",
        "-c",
        f.as_str(),
        "--shots",
        "2",
        "--format",
        "dets",
    ]))
    .expect("runs");
    assert_eq!(out, "shot D0 L0\nshot D0 L0\n");
}

#[test]
fn out_flag_streams_to_file_and_keeps_stdout_empty() {
    let f = write_circuit("X 0\nM 0\n");
    let out_path = std::env::temp_dir().join(format!(
        "symphase-cli-out-{}-{}.01",
        std::process::id(),
        line!()
    ));
    let stdout = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "3",
        "--out",
        out_path.to_str().unwrap(),
    ]))
    .expect("runs");
    assert!(stdout.is_empty());
    assert_eq!(std::fs::read_to_string(&out_path).unwrap(), "1\n1\n1\n");
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn obs_out_splits_observables_from_detectors() {
    let f = write_circuit(
        "X_ERROR(1.0) 0\nM 0 1\nDETECTOR rec[-2]\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-2]\n",
    );
    let obs_path = std::env::temp_dir().join(format!(
        "symphase-cli-obs-{}-{}.01",
        std::process::id(),
        line!()
    ));
    let stdout = run(&args(&[
        "detect",
        "-c",
        f.as_str(),
        "--shots",
        "2",
        "--obs-out",
        obs_path.to_str().unwrap(),
    ]))
    .expect("runs");
    // Main output carries detectors only; observables land in the file.
    assert_eq!(stdout, "10\n10\n");
    assert_eq!(std::fs::read_to_string(&obs_path).unwrap(), "1\n1\n");
    let _ = std::fs::remove_file(&obs_path);
    // --obs-out on sample is a usage error.
    let e = run(&args(&["sample", "-c", f.as_str(), "--obs-out", "/tmp/x"])).unwrap_err();
    assert_eq!(e.code, 2);
}

#[test]
fn threads_flag_matches_serial_output() {
    let f = write_circuit("H 0\nX_ERROR(0.3) 1\nM 0 1\n");
    let serial = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "500",
        "--seed",
        "9",
    ]))
    .expect("runs");
    for threads in ["2", "3"] {
        let par = run(&args(&[
            "sample",
            "-c",
            f.as_str(),
            "--shots",
            "500",
            "--seed",
            "9",
            "--threads",
            threads,
        ]))
        .expect("runs");
        assert_eq!(serial, par, "--threads {threads} diverged");
    }
    let par = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "500",
        "--seed",
        "9",
        "--par",
    ]))
    .expect("runs");
    assert_eq!(serial, par, "--par diverged");
}

#[test]
fn counts_format_aggregates_detect_output() {
    let f =
        write_circuit("X_ERROR(1.0) 0\nM 0 1\nDETECTOR rec[-2]\nOBSERVABLE_INCLUDE(0) rec[-2]\n");
    let out = run(&args(&[
        "detect",
        "-c",
        f.as_str(),
        "--shots",
        "4",
        "--format",
        "counts",
    ]))
    .expect("runs");
    assert_eq!(out, "1 1 4\n");
}

#[test]
fn statevec_qubit_cap_is_a_runtime_error() {
    // 23 qubits exceed the dense ground truth's MAX_QUBITS = 22.
    let f = write_circuit("M 22\n");
    let e = run(&args(&["sample", "-c", f.as_str(), "--engine", "statevec"])).unwrap_err();
    assert_eq!(e.code, 1);
    assert!(e.message.contains("exceed"), "{}", e.message);
}

// ---------------------------------------------------------------------
// `symphase lint`
// ---------------------------------------------------------------------

#[test]
fn lint_text_output_carries_lines_and_help() {
    let f = write_circuit("H 0\nM 0\nH 0\n");
    let out = run(&args(&["lint", "-c", f.as_str()])).expect("lints");
    assert!(out.contains("warning[SP001] line 3:"), "{out}");
    assert!(out.contains("= help:"), "{out}");
}

#[test]
fn lint_clean_circuit_prints_nothing() {
    let f = write_circuit("X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\n");
    let out = run(&args(&["lint", "-c", f.as_str()])).expect("lints");
    assert_eq!(out, "");
}

#[test]
fn lint_json_output_is_structured() {
    let f = write_circuit("H 0 2\nM 0 2\nH 0\n");
    let out = run(&args(&["lint", "-c", f.as_str(), "--format", "json"])).expect("lints");
    assert!(out.starts_with('['), "{out}");
    assert!(out.contains("\"code\":\"SP001\""), "{out}");
    // SP005 (unused qubit 1) is circuit-level: a null line.
    assert!(out.contains("\"code\":\"SP005\""), "{out}");
    assert!(out.contains("\"line\":null"), "{out}");
}

#[test]
fn lint_deny_warnings_escalates_to_exit_1() {
    let f = write_circuit("H 0\nM 0\nH 0\n");
    let e = run(&args(&["lint", "-c", f.as_str(), "--deny", "warnings"])).unwrap_err();
    assert_eq!(e.code, 1);
    assert!(e.message.contains("error-severity"), "{}", e.message);
}

#[test]
fn lint_deny_specific_code_only_escalates_that_code() {
    // SP001 fires but only SP002 is denied — exit stays 0.
    let f = write_circuit("H 0\nM 0\nH 0\n");
    run(&args(&["lint", "-c", f.as_str(), "--deny", "SP002"])).expect("not denied");
    let e = run(&args(&["lint", "-c", f.as_str(), "--deny", "SP001"])).unwrap_err();
    assert_eq!(e.code, 1);
}

#[test]
fn lint_rejects_unknown_deny_and_format() {
    let f = write_circuit("M 0\n");
    let e = run(&args(&["lint", "-c", f.as_str(), "--deny", "SP999"])).unwrap_err();
    assert_eq!(e.code, 2);
    let e = run(&args(&["lint", "-c", f.as_str(), "--format", "counts"])).unwrap_err();
    assert_eq!(e.code, 2);
}

// ---------------------------------------------------------------------
// `symphase opt`
// ---------------------------------------------------------------------

#[test]
fn opt_emits_optimized_circuit_that_reparses_and_relints_clean() {
    let f = write_circuit("H 0\nH 0\nX_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\nS 0\n");
    let out = run(&args(&["opt", "-c", f.as_str()])).expect("optimizes");
    // The fused H·H pair and the trailing dead S are gone; the live
    // noise and the detector stay.
    assert_eq!(out, "X_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1]\n");
    // The output round-trips through the parser and re-lints clean of
    // everything the passes remove.
    let g = write_circuit(&out);
    run(&args(&[
        "lint",
        "-c",
        g.as_str(),
        "--deny",
        "SP001",
        "--deny",
        "SP002",
        "--deny",
        "SP011",
    ]))
    .expect("optimized output re-lints clean");
}

#[test]
fn opt_stats_reports_passes_and_flips() {
    let f = write_circuit("X 0\nM 0\nM 1\n");
    let out = run(&args(&["opt", "-c", f.as_str(), "--stats"])).expect("optimizes");
    assert!(out.starts_with("M 0\nM 1\n"), "{out}");
    assert!(out.contains("# opt: gates 1 -> 0"), "{out}");
    assert!(out.contains("# opt: pass propagate: 1 applied"), "{out}");
    assert!(
        out.contains("rewrite proof(s) discharged, 0 rolled back"),
        "{out}"
    );
    assert!(
        out.contains("# opt: sign-flipped measurement record(s): 0"),
        "{out}"
    );
}

#[test]
fn opt_json_output_carries_report_proof_and_circuit() {
    let f = write_circuit("H 0\nH 0\nM 0\n");
    let out = run(&args(&["opt", "-c", f.as_str(), "--format", "json"])).expect("optimizes");
    assert!(out.contains("\"gates_before\":2"), "{out}");
    assert!(out.contains("\"gates_after\":0"), "{out}");
    assert!(out.contains("\"status\":\"verified\""), "{out}");
    assert!(out.contains("\"flipped_records\": []"), "{out}");
    assert!(out.contains("\"circuit\": \"M 0\\n\""), "{out}");
}

#[test]
fn opt_passes_subset_runs_only_those() {
    let f = write_circuit("H 0\nH 0\nX 1\nM 0 1\n");
    // Fuse collapses H·H; the standalone X stays because propagate is
    // not in the list.
    let out = run(&args(&["opt", "-c", f.as_str(), "--passes", "fuse"])).expect("runs");
    assert_eq!(out, "X 1\nM 0 1\n");
}

#[test]
fn opt_unparsable_file_exits_1_with_sp000() {
    // The bugfix pin: `opt` classifies parse failures through the same
    // source-mapped path as `lint` — SP000 with the offending line, then
    // exit 1.
    let f = write_circuit("FROB 0\n");
    let mut out = Vec::new();
    let e = symphase::cli::run_to(&args(&["opt", "-c", f.as_str()]), &mut out).unwrap_err();
    assert_eq!(e.code, 1);
    assert!(e.message.contains("does not parse"), "{}", e.message);
    let text = String::from_utf8(out).expect("utf-8");
    assert!(text.contains("error[SP000] line 1:"), "{text}");
}

#[test]
fn opt_rejects_bad_passes_and_format() {
    let f = write_circuit("M 0\n");
    let e = run(&args(&["opt", "-c", f.as_str(), "--passes", "warp"])).unwrap_err();
    assert_eq!(e.code, 2);
    assert!(
        e.message.contains("strip, fuse, propagate"),
        "{}",
        e.message
    );
    let e = run(&args(&["opt", "-c", f.as_str(), "--passes", ","])).unwrap_err();
    assert_eq!(e.code, 2);
    let e = run(&args(&["opt", "-c", f.as_str(), "--format", "counts"])).unwrap_err();
    assert_eq!(e.code, 2);
}

#[test]
fn lint_deny_sp011_escalates_fusable_runs() {
    let f = write_circuit("H 0\nH 0\nM 0\n");
    let e = run(&args(&["lint", "-c", f.as_str(), "--deny", "SP011"])).unwrap_err();
    assert_eq!(e.code, 1);
}

// ---------------------------------------------------------------------
// `symphase hash`, broken pipes, and `serve`/`request`
// ---------------------------------------------------------------------

#[test]
fn hash_is_canonical_over_parse_equivalent_sources() {
    let a = write_circuit("H 0\nCX 0 1\nM 0 1\n");
    let b = write_circuit("# preamble comment\n  H   0\n\nCX 0 1   # tail\nM 0 1");
    let c = write_circuit("H 0\nCX 0 1\nM 1 0\n");
    let ha = run(&args(&["hash", "-c", a.as_str()])).expect("hashes");
    let hb = run(&args(&["hash", "-c", b.as_str()])).expect("hashes");
    let hc = run(&args(&["hash", "-c", c.as_str()])).expect("hashes");
    assert_eq!(ha, hb, "whitespace/comment-equivalent files must collide");
    assert_ne!(ha, hc, "distinct circuits must not collide");
    let line = ha.trim_end();
    assert_eq!(line.len(), 64, "{line}");
    assert!(line.chars().all(|ch| ch.is_ascii_hexdigit()));
    // The printed hash is the serve cache key for the same circuit.
    let circuit = symphase::circuit::Circuit::parse("H 0\nCX 0 1\nM 0 1\n").unwrap();
    assert_eq!(line, symphase::serve::circuit_hash(&circuit).to_hex());
}

/// A writer that accepts `budget` bytes, then reports a broken pipe —
/// what stdout looks like once `| head` has exited.
struct BrokenPipe {
    budget: usize,
}

impl Write for BrokenPipe {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.budget == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "reader hung up",
            ));
        }
        let take = buf.len().min(self.budget);
        self.budget -= take;
        Ok(take)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.budget == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "reader hung up",
            ));
        }
        Ok(())
    }
}

#[test]
fn broken_pipe_mid_stream_is_a_clean_success() {
    // `symphase sample ... | head` must exit cleanly, not panic: once the
    // reader hangs up, the stream stops and the run reports success.
    let f = write_circuit("H 0\nX_ERROR(0.3) 1\nM 0 1\n");
    for budget in [0usize, 1, 100] {
        let mut w = BrokenPipe { budget };
        symphase::cli::run_to(
            &args(&["sample", "-c", f.as_str(), "--shots", "100000"]),
            &mut w,
        )
        .unwrap_or_else(|e| panic!("broken pipe at {budget} bytes must be success, got: {e}"));
    }
    // Non-streaming output paths (help text and friends) get the same
    // treatment.
    let mut w = BrokenPipe { budget: 0 };
    symphase::cli::run_to(&args(&["stats", "-c", f.as_str()]), &mut w)
        .expect("broken pipe on text output must be success");
    // Any other write failure still fails the run.
    struct Full;
    impl Write for Full {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "disk full",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let e = symphase::cli::run_to(
        &args(&["sample", "-c", f.as_str(), "--shots", "100"]),
        &mut Full,
    )
    .unwrap_err();
    assert_eq!(e.code, 1);
}

#[test]
fn serve_and_request_usage_errors() {
    let f = write_circuit("M 0\n");
    // Both daemon and client need an address.
    for bad in [
        vec!["serve"],
        vec!["request", "-c", f.as_str()],
        // Tuning flags must be sane before any bind happens.
        vec!["serve", "--addr", "127.0.0.1:0", "--workers", "0"],
        vec!["serve", "--addr", "127.0.0.1:0", "--max-queue", "0"],
        vec!["serve", "--addr", "127.0.0.1:0", "--cache-size", "0"],
        vec!["serve", "--addr", "127.0.0.1:0", "--workers", "many"],
        // Client-side validation, before any connection is attempted.
        vec!["request", "--addr", "127.0.0.1:1", "--range", "nope"],
        vec!["request", "--addr", "127.0.0.1:1", "--source", "q"],
        vec!["request", "--addr", "127.0.0.1:1", "--hash", "abc"],
        vec![
            "request",
            "--addr",
            "127.0.0.1:1",
            "--hash",
            "0000000000000000000000000000000000000000000000000000000000000000",
            "-c",
            f.as_str(),
        ],
    ] {
        let e = run(&args(&bad)).unwrap_err();
        assert_eq!(e.code, 2, "{bad:?}: {}", e.message);
    }
}

#[test]
fn request_command_round_trips_against_an_in_process_daemon() {
    use std::sync::Arc;
    let server = symphase::serve::Server::bind(
        "127.0.0.1:0",
        symphase::serve::ServeOptions::default(),
        Arc::new(symphase::backend::build_sampler),
        None,
    )
    .expect("bind loopback")
    .spawn();
    let addr = server.addr().to_string();
    let f = write_circuit("H 0\nX_ERROR(0.3) 1\nM 0 1\nDETECTOR rec[-1]\n");
    let offline = run_bytes(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "500",
        "--seed",
        "5",
        "--format",
        "b8",
    ]))
    .expect("offline sample");
    let served = run_bytes(&args(&[
        "request",
        "--addr",
        &addr,
        "-c",
        f.as_str(),
        "--shots",
        "500",
        "--seed",
        "5",
        "--format",
        "b8",
    ]))
    .expect("served sample");
    assert_eq!(served, offline, "served bytes must match the offline CLI");
    // Stats round-trip over the wire via the CLI client.
    let stats = run(&args(&["request", "--addr", &addr, "--stats"])).expect("stats");
    assert!(stats.contains("misses 1"), "{stats}");
    assert!(stats.contains("served 2"), "{stats}");
    // A typed server error surfaces as a runtime (exit 1) CLI error.
    let bad = write_circuit("FROB 0\n");
    let e = run(&args(&[
        "request",
        "--addr",
        &addr,
        "-c",
        bad.as_str(),
        "--shots",
        "10",
    ]))
    .unwrap_err();
    assert_eq!(e.code, 1);
    assert!(e.message.contains("parse"), "{}", e.message);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn lint_parse_errors_render_as_diagnostics_and_exit_1() {
    // Unknown instruction: SP000, error severity, exit 1 even without --deny.
    let f = write_circuit("FROB 0\n");
    let e = run(&args(&["lint", "-c", f.as_str()])).unwrap_err();
    assert_eq!(e.code, 1);

    // Out-of-range lookback: classified as SP006 with the offending line.
    let f = write_circuit("M 0\nDETECTOR rec[-2]\n");
    let mut out = Vec::new();
    let e = symphase::cli::run_to(&args(&["lint", "-c", f.as_str()]), &mut out).unwrap_err();
    assert_eq!(e.code, 1);
    let text = String::from_utf8(out).expect("utf-8");
    assert!(text.contains("error[SP006] line 2:"), "{text}");
}
