//! In-process tests of the `symphase` CLI.

use std::io::Write;

use symphase::cli::run;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn write_circuit(content: &str) -> tempfile_lite::TempPath {
    tempfile_lite::write(content)
}

/// A minimal self-cleaning temp-file helper (no external crates).
mod tempfile_lite {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 path")
        }
    }

    pub fn write(content: &str) -> TempPath {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("symphase-cli-test-{}-{n}.stim", std::process::id()));
        let mut f = std::fs::File::create(&path).expect("create temp file");
        super::Write::write_all(&mut f, content.as_bytes()).expect("write temp file");
        TempPath(path)
    }
}

#[test]
fn sample_01_deterministic_circuit() {
    let f = write_circuit("X 0\nM 0 1\n");
    let out = run(&args(&["sample", "-c", f.as_str(), "--shots", "3"])).expect("runs");
    assert_eq!(out, "10\n10\n10\n");
}

#[test]
fn sample_counts_format() {
    let f = write_circuit("X 0\nM 0\n");
    let out = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "5",
        "--format",
        "counts",
    ]))
    .expect("runs");
    assert_eq!(out, "1 5\n");
}

#[test]
fn sample_frame_engine_agrees_on_deterministic() {
    let f = write_circuit("X 0\nCX 0 1\nM 0 1\n");
    let a = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "2",
        "--engine",
        "frame",
    ]))
    .expect("runs");
    assert_eq!(a, "11\n11\n");
}

#[test]
fn analyze_reports_expressions() {
    let f = write_circuit("H 0\nCX 0 1\nX_ERROR(0.25) 1\nM 0 1\n");
    let out = run(&args(&["analyze", "-c", f.as_str()])).expect("runs");
    assert!(out.contains("qubits:        2"));
    assert!(out.contains("m0 = s2"));
    assert!(out.contains("m1 = s1 ⊕ s2"));
}

#[test]
fn dem_output() {
    let f =
        write_circuit("X_ERROR(0.25) 0\nM 0\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-1]\n");
    let out = run(&args(&["dem", "-c", f.as_str()])).expect("runs");
    assert_eq!(out, "error(0.25) D0 L0\n");
}

#[test]
fn reference_output() {
    let f = write_circuit("X 0\nH 1\nM 0 1\n");
    let out = run(&args(&["reference", "-c", f.as_str()])).expect("runs");
    assert_eq!(out, "10\n"); // random outcome fixed to 0
}

#[test]
fn detect_output_shapes() {
    let f = write_circuit(
        "X_ERROR(1.0) 0\nM 0 1\nDETECTOR rec[-2]\nDETECTOR rec[-1]\nOBSERVABLE_INCLUDE(0) rec[-2]\n",
    );
    let out = run(&args(&["detect", "-c", f.as_str(), "--shots", "2"])).expect("runs");
    assert_eq!(out, "10 1\n10 1\n");
}

#[test]
fn seed_makes_sampling_reproducible() {
    let f = write_circuit("H 0\nM 0\n");
    let a = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "7",
    ]))
    .unwrap();
    let b = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "7",
    ]))
    .unwrap();
    let c = run(&args(&[
        "sample",
        "-c",
        f.as_str(),
        "--shots",
        "64",
        "--seed",
        "8",
    ]))
    .unwrap();
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn stats_reports_structural_counts_past_the_old_cap() {
    // 6×10⁹ flattened gates: the old flatten-on-parse front-end refused
    // anything past 50M materialized instructions; the structured parse
    // computes the statistics from the REPEAT node in O(file).
    let f = write_circuit("REPEAT 60000 {\n REPEAT 100000 {\n X 0\n }\n}\n");
    let out = run(&args(&["stats", "-c", f.as_str()])).expect("runs");
    assert!(out.contains("gates:         6000000000"), "{out}");
    assert!(out.contains("instructions:  1 (structured)"), "{out}");
}

#[test]
fn gen_emits_structured_rounds_that_roundtrip() {
    let out = run(&args(&[
        "gen",
        "surface-code",
        "--distance",
        "3",
        "--rounds",
        "50",
    ]))
    .expect("runs");
    assert!(out.contains("REPEAT 49 {"), "{out}");
    // The emitted text parses back and reports structural counts.
    let f = write_circuit(&out);
    let stats = run(&args(&["stats", "-c", f.as_str()])).expect("runs");
    assert!(stats.contains("measurements:  409"), "{stats}"); // 8×50 + 9
                                                              // …and samples end to end through the default engine.
    let detect = run(&args(&["detect", "-c", f.as_str(), "--shots", "4"])).expect("runs");
    assert_eq!(detect.lines().count(), 4);
}

#[test]
fn gen_repetition_code_and_bad_names() {
    let out = run(&args(&["gen", "repetition-code", "--rounds", "10"])).expect("runs");
    assert!(out.contains("REPEAT 9 {"), "{out}");
    assert!(run(&args(&["gen"])).is_err(), "missing generator name");
    assert!(run(&args(&["gen", "bogus"])).is_err(), "unknown generator");
    assert!(
        run(&args(&["gen", "surface-code", "--distance", "4"])).is_err(),
        "even distance"
    );
}

#[test]
fn gen_rejects_bad_probabilities_and_zero_rounds() {
    let e = run(&args(&["gen", "surface-code", "--data-error", "1.5"])).unwrap_err();
    assert!(e.message.contains("[0, 1]"), "{}", e.message);
    let e = run(&args(&[
        "gen",
        "repetition-code",
        "--measure-error",
        "-0.1",
    ]))
    .unwrap_err();
    assert!(e.message.contains("[0, 1]"), "{}", e.message);
    let e = run(&args(&["gen", "surface-code", "--rounds", "0"])).unwrap_err();
    assert!(e.message.contains("at least 1"), "{}", e.message);
}

#[test]
fn bare_arguments_outside_gen_are_rejected() {
    // A dropped flag name must not be silently swallowed.
    let f = write_circuit("X 0\nM 0\n");
    let e = run(&args(&["sample", "-c", f.as_str(), "100"])).unwrap_err();
    assert!(
        e.message.contains("unexpected argument '100'"),
        "{}",
        e.message
    );
    // gen takes exactly one bare argument.
    assert!(run(&args(&["gen", "surface-code", "extra"])).is_err());
}

#[test]
fn errors_are_reported() {
    assert!(run(&args(&["sample"])).is_err(), "missing circuit");
    assert!(run(&args(&["bogus"])).is_err(), "unknown command");
    let f = write_circuit("FROB 0\n");
    let e = run(&args(&["sample", "-c", f.as_str()])).unwrap_err();
    assert!(e.message.contains("parse error"));
    let e = run(&args(&["sample", "-c", "/nonexistent/x.stim"])).unwrap_err();
    assert!(e.message.contains("reading"));
}

#[test]
fn help_exits_zero() {
    let e = run(&args(&["sample", "--help"])).unwrap_err();
    assert_eq!(e.code, 0);
    assert!(e.message.contains("usage"));
}
