//! Loopback end-to-end tests for `symphase serve`: the determinism
//! contract of the sampling daemon.
//!
//! The wire promise under test: the payload bytes for a
//! (circuit, engine, seed, range, format, source) are **identical**
//! whether computed locally, served by one worker, or sharded across
//! concurrent clients — and a warm cache serves them without
//! re-initializing (hit counter pinned).

use std::sync::Arc;

use symphase::backend::{build_sampler, EngineKind, SimConfig};
use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase::prelude::*;
use symphase::sampler_api::formats::{RecordSource, SampleFormat};
use symphase::sampler_api::stream_range_with_config;
use symphase::serve::{
    request_sample, request_stats, CircuitRef, ClientError, ErrorCode, HeldConnection, LintGate,
    SampleRequest, SamplerFactory, ServeOptions, Server, ServerHandle,
};

/// A small noisy QEC workload every engine (including the ≤22-qubit
/// state-vector ground truth) can run, with measurements, detectors, and
/// observables all nonempty.
fn small_circuit() -> Circuit {
    repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.1,
        measure_error: 0.05,
    })
}

/// A structurally different circuit (distinct content hash).
fn other_circuit() -> Circuit {
    repetition_code_memory(&RepetitionCodeConfig {
        distance: 5,
        rounds: 3,
        data_error: 0.02,
        measure_error: 0.01,
    })
}

fn factory() -> SamplerFactory {
    Arc::new(build_sampler)
}

fn start(options: ServeOptions, lint: Option<LintGate>) -> ServerHandle {
    Server::bind("127.0.0.1:0", options, factory(), lint)
        .expect("bind loopback")
        .spawn()
}

/// The offline reference: what `sample_seeded` + the format sink produce
/// for the same (circuit, engine, seed, range, format, source).
#[allow(clippy::too_many_arguments)]
fn local_bytes(
    circuit: &Circuit,
    engine: EngineKind,
    seed: u64,
    start: usize,
    end: usize,
    chunk_shots: usize,
    format: SampleFormat,
    source: RecordSource,
) -> Vec<u8> {
    let config = SimConfig::new()
        .with_engine(engine)
        .with_seed(seed)
        .with_chunk_shots(chunk_shots);
    let sampler = build_sampler(circuit, &config).expect("engine builds");
    let mut bytes = Vec::new();
    {
        let mut sink = format.sink(&mut bytes, source);
        stream_range_with_config(&*sampler, start, end, &config, sink.as_mut()).unwrap();
    }
    bytes
}

fn sample_request(
    circuit: CircuitRef,
    engine: EngineKind,
    format: SampleFormat,
    source: RecordSource,
    seed: u64,
    start: u64,
    end: u64,
) -> SampleRequest {
    SampleRequest {
        circuit,
        engine,
        source,
        format,
        seed,
        start,
        end,
    }
}

fn fetch(
    addr: std::net::SocketAddr,
    req: &SampleRequest,
) -> (symphase::serve::SampleReply, Vec<u8>) {
    let mut bytes = Vec::new();
    let reply = request_sample(addr, req, &mut bytes).expect("sample request succeeds");
    assert_eq!(reply.bytes, bytes.len() as u64);
    (reply, bytes)
}

#[test]
fn server_bytes_equal_local_bytes_on_every_engine() {
    // Multi-chunk coverage cheap enough for the per-shot ground-truth
    // engines: a narrow server chunk width, 600 shots = 3 chunks.
    let chunk = 256;
    let shots = 2 * chunk + 88;
    let handle = start(
        ServeOptions {
            chunk_shots: chunk,
            threads: 2, // the server fans out; bytes must not change
            ..ServeOptions::default()
        },
        None,
    );
    let circuit = small_circuit();
    let text = circuit.to_string();
    for engine in EngineKind::ALL {
        let req = sample_request(
            CircuitRef::Text(text.clone()),
            engine,
            SampleFormat::B8,
            RecordSource::Measurements,
            0xDAC2024,
            0,
            shots as u64,
        );
        let (reply, bytes) = fetch(handle.addr(), &req);
        assert_eq!(reply.shots, shots as u64, "{}", engine.name());
        let expected = local_bytes(
            &circuit,
            engine,
            0xDAC2024,
            0,
            shots,
            chunk,
            SampleFormat::B8,
            RecordSource::Measurements,
        );
        assert_eq!(
            bytes,
            expected,
            "{} diverged from local bytes",
            engine.name()
        );
    }
    // Formats beyond b8, on one engine: text, hits, and detector streams.
    for (format, source) in [
        (SampleFormat::Plain01, RecordSource::Measurements),
        (SampleFormat::Hits, RecordSource::Measurements),
        (SampleFormat::Dets, RecordSource::DetectorsAndObservables),
        (SampleFormat::B8, RecordSource::Detectors),
    ] {
        let req = sample_request(
            CircuitRef::Text(text.clone()),
            EngineKind::SymPhase,
            format,
            source,
            7,
            0,
            shots as u64,
        );
        let (_, bytes) = fetch(handle.addr(), &req);
        let expected = local_bytes(
            &circuit,
            EngineKind::SymPhase,
            7,
            0,
            shots,
            chunk,
            format,
            source,
        );
        assert_eq!(bytes, expected, "{:?}/{:?} diverged", format, source);
    }
    handle.shutdown().unwrap();
}

#[test]
fn range_shards_concatenate_to_one_full_request() {
    // Two clients asking for [0, N) and [N, 2N) must together produce
    // exactly the bytes of one client asking for [0, 2N) — at the
    // daemon's production chunk width.
    let n = symphase::sampler_api::CHUNK_SHOTS as u64;
    let handle = start(ServeOptions::default(), None);
    let circuit = small_circuit();
    let text = circuit.to_string();
    let req = |start: u64, end: u64| {
        sample_request(
            CircuitRef::Text(text.clone()),
            EngineKind::SymPhase,
            SampleFormat::B8,
            RecordSource::Measurements,
            42,
            start,
            end,
        )
    };
    let (_, low) = fetch(handle.addr(), &req(0, n));
    let (_, high) = fetch(handle.addr(), &req(n, 2 * n));
    let (_, full) = fetch(handle.addr(), &req(0, 2 * n));
    let mut stitched = low;
    stitched.extend_from_slice(&high);
    assert_eq!(stitched, full, "shards must concatenate bit-for-bit");
    let expected = local_bytes(
        &circuit,
        EngineKind::SymPhase,
        42,
        0,
        2 * n as usize,
        n as usize,
        SampleFormat::B8,
        RecordSource::Measurements,
    );
    assert_eq!(full, expected, "full run must equal offline bytes");
    handle.shutdown().unwrap();
}

#[test]
fn concurrent_clients_on_different_circuits_both_hit_the_cache() {
    let handle = start(
        ServeOptions {
            workers: 4,
            chunk_shots: 256,
            ..ServeOptions::default()
        },
        None,
    );
    let addr = handle.addr();
    let texts = [small_circuit().to_string(), other_circuit().to_string()];
    let round = |expect_hit: bool| {
        std::thread::scope(|s| {
            let handles: Vec<_> = texts
                .iter()
                .map(|text| {
                    s.spawn(move || {
                        let req = sample_request(
                            CircuitRef::Text(text.clone()),
                            EngineKind::SymPhase,
                            SampleFormat::B8,
                            RecordSource::Measurements,
                            1,
                            0,
                            512,
                        );
                        let mut bytes = Vec::new();
                        let reply =
                            request_sample(addr, &req, &mut bytes).expect("request succeeds");
                        (reply, bytes)
                    })
                })
                .collect();
            for h in handles {
                let (reply, bytes) = h.join().expect("client thread");
                assert_eq!(reply.cache_hit, expect_hit);
                assert!(!bytes.is_empty());
            }
        })
    };
    round(false); // cold: both circuits build
    round(true); // warm: both circuits served from cache
    let stats = request_stats(addr).expect("stats over the wire");
    assert_eq!(stats.misses, 2, "one miss per circuit");
    assert_eq!(stats.hits, 2, "one hit per circuit on the warm round");
    assert_eq!(stats.entries, 2);
    assert_eq!(handle.stats().hits, 2);
    handle.shutdown().unwrap();
}

#[test]
fn four_concurrent_clients_agree_with_local_bytes() {
    let chunk = 256;
    let shots = 4 * chunk;
    let handle = start(
        ServeOptions {
            workers: 4,
            chunk_shots: chunk,
            ..ServeOptions::default()
        },
        None,
    );
    let addr = handle.addr();
    let circuit = small_circuit();
    let text = circuit.to_string();
    // Each client takes one quarter of the schedule; together they tile
    // the local full run exactly.
    let expected = local_bytes(
        &circuit,
        EngineKind::SymPhase,
        9,
        0,
        shots,
        chunk,
        SampleFormat::B8,
        RecordSource::Measurements,
    );
    let quarter = expected.len() / 4;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let text = &text;
                s.spawn(move || {
                    let req = sample_request(
                        CircuitRef::Text(text.clone()),
                        EngineKind::SymPhase,
                        SampleFormat::B8,
                        RecordSource::Measurements,
                        9,
                        (i * chunk) as u64,
                        ((i + 1) * chunk) as u64,
                    );
                    let mut bytes = Vec::new();
                    request_sample(addr, &req, &mut bytes).expect("request succeeds");
                    (i, bytes)
                })
            })
            .collect();
        for h in handles {
            let (i, bytes) = h.join().expect("client thread");
            assert_eq!(
                bytes,
                &expected[i * quarter..(i + 1) * quarter],
                "client {i} shard diverged"
            );
        }
    });
    handle.shutdown().unwrap();
}

#[test]
fn by_hash_requests_reuse_an_uploaded_circuit() {
    let handle = start(
        ServeOptions {
            chunk_shots: 256,
            ..ServeOptions::default()
        },
        None,
    );
    let circuit = small_circuit();
    let hash = symphase::serve::circuit_hash(&circuit);
    // Before any upload: the hash is unknown (typed error, not a miss).
    let by_hash = sample_request(
        CircuitRef::Hash(hash),
        EngineKind::SymPhase,
        SampleFormat::B8,
        RecordSource::Measurements,
        3,
        0,
        512,
    );
    match request_sample(handle.addr(), &by_hash, &mut Vec::new()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownHash),
        other => panic!("expected UnknownHash, got {other:?}"),
    }
    // Upload by text once…
    let by_text = SampleRequest {
        circuit: CircuitRef::Text(circuit.to_string()),
        ..by_hash.clone()
    };
    let (reply, text_bytes) = fetch(handle.addr(), &by_text);
    assert!(!reply.cache_hit);
    // …then the bare hash serves the identical bytes, warm.
    let (reply, hash_bytes) = fetch(handle.addr(), &by_hash);
    assert!(reply.cache_hit, "by-hash request must be a cache hit");
    assert_eq!(hash_bytes, text_bytes);
    let stats = handle.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    handle.shutdown().unwrap();
}

#[test]
fn busy_backpressure_fires_when_queue_and_workers_are_full() {
    let handle = start(
        ServeOptions {
            workers: 1,
            max_queue: 1,
            read_timeout: Some(std::time::Duration::from_secs(2)),
            ..ServeOptions::default()
        },
        None,
    );
    let addr = handle.addr();
    // Occupy the single worker: a connection that never sends a request.
    let worker_hog = HeldConnection::open(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // Occupy the single queue slot the same way.
    let queue_hog = HeldConnection::open(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // The next request is rejected at admission with a typed BUSY frame.
    let req = sample_request(
        CircuitRef::Text(small_circuit().to_string()),
        EngineKind::SymPhase,
        SampleFormat::B8,
        RecordSource::Measurements,
        0,
        0,
        256,
    );
    match request_sample(addr, &req, &mut Vec::new()) {
        Err(e) => assert!(e.is_busy(), "expected BUSY, got {e}"),
        Ok(_) => panic!("request must be rejected while the queue is full"),
    }
    assert!(
        handle.stats().busy >= 1,
        "busy counter must record the rejection"
    );
    // Free the worker and the queue slot; the daemon recovers.
    drop(worker_hog);
    drop(queue_hog);
    for _ in 0..50 {
        if request_sample(addr, &req, &mut Vec::new()).is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let (_, bytes) = fetch(addr, &req);
    assert!(!bytes.is_empty(), "daemon must recover after backpressure");
    handle.shutdown().unwrap();
}

#[test]
fn typed_error_frames_cover_the_rejection_paths() {
    let handle = start(
        ServeOptions {
            chunk_shots: 256,
            ..ServeOptions::default()
        },
        None,
    );
    let addr = handle.addr();
    let text = small_circuit().to_string();
    let base = sample_request(
        CircuitRef::Text(text.clone()),
        EngineKind::SymPhase,
        SampleFormat::B8,
        RecordSource::Measurements,
        0,
        0,
        512,
    );
    let expect_code =
        |req: &SampleRequest, want: ErrorCode| match request_sample(addr, req, &mut Vec::new()) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, want, "message: {message}");
                assert!(!message.is_empty());
            }
            other => panic!("expected {want:?}, got {other:?}"),
        };
    // Circuit text that does not parse.
    expect_code(
        &SampleRequest {
            circuit: CircuitRef::Text("NOT_A_GATE 0\n".into()),
            ..base.clone()
        },
        ErrorCode::Parse,
    );
    // Unaligned range start (256-wide chunks on this server).
    expect_code(
        &SampleRequest {
            start: 100,
            end: 612,
            ..base.clone()
        },
        ErrorCode::BadRange,
    );
    // Inverted range.
    expect_code(
        &SampleRequest {
            start: 512,
            end: 256,
            ..base.clone()
        },
        ErrorCode::BadRange,
    );
    // The aggregated counts format is not streamable.
    expect_code(
        &SampleRequest {
            format: SampleFormat::Counts,
            ..base.clone()
        },
        ErrorCode::Unsupported,
    );
    // An engine build failure surfaces as a typed Build error: the dense
    // ground-truth engine refuses >22 qubits.
    let wide: String = (0..40).map(|q| format!("H {q}\n")).collect::<String>() + "M 0\n";
    expect_code(
        &SampleRequest {
            circuit: CircuitRef::Text(wide),
            engine: EngineKind::StateVec,
            ..base.clone()
        },
        ErrorCode::Build,
    );
    // Build failures are not cached: the same circuit still parses and
    // serves fine on an engine that supports it.
    let stats = handle.stats();
    assert_eq!(stats.hits, 0);
    handle.shutdown().unwrap();
}

#[test]
fn lint_gate_rejects_at_admission_with_a_typed_frame() {
    let gate: LintGate = Arc::new(|circuit: &Circuit| {
        let diags = symphase::analysis::lint(circuit);
        if diags.is_empty() {
            Ok(())
        } else {
            Err(symphase::analysis::render_text(&diags))
        }
    });
    let handle = start(
        ServeOptions {
            chunk_shots: 256,
            ..ServeOptions::default()
        },
        Some(gate),
    );
    // A qubit that is touched but never measured trips the analyzer.
    let req = sample_request(
        CircuitRef::Text("H 0\nH 1\nM 0\n".into()),
        EngineKind::SymPhase,
        SampleFormat::B8,
        RecordSource::Measurements,
        0,
        0,
        256,
    );
    match request_sample(handle.addr(), &req, &mut Vec::new()) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Lint);
            assert!(!message.is_empty());
        }
        other => panic!("expected a Lint rejection, got {other:?}"),
    }
    // A clean circuit passes the same gate.
    let clean = sample_request(
        CircuitRef::Text(small_circuit().to_string()),
        EngineKind::SymPhase,
        SampleFormat::B8,
        RecordSource::Measurements,
        0,
        0,
        256,
    );
    let (_, bytes) = fetch(handle.addr(), &clean);
    assert!(!bytes.is_empty());
    handle.shutdown().unwrap();
}
