//! Statistical cross-validation of all four engines.
//!
//! For small circuits the dense state-vector simulator is ground truth.
//! Each engine samples the same circuit; per-measurement marginals and
//! pairwise XOR correlations must agree within 6σ (fixed seeds, so the
//! test is deterministic).
//!
//! The `optimized_*` tests close the loop on the rewrite driver: every
//! engine samples the **optimized** circuit, the declared record flips
//! are applied, and the result is compared against state-vector ground
//! truth on the **original** — so fuse/strip/propagate must preserve
//! whole distributions, not just symbolic expressions. (Valid only when
//! no noise was stripped: `SP002` noise can still reach raw records.)

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::analysis::{optimize, ProofStatus};
use symphase::circuit::{Circuit, NoiseChannel};
use symphase::core::SymPhaseSampler;
use symphase::frame::FrameSampler;
use symphase::statevec::StateVecSimulator;
use symphase::tableau::TableauSimulator;

/// Per-measurement one-rates and pairwise XOR rates.
#[derive(Debug)]
struct Stats {
    shots: usize,
    ones: Vec<f64>,
    pair_xor: Vec<f64>,
}

fn collect<F: FnMut() -> Vec<bool>>(nm: usize, shots: usize, mut shot: F) -> Stats {
    let mut ones = vec![0usize; nm];
    let npairs = nm * (nm - 1) / 2;
    let mut pair = vec![0usize; npairs];
    for _ in 0..shots {
        let rec = shot();
        assert_eq!(rec.len(), nm);
        let mut p = 0;
        for i in 0..nm {
            if rec[i] {
                ones[i] += 1;
            }
            for j in i + 1..nm {
                if rec[i] ^ rec[j] {
                    pair[p] += 1;
                }
                p += 1;
            }
        }
    }
    Stats {
        shots,
        ones: ones.iter().map(|&c| c as f64 / shots as f64).collect(),
        pair_xor: pair.iter().map(|&c| c as f64 / shots as f64).collect(),
    }
}

fn assert_close(a: &Stats, b: &Stats, label: &str) {
    let tol = |p: f64, n1: usize, n2: usize| {
        let v = p.max(0.01) * (1.0 - p).max(0.01);
        6.0 * (v / n1 as f64 + v / n2 as f64).sqrt() + 1e-9
    };
    for (i, (&x, &y)) in a.ones.iter().zip(&b.ones).enumerate() {
        assert!(
            (x - y).abs() <= tol(x, a.shots, b.shots),
            "{label}: marginal {i} differs: {x} vs {y}"
        );
    }
    for (i, (&x, &y)) in a.pair_xor.iter().zip(&b.pair_xor).enumerate() {
        assert!(
            (x - y).abs() <= tol(x, a.shots, b.shots),
            "{label}: pair XOR {i} differs: {x} vs {y}"
        );
    }
}

fn validate(circuit: &Circuit, shots: usize, statevec_shots: usize, label: &str) {
    let nm = circuit.num_measurements();
    let n = circuit.num_qubits() as usize;

    // Ground truth: dense state vector (fewer shots — it is slow).
    let mut sv_rng = StateVecSimulator::new(StdRng::seed_from_u64(101));
    let sv = collect(nm, statevec_shots, || {
        let r = sv_rng.run(circuit);
        (0..nm).map(|m| r.get(m)).collect()
    });

    // Single-shot tableau.
    let mut tsim = TableauSimulator::new(n, StdRng::seed_from_u64(202));
    let tb = collect(nm, shots, || {
        let r = tsim.run(circuit);
        (0..nm).map(|m| r.get(m)).collect()
    });

    // Frame batch sampler.
    let frame = FrameSampler::new(circuit);
    let fsamples = frame.sample(shots, &mut StdRng::seed_from_u64(303));
    let mut col = 0usize;
    let fr = collect(nm, shots, || {
        let rec = (0..nm).map(|m| fsamples.get(m, col)).collect();
        col += 1;
        rec
    });

    // SymPhase sampler (hybrid default).
    let sym = SymPhaseSampler::new(circuit);
    let ssamples = sym.sample(shots, &mut StdRng::seed_from_u64(404));
    let mut col = 0usize;
    let sp = collect(nm, shots, || {
        let rec = (0..nm).map(|m| ssamples.get(m, col)).collect();
        col += 1;
        rec
    });

    assert_close(&tb, &sv, &format!("{label}: tableau vs statevec"));
    assert_close(&fr, &sv, &format!("{label}: frame vs statevec"));
    assert_close(&sp, &sv, &format!("{label}: symphase vs statevec"));
    assert_close(&sp, &fr, &format!("{label}: symphase vs frame"));
}

/// Samples the *optimized* circuit on every engine, XORs in the
/// optimizer's declared record flips, and compares against state-vector
/// ground truth on the *original* circuit.
fn validate_optimized(circuit: &Circuit, shots: usize, statevec_shots: usize, label: &str) {
    let r = optimize(circuit);
    for p in &r.proof {
        assert!(
            matches!(p.status, ProofStatus::Verified { .. }),
            "{label}: rolled back {p:?}"
        );
    }
    assert!(r.changed(), "{label}: workload offers the passes nothing");
    // Raw-record distributions only survive when no noise was stripped:
    // `SP002` noise is invisible to detectors/observables but can still
    // reach raw records.
    assert_eq!(
        r.report.noise_sites_after, r.report.noise_sites_before,
        "{label}: stripped noise invalidates raw-record comparison"
    );
    let opt = &r.circuit;
    let nm = circuit.num_measurements();
    assert_eq!(opt.num_measurements(), nm, "{label}: record count changed");
    let flip: Vec<bool> = (0..nm).map(|m| r.flipped_records.contains(&m)).collect();
    let n = circuit.num_qubits() as usize;

    // Ground truth: dense state vector on the ORIGINAL circuit.
    let mut sv_rng = StateVecSimulator::new(StdRng::seed_from_u64(101));
    let sv = collect(nm, statevec_shots, || {
        let rec = sv_rng.run(circuit);
        (0..nm).map(|m| rec.get(m)).collect()
    });

    // State vector on the optimized circuit (flip-corrected): the same
    // ground-truth physics must also hold *after* the rewrite.
    let mut svo_rng = StateVecSimulator::new(StdRng::seed_from_u64(111));
    let svo = collect(nm, statevec_shots, || {
        let rec = svo_rng.run(opt);
        (0..nm).map(|m| rec.get(m) ^ flip[m]).collect()
    });

    let mut tsim = TableauSimulator::new(n, StdRng::seed_from_u64(202));
    let tb = collect(nm, shots, || {
        let rec = tsim.run(opt);
        (0..nm).map(|m| rec.get(m) ^ flip[m]).collect()
    });

    let frame = FrameSampler::new(opt);
    let fsamples = frame.sample(shots, &mut StdRng::seed_from_u64(303));
    let mut col = 0usize;
    let fr = collect(nm, shots, || {
        let rec = (0..nm).map(|m| fsamples.get(m, col) ^ flip[m]).collect();
        col += 1;
        rec
    });

    let sym = SymPhaseSampler::new(opt);
    let ssamples = sym.sample(shots, &mut StdRng::seed_from_u64(404));
    let mut col = 0usize;
    let sp = collect(nm, shots, || {
        let rec = (0..nm).map(|m| ssamples.get(m, col) ^ flip[m]).collect();
        col += 1;
        rec
    });

    assert_close(
        &svo,
        &sv,
        &format!("{label}: optimized statevec vs original"),
    );
    assert_close(&tb, &sv, &format!("{label}: optimized tableau vs original"));
    assert_close(&fr, &sv, &format!("{label}: optimized frame vs original"));
    assert_close(
        &sp,
        &sv,
        &format!("{label}: optimized symphase vs original"),
    );
}

#[test]
fn noisy_bell_distribution() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.noise(NoiseChannel::Depolarize1(0.2), &[0, 1]);
    c.measure_all();
    validate(&c, 40_000, 4_000, "noisy bell");
}

#[test]
fn random_clifford_with_mixed_noise() {
    let c = Circuit::parse(
        "\
H 0
S 1
CX 0 2
SQRT_X 1
X_ERROR(0.3) 0
CZ 1 2
Y_ERROR(0.15) 2
H 1
PAULI_CHANNEL_1(0.1,0.05,0.2) 1
M 0
CX 2 0
M 2 1
M 0
",
    )
    .expect("valid circuit");
    validate(&c, 40_000, 4_000, "mixed noise");
}

#[test]
fn mid_circuit_measurement_and_reset() {
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1);
    c.measure(0);
    c.reset(0);
    c.h(0);
    c.noise(NoiseChannel::XError(0.25), &[1]);
    c.measure_many(&[0, 1, 2]);
    validate(&c, 40_000, 4_000, "mid-circuit");
}

#[test]
fn feedback_circuit_distribution() {
    let mut c = Circuit::new(2);
    c.h(0);
    c.measure(0);
    c.feedback(symphase::circuit::PauliKind::X, -1, 1);
    c.noise(NoiseChannel::XError(0.1), &[1]);
    c.measure(1);
    validate(&c, 40_000, 4_000, "feedback");
}

#[test]
fn two_qubit_depolarizing_distribution() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.noise(NoiseChannel::Depolarize2(0.3), &[0, 1]);
    c.measure_all();
    validate(&c, 40_000, 4_000, "depolarize2");
}

#[test]
fn basis_measurements_and_resets_distribution() {
    // RX/RY initialization, noise that is visible only in some bases,
    // MX/MY/MRX readout — the dense simulator is the quantum-mechanical
    // ground truth for the conjugation reductions.
    let c = Circuit::parse(
        "\
RX 0
RY 1
H 2
CX 2 0
DEPOLARIZE1(0.2) 0 1
Z_ERROR(0.3) 2
MX 0
MY 1
MRX 2
MX 2
M 0 1
",
    )
    .expect("valid circuit");
    validate(&c, 40_000, 4_000, "basis measurements");
}

#[test]
fn mpp_distribution_on_entangled_state() {
    // Bell pair: XX = +1, ZZ = +1, YY = −1 deterministically; a Y error
    // on qubit 0 flips the XX and ZZ products but not YY. Repeated MPPs
    // must also be self-consistent (projective, not destructive).
    let c = Circuit::parse(
        "\
H 0
CX 0 1
Y_ERROR(0.2) 0
MPP X0*X1 Z0*Z1
MPP Y0*Y1
MPP X0*X1
M 0 1
",
    )
    .expect("valid circuit");
    validate(&c, 40_000, 4_000, "mpp");
}

#[test]
fn correlated_error_chain_distribution() {
    let c = Circuit::parse(
        "\
H 0
CX 0 1
E(0.3) X0 X1
ELSE_CORRELATED_ERROR(0.5) Z0 Y1
M 0 1
MX 0
M 1
",
    )
    .expect("valid circuit");
    validate(&c, 40_000, 4_000, "correlated chain");
}

#[test]
fn optimized_parity_round_distribution() {
    // Live noise (both X_ERRORs reach the detector), a fusable identity
    // pair, and a standalone Pauli that propagates into a flip of the
    // unreferenced record `M 0`.
    let c = Circuit::parse(
        "\
R 0 1 2
X_ERROR(0.2) 0
X_ERROR(0.1) 1
CX 0 1
M 1
DETECTOR rec[-1]
H 2
H 2
X 0
M 0
M 2
",
    )
    .expect("valid circuit");
    validate_optimized(&c, 40_000, 4_000, "optimized parity round");
}

#[test]
fn optimized_entangled_remeasure_distribution() {
    // The frame conjugates through `CX 1 0` onto both qubits, flipping
    // two deterministic re-measurements whose expressions inherit the
    // Bell pair's shared coin; the detector bars the first two records.
    let c = Circuit::parse(
        "\
H 0
CX 0 1
X_ERROR(0.3) 1
M 0 1
DETECTOR rec[-1] rec[-2]
X 1
CX 1 0
M 0
S 0
S_DAG 0
M 1
",
    )
    .expect("valid circuit");
    validate_optimized(&c, 40_000, 4_000, "optimized entangled remeasure");
}

#[test]
fn optimized_ancilla_recycling_distribution() {
    // Measure-reset ancilla recycling with a fourth-power rotation run
    // that fuses to identity, plus a propagated flip on `M 0`.
    let c = Circuit::parse(
        "\
R 2
X_ERROR(0.2) 0
CX 0 2
MR 2
DETECTOR rec[-1]
SQRT_X 1
SQRT_X 1
SQRT_X 1
SQRT_X 1
CX 1 2
MR 2
DETECTOR rec[-1]
X 0
M 0 1
",
    )
    .expect("valid circuit");
    validate_optimized(&c, 40_000, 4_000, "optimized ancilla recycling");
}

#[test]
fn pauli_channel_2_distribution() {
    let mut probs = [0.0f64; 15];
    probs[0] = 0.1; // IX
    probs[3] = 0.15; // XI
    probs[9] = 0.1; // YY
    probs[14] = 0.05; // ZZ
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.noise(NoiseChannel::PauliChannel2 { probs }, &[0, 1]);
    c.measure_all();
    c.measure_many_in(symphase::circuit::PauliKind::X, &[0, 1]);
    validate(&c, 40_000, 4_000, "pauli_channel_2");
}
