//! QEC workloads end to end: repetition and surface codes through the
//! SymPhase sampler, detectors, observables, and a decoder sanity check.

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::{
    mpp_phase_memory, repetition_code_memory, surface_code_memory, surface_code_memory_in,
    MemoryBasis, PhaseMemoryConfig, RepetitionCodeConfig, SurfaceCodeConfig,
};
use symphase::core::{PhaseRepr, SymPhaseSampler};
use symphase::frame::FrameSampler;
use symphase::tableau::record::{detector_matrix, observable_matrix};

#[test]
fn repetition_code_detectors_match_frame_records() {
    // The frame sampler produces raw records; detector evaluation on those
    // records must match SymPhase's directly sampled detectors in
    // distribution. Compare firing rates per detector.
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 5,
        rounds: 3,
        data_error: 0.05,
        measure_error: 0.02,
    });
    let shots = 60_000;

    let sym = SymPhaseSampler::new(&c);
    let batch = sym.sample_batch(shots, &mut StdRng::seed_from_u64(1));

    let frame = FrameSampler::new(&c);
    let records = frame.sample(shots, &mut StdRng::seed_from_u64(2));
    let dets = detector_matrix(&c, &records);
    let obs = observable_matrix(&c, &records);

    assert_eq!(batch.detectors.rows(), dets.rows());
    for d in 0..dets.rows() {
        let a = (0..shots).filter(|&s| batch.detectors.get(d, s)).count() as f64;
        let b = (0..shots).filter(|&s| dets.get(d, s)).count() as f64;
        let p = (a + b) / (2.0 * shots as f64);
        let tol = 6.0 * (2.0 * shots as f64 * p.max(0.001) * (1.0 - p).max(0.001)).sqrt() + 5.0;
        assert!((a - b).abs() < tol, "detector {d}: {a} vs {b}");
    }
    let a = (0..shots).filter(|&s| batch.observables.get(0, s)).count() as f64;
    let b = (0..shots).filter(|&s| obs.get(0, s)).count() as f64;
    assert!(
        (a - b).abs() < 6.0 * (shots as f64 * 0.25).sqrt() + 5.0,
        "observable: {a} vs {b}"
    );
}

#[test]
fn repetition_code_majority_decoder_suppresses_errors() {
    // Logical error rate must drop with distance (below the p=1/2
    // threshold of the repetition code).
    let shots = 40_000;
    let p = 0.08;
    let mut rates = Vec::new();
    for d in [3usize, 7] {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: d,
            rounds: 1,
            data_error: p,
            measure_error: 0.0,
        });
        let sym = SymPhaseSampler::new(&c);
        let samples = sym.sample(shots, &mut StdRng::seed_from_u64(33));
        let nm = sym.num_measurements();
        let mut errors = 0usize;
        for shot in 0..shots {
            let ones = (nm - d..nm).filter(|&m| samples.get(m, shot)).count();
            if ones * 2 > d {
                errors += 1;
            }
        }
        rates.push(errors as f64 / shots as f64);
    }
    assert!(
        rates[1] < rates[0] / 2.0,
        "distance 7 ({}) must beat distance 3 ({})",
        rates[1],
        rates[0]
    );
}

#[test]
fn surface_code_noiseless_rounds_are_silent() {
    let c = surface_code_memory(&SurfaceCodeConfig {
        distance: 3,
        rounds: 3,
        data_error: 0.0,
        measure_error: 0.0,
    });
    for repr in [PhaseRepr::Sparse, PhaseRepr::Dense] {
        let sym = SymPhaseSampler::with_repr(&c, repr);
        let batch = sym.sample_batch(2_000, &mut StdRng::seed_from_u64(7));
        assert_eq!(
            batch.detectors.count_ones(),
            0,
            "noiseless detectors fired ({repr:?})"
        );
        assert_eq!(
            batch.observables.count_ones(),
            0,
            "noiseless logical flipped ({repr:?})"
        );
    }
}

#[test]
fn surface_code_detector_rate_grows_with_noise() {
    let shots = 20_000;
    let rate_at = |p: f64| {
        let c = surface_code_memory(&SurfaceCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: p,
            measure_error: p,
        });
        let sym = SymPhaseSampler::new(&c);
        let batch = sym.sample_batch(shots, &mut StdRng::seed_from_u64(11));
        batch.detectors.count_ones() as f64 / (sym.num_detectors() * shots) as f64
    };
    let low = rate_at(0.002);
    let high = rate_at(0.02);
    assert!(low > 0.0, "some detectors must fire at p=0.002");
    assert!(
        high > 4.0 * low,
        "rate must grow roughly linearly: {low} vs {high}"
    );
}

#[test]
fn surface_code_detectors_match_frame_records() {
    let c = surface_code_memory(&SurfaceCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        measure_error: 0.01,
    });
    let shots = 40_000;
    let sym = SymPhaseSampler::new(&c);
    let batch = sym.sample_batch(shots, &mut StdRng::seed_from_u64(21));
    let frame = FrameSampler::new(&c);
    let records = frame.sample(shots, &mut StdRng::seed_from_u64(22));
    let dets = detector_matrix(&c, &records);
    for d in 0..dets.rows() {
        let a = (0..shots).filter(|&s| batch.detectors.get(d, s)).count() as f64;
        let b = (0..shots).filter(|&s| dets.get(d, s)).count() as f64;
        let p = (a + b) / (2.0 * shots as f64);
        let tol = 6.0 * (2.0 * shots as f64 * p.max(0.001) * (1.0 - p).max(0.001)).sqrt() + 5.0;
        assert!((a - b).abs() < tol, "detector {d}: {a} vs {b}");
    }
}

#[test]
fn memory_x_noiseless_rounds_are_silent() {
    // The memory-X experiment runs on RX/MX end to end; with no noise
    // every detector (X checks in round 0, pairwise afterwards, final
    // data comparisons) and the logical-X observable must be silent.
    let c = surface_code_memory_in(
        &SurfaceCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.0,
            measure_error: 0.0,
        },
        MemoryBasis::X,
    );
    for repr in [PhaseRepr::Sparse, PhaseRepr::Dense] {
        let sym = SymPhaseSampler::with_repr(&c, repr);
        let batch = sym.sample_batch(2_000, &mut StdRng::seed_from_u64(7));
        assert_eq!(
            batch.detectors.count_ones(),
            0,
            "detectors fired ({repr:?})"
        );
        assert_eq!(
            batch.observables.count_ones(),
            0,
            "logical flipped ({repr:?})"
        );
    }
}

#[test]
fn memory_x_detectors_match_frame_records() {
    let c = surface_code_memory_in(
        &SurfaceCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.01,
            measure_error: 0.01,
        },
        MemoryBasis::X,
    );
    let shots = 40_000;
    let sym = SymPhaseSampler::new(&c);
    let batch = sym.sample_batch(shots, &mut StdRng::seed_from_u64(23));
    let frame = FrameSampler::new(&c);
    let records = frame.sample(shots, &mut StdRng::seed_from_u64(24));
    let dets = detector_matrix(&c, &records);
    assert_eq!(batch.detectors.rows(), dets.rows());
    for d in 0..dets.rows() {
        let a = (0..shots).filter(|&s| batch.detectors.get(d, s)).count() as f64;
        let b = (0..shots).filter(|&s| dets.get(d, s)).count() as f64;
        let p = (a + b) / (2.0 * shots as f64);
        let tol = 6.0 * (2.0 * shots as f64 * p.max(0.001) * (1.0 - p).max(0.001)).sqrt() + 5.0;
        assert!((a - b).abs() < tol, "detector {d}: {a} vs {b}");
    }
}

#[test]
fn mpp_phase_memory_pipeline_end_to_end() {
    // Noiseless: silent.
    let clean = mpp_phase_memory(&PhaseMemoryConfig {
        distance: 5,
        rounds: 3,
        data_error: 0.0,
        pair_error: 0.0,
    });
    let sym = SymPhaseSampler::new(&clean);
    let batch = sym.sample_batch(2_000, &mut StdRng::seed_from_u64(31));
    assert_eq!(batch.detectors.count_ones(), 0);
    assert_eq!(batch.observables.count_ones(), 0);

    // Noisy (independent Z + correlated ZZ chain): SymPhase detector
    // rates match detector evaluation over frame-sampled records, and
    // the DEM contains the correlated pair mechanisms with their
    // conditional marginals.
    let cfg = PhaseMemoryConfig {
        distance: 5,
        rounds: 3,
        data_error: 0.02,
        pair_error: 0.01,
    };
    let noisy = mpp_phase_memory(&cfg);
    let shots = 40_000;
    let sym = SymPhaseSampler::new(&noisy);
    let batch = sym.sample_batch(shots, &mut StdRng::seed_from_u64(32));
    let frame = FrameSampler::new(&noisy);
    let records = frame.sample(shots, &mut StdRng::seed_from_u64(33));
    let dets = detector_matrix(&noisy, &records);
    for d in 0..dets.rows() {
        let a = (0..shots).filter(|&s| batch.detectors.get(d, s)).count() as f64;
        let b = (0..shots).filter(|&s| dets.get(d, s)).count() as f64;
        let p = (a + b) / (2.0 * shots as f64);
        let tol = 6.0 * (2.0 * shots as f64 * p.max(0.001) * (1.0 - p).max(0.001)).sqrt() + 5.0;
        assert!((a - b).abs() < tol, "detector {d}: {a} vs {b}");
    }

    let dem = sym.detector_error_model();
    assert!(!dem.is_empty());
    // The first chain element fires at its unconditional probability; a
    // later element's marginal carries the (1-p)·p conditioning of the
    // at-most-one-burst chain.
    let conditional = cfg.pair_error * (1.0 - cfg.pair_error);
    assert!(
        dem.errors()
            .iter()
            .any(|e| (e.probability - conditional).abs() < 1e-9),
        "expected a conditional chain marginal {conditional} in the DEM"
    );
}

#[test]
fn phase_reprs_agree_exactly_on_qec_circuit() {
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 6,
        rounds: 5,
        data_error: 0.03,
        measure_error: 0.01,
    });
    let a = SymPhaseSampler::with_repr(&c, PhaseRepr::Sparse);
    let b = SymPhaseSampler::with_repr(&c, PhaseRepr::Dense);
    assert_eq!(a.measurement_exprs(), b.measurement_exprs());
    for d in 0..a.num_detectors() {
        assert_eq!(a.detector_expr(d), b.detector_expr(d));
    }
}
