//! Round-trip property tests of the shot output formats on ragged
//! shapes: 0 rows, 0 shots, non-multiple-of-8 rows, multi-word shot
//! counts.
//!
//! Every writer is paired with a reader (`symphase::sampler_api::formats`)
//! and `write ∘ read` must be the identity on the record matrices —
//! except `counts`, whose round trip is checked against independently
//! computed pattern counts (aggregation is lossy by design: shot order).

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use symphase::bitmat::BitMatrix;
use symphase::sampler_api::formats::{
    read_01, read_01_dets, read_b8, read_counts, read_dets, read_hits, RecordSource, SampleFormat,
};
use symphase::sampler_api::{SampleBatch, ShotSpec};

/// A random `rows × shots` bit matrix from a seed.
fn random_matrix(rows: usize, shots: usize, rng: &mut StdRng) -> BitMatrix {
    let mut m = BitMatrix::zeros(rows, shots);
    for r in 0..rows {
        for c in 0..shots {
            if rng.random_bool(0.3) {
                m.set(r, c, true);
            }
        }
    }
    m
}

/// Runs `format` over `batch` delivered as chunks split at a word-aligned
/// boundary (exercising the multi-chunk path) and returns the bytes.
fn write_chunked(format: SampleFormat, source: RecordSource, batch: &SampleBatch) -> Vec<u8> {
    let mut out = Vec::new();
    let mut sink = format.sink(&mut out, source);
    let spec = ShotSpec {
        num_measurements: batch.measurements.rows(),
        num_detectors: batch.detectors.rows(),
        num_observables: batch.observables.rows(),
        shots: batch.shots(),
    };
    sink.begin(&spec).unwrap();
    // Split into two chunks at a word boundary when possible (sinks
    // consume chunks independently; `start` only orders them).
    let split = (batch.shots() / 2) & !63;
    if split == 0 || split == batch.shots() {
        sink.chunk(batch, 0).unwrap();
    } else {
        let (a, b) = split_batch(batch, split);
        sink.chunk(&a, 0).unwrap();
        sink.chunk(&b, split).unwrap();
    }
    sink.finish().unwrap();
    drop(sink);
    out
}

/// Splits `batch` columns into `[0, at)` and `[at, shots)` copies.
fn split_batch(batch: &SampleBatch, at: usize) -> (SampleBatch, SampleBatch) {
    let copy = |m: &BitMatrix, from: usize, to: usize| {
        let mut out = BitMatrix::zeros(m.rows(), to - from);
        for r in 0..m.rows() {
            for c in from..to {
                if m.get(r, c) {
                    out.set(r, c - from, true);
                }
            }
        }
        out
    };
    let part = |from: usize, to: usize| SampleBatch {
        measurements: copy(&batch.measurements, from, to),
        detectors: copy(&batch.detectors, from, to),
        observables: copy(&batch.observables, from, to),
    };
    (part(0, at), part(at, batch.shots()))
}

/// The shape strategy: ragged on purpose — zero rows, zero shots, row
/// counts straddling byte boundaries, shot counts straddling words.
fn shape() -> impl Strategy<Value = (usize, usize, u64)> {
    (
        prop_oneof![Just(0usize), 1usize..18],
        prop_oneof![Just(0usize), 1usize..200],
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain01_round_trips(shape in shape()) {
        let (rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: m.clone(),
            detectors: BitMatrix::zeros(0, shots),
            observables: BitMatrix::zeros(0, shots),
        };
        let bytes = write_chunked(SampleFormat::Plain01, RecordSource::Measurements, &batch);
        let text = std::str::from_utf8(&bytes).unwrap();
        prop_assert_eq!(text.lines().count(), shots);
        prop_assert_eq!(read_01(text, rows).unwrap(), m);
    }

    #[test]
    fn b8_round_trips(shape in shape()) {
        let (rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: m.clone(),
            detectors: BitMatrix::zeros(0, shots),
            observables: BitMatrix::zeros(0, shots),
        };
        let bytes = write_chunked(SampleFormat::B8, RecordSource::Measurements, &batch);
        prop_assert_eq!(bytes.len(), rows.div_ceil(8) * shots);
        let back = read_b8(&bytes, rows).unwrap();
        if rows == 0 {
            // Zero-row shots serialize to zero bytes: the count is lost.
            prop_assert_eq!(back.cols(), 0);
        } else {
            prop_assert_eq!(back, m);
        }
    }

    #[test]
    fn hits_round_trips(shape in shape()) {
        let (rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: m.clone(),
            detectors: BitMatrix::zeros(0, shots),
            observables: BitMatrix::zeros(0, shots),
        };
        let bytes = write_chunked(SampleFormat::Hits, RecordSource::Measurements, &batch);
        let text = std::str::from_utf8(&bytes).unwrap();
        prop_assert_eq!(read_hits(text, rows).unwrap(), m);
    }

    #[test]
    fn dets_round_trips(shape in shape()) {
        let (det_rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let obs_rows = (seed % 4) as usize;
        let dets = random_matrix(det_rows, shots, &mut rng);
        let obs = random_matrix(obs_rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: BitMatrix::zeros(0, shots),
            detectors: dets.clone(),
            observables: obs.clone(),
        };
        let bytes = write_chunked(
            SampleFormat::Dets,
            RecordSource::DetectorsAndObservables,
            &batch,
        );
        let text = std::str::from_utf8(&bytes).unwrap();
        let (d, o) = read_dets(text, det_rows, obs_rows).unwrap();
        prop_assert_eq!(d, dets);
        prop_assert_eq!(o, obs);
    }

    #[test]
    fn combined_01_round_trips(shape in shape()) {
        let (det_rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let obs_rows = (seed % 3) as usize;
        let dets = random_matrix(det_rows, shots, &mut rng);
        let obs = random_matrix(obs_rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: BitMatrix::zeros(0, shots),
            detectors: dets.clone(),
            observables: obs.clone(),
        };
        let bytes = write_chunked(
            SampleFormat::Plain01,
            RecordSource::DetectorsAndObservables,
            &batch,
        );
        let text = std::str::from_utf8(&bytes).unwrap();
        let (d, o) = read_01_dets(text, det_rows, obs_rows).unwrap();
        prop_assert_eq!(d, dets);
        prop_assert_eq!(o, obs);
    }

    #[test]
    fn counts_round_trips_against_independent_aggregation(shape in shape()) {
        let (rows, shots, seed) = shape;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_matrix(rows, shots, &mut rng);
        let batch = SampleBatch {
            measurements: m.clone(),
            detectors: BitMatrix::zeros(0, shots),
            observables: BitMatrix::zeros(0, shots),
        };
        let bytes = write_chunked(SampleFormat::Counts, RecordSource::Measurements, &batch);
        let text = std::str::from_utf8(&bytes).unwrap();
        let parsed = read_counts(text).unwrap();
        // Aggregate independently.
        let mut expected: BTreeMap<String, u64> = BTreeMap::new();
        for shot in 0..shots {
            let key: String = (0..rows)
                .map(|r| if m.get(r, shot) { '1' } else { '0' })
                .collect();
            *expected.entry(key).or_insert(0) += 1;
        }
        prop_assert_eq!(parsed, expected);
        let total: u64 = read_counts(text).unwrap().values().sum();
        prop_assert_eq!(total, shots as u64);
    }
}

/// The `b8` transpose fast path across word boundaries: row counts
/// around and past 64 make each shot span multiple transposed words, so
/// the per-word byte truncation is exercised.
#[test]
fn b8_round_trips_on_multi_word_rows() {
    for rows in [63usize, 64, 65, 72, 130, 200] {
        for shots in [1usize, 63, 64, 65, 129] {
            let mut rng = StdRng::seed_from_u64((rows * 1000 + shots) as u64);
            let m = random_matrix(rows, shots, &mut rng);
            let batch = SampleBatch {
                measurements: m.clone(),
                detectors: BitMatrix::zeros(0, shots),
                observables: BitMatrix::zeros(0, shots),
            };
            let bytes = write_chunked(SampleFormat::B8, RecordSource::Measurements, &batch);
            assert_eq!(bytes.len(), rows.div_ceil(8) * shots, "{rows}x{shots}");
            assert_eq!(read_b8(&bytes, rows).unwrap(), m, "{rows}x{shots}");
        }
    }
}

/// The streamed CLI path and the format writers agree: sampling straight
/// into a `b8` sink then reading it back equals the in-memory batch.
#[test]
fn sampled_b8_stream_round_trips() {
    use symphase::backend::{build_sampler, SimConfig};
    use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
    let circuit = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.05,
        measure_error: 0.05,
    });
    let sampler = build_sampler(&circuit, &SimConfig::new()).unwrap();
    let shots = 300;
    let mut bytes = Vec::new();
    {
        let mut sink = SampleFormat::B8.sink(&mut bytes, RecordSource::Measurements);
        sampler.sample_to(shots, 17, &mut *sink).unwrap();
    }
    let expected = sampler.sample_seeded(shots, 17);
    assert_eq!(
        read_b8(&bytes, sampler.num_measurements()).unwrap(),
        expected.measurements
    );
}
