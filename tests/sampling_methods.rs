//! Equivalence of the three Sampling strategies (Hybrid, SparseRows,
//! DenseMatMul) and of the parser → sampler pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::fig3c_circuit;
use symphase::circuit::{Circuit, NoiseChannel};
use symphase::core::{SamplingMethod, SymPhaseSampler};

/// SparseRows and DenseMatMul consume randomness identically, so equal
/// seeds give bit-identical samples.
#[test]
fn sparse_and_dense_bit_identical() {
    let c = fig3c_circuit(24, 0.01, 5);
    let s = SymPhaseSampler::new(&c);
    let a = s.sample_with_method(
        9_000,
        &mut StdRng::seed_from_u64(1),
        SamplingMethod::SparseRows,
    );
    let b = s.sample_with_method(
        9_000,
        &mut StdRng::seed_from_u64(1),
        SamplingMethod::DenseMatMul,
    );
    assert_eq!(a, b);
}

/// Hybrid consumes randomness differently, so compare distributions: the
/// per-measurement one-rates must match SparseRows within 6σ.
#[test]
fn hybrid_matches_sparse_distribution() {
    let c = fig3c_circuit(20, 0.05, 9);
    let s = SymPhaseSampler::new(&c);
    let shots = 60_000;
    let a = s.sample_with_method(shots, &mut StdRng::seed_from_u64(2), SamplingMethod::Hybrid);
    let b = s.sample_with_method(
        shots,
        &mut StdRng::seed_from_u64(3),
        SamplingMethod::SparseRows,
    );
    for m in 0..s.num_measurements() {
        let ra = (0..shots).filter(|&i| a.get(m, i)).count() as f64 / shots as f64;
        let rb = (0..shots).filter(|&i| b.get(m, i)).count() as f64 / shots as f64;
        let p = (ra + rb) / 2.0;
        let tol = 6.0 * (2.0 * p.max(0.01) * (1.0 - p).max(0.01) / shots as f64).sqrt() + 1e-9;
        assert!((ra - rb).abs() < tol, "measurement {m}: {ra} vs {rb}");
    }
}

/// Hybrid on deterministic fault patterns is exact: p = 1 errors always
/// flip, p = 0 never do.
#[test]
fn hybrid_exact_on_certain_faults() {
    let mut c = Circuit::new(2);
    c.noise(NoiseChannel::XError(1.0), &[0]);
    c.noise(NoiseChannel::XError(0.0), &[1]);
    c.measure_all();
    let s = SymPhaseSampler::new(&c);
    let out = s.sample_with_method(300, &mut StdRng::seed_from_u64(4), SamplingMethod::Hybrid);
    for shot in 0..300 {
        assert!(out.get(0, shot));
        assert!(!out.get(1, shot));
    }
}

/// Multi-batch sampling (shots > the internal 4096 batch) stitches windows
/// correctly: a deterministic pattern must hold across the whole width.
#[test]
fn batching_is_seamless() {
    let mut c = Circuit::new(2);
    c.x(0);
    c.noise(NoiseChannel::YError(1.0), &[1]);
    c.measure_all();
    let s = SymPhaseSampler::new(&c);
    for method in [
        SamplingMethod::Hybrid,
        SamplingMethod::SparseRows,
        SamplingMethod::DenseMatMul,
    ] {
        let shots = 4096 * 2 + 1234; // forces three windows, last partial
        let out = s.sample_with_method(shots, &mut StdRng::seed_from_u64(5), method);
        assert_eq!(out.cols(), shots);
        for shot in 0..shots {
            assert!(out.get(0, shot), "{method:?} lost shot {shot}");
            assert!(out.get(1, shot), "{method:?} lost shot {shot}");
        }
    }
}

/// Text-format pipeline: parse → sample → check a hand-computable rate.
#[test]
fn parse_to_sample_pipeline() {
    let c = Circuit::parse("H 0\nCX 0 1\nX_ERROR(0.5) 1\nM 0 1\n").expect("parses");
    let s = SymPhaseSampler::new(&c);
    let shots = 80_000;
    let out = s.sample(shots, &mut StdRng::seed_from_u64(6));
    // m0 fair; m0 ⊕ m1 = fault fires half the time.
    let disagree = (0..shots)
        .filter(|&i| out.get(0, i) != out.get(1, i))
        .count() as f64;
    assert!((disagree - shots as f64 / 2.0).abs() < 6.0 * (shots as f64 / 4.0).sqrt());
}
