//! Equivalence of the Sampling strategies (Auto, Hybrid, SparseRows,
//! DenseMatMul) and of the parser → sampler pipeline.
//!
//! The contract under test: every method consumes the RNG stream
//! identically, so a fixed seed produces **bit-identical** samples
//! whatever kernel computes `M · B` — and `SamplingMethod::Auto` only
//! ever changes which kernel that is.

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::circuit::generators::{
    fig3c_circuit, noisy_ghz_chain, repetition_code_memory, surface_code_memory,
    RepetitionCodeConfig, SurfaceCodeConfig,
};
use symphase::circuit::{Circuit, NoiseChannel};
use symphase::core::{SamplingMethod, SymPhaseSampler};

/// Circuits spanning every symbol-group kind and both sides of the Auto
/// heuristic (dense mixing, QEC-sparse, heavy noise, p > 1/2 faults).
fn representative_circuits() -> Vec<(&'static str, Circuit)> {
    let mut channels = Circuit::new(4);
    channels.noise(NoiseChannel::XError(0.7), &[0]); // complement path
    channels.noise(NoiseChannel::Depolarize2(0.2), &[0, 1]);
    channels.noise(
        NoiseChannel::PauliChannel1 {
            px: 0.1,
            py: 0.05,
            pz: 0.2,
        },
        &[2],
    );
    channels.noise(NoiseChannel::Depolarize1(0.3), &[3]);
    channels.h(0);
    channels.cx(0, 1);
    channels.measure_many(&[0, 1, 2, 3]);

    // The basis-general surface: PAULI_CHANNEL_2 and a correlated
    // E/ELSE chain (both have their own hybrid draw paths that must stay
    // in RNG lockstep with the assignment-matrix draw), plus MPP and
    // X/Y-basis measurements feeding the record.
    let mut correlated = Circuit::new(3);
    correlated.reset_in(symphase::circuit::PauliKind::X, 0);
    let mut probs = [0.0f64; 15];
    probs[3] = 0.2; // XI
    probs[10] = 0.1; // YZ
    correlated.noise(NoiseChannel::PauliChannel2 { probs }, &[0, 1]);
    correlated.correlated_error(
        0.3,
        &[
            (symphase::circuit::PauliKind::X, 0),
            (symphase::circuit::PauliKind::Z, 1),
        ],
    );
    correlated.else_correlated_error(0.5, &[(symphase::circuit::PauliKind::Y, 2)]);
    correlated.measure_pauli_product(&[
        (symphase::circuit::PauliKind::X, 0),
        (symphase::circuit::PauliKind::Z, 1),
    ]);
    correlated.measure_in(symphase::circuit::PauliKind::X, 0);
    correlated.measure_in(symphase::circuit::PauliKind::Y, 2);
    correlated.measure_all();

    vec![
        ("fig3c", fig3c_circuit(20, 0.01, 5)),
        (
            "repetition",
            repetition_code_memory(&RepetitionCodeConfig {
                distance: 5,
                rounds: 4,
                data_error: 0.01,
                measure_error: 0.005,
            }),
        ),
        (
            "surface",
            surface_code_memory(&SurfaceCodeConfig {
                distance: 3,
                rounds: 3,
                data_error: 0.002,
                measure_error: 0.001,
            }),
        ),
        ("channels", channels),
        ("correlated", correlated),
        ("ghz_chain", noisy_ghz_chain(120, 0.01)),
    ]
}

/// All four methods (including `Auto`) sample bit-identical measurement
/// matrices from equal seeds, across shot-batch boundaries.
#[test]
fn all_methods_bit_identical() {
    let shots = 4096 + 700; // two windows, last one partial
    for (name, c) in representative_circuits() {
        let s = SymPhaseSampler::new(&c);
        let reference = s.sample_with_method(
            shots,
            &mut StdRng::seed_from_u64(11),
            SamplingMethod::SparseRows,
        );
        for method in SamplingMethod::ALL {
            let out = s.sample_with_method(shots, &mut StdRng::seed_from_u64(11), method);
            assert_eq!(
                out, reference,
                "{name}: {method:?} diverged from SparseRows"
            );
        }
    }
}

/// The full batch path (measurements + detectors + observables) is also
/// method-independent bit for bit.
#[test]
fn batch_methods_bit_identical() {
    let shots = 4096 + 100;
    for (name, c) in representative_circuits() {
        let s = SymPhaseSampler::new(&c);
        let mut reference = symphase::core::SampleBatch::zeros(
            s.num_measurements(),
            s.num_detectors(),
            s.num_observables(),
            shots,
        );
        s.sample_batch_with_method(
            &mut reference,
            &mut StdRng::seed_from_u64(13),
            SamplingMethod::SparseRows,
        );
        for method in SamplingMethod::ALL {
            let mut batch = symphase::core::SampleBatch::zeros(
                s.num_measurements(),
                s.num_detectors(),
                s.num_observables(),
                shots,
            );
            s.sample_batch_with_method(&mut batch, &mut StdRng::seed_from_u64(13), method);
            assert_eq!(batch, reference, "{name}: {method:?} batch diverged");
        }
    }
}

/// `Auto` resolution is a deterministic pure function of the circuit,
/// never `Auto` itself, and lands on the expected side for the
/// representative workloads. (The circuit-statistics estimate
/// `SamplingMethod::resolve` and the sampler's matrix-aware
/// `resolved_method` are different layers; each must be deterministic.)
#[test]
fn auto_resolution_is_deterministic_and_pinned() {
    for (name, c) in representative_circuits() {
        let estimate = SamplingMethod::Auto.resolve(&c);
        assert_ne!(estimate, SamplingMethod::Auto, "{name}: must resolve");
        for _ in 0..3 {
            assert_eq!(SamplingMethod::Auto.resolve(&c), estimate, "{name}");
        }
        let first = SymPhaseSampler::new(&c).resolved_method();
        assert_ne!(first, SamplingMethod::Auto, "{name}: must resolve");
        // Rebuilding the sampler (and round-tripping the circuit through
        // text) resolves identically: the pick reads only the circuit.
        let reparsed = Circuit::parse(&c.to_string()).expect("round-trip");
        assert_eq!(
            SymPhaseSampler::new(&reparsed).resolved_method(),
            first,
            "{name}"
        );
        for m in [
            SamplingMethod::Hybrid,
            SamplingMethod::SparseRows,
            SamplingMethod::DenseMatMul,
        ] {
            assert_eq!(m.resolve(&c), m, "{name}: fixed methods are fixed points");
        }
    }
    // Pin the crossover: dense (determined) measurement rows → blocked
    // dense product; QEC-style rare faults → event-driven hybrid;
    // frequent faults → sparse rows.
    let ghz = SymPhaseSampler::new(&noisy_ghz_chain(200, 0.01));
    assert_eq!(ghz.resolved_method(), SamplingMethod::DenseMatMul);
    let rep = SymPhaseSampler::new(&repetition_code_memory(&RepetitionCodeConfig {
        distance: 7,
        rounds: 7,
        data_error: 0.001,
        measure_error: 0.001,
    }));
    assert_eq!(rep.resolved_method(), SamplingMethod::Hybrid);
    let mut heavy = Circuit::new(2);
    heavy.noise(NoiseChannel::XError(0.25), &[0, 1]);
    heavy.h(0);
    heavy.measure_many(&[0, 1]);
    assert_eq!(
        SamplingMethod::Auto.resolve(&heavy),
        SamplingMethod::SparseRows
    );
    assert_eq!(
        SymPhaseSampler::new(&heavy).resolved_method(),
        SamplingMethod::SparseRows
    );
}

/// SparseRows and DenseMatMul consume randomness identically, so equal
/// seeds give bit-identical samples.
#[test]
fn sparse_and_dense_bit_identical() {
    let c = fig3c_circuit(24, 0.01, 5);
    let s = SymPhaseSampler::new(&c);
    let a = s.sample_with_method(
        9_000,
        &mut StdRng::seed_from_u64(1),
        SamplingMethod::SparseRows,
    );
    let b = s.sample_with_method(
        9_000,
        &mut StdRng::seed_from_u64(1),
        SamplingMethod::DenseMatMul,
    );
    assert_eq!(a, b);
}

/// Hybrid consumes randomness differently, so compare distributions: the
/// per-measurement one-rates must match SparseRows within 6σ.
#[test]
fn hybrid_matches_sparse_distribution() {
    let c = fig3c_circuit(20, 0.05, 9);
    let s = SymPhaseSampler::new(&c);
    let shots = 60_000;
    let a = s.sample_with_method(shots, &mut StdRng::seed_from_u64(2), SamplingMethod::Hybrid);
    let b = s.sample_with_method(
        shots,
        &mut StdRng::seed_from_u64(3),
        SamplingMethod::SparseRows,
    );
    for m in 0..s.num_measurements() {
        let ra = (0..shots).filter(|&i| a.get(m, i)).count() as f64 / shots as f64;
        let rb = (0..shots).filter(|&i| b.get(m, i)).count() as f64 / shots as f64;
        let p = (ra + rb) / 2.0;
        let tol = 6.0 * (2.0 * p.max(0.01) * (1.0 - p).max(0.01) / shots as f64).sqrt() + 1e-9;
        assert!((ra - rb).abs() < tol, "measurement {m}: {ra} vs {rb}");
    }
}

/// Hybrid on deterministic fault patterns is exact: p = 1 errors always
/// flip, p = 0 never do.
#[test]
fn hybrid_exact_on_certain_faults() {
    let mut c = Circuit::new(2);
    c.noise(NoiseChannel::XError(1.0), &[0]);
    c.noise(NoiseChannel::XError(0.0), &[1]);
    c.measure_all();
    let s = SymPhaseSampler::new(&c);
    let out = s.sample_with_method(300, &mut StdRng::seed_from_u64(4), SamplingMethod::Hybrid);
    for shot in 0..300 {
        assert!(out.get(0, shot));
        assert!(!out.get(1, shot));
    }
}

/// Multi-batch sampling (shots > the internal 4096 batch) stitches windows
/// correctly: a deterministic pattern must hold across the whole width.
#[test]
fn batching_is_seamless() {
    let mut c = Circuit::new(2);
    c.x(0);
    c.noise(NoiseChannel::YError(1.0), &[1]);
    c.measure_all();
    let s = SymPhaseSampler::new(&c);
    for method in [
        SamplingMethod::Hybrid,
        SamplingMethod::SparseRows,
        SamplingMethod::DenseMatMul,
    ] {
        let shots = 4096 * 2 + 1234; // forces three windows, last partial
        let out = s.sample_with_method(shots, &mut StdRng::seed_from_u64(5), method);
        assert_eq!(out.cols(), shots);
        for shot in 0..shots {
            assert!(out.get(0, shot), "{method:?} lost shot {shot}");
            assert!(out.get(1, shot), "{method:?} lost shot {shot}");
        }
    }
}

/// Text-format pipeline: parse → sample → check a hand-computable rate.
#[test]
fn parse_to_sample_pipeline() {
    let c = Circuit::parse("H 0\nCX 0 1\nX_ERROR(0.5) 1\nM 0 1\n").expect("parses");
    let s = SymPhaseSampler::new(&c);
    let shots = 80_000;
    let out = s.sample(shots, &mut StdRng::seed_from_u64(6));
    // m0 fair; m0 ⊕ m1 = fault fires half the time.
    let disagree = (0..shots)
        .filter(|&i| out.get(0, i) != out.get(1, i))
        .count() as f64;
    assert!((disagree - shots as f64 / 2.0).abs() < 6.0 * (shots as f64 / 4.0).sqrt());
}
