//! Fixture-corpus tests for `symphase lint`.
//!
//! Every diagnostic code in the catalog has a positive fixture
//! (`tests/lint/SP###_pos.stim`, which must fire the code) and a negative
//! fixture (`SP###_neg.stim`, structurally similar but clean for that
//! code). On top of the corpus:
//!
//! * every parseable fixture runs the removal/provenance verification of
//!   `analysis::verify` — a dead-code finding that changes the symbolic
//!   matrices fails the build;
//! * the built-in generators must be lint-clean (the analyzer found — and
//!   we fixed — genuinely vacuous final detectors in `phase-memory`);
//! * full lint on a million-round memory circuit must run in O(file).

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use symphase::analysis::{self, verify, AnalyzeConfig, Diagnostic, Severity, CODES};
use symphase::circuit::generators::{
    mpp_phase_memory, repetition_code_memory, surface_code_memory_in, MemoryBasis,
    PhaseMemoryConfig, RepetitionCodeConfig, SurfaceCodeConfig,
};
use symphase::circuit::Circuit;
use symphase::core::DetectorErrorModel;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The file extension and analysis driver a code's fixtures use. Most
/// codes lint circuit text; the DEM-level codes run the `analyze` path
/// (`SP014` needs a hand-written `.dem` — extraction always merges
/// duplicate signatures, so no circuit can produce one).
fn fixture_ext(code: &str) -> &'static str {
    if code == "SP014" {
        "dem"
    } else {
        "stim"
    }
}

fn diags_for(code: &str, kind: &str) -> Vec<Diagnostic> {
    let name = format!("{code}_{kind}.{}", fixture_ext(code));
    match code {
        "SP014" => {
            let dem = DetectorErrorModel::parse(&fixture(&name)).expect("fixture parses");
            analysis::analyze_model(dem, &AnalyzeConfig::default())
                .expect("fixture analyzes")
                .diagnostics
        }
        "SP012" | "SP013" | "SP015" => {
            let circuit = Circuit::parse(&fixture(&name)).expect("fixture parses");
            analysis::analyze_dem(&circuit)
        }
        _ => analysis::lint_text(&fixture(&name)),
    }
}

#[test]
fn every_code_has_positive_and_negative_fixtures() {
    for (code, _, _) in CODES {
        for kind in ["pos", "neg"] {
            let path = fixture_dir().join(format!("{code}_{kind}.{}", fixture_ext(code)));
            assert!(path.exists(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn positive_fixtures_fire_their_code() {
    for (code, _, _) in CODES {
        let diags = diags_for(code, "pos");
        assert!(
            diags.iter().any(|d| d.code == *code),
            "{code} positive fixture did not fire: {diags:?}"
        );
        // Positive findings carry a line number (fixture-level findings
        // like SP005 and the DEM-level codes are exempt) and the catalog
        // help text.
        for d in diags.iter().filter(|d| d.code == *code) {
            assert!(!d.help.is_empty());
            assert!(
                d.line.is_some() || d.path.is_empty(),
                "{code}: path-anchored finding lost its line: {d:?}"
            );
        }
    }
}

#[test]
fn negative_fixtures_stay_clean() {
    for (code, _, _) in CODES {
        let diags = diags_for(code, "neg");
        assert!(
            diags.iter().all(|d| d.code != *code),
            "{code} negative fixture fired its own code: {diags:?}"
        );
        // Negative fixtures are valid inputs: no error-severity
        // findings at all.
        assert!(
            diags.iter().all(|d| d.severity != Severity::Error),
            "{code} negative fixture is not a valid circuit: {diags:?}"
        );
    }
}

/// Acceptance gate of the tentpole: remove every `SP001` finding and the
/// symbolic measurement/detector/observable matrices must be identical;
/// every `SP002` finding's symbols must be absent from all detector and
/// observable rows. Runs over the whole corpus (parse failures — the
/// SP000/SP006/SP007 positives — are skipped, there is nothing to check).
#[test]
fn dead_code_findings_verify_across_the_corpus() {
    let mut checked = 0;
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "stim") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("fixture read");
        let Ok(circuit) = Circuit::parse(&text) else {
            continue;
        };
        verify::dead_gate_check(&circuit)
            .unwrap_or_else(|e| panic!("{}: dead-gate verification failed: {e}", path.display()));
        verify::dead_noise_check(&circuit)
            .unwrap_or_else(|e| panic!("{}: dead-noise verification failed: {e}", path.display()));
        checked += 1;
    }
    assert!(
        checked >= 18,
        "corpus shrank: only {checked} parseable fixtures"
    );
}

#[test]
fn builtin_generators_are_lint_clean() {
    let mut circuits: Vec<(String, Circuit)> = Vec::new();
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        circuits.push((
            format!("surface-code {basis:?}"),
            surface_code_memory_in(
                &SurfaceCodeConfig {
                    distance: 3,
                    rounds: 5,
                    data_error: 0.001,
                    measure_error: 0.002,
                },
                basis,
            ),
        ));
    }
    circuits.push((
        "repetition-code".into(),
        repetition_code_memory(&RepetitionCodeConfig {
            distance: 5,
            rounds: 6,
            data_error: 0.01,
            measure_error: 0.005,
        }),
    ));
    circuits.push((
        "phase-memory".into(),
        mpp_phase_memory(&PhaseMemoryConfig {
            distance: 4,
            rounds: 5,
            data_error: 0.01,
            pair_error: 0.002,
        }),
    ));
    for (name, circuit) in circuits {
        let diags = analysis::lint(&circuit);
        assert!(diags.is_empty(), "{name} is not lint-clean: {diags:?}");
    }
}

/// Acceptance gate: full lint (liveness fixpoint + structural walk +
/// clamped symbolic pass) over a `REPEAT 1_000_000` memory circuit is
/// O(file) — the body is analyzed to a fixpoint, never unrolled.
#[test]
fn lint_is_o_file_on_a_million_round_circuit() {
    let circuit = repetition_code_memory(&RepetitionCodeConfig {
        distance: 9,
        rounds: 1_000_000,
        data_error: 0.001,
        measure_error: 0.001,
    });
    let start = Instant::now();
    let diags = analysis::lint(&circuit);
    let elapsed = start.elapsed();
    assert!(diags.is_empty(), "{diags:?}");
    assert!(
        elapsed < Duration::from_secs(5),
        "lint took {elapsed:?} on a million-round circuit — not O(file)"
    );
}
