//! `symphase analyze` end to end: pinned circuit distances for the
//! built-in generators, verified fault sets, hypergraph-lint cleanliness,
//! the broken-verifier rollback pin, and DEM round-trips.

use symphase::analysis::{
    analyze_circuit, analyze_dem, analyze_model, AnalyzeConfig, Distance, Payload, WITHDRAWN_CODE,
};
use symphase::circuit::generators::{
    mpp_phase_memory, repetition_code_memory, surface_code_memory_in, MemoryBasis,
    PhaseMemoryConfig, RepetitionCodeConfig, SurfaceCodeConfig,
};
use symphase::circuit::Circuit;
use symphase::core::{DetectorErrorModel, SymPhaseSampler};

fn distance_of(c: &Circuit, max_weight: usize) -> Distance {
    let report = analyze_circuit(
        c,
        &AnalyzeConfig {
            max_weight,
            ..AnalyzeConfig::default()
        },
    )
    .expect("analyzable");
    assert!(!report.withdrawn, "{:?}", report.diagnostics);
    if let Distance::UpperBound { .. } = &report.distance {
        assert!(report.verified, "fault set must be discharged by injection");
    }
    report.distance
}

fn exact_distance(c: &Circuit, max_weight: usize) -> usize {
    match distance_of(c, max_weight) {
        Distance::UpperBound { fault_set } => fault_set.weight(),
        other => panic!("expected a fault set within weight {max_weight}: {other:?}"),
    }
}

#[test]
fn surface_code_distance_is_pinned_both_bases() {
    for (d, rounds) in [(3usize, 2usize), (5, 2)] {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let c = surface_code_memory_in(
                &SurfaceCodeConfig {
                    distance: d,
                    rounds,
                    data_error: 0.001,
                    measure_error: 0.0,
                },
                basis,
            );
            assert_eq!(
                exact_distance(&c, d + 1),
                d,
                "surface d={d} basis={basis:?}"
            );
        }
    }
}

#[test]
fn surface_code_with_measure_noise_keeps_distance() {
    let c = surface_code_memory_in(
        &SurfaceCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.001,
            measure_error: 0.002,
        },
        MemoryBasis::Z,
    );
    assert_eq!(exact_distance(&c, 4), 3);
}

#[test]
fn repetition_code_distance_is_pinned() {
    for (d, rounds) in [(3usize, 2usize), (5, 3)] {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: d,
            rounds,
            data_error: 0.01,
            measure_error: 0.01,
        });
        assert_eq!(exact_distance(&c, d + 1), d, "repetition d={d}");
    }
}

#[test]
fn phase_memory_distance_depends_on_pair_noise() {
    // Without the correlated pair chain, flipping the MX-basis memory
    // takes a Z on every data qubit: distance d.
    let single_only = mpp_phase_memory(&PhaseMemoryConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        pair_error: 0.0,
    });
    assert_eq!(exact_distance(&single_only, 4), 3);

    // The Z⊗Z pair mechanism covers two data qubits at once, so a pair
    // plus one single error crosses the d=3 code at weight 2.
    let with_pairs = mpp_phase_memory(&PhaseMemoryConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        pair_error: 0.01,
    });
    assert_eq!(exact_distance(&with_pairs, 4), 2);
}

#[test]
fn distance_cap_certifies_above_weight() {
    let c = surface_code_memory_in(
        &SurfaceCodeConfig {
            distance: 5,
            rounds: 2,
            data_error: 0.001,
            measure_error: 0.0,
        },
        MemoryBasis::Z,
    );
    assert_eq!(distance_of(&c, 4), Distance::AboveWeight { max_weight: 4 });
}

#[test]
fn generator_models_are_decomposable_and_connected() {
    // Every built-in generator must extract to a decoder-ready model:
    // no undecomposable hyperedge, no disconnected detector.
    let mut circuits: Vec<(String, Circuit)> = Vec::new();
    for d in [3usize, 5] {
        for rounds in [1usize, 2] {
            circuits.push((
                format!("rep d={d} r={rounds}"),
                repetition_code_memory(&RepetitionCodeConfig {
                    distance: d,
                    rounds,
                    data_error: 0.01,
                    measure_error: 0.01,
                }),
            ));
            for basis in [MemoryBasis::Z, MemoryBasis::X] {
                circuits.push((
                    format!("surface d={d} r={rounds} {basis:?}"),
                    surface_code_memory_in(
                        &SurfaceCodeConfig {
                            distance: d,
                            rounds,
                            data_error: 0.002,
                            measure_error: 0.001,
                        },
                        basis,
                    ),
                ));
            }
            circuits.push((
                format!("phase d={d} r={rounds}"),
                mpp_phase_memory(&PhaseMemoryConfig {
                    distance: d,
                    rounds,
                    data_error: 0.01,
                    pair_error: 0.01,
                }),
            ));
        }
    }
    for (name, c) in &circuits {
        let report = analyze_circuit(c, &AnalyzeConfig::default()).expect("analyzable");
        assert_eq!(report.summary.undecomposable, 0, "{name}");
        assert_eq!(report.summary.disconnected, 0, "{name}");
        assert_eq!(report.summary.dominated, 0, "{name}");
        for diag in &report.diagnostics {
            assert!(
                diag.code == "SP015",
                "{name}: unexpected {} — {}",
                diag.code,
                diag.message
            );
        }
    }
}

#[test]
fn broken_verifier_withdraws_the_claim() {
    // A corrupted fault-injection symbol set must be caught by the
    // verifier and turn the distance claim into an SP101 diagnostic —
    // this pins the rollback path that makes a wrong claim a loud error
    // instead of a wrong answer.
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        measure_error: 0.0,
    });
    let report = analyze_circuit(
        &c,
        &AnalyzeConfig {
            broken_verify: true,
            ..AnalyzeConfig::default()
        },
    )
    .expect("analyzable");
    assert!(report.withdrawn);
    assert!(!report.verified);
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&WITHDRAWN_CODE), "{codes:?}");
    assert!(
        !codes.contains(&"SP015"),
        "withdrawn claim must not also report SP015"
    );
}

#[test]
fn analyze_dem_reports_fault_set_payload() {
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        measure_error: 0.0,
    });
    let diags = analyze_dem(&c);
    let sp015: Vec<_> = diags.iter().filter(|d| d.code == "SP015").collect();
    assert_eq!(sp015.len(), 1, "{diags:?}");
    let Some(Payload::FaultSet {
        weight,
        mechanisms,
        symbols,
        verified,
        clamped,
        ..
    }) = &sp015[0].payload
    else {
        panic!("SP015 must carry a FaultSet payload: {:?}", sp015[0]);
    };
    assert_eq!(*weight, 3);
    assert_eq!(mechanisms.len(), 3);
    assert!(!symbols.is_empty());
    assert!(*verified);
    assert!(!*clamped);
}

#[test]
fn parsed_model_analyzes_without_verification() {
    // Round-trip an extracted model through its text form: the census
    // and distance survive, but with no circuit the fault set cannot be
    // verified.
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.01,
        measure_error: 0.0,
    });
    let dem = SymPhaseSampler::new(&c)
        .detector_error_model()
        .with_detector_coords(c.detector_coordinates());
    let reparsed = DetectorErrorModel::parse(&dem.to_string()).expect("round-trip");
    assert_eq!(reparsed.num_detectors(), dem.num_detectors());
    let report = analyze_model(reparsed, &AnalyzeConfig::default()).expect("analyzable");
    assert!(!report.verified);
    assert!(!report.withdrawn);
    let Distance::UpperBound { fault_set } = &report.distance else {
        panic!("{:?}", report.distance);
    };
    assert_eq!(fault_set.weight(), 3);
    let sp015 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "SP015")
        .expect("SP015 present");
    assert!(matches!(
        sp015.payload,
        Some(Payload::FaultSet {
            verified: false,
            ..
        })
    ));
}

#[test]
fn repeat_heavy_circuit_is_clamped_not_skipped() {
    // A million-round memory must still analyze in O(file) via the
    // REPEAT clamp, and say so.
    let c = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 1_000_000,
        data_error: 0.01,
        measure_error: 0.0,
    });
    let report = analyze_circuit(&c, &AnalyzeConfig::default()).expect("analyzable");
    assert!(report.clamped);
    assert!(report.verified, "{:?}", report.diagnostics);
    let Distance::UpperBound { fault_set } = &report.distance else {
        panic!("{:?}", report.distance);
    };
    assert_eq!(fault_set.weight(), 3);
    let sp015 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "SP015")
        .expect("SP015 present");
    assert!(matches!(
        sp015.payload,
        Some(Payload::FaultSet { clamped: true, .. })
    ));
    assert!(sp015.message.contains("clamped"), "{}", sp015.message);
}
