//! Exact cross-engine equivalence by fault injection.
//!
//! Phase symbolization claims that each measurement outcome equals its
//! symbolic expression evaluated at the realized fault pattern (with
//! measurement coins fixed). This test *proves* that claim exhaustively on
//! random circuits: for a random fault assignment, build the concrete
//! circuit where every fault site is replaced by the corresponding Pauli
//! gates, take the canonical reference sample (coins → 0), and compare to
//! evaluating the symbolic expressions under the same assignment.
//!
//! Fact 2 guarantees both runs take identical control-flow branches, so
//! agreement must be bit-exact, shot for shot — no statistics involved.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use symphase::backend::{build_sampler, EngineKind, SimConfig};
use symphase::bitmat::BitVec;
use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
use symphase::circuit::{Circuit, Gate, NoiseChannel, PauliKind};
use symphase::core::SymPhaseSampler;
use symphase::sampler_api::SampleBatch;
use symphase::tableau::reference_sample;

/// A compact description of one random circuit.
#[derive(Clone, Debug)]
struct Plan {
    qubits: u32,
    steps: Vec<Step>,
}

#[derive(Clone, Debug)]
enum Step {
    Gate1(u8, u32),
    Gate2(u8, u32, u32),
    XError(u32),
    YError(u32),
    ZError(u32),
    Depolarize1(u32),
    Measure(u32),
    Reset(u32),
    MeasureReset(u32),
    FeedbackX(u32),
    /// `MX` / `MY` basis measurements.
    MeasureX(u32),
    MeasureY(u32),
    /// `RX` reset.
    ResetX(u32),
    /// `MPP X{a}*Z{b}` (distinct qubits).
    Mpp(u32, u32),
    /// `E(0.5) X{a} Z{b}` followed by `ELSE_CORRELATED_ERROR(0.5) Y{a}`.
    CorrelatedChain(u32, u32),
    /// `PAULI_CHANNEL_2` with uniform probabilities summing to 0.6.
    PauliChannel2(u32, u32),
}

const GATES1: [Gate; 9] = [
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::SDag,
    Gate::SqrtX,
    Gate::SqrtY,
    Gate::SqrtXDag,
];
const GATES2: [Gate; 4] = [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap];

fn plan_strategy() -> impl Strategy<Value = Plan> {
    (
        2u32..6,
        proptest::collection::vec((0u8..15, 0u8..9, any::<u16>()), 10..60),
    )
        .prop_map(|(qubits, raw)| {
            let mut steps = Vec::new();
            let mut measured = 0usize;
            for (kind, g, r) in raw {
                let q = r as u32 % qubits;
                let q2 = (q + 1 + (r as u32 >> 4) % (qubits - 1)) % qubits;
                match kind {
                    0 | 1 => steps.push(Step::Gate1(g % 9, q)),
                    2 => steps.push(Step::Gate2(g % 4, q, q2)),
                    3 => steps.push(Step::XError(q)),
                    4 => steps.push(Step::ZError(q)),
                    5 => steps.push(Step::Depolarize1(q)),
                    6 => {
                        steps.push(Step::Measure(q));
                        measured += 1;
                    }
                    7 => steps.push(Step::Reset(q)),
                    8 => {
                        steps.push(Step::MeasureReset(q));
                        measured += 1;
                    }
                    9 => {
                        if measured > 0 {
                            steps.push(Step::FeedbackX(q));
                        } else {
                            steps.push(Step::YError(q));
                        }
                    }
                    10 => {
                        steps.push(if g % 2 == 0 {
                            Step::MeasureX(q)
                        } else {
                            Step::MeasureY(q)
                        });
                        measured += 1;
                    }
                    11 => steps.push(Step::ResetX(q)),
                    12 => {
                        steps.push(Step::Mpp(q, q2));
                        measured += 1;
                    }
                    13 => steps.push(Step::CorrelatedChain(q, q2)),
                    _ => steps.push(Step::PauliChannel2(q, q2)),
                }
            }
            // Always measure everything at the end.
            for q in 0..qubits {
                steps.push(Step::Measure(q));
            }
            Plan { qubits, steps }
        })
}

/// Builds the noisy circuit (with noise channels) and, for a given fault
/// realization, the concrete circuit (with faults as explicit gates).
/// Returns `(noisy, concrete, assignment)` where `assignment` maps symbol
/// ids to their realized values (coins 0).
fn realize(plan: &Plan, rng: &mut StdRng) -> (Circuit, Circuit, BitVec) {
    let mut noisy = Circuit::new(plan.qubits);
    let mut concrete = Circuit::new(plan.qubits);
    // Build both circuits, remembering each fault site's realized bits in
    // instruction order; `assignment_for` later maps them onto the
    // sampler's symbol ids (which are allocated in the same order, with
    // coins interleaved and left at 0 = the reference convention).
    let mut fault_bits: Vec<bool> = Vec::new();
    for step in &plan.steps {
        match *step {
            Step::Gate1(g, q) => {
                let gate = GATES1[g as usize];
                noisy.gate(gate, &[q]);
                concrete.gate(gate, &[q]);
            }
            Step::Gate2(g, a, b) => {
                let gate = GATES2[g as usize];
                noisy.gate(gate, &[a, b]);
                concrete.gate(gate, &[a, b]);
            }
            Step::XError(q) => {
                noisy.noise(NoiseChannel::XError(0.5), &[q]);
                let fire = rng.random_bool(0.5);
                fault_bits.push(fire);
                if fire {
                    concrete.x(q);
                }
            }
            Step::YError(q) => {
                noisy.noise(NoiseChannel::YError(0.5), &[q]);
                let fire = rng.random_bool(0.5);
                fault_bits.push(fire);
                if fire {
                    concrete.y(q);
                }
            }
            Step::ZError(q) => {
                noisy.noise(NoiseChannel::ZError(0.5), &[q]);
                let fire = rng.random_bool(0.5);
                fault_bits.push(fire);
                if fire {
                    concrete.z(q);
                }
            }
            Step::Depolarize1(q) => {
                noisy.noise(NoiseChannel::Depolarize1(0.5), &[q]);
                let (fx, fz) = match rng.random_range(0..4u32) {
                    0 => (false, false),
                    1 => (true, false),
                    2 => (true, true),
                    _ => (false, true),
                };
                fault_bits.push(fx);
                fault_bits.push(fz);
                if fx {
                    concrete.x(q);
                }
                if fz {
                    concrete.z(q);
                }
            }
            Step::Measure(q) => {
                noisy.measure(q);
                concrete.measure(q);
            }
            Step::Reset(q) => {
                noisy.reset(q);
                concrete.reset(q);
            }
            Step::MeasureReset(q) => {
                noisy.measure_reset(q);
                concrete.measure_reset(q);
            }
            Step::FeedbackX(q) => {
                noisy.feedback(PauliKind::X, -1, q);
                concrete.feedback(PauliKind::X, -1, q);
            }
            Step::MeasureX(q) => {
                noisy.measure_in(PauliKind::X, q);
                concrete.measure_in(PauliKind::X, q);
            }
            Step::MeasureY(q) => {
                noisy.measure_in(PauliKind::Y, q);
                concrete.measure_in(PauliKind::Y, q);
            }
            Step::ResetX(q) => {
                noisy.reset_in(PauliKind::X, q);
                concrete.reset_in(PauliKind::X, q);
            }
            Step::Mpp(a, b) => {
                let product = [(PauliKind::X, a), (PauliKind::Z, b)];
                noisy.measure_pauli_product(&product);
                concrete.measure_pauli_product(&product);
            }
            Step::CorrelatedChain(a, b) => {
                noisy.correlated_error(0.5, &[(PauliKind::X, a), (PauliKind::Z, b)]);
                noisy.else_correlated_error(0.5, &[(PauliKind::Y, a)]);
                let fire1 = rng.random_bool(0.5);
                fault_bits.push(fire1);
                if fire1 {
                    concrete.x(a);
                    concrete.z(b);
                }
                // The ELSE element only fires when the chain has not.
                let fire2 = !fire1 && rng.random_bool(0.5);
                fault_bits.push(fire2);
                if fire2 {
                    concrete.y(a);
                }
            }
            Step::PauliChannel2(a, b) => {
                let probs = [0.6 / 15.0; 15];
                noisy.noise(NoiseChannel::PauliChannel2 { probs }, &[a, b]);
                let bits = if rng.random_bool(0.6) {
                    symphase::circuit::pauli_channel_2_bits(rng.random_range(1..16usize))
                } else {
                    [false; 4]
                };
                fault_bits.extend_from_slice(&bits);
                if bits[0] {
                    concrete.x(a);
                }
                if bits[1] {
                    concrete.z(a);
                }
                if bits[2] {
                    concrete.x(b);
                }
                if bits[3] {
                    concrete.z(b);
                }
            }
        }
    }
    let fault_vec = BitVec::from_bools(fault_bits);
    (noisy, concrete, fault_vec)
}

/// Maps the in-order fault bits onto the sampler's symbol ids: noise
/// symbols are allocated in instruction order, so the k-th fault bit is the
/// k-th non-coin symbol.
fn assignment_for(sampler: &SymPhaseSampler, fault_bits: &BitVec) -> BitVec {
    use symphase::core::SymbolGroup;
    let mut assignment = BitVec::zeros(sampler.symbol_table().assignment_len());
    let mut k = 0usize;
    for g in sampler.symbol_table().groups() {
        match *g {
            SymbolGroup::Coin { .. } => {}
            SymbolGroup::Bernoulli { id, .. } => {
                assignment.set(id as usize, fault_bits.get(k));
                k += 1;
            }
            SymbolGroup::Depolarize1 { x_id, z_id, .. }
            | SymbolGroup::PauliChannel1 { x_id, z_id, .. } => {
                assignment.set(x_id as usize, fault_bits.get(k));
                assignment.set(z_id as usize, fault_bits.get(k + 1));
                k += 2;
            }
            SymbolGroup::Depolarize2 { ids, .. } | SymbolGroup::PauliChannel2 { ids, .. } => {
                for (j, &id) in ids.iter().enumerate() {
                    assignment.set(id as usize, fault_bits.get(k + j));
                }
                k += 4;
            }
            SymbolGroup::Correlated { id, .. } => {
                assignment.set(id as usize, fault_bits.get(k));
                k += 1;
            }
        }
    }
    assert_eq!(k, fault_bits.len(), "fault-bit bookkeeping out of sync");
    assignment
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbolic_expressions_predict_injected_faults(plan in plan_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (noisy, concrete, fault_bits) = realize(&plan, &mut rng);
        let sampler = SymPhaseSampler::new(&noisy);
        let assignment = assignment_for(&sampler, &fault_bits);
        let expected = reference_sample(&concrete);
        prop_assert_eq!(expected.len(), sampler.num_measurements());
        for m in 0..sampler.num_measurements() {
            let predicted = sampler.measurement_expr(m).eval(&assignment);
            prop_assert_eq!(
                predicted,
                expected.get(m),
                "measurement {} disagrees (plan {:?})",
                m,
                &plan
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cross-backend matrix: every engine behind the shared `Sampler` trait
// must produce statistically identical measurement distributions on the
// same small noisy circuits (fixed seeds).
// ---------------------------------------------------------------------

/// Small noisy circuits exercising every instruction class: gates, all
/// noise channels, mid-circuit measurement, reset, measure-reset,
/// feedback, detectors and observables.
fn matrix_circuits() -> Vec<(&'static str, Circuit)> {
    let mut ghz = Circuit::new(4);
    ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    ghz.noise(NoiseChannel::Depolarize1(0.08), &[0, 1, 2, 3]);
    ghz.noise(NoiseChannel::XError(0.1), &[1]);
    ghz.measure_all();

    let rep = repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.08,
        measure_error: 0.04,
    });

    let mut dynamic = Circuit::new(3);
    dynamic.h(0);
    dynamic.noise(
        NoiseChannel::PauliChannel1 {
            px: 0.1,
            py: 0.05,
            pz: 0.1,
        },
        &[0],
    );
    dynamic.cx(0, 1);
    dynamic.noise(NoiseChannel::Depolarize2(0.06), &[1, 2]);
    dynamic.measure(0);
    dynamic.feedback(PauliKind::X, -1, 1);
    dynamic.measure_reset(1);
    dynamic.noise(NoiseChannel::YError(0.12), &[2]);
    dynamic.h(2);
    dynamic.measure(2);
    dynamic.measure(1);

    // The basis-general / product-measurement / correlated-noise surface:
    // MX/MY/RX/RY/MRX, MPP, E + ELSE_CORRELATED_ERROR, PAULI_CHANNEL_2.
    let mut basis = Circuit::new(3);
    basis.reset_in(PauliKind::X, 0);
    basis.reset_in(PauliKind::Y, 1);
    basis.h(2);
    basis.correlated_error(0.15, &[(PauliKind::X, 0), (PauliKind::Z, 1)]);
    basis.else_correlated_error(0.5, &[(PauliKind::Y, 2)]);
    let mut probs = [0.0; 15];
    probs[3] = 0.1; // XI
    probs[9] = 0.05; // YY
    probs[14] = 0.1; // ZZ
    basis.noise(NoiseChannel::PauliChannel2 { probs }, &[1, 2]);
    basis.measure_pauli_product(&[(PauliKind::X, 0), (PauliKind::Z, 2)]);
    basis.measure_in(PauliKind::X, 0);
    basis.measure_in(PauliKind::Y, 1);
    basis.measure_reset_in(PauliKind::X, 2);
    basis.noise(NoiseChannel::XError(0.1), &[2]);
    basis.measure_in(PauliKind::X, 2);
    basis.measure_all();

    vec![
        ("noisy-ghz", ghz),
        ("repetition-code", rep),
        ("dynamic", dynamic),
        ("basis-general", basis),
    ]
}

/// The backend matrix of the acceptance criteria: SymPhase in both phase
/// representations, the frame baseline, the tableau reference, and the
/// dense ground truth.
const MATRIX: [EngineKind; 5] = [
    EngineKind::SymPhaseSparse,
    EngineKind::SymPhaseDense,
    EngineKind::Frame,
    EngineKind::Tableau,
    EngineKind::StateVec,
];

/// Builds one matrix backend through the configured factory.
fn build(kind: EngineKind, circuit: &Circuit) -> Box<dyn symphase::sampler_api::Sampler> {
    build_sampler(circuit, &SimConfig::new().with_engine(kind)).expect("matrix backend builds")
}

/// Rate of set bits in row `r`.
fn one_rate(batch: &SampleBatch, r: usize) -> f64 {
    let shots = batch.shots();
    let ones = (0..shots).filter(|&j| batch.measurements.get(r, j)).count();
    ones as f64 / shots as f64
}

/// Rate of `row_a ⊕ row_b` (pairwise correlation witness).
fn xor_rate(batch: &SampleBatch, a: usize, b: usize) -> f64 {
    let shots = batch.shots();
    let ones = (0..shots)
        .filter(|&j| batch.measurements.get(a, j) != batch.measurements.get(b, j))
        .count();
    ones as f64 / shots as f64
}

/// Asserts two empirical rates agree within 6σ of the pooled binomial
/// deviation (plus a floor for rates at 0 or 1).
fn assert_rates_close(what: &str, p1: f64, p2: f64, shots: usize) {
    let pool = 0.5 * (p1 + p2);
    let sd = (pool * (1.0 - pool) * 2.0 / shots as f64).sqrt();
    let tol = 6.0 * sd + 4.0 / shots as f64;
    assert!(
        (p1 - p2).abs() <= tol,
        "{what}: rates {p1:.4} vs {p2:.4} differ beyond 6σ ({tol:.4})"
    );
}

#[test]
fn cross_backend_measurement_distributions_agree() {
    let shots = 20_000;
    for (name, circuit) in matrix_circuits() {
        let batches: Vec<(&str, SampleBatch)> = MATRIX
            .iter()
            .map(|kind| {
                let sampler = build(*kind, &circuit);
                (kind.name(), sampler.sample_seeded(shots, 0xC0FFEE))
            })
            .collect();
        let (ref_name, reference) = &batches[0];
        let nm = reference.measurements.rows();
        assert_eq!(nm, circuit.num_measurements());
        for (other_name, other) in &batches[1..] {
            assert_eq!(other.measurements.rows(), nm);
            for m in 0..nm {
                assert_rates_close(
                    &format!("{name} m{m}: {ref_name} vs {other_name}"),
                    one_rate(reference, m),
                    one_rate(other, m),
                    shots,
                );
            }
            for m in 1..nm {
                assert_rates_close(
                    &format!("{name} m{}/m{m} xor: {ref_name} vs {other_name}", m - 1),
                    xor_rate(reference, m - 1, m),
                    xor_rate(other, m - 1, m),
                    shots,
                );
            }
        }
    }
}

#[test]
fn cross_backend_detector_rates_agree() {
    let shots = 20_000;
    let (_, circuit) = &matrix_circuits()[1]; // repetition code: has detectors
    let batches: Vec<(&str, SampleBatch)> = MATRIX
        .iter()
        .map(|kind| {
            let sampler = build(*kind, circuit);
            (kind.name(), sampler.sample_seeded(shots, 0xDE7EC7))
        })
        .collect();
    let (ref_name, reference) = &batches[0];
    let nd = reference.detectors.rows();
    assert!(nd > 0, "repetition code must have detectors");
    for (other_name, other) in &batches[1..] {
        for d in 0..nd {
            let rate = |b: &SampleBatch| {
                (0..shots).filter(|&j| b.detectors.get(d, j)).count() as f64 / shots as f64
            };
            assert_rates_close(
                &format!("D{d}: {ref_name} vs {other_name}"),
                rate(reference),
                rate(other),
                shots,
            );
        }
        for o in 0..reference.observables.rows() {
            let rate = |b: &SampleBatch| {
                (0..shots).filter(|&j| b.observables.get(o, j)).count() as f64 / shots as f64
            };
            assert_rates_close(
                &format!("L{o}: {ref_name} vs {other_name}"),
                rate(reference),
                rate(other),
                shots,
            );
        }
    }
}

/// Reusing one `SampleBatch` across `sample_into` calls must not mix
/// draws: every implementation clears the batch first (the matrix
/// products and detector derivations accumulate by XOR internally).
#[test]
fn sample_into_overwrites_reused_batches() {
    let (_, circuit) = &matrix_circuits()[1];
    for kind in MATRIX {
        let sampler = build(kind, circuit);
        let mut reused = symphase::sampler_api::SampleBatch::zeros(
            sampler.num_measurements(),
            sampler.num_detectors(),
            sampler.num_observables(),
            500,
        );
        let mut rng = StdRng::seed_from_u64(77);
        sampler.sample_into(&mut reused, &mut rng);
        sampler.sample_into(&mut reused, &mut rng);
        // A fresh batch drawn from the same RNG stream position must match.
        let mut rng2 = StdRng::seed_from_u64(77);
        sampler.sample_into(
            &mut symphase::sampler_api::SampleBatch::zeros(
                sampler.num_measurements(),
                sampler.num_detectors(),
                sampler.num_observables(),
                500,
            ),
            &mut rng2,
        );
        let fresh = sampler.sample(500, &mut rng2);
        assert_eq!(reused, fresh, "{} mixed draws on batch reuse", kind.name());
    }
}

/// The acceptance criterion on the parallel path: for every backend,
/// `sample_par` agrees **shot for shot** with the serial chunk-seeded
/// schedule, across chunk boundaries.
#[test]
fn sample_par_matches_sample_seeded_on_every_backend() {
    let shots = symphase::sampler_api::CHUNK_SHOTS + 123;
    for (name, circuit) in matrix_circuits() {
        for kind in MATRIX {
            let sampler = build(kind, &circuit);
            let serial = sampler.sample_seeded(shots, 42);
            let par = sampler.sample_par(shots, 42);
            assert_eq!(
                serial,
                par,
                "{name}/{} diverged under parallel sampling",
                kind.name()
            );
        }
    }
}

#[test]
fn injected_fault_regression_simple() {
    // Hand-written miniature of the property: GHZ with one fired X fault.
    let mut noisy = Circuit::new(3);
    noisy.h(0).cx(0, 1).cx(1, 2);
    noisy.noise(NoiseChannel::XError(0.5), &[1]);
    noisy.measure_all();
    let mut concrete = Circuit::new(3);
    concrete.h(0).cx(0, 1).cx(1, 2);
    concrete.x(1);
    concrete.measure_all();

    let sampler = SymPhaseSampler::new(&noisy);
    let mut assignment = BitVec::zeros(sampler.symbol_table().assignment_len());
    assignment.set(1, true); // the fault symbol fires
    let expected = reference_sample(&concrete);
    for m in 0..3 {
        assert_eq!(
            sampler.measurement_expr(m).eval(&assignment),
            expected.get(m)
        );
    }
}
