//! Structured `REPEAT` acceptance tests: million-round parse +
//! initialization without any expansion cap, per-iteration lookback
//! resolution, and bit-exact structured-vs-flattened agreement across
//! every engine.

use symphase::backend::{build_sampler, EngineKind, SimConfig};
use symphase::circuit::{Circuit, Instruction};
use symphase::core::SymPhaseSampler;
use symphase::sampler_api::record;

/// A million-round memory loop parses in O(file) and initializes without
/// hitting any expansion cap. The body uses `MR`, so the per-round error
/// is cleared and every measurement expression stays O(1) — total work is
/// linear in the flattened length, memory linear in the record.
#[test]
fn million_round_repeat_parses_and_initializes() {
    let text = "M 0\nREPEAT 1_000_000 {\n X_ERROR(0.001) 0\n MR 0\n DETECTOR rec[-1] rec[-2]\n}\n";
    let parse_start = std::time::Instant::now();
    let c = Circuit::parse(text).unwrap();
    assert!(
        parse_start.elapsed() < std::time::Duration::from_secs(1),
        "parse must be O(file), independent of the trip count"
    );
    // Structured: two nodes, whatever the trip count.
    assert_eq!(c.instructions().len(), 2);
    assert_eq!(c.num_measurements(), 1_000_001);
    assert_eq!(c.num_detectors(), 1_000_000);

    // One symbolic traversal over 3M streamed instructions.
    let sampler = SymPhaseSampler::new(&c);
    assert_eq!(sampler.num_measurements(), 1_000_001);
    assert_eq!(sampler.num_detectors(), 1_000_000);
    // Round r's detector is s_{r-1} ⊕ s_r (the reset clears each error),
    // so every detector expression holds at most two fault symbols.
    for d in [0usize, 1, 499_999, 999_999] {
        assert!(sampler.detector_expr(d).symbol_ids().len() <= 2, "D{d}");
    }
}

/// Lookbacks inside a `REPEAT` body resolve per iteration: `rec[-2]` in
/// round r lands on round r−1's measurement, and the first iteration
/// reaches the record preceding the block.
#[test]
fn per_iteration_lookbacks_cross_round_boundaries() {
    let c = Circuit::parse("M 0\nREPEAT 4 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n").unwrap();
    let sets = record::detector_measurement_sets(&c);
    assert_eq!(
        sets,
        vec![vec![1, 0], vec![2, 1], vec![3, 2], vec![4, 3]],
        "each round compares with the previous round's outcome"
    );
}

/// Every engine produces bit-identical samples for the structured circuit
/// and its materialized flattening, for equal seeds — the structured IR
/// changes representation, not semantics.
#[test]
fn structured_and_flattened_engines_agree_bit_for_bit() {
    let text = "\
R 0 1 2
H 0
M 0
REPEAT 5 {
    CX rec[-1] 1
    X_ERROR(0.25) 1
    REPEAT 2 {
        DEPOLARIZE1(0.125) 2
        M 2
    }
    MR 1
    DETECTOR rec[-1] rec[-3]
    OBSERVABLE_INCLUDE(0) rec[-1]
}
M 0 1 2
";
    let structured = Circuit::parse(text).unwrap();
    assert!(structured
        .instructions()
        .iter()
        .any(|i| matches!(i, Instruction::Repeat { .. })));
    let flat = structured.flattened();
    assert!(flat
        .instructions()
        .iter()
        .all(|i| !matches!(i, Instruction::Repeat { .. })));
    assert_eq!(structured.stats(), flat.stats());

    for kind in EngineKind::ALL {
        let build = |c: &Circuit| {
            build_sampler(c, &SimConfig::new().with_engine(kind)).expect("backend builds")
        };
        let a = build(&structured).sample_seeded(256, 7);
        let b = build(&flat).sample_seeded(256, 7);
        assert_eq!(a, b, "{} diverged between structured and flat", kind.name());
    }
}

/// The text format round-trips structure: parse → Display → parse is the
/// identity on the structured IR, not merely on flattened semantics.
#[test]
fn display_preserves_structure_not_just_semantics() {
    let text = "M 0\nREPEAT 3 {\n    H 1\n    REPEAT 2 {\n        M 1\n        DETECTOR rec[-1] rec[-2]\n    }\n    CZ 0 1\n}\n";
    let c = Circuit::parse(text).unwrap();
    let reparsed = Circuit::parse(&c.to_string()).unwrap();
    assert_eq!(reparsed, c);
    assert_eq!(c.to_string(), text);
    // And the structure really is nested, not flattened.
    let Instruction::Repeat { body, .. } = &c.instructions()[1] else {
        panic!("expected REPEAT node");
    };
    assert!(body
        .instructions()
        .iter()
        .any(|i| matches!(i, Instruction::Repeat { .. })));
}
