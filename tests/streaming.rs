//! The streaming-equality suite: the acceptance contract of the
//! `ShotSink` sampling API.
//!
//! For **every** engine:
//!
//! * `sample_to` into a collecting sink equals `sample_seeded`
//!   bit-for-bit (the batch API *is* the streaming API plus an in-memory
//!   sink);
//! * parallel `sample_to_par` equals the serial stream for equal seeds,
//!   whatever the thread budget, and presents chunks to the sink in
//!   schedule order;
//! * a zero-shot request produces a well-formed empty stream.
//!
//! Plus the `SimConfig`-driven construction path: every engine builds
//! through `build_sampler` and misconfigurations fail with typed
//! diagnostics before any sampling.

use symphase::backend::{build_sampler, BuildError, EngineKind, SimConfig};
use symphase::prelude::*;
use symphase::sampler_api::{sink, CollectSink, CountingSink, CHUNK_SHOTS};

/// A small noisy QEC workload every engine (including the ≤22-qubit
/// state-vector ground truth) can run, with measurements, detectors, and
/// observables all nonempty.
fn small_circuit() -> Circuit {
    use symphase::circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
    repetition_code_memory(&RepetitionCodeConfig {
        distance: 3,
        rounds: 2,
        data_error: 0.1,
        measure_error: 0.05,
    })
}

/// A deeper workload for the fast engines: enough shots to cross several
/// chunk boundaries without making the per-shot engines crawl.
fn fast_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::SymPhase,
        EngineKind::SymPhaseSparse,
        EngineKind::SymPhaseDense,
        EngineKind::Frame,
    ]
}

fn build(kind: EngineKind, circuit: &Circuit) -> Box<dyn Sampler> {
    build_sampler(circuit, &SimConfig::new().with_engine(kind)).expect("engine builds")
}

#[test]
fn collecting_sink_equals_sample_seeded_on_every_engine() {
    let circuit = small_circuit();
    for kind in EngineKind::ALL {
        let sampler = build(kind, &circuit);
        for shots in [0usize, 1, 63, 64, 65, 257] {
            let batch = sampler.sample_seeded(shots, 0xABCD);
            let mut sink = CollectSink::new();
            sampler.sample_to(shots, 0xABCD, &mut sink).unwrap();
            assert_eq!(
                sink.into_batch(),
                batch,
                "{} diverged at {shots} shots",
                kind.name()
            );
        }
    }
}

#[test]
fn parallel_stream_equals_serial_on_every_engine() {
    let circuit = small_circuit();
    for kind in EngineKind::ALL {
        let sampler = build(kind, &circuit);
        let shots = 200;
        let serial = sampler.sample_seeded(shots, 7);
        for threads in [2, 3, 8] {
            let mut sink = CollectSink::new();
            sampler.sample_to_par(shots, 7, threads, &mut sink).unwrap();
            assert_eq!(
                sink.into_batch(),
                serial,
                "{} diverged with {threads} threads",
                kind.name()
            );
        }
    }
}

#[test]
fn multi_chunk_streams_agree_across_paths_on_fast_engines() {
    let circuit = small_circuit();
    let shots = 2 * CHUNK_SHOTS + 100;
    for kind in fast_engines() {
        let sampler = build(kind, &circuit);
        let serial = sampler.sample_seeded(shots, 99);
        // Streaming serial.
        let mut sink = CollectSink::new();
        sampler.sample_to(shots, 99, &mut sink).unwrap();
        assert_eq!(sink.into_batch(), serial, "{} serial stream", kind.name());
        // Streaming parallel with budgets that do and don't divide the
        // chunk count.
        for threads in [2, 3] {
            let mut sink = CollectSink::new();
            sampler
                .sample_to_par(shots, 99, threads, &mut sink)
                .unwrap();
            assert_eq!(
                sink.into_batch(),
                serial,
                "{} par stream ({threads} threads)",
                kind.name()
            );
        }
        // The legacy batch parallel path is the same machinery.
        assert_eq!(sampler.sample_par(shots, 99), serial);
    }
}

#[test]
fn config_thread_budgets_1_2_8_are_bit_identical_on_every_engine() {
    // The work-stealing pool must leave the chunk-seeded schedule
    // untouched: for every engine, the configured thread budget (the
    // `--threads` flag) changes wall-clock only — the sink sees the same
    // bytes at 1, 2, and 8 threads.
    let circuit = small_circuit();
    for kind in EngineKind::ALL {
        let sampler = build(kind, &circuit);
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let cfg = SimConfig::new()
                .with_seed(0x5EED)
                .with_chunk_shots(64)
                .with_threads(threads);
            let mut sink = CollectSink::new();
            sink::stream_with_config(sampler.as_ref(), 300, &cfg, &mut sink).unwrap();
            let batch = sink.into_batch();
            match &reference {
                None => reference = Some(batch),
                Some(expected) => assert_eq!(
                    &batch,
                    expected,
                    "{} diverged at {threads} threads",
                    kind.name()
                ),
            }
        }
    }
}

#[test]
fn streams_deliver_chunks_in_schedule_order() {
    struct OrderSink {
        next_start: usize,
        max_chunk: usize,
    }
    impl ShotSink for OrderSink {
        fn chunk(&mut self, chunk: &SampleBatch, start: usize) -> std::io::Result<()> {
            assert_eq!(start, self.next_start, "out-of-order chunk");
            self.next_start += chunk.shots();
            self.max_chunk = self.max_chunk.max(chunk.shots());
            Ok(())
        }
    }
    let circuit = small_circuit();
    let sampler = build(EngineKind::SymPhase, &circuit);
    let shots = 3 * CHUNK_SHOTS + 7;
    for threads in [1, 2, 5] {
        let mut sink = OrderSink {
            next_start: 0,
            max_chunk: 0,
        };
        sampler.sample_to_par(shots, 3, threads, &mut sink).unwrap();
        assert_eq!(sink.next_start, shots);
        // The memory contract: no delivery ever exceeds one chunk.
        assert_eq!(sink.max_chunk, CHUNK_SHOTS);
    }
}

#[test]
fn explicit_chunk_width_changes_schedule_but_not_totals() {
    let circuit = small_circuit();
    let sampler = build(EngineKind::SymPhase, &circuit);
    let mut narrow = CountingSink::default();
    sink::stream_seeded(sampler.as_ref(), 1000, 5, 128, &mut narrow).unwrap();
    assert_eq!(narrow.shots, 1000);
    assert_eq!(narrow.chunks, 8); // ⌈1000 / 128⌉
                                  // Same custom width in parallel: bit-identical to its own serial run.
    let mut a = CollectSink::new();
    let mut b = CollectSink::new();
    sink::stream_seeded(sampler.as_ref(), 1000, 5, 128, &mut a).unwrap();
    sink::stream_par(sampler.as_ref(), 1000, 5, 128, 3, &mut b).unwrap();
    let a = a.into_batch();
    assert_eq!(&a, &b.into_batch());
    // The config-driven entry point honors the configured width: same
    // bytes as the explicit-width call, serial and threaded.
    for threads in [1, 3] {
        let cfg = SimConfig::new()
            .with_seed(5)
            .with_chunk_shots(128)
            .with_threads(threads);
        let mut c = CollectSink::new();
        sink::stream_with_config(sampler.as_ref(), 1000, &cfg, &mut c).unwrap();
        assert_eq!(&a, &c.into_batch(), "{threads} threads");
    }
    let mut counted = CountingSink::default();
    let cfg = SimConfig::new().with_chunk_shots(128);
    sink::stream_with_config(sampler.as_ref(), 1000, &cfg, &mut counted).unwrap();
    assert_eq!(
        counted.chunks, 8,
        "configured width must drive the schedule"
    );
}

#[test]
fn zero_shots_stream_empty_everywhere() {
    let circuit = small_circuit();
    for kind in EngineKind::ALL {
        let sampler = build(kind, &circuit);
        let mut counting = CountingSink::default();
        sampler.sample_to(0, 1, &mut counting).unwrap();
        assert_eq!(counting.shots, 0);
        assert_eq!(counting.chunks, 0);
        let batch = sampler.sample_seeded(0, 1);
        assert_eq!(batch.shots(), 0);
        assert_eq!(batch.measurements.rows(), sampler.num_measurements());
    }
}

#[test]
fn config_seed_controls_the_stream() {
    let circuit = small_circuit();
    let cfg = SimConfig::new().with_seed(123);
    let sampler = build_sampler(&circuit, &cfg).unwrap();
    let a = sampler.sample_seeded(500, cfg.seed());
    let b = sampler.sample_seeded(500, cfg.seed());
    let c = sampler.sample_seeded(500, cfg.seed() + 1);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn misconfigurations_fail_with_typed_errors() {
    let circuit = small_circuit();
    let cfg = SimConfig::new()
        .with_engine(EngineKind::Frame)
        .with_sampling(SamplingMethod::DenseMatMul);
    match build_sampler(&circuit, &cfg) {
        Err(BuildError::SamplingMethodUnsupported { engine, method }) => {
            assert_eq!(engine, "frame");
            assert_eq!(method, "dense");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("must not build"),
    }
    let cfg = SimConfig::new().with_chunk_shots(100);
    assert!(matches!(
        build_sampler(&circuit, &cfg),
        Err(BuildError::InvalidChunkShots { got: 100 })
    ));
}

#[test]
fn sampling_methods_agree_through_the_config_path() {
    // The chunk-seeded stream must be method-independent, config-built.
    let circuit = small_circuit();
    let reference = build_sampler(&circuit, &SimConfig::new()).unwrap();
    let expected = reference.sample_seeded(300, 11);
    for method in SamplingMethod::ALL {
        let cfg = SimConfig::new().with_sampling(method);
        let sampler = build_sampler(&circuit, &cfg).unwrap();
        assert_eq!(
            sampler.sample_seeded(300, 11),
            expected,
            "method {} diverged",
            method.name()
        );
    }
}
