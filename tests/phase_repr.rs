//! Properties of the phase-representation choice (paper Eq. (3)).
//!
//! `PhaseRepr::Auto` may pick either store per circuit, but the pick must
//! be a pure function of the circuit, and the pick must never matter for
//! correctness: the sparse and dense stores are two layouts of the same
//! symbolic Initialization, so they must produce identical measurement
//! expressions on any circuit.

use proptest::prelude::*;

use symphase::circuit::generators::{LayeredCircuitConfig, PairsPerLayer};
use symphase::circuit::Circuit;
use symphase::core::{PhaseRepr, SymPhaseSampler};

/// Random layered-circuit configurations spanning both sides of the
/// Auto heuristic's crossover (sparse QEC-like and dense noisy).
fn config_strategy() -> impl Strategy<Value = LayeredCircuitConfig> {
    (
        2usize..12,
        1usize..12,
        prop_oneof![
            (1usize..4).prop_map(PairsPerLayer::Fixed),
            Just(PairsPerLayer::HalfOfQubits)
        ],
        0.0f64..=0.4,
        prop_oneof![Just(None), (0.001f64..0.05).prop_map(Some)],
        any::<u64>(),
    )
        .prop_map(
            |(qubits, layers, cnot_pairs, measure_fraction, depolarize, seed)| {
                LayeredCircuitConfig {
                    qubits,
                    layers,
                    cnot_pairs,
                    measure_fraction,
                    depolarize,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Auto::resolve` is deterministic, never returns `Auto`, and is a
    /// fixed point on already-resolved representations.
    #[test]
    fn auto_resolve_is_deterministic(config in config_strategy()) {
        let circuit = config.generate();
        let first = PhaseRepr::Auto.resolve(&circuit);
        prop_assert_ne!(first, PhaseRepr::Auto, "Auto must resolve to a concrete store");
        for _ in 0..3 {
            prop_assert_eq!(PhaseRepr::Auto.resolve(&circuit), first);
        }
        prop_assert_eq!(PhaseRepr::Sparse.resolve(&circuit), PhaseRepr::Sparse);
        prop_assert_eq!(PhaseRepr::Dense.resolve(&circuit), PhaseRepr::Dense);
        // Resolution reads only circuit statistics: a structural clone
        // resolves identically.
        let reparsed = Circuit::parse(&circuit.to_string()).expect("round-trip");
        prop_assert_eq!(PhaseRepr::Auto.resolve(&reparsed), first);
    }

    /// Initialization through the sparse and dense phase stores yields
    /// identical measurement expressions (and therefore identical
    /// detector/observable rows) on random layered circuits.
    #[test]
    fn sparse_and_dense_init_results_agree(config in config_strategy()) {
        let circuit = config.generate();
        let sparse = SymPhaseSampler::with_repr(&circuit, PhaseRepr::Sparse);
        let dense = SymPhaseSampler::with_repr(&circuit, PhaseRepr::Dense);
        prop_assert_eq!(sparse.measurement_exprs(), dense.measurement_exprs());
        prop_assert_eq!(
            sparse.symbol_table().assignment_len(),
            dense.symbol_table().assignment_len()
        );
        for d in 0..sparse.num_detectors() {
            prop_assert_eq!(sparse.detector_expr(d), dense.detector_expr(d));
        }
        for o in 0..sparse.num_observables() {
            prop_assert_eq!(sparse.observable_expr(o), dense.observable_expr(o));
        }
    }
}

/// The Auto heuristic measures *noise* symbols per measurement (coins are
/// excluded — every random measurement carries exactly one, so they can't
/// differentiate circuits). This pins the crossover on representative
/// circuits, including the boundary itself.
#[test]
fn auto_crossover_pinned_on_representative_circuits() {
    use symphase::circuit::generators::{
        fig3c_circuit, repetition_code_memory, RepetitionCodeConfig,
    };
    use symphase::circuit::NoiseChannel;

    // Dense noisy mixing: thousands of fault symbols over few measurements.
    assert_eq!(
        PhaseRepr::Auto.resolve(&fig3c_circuit(32, 0.001, 1)),
        PhaseRepr::Dense
    );
    // QEC-style: a handful of symbols per measurement.
    let rep = repetition_code_memory(&RepetitionCodeConfig {
        distance: 9,
        rounds: 9,
        data_error: 0.01,
        measure_error: 0.01,
    });
    assert_eq!(PhaseRepr::Auto.resolve(&rep), PhaseRepr::Sparse);
    // Noiseless but measurement-heavy: 0 noise symbols per measurement →
    // sparse, no matter how many measurements pile up. (The old formula
    // folded measurements into the numerator, flooring the ratio at 1.)
    let mut noiseless = Circuit::new(4);
    for _ in 0..100 {
        noiseless.h(0);
        noiseless.measure_many(&[0, 1, 2, 3]);
    }
    assert_eq!(PhaseRepr::Auto.resolve(&noiseless), PhaseRepr::Sparse);
    // The crossover sits at exactly 8 symbols per measurement: 8 stays
    // sparse, 9 flips dense.
    let mut at_boundary = Circuit::new(8);
    at_boundary.noise(NoiseChannel::XError(0.1), &[0, 1, 2, 3, 4, 5, 6, 7]);
    at_boundary.measure(0);
    assert_eq!(PhaseRepr::Auto.resolve(&at_boundary), PhaseRepr::Sparse);
    let mut past_boundary = Circuit::new(9);
    past_boundary.noise(NoiseChannel::XError(0.1), &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    past_boundary.measure(0);
    assert_eq!(PhaseRepr::Auto.resolve(&past_boundary), PhaseRepr::Dense);
}
