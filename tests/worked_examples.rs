//! The paper's worked examples, end to end through the public facade.

use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase::prelude::*;

/// Paper Fig. 1: GHZ preparation, faults `Z^{s1} X^{s2} X^{s3} X^{s4}`,
/// un-preparation, measurement. Caption: `m1 = s1, m2 = s2, m3 = s2⊕s3,
/// m4 = s3⊕s4`.
#[test]
fn fig1_expressions_via_text_format() {
    let circuit = Circuit::parse(
        "\
H 0
CX 0 1
CX 1 2
CX 2 3
Z_ERROR(0.1) 0
X_ERROR(0.1) 1
X_ERROR(0.1) 2
X_ERROR(0.1) 3
CX 2 3
CX 1 2
CX 0 1
H 0
M 0 1 2 3
",
    )
    .expect("fig1 circuit parses");
    let sampler = SymPhaseSampler::new(&circuit);
    let rendered: Vec<String> = sampler
        .measurement_exprs()
        .iter()
        .map(|e| e.to_string())
        .collect();
    assert_eq!(rendered, ["s1", "s2", "s2 ⊕ s3", "s3 ⊕ s4"]);
}

/// Paper §3.1: `H; CX; X^{s1}; X^{s2}; M; M` yields `m1 = s3` (fresh coin)
/// and `m2 = s1 ⊕ s2 ⊕ s3`.
#[test]
fn section31_expressions() {
    let circuit = Circuit::parse(
        "\
H 0
CX 0 1
X_ERROR(0.5) 0
X_ERROR(0.5) 1
M 0
M 1
",
    )
    .expect("§3.1 circuit parses");
    let sampler = SymPhaseSampler::new(&circuit);
    assert_eq!(sampler.measurement_expr(0).to_string(), "s3");
    assert_eq!(sampler.measurement_expr(1).to_string(), "s1 ⊕ s2 ⊕ s3");
}

/// The §3.1 example's joint distribution: m1 fair, and m2 = m1 ⊕ s1 ⊕ s2.
#[test]
fn section31_sampled_distribution() {
    let mut circuit = Circuit::new(2);
    circuit.h(0).cx(0, 1);
    circuit.noise(NoiseChannel::XError(0.25), &[0]);
    circuit.noise(NoiseChannel::XError(0.25), &[1]);
    circuit.measure(0);
    circuit.measure(1);
    let sampler = SymPhaseSampler::new(&circuit);
    let shots = 100_000;
    let s = sampler.sample(shots, &mut StdRng::seed_from_u64(9));
    let mut m1_ones = 0usize;
    let mut disagree = 0usize;
    for shot in 0..shots {
        m1_ones += usize::from(s.get(0, shot));
        disagree += usize::from(s.get(0, shot) != s.get(1, shot));
    }
    // m1 is a fair coin.
    let dev = (m1_ones as f64 - shots as f64 / 2.0).abs();
    assert!(dev < 6.0 * (shots as f64 / 4.0).sqrt());
    // m1 ⊕ m2 = s1 ⊕ s2 fires with 2·p·(1−p) = 0.375.
    let expect = 0.375 * shots as f64;
    assert!((disagree as f64 - expect).abs() < 6.0 * (expect * 0.625).sqrt());
}

/// Fact 1 sanity at the API level: Pauli gates commute with sampling — a
/// deterministic circuit's samples equal its reference sample everywhere.
#[test]
fn deterministic_circuit_reference_consistency() {
    let circuit = Circuit::parse("X 0\nCX 0 1\nZ 1\nM 0 1\nM 1\n").expect("parses");
    let reference = reference_sample(&circuit);
    let sampler = SymPhaseSampler::new(&circuit);
    // Every expression is constant and equals the reference.
    for (m, e) in sampler.measurement_exprs().iter().enumerate() {
        assert!(e.is_constant());
        assert_eq!(e.constant_term(), reference.get(m));
    }
    let frame = FrameSampler::new(&circuit);
    let fs = frame.sample(500, &mut StdRng::seed_from_u64(5));
    for m in 0..reference.len() {
        for shot in 0..500 {
            assert_eq!(fs.get(m, shot), reference.get(m));
        }
    }
}

/// The reference sample equals the constant term of every symbolic
/// expression — on an arbitrary noisy circuit (noise off + coins 0).
#[test]
fn reference_equals_constant_terms() {
    let circuit = Circuit::parse(
        "\
H 0
CX 0 1
DEPOLARIZE1(0.1) 0 1
X 1
M 0 1
R 0
H 0
M 0
CX rec[-1] 1
M 1
",
    )
    .expect("parses");
    let reference = reference_sample(&circuit);
    let sampler = SymPhaseSampler::new(&circuit);
    for (m, e) in sampler.measurement_exprs().iter().enumerate() {
        assert_eq!(
            e.constant_term(),
            reference.get(m),
            "constant term of m{m} ({e}) disagrees with the reference sample"
        );
    }
}
