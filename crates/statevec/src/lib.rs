//! Dense state-vector simulation: the ground truth for validating the
//! stabilizer engines.
//!
//! Stores all `2^n` complex amplitudes, so it only scales to ~a dozen
//! qubits — exactly enough to statistically cross-check the tableau,
//! Pauli-frame, and SymPhase samplers on small circuits (every stabilizer
//! circuit is also an ordinary quantum circuit).
//!
//! Noise channels are handled by trajectory sampling (a concrete Pauli is
//! drawn per site per shot), and measurements by Born-rule projection.
//!
//! # Example
//!
//! ```
//! use symphase_circuit::generators::bell_pair;
//! use symphase_statevec::StateVecSimulator;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut sim = StateVecSimulator::new(StdRng::seed_from_u64(1));
//! let record = sim.run(&bell_pair());
//! assert_eq!(record.get(0), record.get(1));
//! ```

use rand::{Rng, RngCore};

use symphase_backend::exec::{run_shot, ShotBatcher, ShotState};
use symphase_backend::{BuildError, SampleBatch, Sampler};
use symphase_bitmat::BitVec;
use symphase_circuit::{Circuit, Gate};

/// A complex amplitude.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The complex number `re + i·im`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    pub fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// One.
    pub fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    /// Difference (used by validation tests).
    // Named after the mathematical operation; the type deliberately stays
    // minimal rather than implementing the `std::ops` hierarchy.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

const I: Complex = Complex { re: 0.0, im: 1.0 };
const NEG_I: Complex = Complex { re: 0.0, im: -1.0 };

/// Maximum qubit count the dense simulator accepts (memory guard).
pub const MAX_QUBITS: u32 = 22;

/// A dense state-vector simulator over the same circuit IR as the
/// stabilizer engines.
#[derive(Debug)]
pub struct StateVecSimulator<R: Rng> {
    rng: R,
}

impl<R: Rng> StateVecSimulator<R> {
    /// Creates a simulator driven by `rng`.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Runs one shot of `circuit` from `|0…0⟩`, returning the measurement
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than [`MAX_QUBITS`] qubits.
    pub fn run(&mut self, circuit: &Circuit) -> BitVec {
        let n = circuit.num_qubits();
        assert!(
            n <= MAX_QUBITS,
            "{n} qubits exceed the dense limit {MAX_QUBITS}"
        );
        let mut state = State::zero_state(n as usize);
        run_shot(&mut state, circuit, &mut self.rng, false)
    }
}

/// The dense simulator as a [`Sampler`] backend: every shot is an
/// independent Born-rule trajectory.
///
/// Only meaningful for small circuits (≤ [`MAX_QUBITS`] qubits), where it
/// serves as the quantum-mechanical ground truth the stabilizer engines
/// are validated against.
#[derive(Clone, Debug)]
pub struct StateVecSampler {
    circuit: Circuit,
    batcher: ShotBatcher,
}

impl StateVecSampler {
    /// Builds the backend for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than [`MAX_QUBITS`] qubits; prefer
    /// [`StateVecSampler::try_new`], which reports the cap as a typed
    /// [`BuildError`] instead.
    pub fn new(circuit: &Circuit) -> Self {
        match Self::try_new(circuit) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the backend for `circuit`, failing with
    /// [`BuildError::CircuitTooLarge`] when the circuit exceeds
    /// [`MAX_QUBITS`] qubits (storing `2^n` amplitudes past that point is
    /// hopeless, not slow).
    pub fn try_new(circuit: &Circuit) -> Result<Self, BuildError> {
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(BuildError::CircuitTooLarge {
                engine: "statevec",
                qubits: n,
                max_qubits: MAX_QUBITS,
            });
        }
        Ok(Self {
            circuit: circuit.clone(),
            batcher: ShotBatcher::new(circuit),
        })
    }
}

impl Sampler for StateVecSampler {
    fn name(&self) -> &'static str {
        "statevec"
    }

    fn num_measurements(&self) -> usize {
        self.circuit.num_measurements()
    }

    fn num_detectors(&self) -> usize {
        self.batcher.num_detectors()
    }

    fn num_observables(&self) -> usize {
        self.batcher.num_observables()
    }

    fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore) {
        let n = self.circuit.num_qubits() as usize;
        self.batcher
            .sample_into(&self.circuit, || State::zero_state(n), batch, rng);
    }
}

/// The dense quantum state.
#[derive(Clone, Debug)]
struct State {
    amps: Vec<Complex>,
}

impl State {
    fn zero_state(n: usize) -> Self {
        let mut amps = vec![Complex::zero(); 1 << n];
        amps[0] = Complex::one();
        Self { amps }
    }

    /// Applies a single-qubit gate by its 2×2 matrix action.
    fn apply_1q(&mut self, gate: Gate, q: usize) {
        // Matrix [[a, b], [c, d]] acting on basis |0⟩, |1⟩ of qubit q.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let (a, b, c, d) = match gate {
            Gate::I => return,
            Gate::X => (
                Complex::zero(),
                Complex::one(),
                Complex::one(),
                Complex::zero(),
            ),
            Gate::Y => (Complex::zero(), NEG_I, I, Complex::zero()),
            Gate::Z => (
                Complex::one(),
                Complex::zero(),
                Complex::zero(),
                Complex::new(-1.0, 0.0),
            ),
            Gate::H => (
                Complex::new(s, 0.0),
                Complex::new(s, 0.0),
                Complex::new(s, 0.0),
                Complex::new(-s, 0.0),
            ),
            Gate::S => (Complex::one(), Complex::zero(), Complex::zero(), I),
            Gate::SDag => (Complex::one(), Complex::zero(), Complex::zero(), NEG_I),
            // √X = ½[[1+i, 1−i], [1−i, 1+i]]
            Gate::SqrtX => (
                Complex::new(0.5, 0.5),
                Complex::new(0.5, -0.5),
                Complex::new(0.5, -0.5),
                Complex::new(0.5, 0.5),
            ),
            Gate::SqrtXDag => (
                Complex::new(0.5, -0.5),
                Complex::new(0.5, 0.5),
                Complex::new(0.5, 0.5),
                Complex::new(0.5, -0.5),
            ),
            // √Y = ½[[1+i, −1−i], [1+i, 1+i]]
            Gate::SqrtY => (
                Complex::new(0.5, 0.5),
                Complex::new(-0.5, -0.5),
                Complex::new(0.5, 0.5),
                Complex::new(0.5, 0.5),
            ),
            Gate::SqrtYDag => (
                Complex::new(0.5, -0.5),
                Complex::new(0.5, -0.5),
                Complex::new(-0.5, 0.5),
                Complex::new(0.5, -0.5),
            ),
            // C_XYZ = H·S†: 1/√2 [[1, −i], [1, i]].
            Gate::CXyz => (
                Complex::new(s, 0.0),
                Complex::new(0.0, -s),
                Complex::new(s, 0.0),
                Complex::new(0.0, s),
            ),
            // C_ZYX = S·H: 1/√2 [[1, 1], [i, −i]].
            Gate::CZyx => (
                Complex::new(s, 0.0),
                Complex::new(s, 0.0),
                Complex::new(0.0, s),
                Complex::new(0.0, -s),
            ),
            // H_XY = (X+Y)/√2: 1/√2 [[0, 1−i], [1+i, 0]].
            Gate::HXy => (
                Complex::zero(),
                Complex::new(s, -s),
                Complex::new(s, s),
                Complex::zero(),
            ),
            // H_YZ = (Y+Z)/√2: 1/√2 [[1, −i], [i, −1]].
            Gate::HYz => (
                Complex::new(s, 0.0),
                Complex::new(0.0, -s),
                Complex::new(0.0, s),
                Complex::new(-s, 0.0),
            ),
            _ => unreachable!("two-qubit gate in apply_1q"),
        };
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let (v0, v1) = (self.amps[i], self.amps[j]);
                self.amps[i] = a.mul(v0).add(b.mul(v1));
                self.amps[j] = c.mul(v0).add(d.mul(v1));
            }
        }
    }

    fn apply_2q(&mut self, gate: Gate, a: usize, b: usize) {
        match gate {
            Gate::Cx => {
                let (ca, tb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ca != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz => {
                let (ba, bb) = (1usize << a, 1usize << b);
                for amp_idx in 0..self.amps.len() {
                    if amp_idx & ba != 0 && amp_idx & bb != 0 {
                        self.amps[amp_idx] = self.amps[amp_idx].scale(-1.0);
                    }
                }
            }
            Gate::Cy => {
                let (ca, tb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ca != 0 && i & tb == 0 {
                        let j = i | tb;
                        let (v0, v1) = (self.amps[i], self.amps[j]);
                        // |c1⟩⊗Y: Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                        self.amps[i] = NEG_I.mul(v1);
                        self.amps[j] = I.mul(v0);
                    }
                }
            }
            Gate::Swap => {
                let (ba, bb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ba != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ba) | bb);
                    }
                }
            }
            _ => unreachable!("single-qubit gate in apply_2q"),
        }
    }

    /// Born-rule Z measurement with renormalizing projection.
    fn measure_born(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let bit = 1usize << q;
        let p1: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sq())
            .sum();
        let outcome = rng.random::<f64>() < p1;
        let keep = if outcome { bit } else { 0 };
        let norm = if outcome { p1 } else { 1.0 - p1 };
        let scale = 1.0 / norm.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit == keep {
                *a = a.scale(scale);
            } else {
                *a = Complex::zero();
            }
        }
        outcome
    }
}

impl ShotState for State {
    fn apply_gate(&mut self, gate: Gate, targets: &[u32]) {
        match gate.arity() {
            1 => {
                for &q in targets {
                    self.apply_1q(gate, q as usize);
                }
            }
            _ => {
                for pair in targets.chunks_exact(2) {
                    self.apply_2q(gate, pair[0] as usize, pair[1] as usize);
                }
            }
        }
    }

    // The dense engine is never used for reference sampling (the tableau
    // engine owns that convention), so `reference` is ignored.
    fn measure(&mut self, q: u32, mut rng: &mut dyn RngCore, _reference: bool) -> bool {
        self.measure_born(q as usize, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symphase_circuit::generators::{ghz, teleportation};
    use symphase_circuit::NoiseChannel;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_x_measurement() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure_all();
        let rec = StateVecSimulator::new(rng(1)).run(&c);
        assert!(rec.get(0));
        assert!(!rec.get(1));
    }

    #[test]
    fn bell_outcomes_agree() {
        let c = symphase_circuit::generators::bell_pair();
        let mut ones = 0;
        for seed in 0..64 {
            let rec = StateVecSimulator::new(rng(seed)).run(&c);
            assert_eq!(rec.get(0), rec.get(1));
            ones += usize::from(rec.get(0));
        }
        assert!(ones > 12 && ones < 52);
    }

    #[test]
    fn ghz_consistency() {
        let c = ghz(4);
        for seed in 0..16 {
            let rec = StateVecSimulator::new(rng(seed)).run(&c);
            let ones = rec.iter_ones().count();
            assert!(ones == 0 || ones == 4);
        }
    }

    #[test]
    fn teleportation_verifies() {
        let c = teleportation();
        for seed in 0..32 {
            let rec = StateVecSimulator::new(rng(seed)).run(&c);
            assert!(!rec.get(2), "failed at seed {seed}");
        }
    }

    #[test]
    fn gate_algebra_sanity() {
        // S² = Z, (√X)² = X, H² = I on a superposition probe.
        let probes: Vec<(Gate, Gate, Option<Gate>)> = vec![
            (Gate::S, Gate::S, Some(Gate::Z)),
            (Gate::SqrtX, Gate::SqrtX, Some(Gate::X)),
            (Gate::SqrtY, Gate::SqrtY, Some(Gate::Y)),
            (Gate::H, Gate::H, None),
        ];
        for (g1, g2, equal_to) in probes {
            let mut s1 = State::zero_state(1);
            s1.apply_1q(Gate::H, 0);
            s1.apply_1q(Gate::S, 0); // probe state |0⟩+i|1⟩
            let mut s2 = s1.clone();
            s1.apply_1q(g1, 0);
            s1.apply_1q(g2, 0);
            if let Some(g) = equal_to {
                s2.apply_1q(g, 0);
            }
            for i in 0..2 {
                assert!(
                    (s1.amps[i].sub(s2.amps[i])).norm_sq() < 1e-20,
                    "{g1}{g2} ≠ {equal_to:?} at amp {i}"
                );
            }
        }
    }

    #[test]
    fn sqrt_gates_match_conjugation_direction() {
        // SQRT_X applied to |0⟩ then measured in Y basis must match the
        // stabilizer convention Z → −Y: state √X|0⟩ has ⟨Y⟩ = −1.
        let mut s = State::zero_state(1);
        s.apply_1q(Gate::SqrtX, 0);
        // ⟨Y⟩ = 2·Im(a0* · a1)
        let y_exp = 2.0 * (s.amps[0].re * s.amps[1].im - s.amps[0].im * s.amps[1].re);
        assert!((y_exp + 1.0).abs() < 1e-12, "⟨Y⟩ = {y_exp}, expected −1");
    }

    /// Verifies every single-qubit gate's matrix against the reference
    /// conjugation semantics: U P U† must equal the SmallPauli image, as a
    /// 2×2 matrix identity.
    #[test]
    fn all_1q_matrices_match_conjugation_semantics() {
        use symphase_circuit::SmallPauli;
        // Pauli matrices as flat [a, b, c, d].
        let pauli_matrix = |x: bool, z: bool, neg: bool| -> [Complex; 4] {
            let m: [Complex; 4] = match (x, z) {
                (false, false) => [
                    Complex::one(),
                    Complex::zero(),
                    Complex::zero(),
                    Complex::one(),
                ],
                (true, false) => [
                    Complex::zero(),
                    Complex::one(),
                    Complex::one(),
                    Complex::zero(),
                ],
                (false, true) => [
                    Complex::one(),
                    Complex::zero(),
                    Complex::zero(),
                    Complex::new(-1.0, 0.0),
                ],
                (true, true) => [Complex::zero(), NEG_I, I, Complex::zero()],
            };
            if neg {
                m.map(|c| c.scale(-1.0))
            } else {
                m
            }
        };
        let apply_gate_matrix = |gate: Gate, v: [Complex; 2]| -> [Complex; 2] {
            // Reuse the simulator's own matrix by acting on a 1-qubit state.
            let mut st = State { amps: v.to_vec() };
            st.apply_1q(gate, 0);
            [st.amps[0], st.amps[1]]
        };
        for gate in Gate::ALL {
            if gate.arity() != 1 || gate == Gate::I {
                continue;
            }
            for (x, z, name) in [(true, false, "X"), (false, true, "Z"), (true, true, "Y")] {
                let mut input = SmallPauli::two(x, z, false, false);
                if x && z {
                    input = input.phased(1);
                }
                let image = gate.conjugate(input);
                let expect = pauli_matrix(image.x0, image.z0, image.sign_is_negative());
                // Compute U·P·U† column by column: (U P U†) e_k.
                for k in 0..2 {
                    let e_k = [
                        Complex::new(f64::from(u8::from(k == 0)), 0.0),
                        Complex::new(f64::from(u8::from(k == 1)), 0.0),
                    ];
                    // U† = inverse gate's matrix.
                    let v = apply_gate_matrix(gate.inverse(), e_k);
                    let p = pauli_matrix(x, z, false);
                    let pv = [
                        p[0].mul(v[0]).add(p[1].mul(v[1])),
                        p[2].mul(v[0]).add(p[3].mul(v[1])),
                    ];
                    let got = apply_gate_matrix(gate, pv);
                    let want = [expect[k], expect[2 + k]];
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            g.sub(*w).norm_sq() < 1e-18,
                            "{gate} conjugating {name}: got {g:?}, want {w:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unitarity_preserved() {
        let mut s = State::zero_state(3);
        for (g, q) in [
            (Gate::H, 0),
            (Gate::S, 1),
            (Gate::SqrtY, 2),
            (Gate::SqrtXDag, 0),
        ] {
            s.apply_1q(g, q);
        }
        s.apply_2q(Gate::Cx, 0, 1);
        s.apply_2q(Gate::Cz, 1, 2);
        s.apply_2q(Gate::Cy, 2, 0);
        s.apply_2q(Gate::Swap, 0, 2);
        let norm: f64 = s.amps.iter().map(|a| a.norm_sq()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_collapse_is_repeatable() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        c.measure(0);
        for seed in 0..16 {
            let rec = StateVecSimulator::new(rng(seed)).run(&c);
            assert_eq!(rec.get(0), rec.get(1));
        }
    }

    #[test]
    fn noise_probability_one() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.measure(0);
        let rec = StateVecSimulator::new(rng(3)).run(&c);
        assert!(rec.get(0));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_qubits_rejected() {
        let c = Circuit::new(30);
        StateVecSimulator::new(rng(0)).run(&c);
    }

    #[test]
    fn structured_repeat_streams_through_the_driver() {
        // Feedback inside the REPEAT body reaches the previous
        // iteration's measurement: iteration 1 reads the pre-block
        // outcome (1 → flip qubit 1 to |1⟩), iteration 2 reads iteration
        // 1's outcome (1 → flip back to |0⟩), and every later iteration
        // reads 0 and leaves it there.
        let c = Circuit::parse("X 0\nM 0\nREPEAT 5 {\n CX rec[-1] 1\n M 1\n}\n").unwrap();
        let expect = [true, true, false, false, false, false];
        for seed in 0..4 {
            let rec = StateVecSimulator::new(rng(seed)).run(&c);
            for (m, &want) in expect.iter().enumerate() {
                assert_eq!(rec.get(m), want, "outcome {m}");
            }
        }
    }
}
