//! Property tests for the circuit IR and text format.

use proptest::prelude::*;

use symphase_circuit::{Circuit, Gate, Instruction, NoiseChannel, PauliKind, SmallPauli};

/// Strategy producing an arbitrary valid circuit.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    let qubits = 2u32..8;
    qubits.prop_flat_map(|n| {
        let step = prop_oneof![
            // Single-qubit gate
            (0usize..11, 0..n).prop_map(|(g, q)| StepSpec::Gate1(g, q)),
            // Two-qubit gate
            (0usize..4, 0..n, 1..n).prop_map(|(g, a, off)| StepSpec::Gate2(g, a, off)),
            // Noise
            (0usize..4, 0..n, 0.0f64..=1.0).prop_map(|(k, q, p)| StepSpec::Noise(k, q, p)),
            (0..n).prop_map(StepSpec::Measure),
            (0..n).prop_map(StepSpec::Reset),
            (0..n).prop_map(StepSpec::MeasureReset),
            (0..n).prop_map(StepSpec::Feedback),
            Just(StepSpec::Tick),
        ];
        proptest::collection::vec(step, 0..40).prop_map(move |steps| build(n, &steps))
    })
}

#[derive(Clone, Debug)]
enum StepSpec {
    Gate1(usize, u32),
    Gate2(usize, u32, u32),
    Noise(usize, u32, f64),
    Measure(u32),
    Reset(u32),
    MeasureReset(u32),
    Feedback(u32),
    Tick,
}

const G1: [Gate; 11] = [
    Gate::I,
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::SDag,
    Gate::SqrtX,
    Gate::SqrtY,
    Gate::CXyz,
    Gate::HXy,
];
const G2: [Gate; 4] = [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap];

fn build(n: u32, steps: &[StepSpec]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut measured = 0usize;
    for s in steps {
        match *s {
            StepSpec::Gate1(g, q) => {
                c.gate(G1[g], &[q]);
            }
            StepSpec::Gate2(g, a, off) => {
                let b = (a + off) % n;
                if a != b {
                    c.gate(G2[g], &[a, b]);
                }
            }
            StepSpec::Noise(k, q, p) => {
                let ch = match k {
                    0 => NoiseChannel::XError(p),
                    1 => NoiseChannel::YError(p),
                    2 => NoiseChannel::ZError(p),
                    _ => NoiseChannel::Depolarize1(p),
                };
                c.noise(ch, &[q]);
            }
            StepSpec::Measure(q) => {
                c.measure(q);
                measured += 1;
            }
            StepSpec::Reset(q) => {
                c.reset(q);
            }
            StepSpec::MeasureReset(q) => {
                c.measure_reset(q);
                measured += 1;
            }
            StepSpec::Feedback(q) => {
                if measured > 0 {
                    c.feedback(PauliKind::Z, -1, q);
                }
            }
            StepSpec::Tick => {
                c.tick();
            }
        }
    }
    if measured > 0 {
        c.detector(&[-1]);
        c.observable_include(0, &[-1]);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The text format round-trips every circuit: instructions and stats
    /// are preserved exactly. (The qubit *count* is implied by usage, as in
    /// Stim, so qubits never referenced by any instruction are not
    /// round-tripped.)
    #[test]
    fn text_roundtrip(c in circuit_strategy()) {
        let text = c.to_string();
        let parsed = Circuit::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed.instructions(), c.instructions());
        prop_assert_eq!(parsed.stats(), c.stats());
        prop_assert!(parsed.num_qubits() <= c.num_qubits());
    }

    /// Stats recomputed from scratch match the incrementally tracked ones.
    #[test]
    fn stats_match_recount(c in circuit_strategy()) {
        let s = c.stats();
        let mut gates = 0;
        let mut meas = 0;
        let mut sites = 0;
        let mut syms = 0;
        for inst in c.instructions() {
            match inst {
                Instruction::Gate { gate, targets } => gates += targets.len() / gate.arity(),
                Instruction::Measure { targets } => meas += targets.len(),
                Instruction::MeasureReset { targets } => meas += targets.len(),
                Instruction::Noise { channel, targets } => {
                    let k = targets.len() / channel.arity();
                    sites += k;
                    syms += k * channel.symbols_per_application();
                }
                _ => {}
            }
        }
        prop_assert_eq!(s.gates, gates);
        prop_assert_eq!(s.measurements, meas);
        prop_assert_eq!(s.noise_sites, sites);
        prop_assert_eq!(s.noise_symbols, syms);
    }

    /// Conjugation by any gate is a group automorphism on arbitrary
    /// products of Paulis.
    #[test]
    fn conjugation_homomorphism(
        gate_idx in 0usize..Gate::ALL.len(),
        bits in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()), 2..6),
    ) {
        let gate = Gate::ALL[gate_idx];
        let paulis: Vec<SmallPauli> = bits
            .iter()
            .map(|&(x0, z0, x1, z1)| {
                if gate.arity() == 1 {
                    SmallPauli::two(x0, z0, false, false)
                } else {
                    SmallPauli::two(x0, z0, x1, z1)
                }
            })
            .collect();
        let product = paulis.iter().fold(SmallPauli::identity(), |acc, p| acc.mul(*p));
        let conj_of_product = gate.conjugate(product);
        let product_of_conj = paulis
            .iter()
            .fold(SmallPauli::identity(), |acc, p| acc.mul(gate.conjugate(*p)));
        prop_assert_eq!(conj_of_product, product_of_conj);
    }

    /// `inverse()` really inverts the conjugation action.
    #[test]
    fn inverse_undoes_conjugation(
        gate_idx in 0usize..Gate::ALL.len(),
        x0 in any::<bool>(), z0 in any::<bool>(),
        x1 in any::<bool>(), z1 in any::<bool>(),
    ) {
        let gate = Gate::ALL[gate_idx];
        let p = if gate.arity() == 1 {
            SmallPauli::two(x0, z0, false, false)
        } else {
            SmallPauli::two(x0, z0, x1, z1)
        };
        prop_assert_eq!(gate.inverse().conjugate(gate.conjugate(p)), p);
    }
}
