//! Property tests for the circuit IR and text format.

use proptest::prelude::*;
use proptest::{BoxedStrategy, Union};

use symphase_circuit::{Block, Circuit, Gate, Instruction, NoiseChannel, PauliKind, SmallPauli};

/// Strategy producing an arbitrary valid circuit, including nested
/// `REPEAT` blocks whose lookbacks may cross iteration boundaries.
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    let qubits = 2u32..8;
    qubits.prop_flat_map(|n| steps_strategy(n, 2).prop_map(move |steps| build(n, &steps)))
}

/// Recursive step strategy: `depth` limits `REPEAT` nesting.
fn steps_strategy(n: u32, depth: usize) -> BoxedStrategy<Vec<StepSpec>> {
    let mut arms: Vec<BoxedStrategy<StepSpec>> = vec![
        // Single-qubit gate
        (0usize..11, 0..n)
            .prop_map(|(g, q)| StepSpec::Gate1(g, q))
            .boxed(),
        // Two-qubit gate
        (0usize..4, 0..n, 1..n)
            .prop_map(|(g, a, off)| StepSpec::Gate2(g, a, off))
            .boxed(),
        // Single-qubit noise, all channels (probability formatting is part
        // of the round-trip surface).
        (0usize..5, 0..n, 0.0f64..=1.0)
            .prop_map(|(k, q, p)| StepSpec::Noise(k, q, p))
            .boxed(),
        // Two-qubit depolarizing over a distinct pair.
        (0..n, 1..n, 0.0f64..=1.0)
            .prop_map(|(a, off, p)| StepSpec::Noise2(a, off, p))
            .boxed(),
        (0..n, 0usize..3)
            .prop_map(|(q, b)| StepSpec::Measure(q, b))
            .boxed(),
        (0..n, 0usize..3)
            .prop_map(|(q, b)| StepSpec::Reset(q, b))
            .boxed(),
        (0..n, 0usize..3)
            .prop_map(|(q, b)| StepSpec::MeasureReset(q, b))
            .boxed(),
        // Pauli-product measurement over up to three distinct qubits.
        (0..n, 1..n, 0usize..27)
            .prop_map(|(a, off, basis3)| StepSpec::Mpp(a, off, basis3))
            .boxed(),
        // Correlated error chain: one E, optionally one ELSE element.
        (0..n, 1..n, 0.0f64..=1.0, any::<bool>())
            .prop_map(|(a, off, p, with_else)| StepSpec::Correlated(a, off, p, with_else))
            .boxed(),
        // 15-probability two-qubit channel (scaled to a valid sum).
        (0..n, 1..n, 0.0f64..=1.0)
            .prop_map(|(a, off, p)| StepSpec::PauliChannel2(a, off, p))
            .boxed(),
        // Coordinate annotations (metadata round-trip surface).
        (0..n, -4.0f64..4.0, -4.0f64..4.0)
            .prop_map(|(q, x, y)| StepSpec::QubitCoords(q, x, y))
            .boxed(),
        (-4.0f64..4.0).prop_map(StepSpec::ShiftCoords).boxed(),
        // Detector coordinate arguments.
        (1usize..3, -4.0f64..4.0)
            .prop_map(|(d, x)| StepSpec::DetectorAt(d, x))
            .boxed(),
        // Feedback and detectors reach up to two outcomes back, which
        // inside a REPEAT body can cross into the previous iteration.
        (0..n, 1usize..3)
            .prop_map(|(q, d)| StepSpec::Feedback(q, d))
            .boxed(),
        (1usize..3).prop_map(StepSpec::DetectorPair).boxed(),
        Just(StepSpec::Observable).boxed(),
        Just(StepSpec::Tick).boxed(),
    ];
    if depth > 0 {
        let inner = steps_strategy(n, depth - 1);
        arms.push(
            (1u64..4, inner)
                .prop_map(|(count, body)| StepSpec::Repeat(count, body))
                .boxed(),
        );
    }
    proptest::collection::vec(Union(arms), 0..20).boxed()
}

#[derive(Clone, Debug)]
enum StepSpec {
    Gate1(usize, u32),
    Gate2(usize, u32, u32),
    Noise(usize, u32, f64),
    Noise2(u32, u32, f64),
    /// Measure qubit in basis index (0=Z, 1=X, 2=Y).
    Measure(u32, usize),
    Reset(u32, usize),
    MeasureReset(u32, usize),
    /// `MPP` over up to three distinct qubits; `basis3` encodes three
    /// Pauli letters base-3.
    Mpp(u32, u32, usize),
    /// `E(p) …` over a distinct pair, optionally followed by an
    /// `ELSE_CORRELATED_ERROR` chain element.
    Correlated(u32, u32, f64, bool),
    /// `PAULI_CHANNEL_2` with probabilities scaled from `p`.
    PauliChannel2(u32, u32, f64),
    QubitCoords(u32, f64, f64),
    ShiftCoords(f64),
    /// `DETECTOR(x) rec[-1] … rec[-d]`.
    DetectorAt(usize, f64),
    /// Feedback on qubit, with the given lookback depth (clamped to the
    /// available record).
    Feedback(u32, usize),
    /// `DETECTOR rec[-1] … rec[-d]` (clamped to the available record).
    DetectorPair(usize),
    Observable,
    Tick,
    Repeat(u64, Vec<StepSpec>),
}

const BASES: [PauliKind; 3] = [PauliKind::Z, PauliKind::X, PauliKind::Y];

const G1: [Gate; 11] = [
    Gate::I,
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::SDag,
    Gate::SqrtX,
    Gate::SqrtY,
    Gate::CXyz,
    Gate::HXy,
];
const G2: [Gate; 4] = [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap];

/// Lowers step specs to instructions. `available` tracks the record
/// length at the current point of the *first* execution of this sequence
/// (entering a `REPEAT` body: the record before the block), which is
/// exactly the reach every lookback must stay within for validity.
fn lower(n: u32, steps: &[StepSpec], available: &mut usize) -> Vec<Instruction> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            StepSpec::Gate1(g, q) => out.push(Instruction::Gate {
                gate: G1[*g],
                targets: vec![*q],
            }),
            StepSpec::Gate2(g, a, off) => {
                let b = (a + off) % n;
                if *a != b {
                    out.push(Instruction::Gate {
                        gate: G2[*g],
                        targets: vec![*a, b],
                    });
                }
            }
            StepSpec::Noise(k, q, p) => {
                let ch = match k {
                    0 => NoiseChannel::XError(*p),
                    1 => NoiseChannel::YError(*p),
                    2 => NoiseChannel::ZError(*p),
                    3 => NoiseChannel::Depolarize1(*p),
                    _ => NoiseChannel::PauliChannel1 {
                        px: p * 0.25,
                        py: p * 0.5,
                        pz: p * 0.25,
                    },
                };
                out.push(Instruction::Noise {
                    channel: ch,
                    targets: vec![*q],
                });
            }
            StepSpec::Noise2(a, off, p) => {
                let b = (a + off) % n;
                if *a != b {
                    out.push(Instruction::Noise {
                        channel: NoiseChannel::Depolarize2(*p),
                        targets: vec![*a, b],
                    });
                }
            }
            StepSpec::Measure(q, b) => {
                out.push(Instruction::Measure {
                    basis: BASES[*b],
                    targets: vec![*q],
                });
                *available += 1;
            }
            StepSpec::Reset(q, b) => out.push(Instruction::Reset {
                basis: BASES[*b],
                targets: vec![*q],
            }),
            StepSpec::MeasureReset(q, b) => {
                out.push(Instruction::MeasureReset {
                    basis: BASES[*b],
                    targets: vec![*q],
                });
                *available += 1;
            }
            StepSpec::Mpp(a, off, basis3) => {
                // Up to three distinct qubits with the encoded bases.
                let qubits = [*a, (*a + *off) % n, (*a + 2 * *off) % n];
                let mut product: Vec<(PauliKind, u32)> = Vec::new();
                for (i, &q) in qubits.iter().enumerate() {
                    if product.iter().any(|&(_, seen)| seen == q) {
                        continue;
                    }
                    product.push((BASES[(basis3 / 3usize.pow(i as u32)) % 3], q));
                }
                out.push(Instruction::MeasurePauliProduct {
                    products: vec![product],
                });
                *available += 1;
            }
            StepSpec::Correlated(a, off, p, with_else) => {
                let b = (a + off) % n;
                let product = if *a == b {
                    vec![(PauliKind::X, *a)]
                } else {
                    vec![(PauliKind::X, *a), (PauliKind::Z, b)]
                };
                out.push(Instruction::CorrelatedError {
                    probability: *p,
                    product,
                    else_branch: false,
                });
                if *with_else {
                    out.push(Instruction::CorrelatedError {
                        probability: 1.0 - *p,
                        product: vec![(PauliKind::Y, *a)],
                        else_branch: true,
                    });
                }
            }
            StepSpec::PauliChannel2(a, off, p) => {
                let b = (a + off) % n;
                if *a != b {
                    let mut probs = [0.0; 15];
                    for (i, slot) in probs.iter_mut().enumerate() {
                        *slot = p * (i + 1) as f64 / 240.0; // sums to p/2
                    }
                    out.push(Instruction::Noise {
                        channel: NoiseChannel::PauliChannel2 { probs },
                        targets: vec![*a, b],
                    });
                }
            }
            StepSpec::QubitCoords(q, x, y) => out.push(Instruction::QubitCoords {
                coords: vec![*x, *y],
                targets: vec![*q],
            }),
            StepSpec::ShiftCoords(x) => out.push(Instruction::ShiftCoords { coords: vec![*x] }),
            StepSpec::DetectorAt(depth, x) => {
                let d = (*depth).min(*available);
                if d > 0 {
                    out.push(Instruction::Detector {
                        coords: vec![*x],
                        lookbacks: (1..=d as i64).map(|k| -k).collect(),
                    });
                }
            }
            StepSpec::Feedback(q, depth) => {
                let d = (*depth).min(*available);
                if d > 0 {
                    out.push(Instruction::Feedback {
                        pauli: PauliKind::Z,
                        lookback: -(d as i64),
                        target: *q,
                    });
                }
            }
            StepSpec::DetectorPair(depth) => {
                let d = (*depth).min(*available);
                if d > 0 {
                    out.push(Instruction::Detector {
                        coords: vec![],
                        lookbacks: (1..=d as i64).map(|k| -k).collect(),
                    });
                }
            }
            StepSpec::Observable => {
                if *available > 0 {
                    out.push(Instruction::ObservableInclude {
                        index: 0,
                        lookbacks: vec![-1],
                    });
                }
            }
            StepSpec::Tick => out.push(Instruction::Tick),
            StepSpec::Repeat(count, body_steps) => {
                let before = *available;
                let body_insts = lower(n, body_steps, available);
                let per_iteration = *available - before;
                if body_insts.is_empty() {
                    continue;
                }
                let mut block = Block::new();
                for inst in body_insts {
                    block.push(inst);
                }
                out.push(Instruction::Repeat {
                    count: *count,
                    body: Box::new(block),
                });
                // Later iterations extend the record too.
                *available = before + per_iteration * (*count as usize);
            }
        }
    }
    out
}

fn build(n: u32, steps: &[StepSpec]) -> Circuit {
    let mut c = Circuit::new(n);
    let mut available = 0usize;
    for inst in lower(n, steps, &mut available) {
        c.push(inst);
    }
    if available > 0 {
        c.detector(&[-1]);
        c.observable_include(0, &[-1]);
    } else {
        // Keep the strategy's post-filter simple: always measure once.
        c.measure(0);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The text format round-trips every circuit **structurally**:
    /// `REPEAT` blocks, instructions, and stats are preserved exactly —
    /// not merely the flattened semantics. (The qubit *count* is implied
    /// by usage, as in Stim, so qubits never referenced by any
    /// instruction are not round-tripped.)
    #[test]
    fn text_roundtrip(c in circuit_strategy()) {
        let text = c.to_string();
        let parsed = Circuit::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed.instructions(), c.instructions());
        prop_assert_eq!(parsed.stats(), c.stats());
        prop_assert!(parsed.num_qubits() <= c.num_qubits());
        // A second round trip is the identity on the text itself.
        prop_assert_eq!(parsed.to_string(), text);
    }

    /// Stats computed from structure match a recount over the streaming
    /// flattened traversal (`REPEAT` bodies counted once per iteration).
    #[test]
    fn stats_match_streamed_recount(c in circuit_strategy()) {
        let s = c.stats();
        let mut gates = 0;
        let mut meas = 0;
        let mut resets = 0;
        let mut sites = 0;
        let mut syms = 0;
        let mut detectors = 0;
        let mut feedback = 0;
        for inst in c.flat_instructions() {
            match inst {
                Instruction::Gate { gate, targets } => gates += targets.len() / gate.arity(),
                Instruction::Measure { targets, .. } => meas += targets.len(),
                Instruction::MeasureReset { targets, .. } => {
                    meas += targets.len();
                    resets += targets.len();
                }
                Instruction::Reset { targets, .. } => resets += targets.len(),
                Instruction::MeasurePauliProduct { products } => meas += products.len(),
                Instruction::Noise { channel, targets } => {
                    let k = targets.len() / channel.arity();
                    sites += k;
                    syms += k * channel.symbols_per_application();
                }
                Instruction::CorrelatedError { .. } => {
                    sites += 1;
                    syms += 1;
                }
                Instruction::Detector { .. } => detectors += 1,
                Instruction::Feedback { .. } => feedback += 1,
                Instruction::ObservableInclude { .. }
                | Instruction::Tick
                | Instruction::QubitCoords { .. }
                | Instruction::ShiftCoords { .. } => {}
                Instruction::Repeat { .. } => panic!("flat traversal yielded a REPEAT"),
            }
        }
        prop_assert_eq!(s.gates, gates);
        prop_assert_eq!(s.measurements, meas);
        prop_assert_eq!(s.resets, resets);
        prop_assert_eq!(s.noise_sites, sites);
        prop_assert_eq!(s.noise_symbols, syms);
        prop_assert_eq!(s.detectors, detectors);
        prop_assert_eq!(s.feedback_ops, feedback);
    }

    /// Materializing the streaming traversal is semantically faithful:
    /// the flattened circuit validates, has identical stats, and streams
    /// the same instruction sequence.
    #[test]
    fn flattened_is_valid_and_equivalent(c in circuit_strategy()) {
        let flat = c.flattened();
        prop_assert_eq!(flat.stats(), c.stats());
        prop_assert!(flat
            .instructions()
            .iter()
            .all(|i| !matches!(i, Instruction::Repeat { .. })));
        let a: Vec<&Instruction> = c.flat_instructions().collect();
        let b: Vec<&Instruction> = flat.instructions().iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Conjugation by any gate is a group automorphism on arbitrary
    /// products of Paulis.
    #[test]
    fn conjugation_homomorphism(
        gate_idx in 0usize..Gate::ALL.len(),
        bits in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()), 2..6),
    ) {
        let gate = Gate::ALL[gate_idx];
        let paulis: Vec<SmallPauli> = bits
            .iter()
            .map(|&(x0, z0, x1, z1)| {
                if gate.arity() == 1 {
                    SmallPauli::two(x0, z0, false, false)
                } else {
                    SmallPauli::two(x0, z0, x1, z1)
                }
            })
            .collect();
        let product = paulis.iter().fold(SmallPauli::identity(), |acc, p| acc.mul(*p));
        let conj_of_product = gate.conjugate(product);
        let product_of_conj = paulis
            .iter()
            .fold(SmallPauli::identity(), |acc, p| acc.mul(gate.conjugate(*p)));
        prop_assert_eq!(conj_of_product, product_of_conj);
    }

    /// `inverse()` really inverts the conjugation action.
    #[test]
    fn inverse_undoes_conjugation(
        gate_idx in 0usize..Gate::ALL.len(),
        x0 in any::<bool>(), z0 in any::<bool>(),
        x1 in any::<bool>(), z1 in any::<bool>(),
    ) {
        let gate = Gate::ALL[gate_idx];
        let p = if gate.arity() == 1 {
            SmallPauli::two(x0, z0, false, false)
        } else {
            SmallPauli::two(x0, z0, x1, z1)
        };
        prop_assert_eq!(gate.inverse().conjugate(gate.conjugate(p)), p);
    }
}
