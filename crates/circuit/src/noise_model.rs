//! Circuit-level noise decoration: turn a clean circuit into a noisy one.
//!
//! Mirrors the convenience of Stim's generated circuits: given a noiseless
//! circuit, insert depolarizing noise after every Clifford gate, bit-flip
//! noise before every measurement, and reset noise after every reset.

use crate::{Block, Circuit, Instruction, NoiseChannel, PauliKind};

/// The error channel that flips outcomes of a measurement (or corrupts a
/// reset) in the given basis: any Pauli anticommuting with the basis
/// Pauli. `X_ERROR` for Z-basis operations, `Z_ERROR` for X-basis,
/// `X_ERROR` for Y-basis.
fn flip_channel(basis: PauliKind, p: f64) -> NoiseChannel {
    match basis {
        PauliKind::Z | PauliKind::Y => NoiseChannel::XError(p),
        PauliKind::X => NoiseChannel::ZError(p),
    }
}

/// Parameters for [`with_noise`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// `DEPOLARIZE1` strength after every single-qubit gate (0 disables).
    pub after_1q_gate: f64,
    /// `DEPOLARIZE2` strength after every two-qubit gate (0 disables).
    pub after_2q_gate: f64,
    /// `X_ERROR` strength immediately before every measurement (flips the
    /// recorded outcome).
    pub before_measure: f64,
    /// `X_ERROR` strength after every reset (imperfect reset).
    pub after_reset: f64,
}

impl NoiseModel {
    /// A uniform circuit-level depolarizing model at strength `p` (the
    /// common single-parameter model in QEC papers).
    pub fn uniform(p: f64) -> Self {
        Self {
            after_1q_gate: p,
            after_2q_gate: p,
            before_measure: p,
            after_reset: p,
        }
    }

    /// No noise at all.
    pub fn none() -> Self {
        Self {
            after_1q_gate: 0.0,
            after_2q_gate: 0.0,
            before_measure: 0.0,
            after_reset: 0.0,
        }
    }
}

/// Returns a copy of `circuit` with `model`'s noise channels inserted.
///
/// Existing noise instructions are preserved; `TICK`s and annotations are
/// kept in place. Measurement-and-reset (`MR`) gets both the before-measure
/// and after-reset channels. `REPEAT` blocks keep their structure: the
/// decoration recurses into the body once, so a million-round block is
/// decorated in O(body).
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::ghz;
/// use symphase_circuit::noise_model::{with_noise, NoiseModel};
///
/// let noisy = with_noise(&ghz(3), &NoiseModel::uniform(1e-3));
/// assert!(noisy.stats().noise_sites > 0);
/// assert_eq!(noisy.num_measurements(), 3);
/// ```
pub fn with_noise(circuit: &Circuit, model: &NoiseModel) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    decorate(circuit.instructions(), model, &mut |inst| out.push(inst));
    out
}

/// Pushes the decorated form of every instruction through `push`,
/// recursing into `REPEAT` bodies (which are rebuilt as blocks, not
/// flattened).
fn decorate(instructions: &[Instruction], model: &NoiseModel, push: &mut dyn FnMut(Instruction)) {
    for inst in instructions {
        match inst {
            Instruction::Gate { gate, targets } => {
                push(inst.clone());
                if gate.arity() == 1 {
                    if model.after_1q_gate > 0.0 && *gate != crate::Gate::I {
                        push(Instruction::Noise {
                            channel: NoiseChannel::Depolarize1(model.after_1q_gate),
                            targets: targets.clone(),
                        });
                    }
                } else if model.after_2q_gate > 0.0 {
                    push(Instruction::Noise {
                        channel: NoiseChannel::Depolarize2(model.after_2q_gate),
                        targets: targets.clone(),
                    });
                }
            }
            Instruction::Measure { basis, targets }
            | Instruction::MeasureReset { basis, targets } => {
                if model.before_measure > 0.0 {
                    push(Instruction::Noise {
                        channel: flip_channel(*basis, model.before_measure),
                        targets: targets.clone(),
                    });
                }
                push(inst.clone());
                if matches!(inst, Instruction::MeasureReset { .. }) && model.after_reset > 0.0 {
                    push(Instruction::Noise {
                        channel: flip_channel(*basis, model.after_reset),
                        targets: targets.clone(),
                    });
                }
            }
            Instruction::Reset { basis, targets } => {
                push(inst.clone());
                if model.after_reset > 0.0 {
                    push(Instruction::Noise {
                        channel: flip_channel(*basis, model.after_reset),
                        targets: targets.clone(),
                    });
                }
            }
            Instruction::MeasurePauliProduct { products } => {
                // Flip each product's outcome with the before-measure
                // strength: a single-qubit Pauli anticommuting with the
                // product's first factor, on that factor's qubit.
                if model.before_measure > 0.0 {
                    for product in products {
                        let &(kind, q) = product.first().expect("products are non-empty");
                        push(Instruction::Noise {
                            channel: flip_channel(kind, model.before_measure),
                            targets: vec![q],
                        });
                    }
                }
                push(inst.clone());
            }
            Instruction::Repeat { count, body } => {
                let mut decorated = Block::new();
                decorate(body.instructions(), model, &mut |inner| {
                    decorated.push(inner)
                });
                push(Instruction::Repeat {
                    count: *count,
                    body: Box::new(decorated),
                });
            }
            other => push(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn uniform_model_inserts_everywhere() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.reset(1);
        c.measure_reset(0);
        c.measure(1);
        let noisy = with_noise(&c, &NoiseModel::uniform(0.01));
        // H → dep1; CX → dep2; reset → x; MR → x before + x after; M → x.
        assert_eq!(noisy.stats().noise_sites, 6);
        // Gate/measurement structure is unchanged.
        assert_eq!(noisy.stats().gates, c.stats().gates);
        assert_eq!(noisy.num_measurements(), c.num_measurements());
    }

    #[test]
    fn none_model_is_identity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        assert_eq!(with_noise(&c, &NoiseModel::none()), c);
    }

    #[test]
    fn identity_gates_get_no_noise() {
        let mut c = Circuit::new(1);
        c.gate(Gate::I, &[0]);
        let noisy = with_noise(&c, &NoiseModel::uniform(0.5));
        assert_eq!(noisy.stats().noise_sites, 0);
    }

    #[test]
    fn annotations_survive() {
        let mut c = Circuit::new(1);
        c.measure(0);
        c.detector(&[-1]);
        c.observable_include(0, &[-1]);
        c.tick();
        let noisy = with_noise(&c, &NoiseModel::uniform(0.01));
        assert_eq!(noisy.num_detectors(), 1);
        assert_eq!(noisy.num_observables(), 1);
    }

    #[test]
    fn repeat_blocks_decorated_in_place() {
        let mut c = Circuit::new(2);
        c.repeat_with(1000, |b| {
            b.h(0);
            b.measure_many(&[0]);
        });
        let noisy = with_noise(&c, &NoiseModel::uniform(0.01));
        // The structure survives: one REPEAT node, body decorated once.
        assert_eq!(noisy.instructions().len(), 1);
        match &noisy.instructions()[0] {
            Instruction::Repeat { count, body } => {
                assert_eq!(*count, 1000);
                // H → dep1; X before M: 2 sites per iteration.
                assert_eq!(body.stats().noise_sites, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(noisy.stats().noise_sites, 2000);
        assert_eq!(noisy.num_measurements(), c.num_measurements());
    }

    #[test]
    fn basis_measurements_get_anticommuting_flips() {
        let mut c = Circuit::new(2);
        c.measure_in(PauliKind::X, 0);
        c.measure_reset_in(PauliKind::Y, 1);
        let noisy = with_noise(&c, &NoiseModel::uniform(0.25));
        // MX gets a Z flip before; MRY gets X flips before and after.
        assert_eq!(
            noisy.instructions()[0],
            Instruction::Noise {
                channel: NoiseChannel::ZError(0.25),
                targets: vec![0],
            }
        );
        assert_eq!(noisy.stats().noise_sites, 3);
    }

    #[test]
    fn mpp_products_get_flip_noise() {
        let mut c = Circuit::new(3);
        c.measure_pauli_products(&[
            &[(PauliKind::X, 0), (PauliKind::X, 1)],
            &[(PauliKind::Z, 1), (PauliKind::Z, 2)],
        ]);
        let noisy = with_noise(&c, &NoiseModel::uniform(0.125));
        // One flip per product: Z on the X-product's anchor, X on the
        // Z-product's anchor, both before the MPP instruction.
        assert_eq!(
            noisy.instructions()[0],
            Instruction::Noise {
                channel: NoiseChannel::ZError(0.125),
                targets: vec![0],
            }
        );
        assert_eq!(
            noisy.instructions()[1],
            Instruction::Noise {
                channel: NoiseChannel::XError(0.125),
                targets: vec![1],
            }
        );
        assert!(matches!(
            noisy.instructions()[2],
            Instruction::MeasurePauliProduct { .. }
        ));
        assert_eq!(noisy.stats().noise_sites, 2);
        assert_eq!(noisy.num_measurements(), 2);
    }

    #[test]
    fn existing_noise_preserved() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.125), &[0]);
        c.measure(0);
        let noisy = with_noise(&c, &NoiseModel::uniform(0.01));
        assert_eq!(noisy.stats().noise_sites, 2);
    }
}
