//! Streaming traversal of structured circuits.
//!
//! [`FlatInstructions`] walks a circuit in flattened execution order
//! without ever materializing `REPEAT` expansions: a `REPEAT 1000000 { … }`
//! block is revisited by rewinding a cursor over its body slice, so the
//! traversal costs O(maximum nesting depth) memory however deep the
//! circuit runs. This is the iterator every engine (symbolic
//! initialization, the shared single-shot driver, the Pauli-frame batch
//! sampler, detector/observable resolution) traverses instead of indexing
//! a flattened `Vec`.

use crate::instruction::Instruction;

/// Iterator over the flattened execution order of an instruction
/// sequence, expanding [`Instruction::Repeat`] blocks lazily.
///
/// `Repeat` nodes themselves are never yielded — only the executable
/// instructions of their bodies, once per iteration.
///
/// # Example
///
/// ```
/// use symphase_circuit::Circuit;
///
/// let c = Circuit::parse("REPEAT 3 {\n H 0\n M 0\n}\n")?;
/// assert_eq!(c.instructions().len(), 1); // structured: one REPEAT node
/// assert_eq!(c.flat_instructions().count(), 6); // streamed: 3 × (H, M)
/// # Ok::<(), symphase_circuit::ParseCircuitError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FlatInstructions<'a> {
    frames: Vec<Frame<'a>>,
}

#[derive(Clone, Debug)]
struct Frame<'a> {
    body: &'a [Instruction],
    pos: usize,
    /// Full passes over `body` still to run after the current one.
    remaining: u64,
}

impl<'a> FlatInstructions<'a> {
    /// Starts a traversal over `top` (the outermost instruction list).
    pub(crate) fn new(top: &'a [Instruction]) -> Self {
        Self {
            frames: vec![Frame {
                body: top,
                pos: 0,
                remaining: 0,
            }],
        }
    }
}

impl<'a> Iterator for FlatInstructions<'a> {
    type Item = &'a Instruction;

    fn next(&mut self) -> Option<&'a Instruction> {
        loop {
            let frame = self.frames.last_mut()?;
            if frame.pos == frame.body.len() {
                if frame.remaining > 0 {
                    frame.remaining -= 1;
                    frame.pos = 0;
                } else {
                    self.frames.pop();
                }
                continue;
            }
            let inst = &frame.body[frame.pos];
            frame.pos += 1;
            if let Instruction::Repeat { count, body } = inst {
                // Empty bodies are skipped outright so a huge trip count
                // over nothing costs nothing.
                if *count > 0 && !body.instructions().is_empty() {
                    self.frames.push(Frame {
                        body: body.instructions(),
                        pos: 0,
                        remaining: *count - 1,
                    });
                }
                continue;
            }
            return Some(inst);
        }
    }
}

impl std::iter::FusedIterator for FlatInstructions<'_> {}

#[cfg(test)]
mod tests {
    use crate::{Circuit, Instruction};

    #[test]
    fn streams_nested_repeats_in_order() {
        let c = Circuit::parse("X 0\nREPEAT 2 {\n Y 0\n REPEAT 3 {\n Z 0\n }\n}\nX 0\n").unwrap();
        let names: Vec<String> = c.flat_instructions().map(|i| i.to_string()).collect();
        let expect = [
            "X 0", "Y 0", "Z 0", "Z 0", "Z 0", "Y 0", "Z 0", "Z 0", "Z 0", "X 0",
        ];
        assert_eq!(names, expect);
    }

    #[test]
    fn empty_body_with_huge_count_streams_nothing() {
        let c = Circuit::parse("REPEAT 1000000000000 {\n}\nH 0\n").unwrap();
        let flat: Vec<&Instruction> = c.flat_instructions().collect();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].to_string(), "H 0");
    }

    #[test]
    fn memory_stays_proportional_to_nesting_depth() {
        // A million-iteration block streams through a two-frame cursor; if
        // anything materialized the expansion this would blow up.
        let c = Circuit::parse("REPEAT 1000000 {\n H 0\n}\n").unwrap();
        assert_eq!(c.flat_instructions().count(), 1_000_000);
    }
}
