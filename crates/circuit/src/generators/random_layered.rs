//! Layered random interaction circuits (paper §5, Fig. 3a–3c).
//!
//! Each circuit has `n` qubits and `layers` layers. Every layer:
//!
//! 1. applies `H`, `S`, or `I` (chosen uniformly per qubit; identity
//!    applications are elided so gate counts match the paper's),
//! 2. applies CNOTs to randomly chosen disjoint qubit pairs,
//! 3. optionally applies single-qubit depolarizing noise to every qubit
//!    (Fig. 3c),
//! 4. measures a random 5% of the qubits.
//!
//! Every qubit is measured once more at the end of the circuit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Gate, NoiseChannel};

/// How many CNOT pairs each layer applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairsPerLayer {
    /// A fixed number of pairs (Fig. 3a uses 5).
    Fixed(usize),
    /// `⌊n/2⌋` pairs — every qubit participates (Fig. 3b/3c).
    HalfOfQubits,
}

impl PairsPerLayer {
    fn count(self, qubits: usize) -> usize {
        match self {
            PairsPerLayer::Fixed(k) => k.min(qubits / 2),
            PairsPerLayer::HalfOfQubits => qubits / 2,
        }
    }
}

/// Configuration of a layered random interaction circuit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayeredCircuitConfig {
    /// Number of qubits `n`.
    pub qubits: usize,
    /// Number of layers (the paper uses `layers == qubits`).
    pub layers: usize,
    /// CNOT pairs per layer.
    pub cnot_pairs: PairsPerLayer,
    /// Fraction of qubits measured per layer (paper: 0.05).
    pub measure_fraction: f64,
    /// Per-qubit single-qubit depolarizing strength per layer (Fig. 3c).
    pub depolarize: Option<f64>,
    /// RNG seed for the circuit structure.
    pub seed: u64,
}

impl LayeredCircuitConfig {
    /// Generates the circuit described by this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `qubits < 2` or `measure_fraction` is outside `[0, 1]`.
    pub fn generate(&self) -> Circuit {
        assert!(self.qubits >= 2, "need at least 2 qubits");
        assert!(
            (0.0..=1.0).contains(&self.measure_fraction),
            "measure_fraction out of range"
        );
        let n = self.qubits;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut circuit = Circuit::new(n as u32);
        let mut indices: Vec<u32> = (0..n as u32).collect();
        let per_layer_measured = ((n as f64 * self.measure_fraction).round() as usize).max(1);

        for _ in 0..self.layers {
            // 1. Random single-qubit gates (identity elided).
            let mut h_targets = Vec::new();
            let mut s_targets = Vec::new();
            for q in 0..n as u32 {
                match rng.random_range(0..3) {
                    0 => h_targets.push(q),
                    1 => s_targets.push(q),
                    _ => {}
                }
            }
            if !h_targets.is_empty() {
                circuit.gate(Gate::H, &h_targets);
            }
            if !s_targets.is_empty() {
                circuit.gate(Gate::S, &s_targets);
            }

            // 2. Disjoint random CNOT pairs.
            let pairs = self.cnot_pairs.count(n);
            if pairs > 0 {
                indices.shuffle(&mut rng);
                circuit.gate(Gate::Cx, &indices[..2 * pairs]);
            }

            // 3. Optional depolarizing noise on every qubit (Fig. 3c).
            if let Some(p) = self.depolarize {
                let all: Vec<u32> = (0..n as u32).collect();
                circuit.noise(NoiseChannel::Depolarize1(p), &all);
            }

            // 4. Measure a random subset.
            indices.shuffle(&mut rng);
            let mut measured: Vec<u32> = indices[..per_layer_measured].to_vec();
            measured.sort_unstable();
            circuit.measure_many(&measured);
        }

        circuit.measure_all();
        circuit
    }
}

/// The Fig. 3a workload: 5 CNOT pairs per layer, no noise.
pub fn fig3a_circuit(n: usize, seed: u64) -> Circuit {
    LayeredCircuitConfig {
        qubits: n,
        layers: n,
        cnot_pairs: PairsPerLayer::Fixed(5),
        measure_fraction: 0.05,
        depolarize: None,
        seed,
    }
    .generate()
}

/// The Fig. 3b workload: `⌊n/2⌋` CNOT pairs per layer, no noise.
pub fn fig3b_circuit(n: usize, seed: u64) -> Circuit {
    LayeredCircuitConfig {
        qubits: n,
        layers: n,
        cnot_pairs: PairsPerLayer::HalfOfQubits,
        measure_fraction: 0.05,
        depolarize: None,
        seed,
    }
    .generate()
}

/// The Fig. 3c workload: Fig. 3b plus per-qubit depolarizing noise each
/// layer.
pub fn fig3c_circuit(n: usize, depolarize: f64, seed: u64) -> Circuit {
    LayeredCircuitConfig {
        qubits: n,
        layers: n,
        cnot_pairs: PairsPerLayer::HalfOfQubits,
        measure_fraction: 0.05,
        depolarize: Some(depolarize),
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_shape() {
        let n = 40;
        let c = fig3a_circuit(n, 7);
        let s = c.stats();
        assert_eq!(c.num_qubits(), n as u32);
        // Per layer: 2 measured (5% of 40); final sweep measures all.
        assert_eq!(s.measurements, n * 2 + n);
        assert_eq!(s.noise_sites, 0);
        // Gates: ~2n/3 single-qubit per layer + 5 CNOTs per layer.
        let expected = n * (2 * n / 3 + 5);
        assert!(
            (s.gates as f64) > 0.8 * expected as f64 && (s.gates as f64) < 1.2 * expected as f64,
            "gate count {} far from expectation {expected}",
            s.gates
        );
    }

    #[test]
    fn fig3b_has_half_n_pairs() {
        let c = fig3b_circuit(20, 3);
        // Count CX targets in the first layer's CX instruction.
        let cx = c
            .instructions()
            .iter()
            .find_map(|i| match i {
                crate::Instruction::Gate {
                    gate: Gate::Cx,
                    targets,
                } => Some(targets.len()),
                _ => None,
            })
            .expect("has a CX layer");
        assert_eq!(cx, 20);
    }

    #[test]
    fn fig3c_noise_accounting() {
        let n = 16;
        let c = fig3c_circuit(n, 0.01, 1);
        let s = c.stats();
        assert_eq!(s.noise_sites, n * n);
        assert_eq!(s.noise_symbols, 2 * n * n);
    }

    #[test]
    fn cnot_pairs_are_disjoint() {
        let c = fig3b_circuit(30, 11);
        for inst in c.instructions() {
            if let crate::Instruction::Gate {
                gate: Gate::Cx,
                targets,
            } = inst
            {
                let mut seen = std::collections::HashSet::new();
                for t in targets {
                    assert!(seen.insert(*t), "qubit {t} reused within a CNOT layer");
                }
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(fig3a_circuit(12, 5), fig3a_circuit(12, 5));
        assert_ne!(fig3a_circuit(12, 5), fig3a_circuit(12, 6));
    }

    #[test]
    fn fixed_pairs_clamped_to_available_qubits() {
        let c = LayeredCircuitConfig {
            qubits: 4,
            layers: 1,
            cnot_pairs: PairsPerLayer::Fixed(10),
            measure_fraction: 0.05,
            depolarize: None,
            seed: 0,
        }
        .generate();
        for inst in c.instructions() {
            if let crate::Instruction::Gate {
                gate: Gate::Cx,
                targets,
            } = inst
            {
                assert!(targets.len() <= 4);
            }
        }
    }
}
