//! Rotated surface-code memory circuits.
//!
//! The distance-`d` rotated surface code uses a `d × d` grid of data qubits
//! and `d² − 1` ancillas, one per stabilizer. Stabilizers are enumerated on
//! the `(d+1) × (d+1)` vertex grid: vertex `(r, c)` owns the plaquette of
//! data qubits `{(r-1,c-1), (r-1,c), (r,c-1), (r,c)} ∩ grid`, with Z-type
//! plaquettes where `r + c` is even and X-type where odd. Boundary
//! (weight-2) stabilizers exist only on the left/right edges for Z and the
//! top/bottom edges for X, at alternating positions.
//!
//! Each round measures all Z stabilizers (CNOTs from data into the
//! ancilla, then `MR`), then all X stabilizers (Hadamard-conjugated).
//! Measuring the two types sequentially keeps the measured operators exactly
//! the stabilizers for any CNOT ordering within a type.
//!
//! Rounds are emitted **structured**: round 0 (whose detectors differ at
//! the time boundary) is written flat, and every later round is one
//! `REPEAT rounds−1 { … }` block whose detectors reach into the previous
//! iteration's outcomes — so a million-round memory experiment is built,
//! parsed, and initialized in O(one round) circuit memory.

use crate::{Block, Circuit, Gate, Instruction, NoiseChannel, PauliKind};

/// Which logical memory a generated memory experiment protects: the
/// basis the data qubits are initialized and finally measured in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemoryBasis {
    /// Initialize `|0…0⟩` (`R`), final `M` — protects logical Z.
    #[default]
    Z,
    /// Initialize `|+…+⟩` (`RX`), final `MX` — protects logical X. Uses
    /// the basis-general reset/measure instructions end to end.
    X,
}

/// Configuration of a rotated surface-code memory-Z experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfaceCodeConfig {
    /// Code distance (odd, at least 3).
    pub distance: usize,
    /// Number of stabilizer measurement rounds, at least 1.
    pub rounds: usize,
    /// Probability of a depolarizing fault on every data qubit before each
    /// round.
    pub data_error: f64,
    /// Probability of flipping each ancilla right before measurement.
    pub measure_error: f64,
}

impl Default for SurfaceCodeConfig {
    fn default() -> Self {
        Self {
            distance: 3,
            rounds: 3,
            data_error: 0.001,
            measure_error: 0.0,
        }
    }
}

/// One stabilizer plaquette of the rotated code.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Plaquette {
    /// `true` for Z-type, `false` for X-type.
    z_type: bool,
    /// Ancilla qubit index.
    ancilla: u32,
    /// Data qubit indices (2 on the boundary, 4 in the bulk).
    data: Vec<u32>,
    /// Vertex-grid position, used as the detector `(col, row, t)` coords.
    row: usize,
    col: usize,
}

/// Enumerates the plaquettes of the distance-`d` rotated code.
fn plaquettes(d: usize) -> Vec<Plaquette> {
    let data_index = |r: usize, c: usize| (r * d + c) as u32;
    let mut out = Vec::new();
    let mut next_ancilla = (d * d) as u32;
    for r in 0..=d {
        for c in 0..=d {
            let z_type = (r + c) % 2 == 0;
            let interior_r = (1..d).contains(&r);
            let interior_c = (1..d).contains(&c);
            let include = if interior_r && interior_c {
                true
            } else if interior_r && (c == 0 || c == d) {
                z_type // left/right boundary hosts Z checks
            } else if interior_c && (r == 0 || r == d) {
                !z_type // top/bottom boundary hosts X checks
            } else {
                false // corners
            };
            if !include {
                continue;
            }
            let mut data = Vec::with_capacity(4);
            for (dr, dc) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
                let (pr, pc) = (
                    r.wrapping_sub(1).wrapping_add(dr),
                    c.wrapping_sub(1).wrapping_add(dc),
                );
                if pr < d && pc < d {
                    data.push(data_index(pr, pc));
                }
            }
            out.push(Plaquette {
                z_type,
                ancilla: next_ancilla,
                data,
                row: r,
                col: c,
            });
            next_ancilla += 1;
        }
    }
    out
}

/// Generates a rotated surface-code memory-Z circuit with detectors and the
/// logical-Z observable (the top row of data qubits).
///
/// # Panics
///
/// Panics if `distance` is even or `< 3`, or `rounds < 1`.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{surface_code_memory, SurfaceCodeConfig};
///
/// let c = surface_code_memory(&SurfaceCodeConfig {
///     distance: 3,
///     rounds: 2,
///     data_error: 0.001,
///     measure_error: 0.0,
/// });
/// assert_eq!(c.num_qubits(), 9 + 8);
/// assert_eq!(c.num_observables(), 1);
/// ```
pub fn surface_code_memory(config: &SurfaceCodeConfig) -> Circuit {
    surface_code_memory_in(config, MemoryBasis::Z)
}

/// [`surface_code_memory`] generalized over the protected basis.
///
/// `MemoryBasis::X` produces a memory-X experiment built on the
/// basis-general instructions: data qubits start with `RX`, the
/// time-boundary detectors of round 0 sit on the X checks (deterministic
/// on `|+…+⟩`; the Z checks are random that round), the final transversal
/// readout is `MX`, and the logical observable is the left column of data
/// qubits (a representative of logical X, commuting with every Z check).
///
/// # Panics
///
/// Panics if `distance` is even or `< 3`, or `rounds < 1`.
pub fn surface_code_memory_in(config: &SurfaceCodeConfig, basis: MemoryBasis) -> Circuit {
    let d = config.distance;
    assert!(d >= 3 && d % 2 == 1, "distance must be odd and at least 3");
    assert!(config.rounds >= 1, "need at least one round");
    let plaqs = plaquettes(d);
    debug_assert_eq!(plaqs.len(), d * d - 1);
    let num_z: usize = plaqs.iter().filter(|p| p.z_type).count();
    let num_x = plaqs.len() - num_z;
    let data_qubits: Vec<u32> = (0..(d * d) as u32).collect();
    let total_qubits = (d * d + plaqs.len()) as u32;
    let mut c = Circuit::new(total_qubits);

    let ancillas: Vec<u32> = ((d * d) as u32..total_qubits).collect();
    match basis {
        MemoryBasis::Z => {
            let all: Vec<u32> = (0..total_qubits).collect();
            c.push(Instruction::Reset {
                basis: PauliKind::Z,
                targets: all,
            });
        }
        MemoryBasis::X => {
            c.reset_many_in(PauliKind::X, &data_qubits);
            c.push(Instruction::Reset {
                basis: PauliKind::Z,
                targets: ancillas,
            });
        }
    }

    // Round 0 declares the time-boundary detectors; every later round is
    // the identical steady-state round, emitted once as one structured
    // REPEAT block (its detectors reach into the previous iteration).
    push_round(
        &mut |inst| c.push(inst),
        &plaqs,
        &data_qubits,
        config,
        Some(basis),
    );
    if config.rounds > 1 {
        let mut body = Block::new();
        push_round(
            &mut |inst| body.push(inst),
            &plaqs,
            &data_qubits,
            config,
            None,
        );
        c.push(Instruction::Repeat {
            count: (config.rounds - 1) as u64,
            body: Box::new(body),
        });
    }

    // Final transversal data measurement; compare each same-type
    // plaquette's data parity with its last ancilla outcome.
    let nd = (d * d) as i64;
    match basis {
        MemoryBasis::Z => {
            c.measure_many(&data_qubits);
            for (z_seen, p) in plaqs.iter().filter(|p| p.z_type).enumerate() {
                let mut lookbacks: Vec<i64> = p.data.iter().map(|&dq| -nd + dq as i64).collect();
                // The Z outcomes of the last round sit `num_x` X outcomes
                // behind the data block.
                lookbacks.push(-nd - (num_x as i64) - (num_z as i64) + z_seen as i64);
                c.detector_at(&[p.col as f64, p.row as f64, 0.0], &lookbacks);
            }
            // Logical Z: the top row of data qubits (commutes with every X
            // check).
            let top_row: Vec<i64> = (0..d as i64).map(|i| -nd + i).collect();
            c.observable_include(0, &top_row);
        }
        MemoryBasis::X => {
            c.measure_many_in(PauliKind::X, &data_qubits);
            for (x_seen, p) in plaqs.iter().filter(|p| !p.z_type).enumerate() {
                let mut lookbacks: Vec<i64> = p.data.iter().map(|&dq| -nd + dq as i64).collect();
                // The X outcomes of the last round directly precede the
                // data block.
                lookbacks.push(-nd - (num_x as i64) + x_seen as i64);
                c.detector_at(&[p.col as f64, p.row as f64, 0.0], &lookbacks);
            }
            // Logical X: the left column of data qubits (commutes with
            // every Z check).
            let left_col: Vec<i64> = (0..d as i64).map(|r| -nd + r * d as i64).collect();
            c.observable_include(0, &left_col);
        }
    }
    c
}

/// Emits one stabilizer-measurement round through `push`. A `first`
/// round (`Some(basis)`) declares the time-boundary detectors on the
/// checks that are deterministic for that initialization — Z checks for
/// memory-Z, X checks for memory-X — with a single outcome each;
/// steady-state rounds (`None`) compare every check against the previous
/// round, which inside the `REPEAT` body means lookbacks into the
/// previous iteration.
fn push_round(
    push: &mut dyn FnMut(Instruction),
    plaqs: &[Plaquette],
    data_qubits: &[u32],
    config: &SurfaceCodeConfig,
    first: Option<MemoryBasis>,
) {
    let num_z = plaqs.iter().filter(|p| p.z_type).count();
    let num_x = plaqs.len() - num_z;
    // Per round the record receives: num_z Z outcomes then num_x X outcomes.
    let per_round = (num_z + num_x) as i64;

    if config.data_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::Depolarize1(config.data_error),
            targets: data_qubits.to_vec(),
        });
    }

    // -- Z stabilizers: parity of data Zs into ancilla via CX data→anc.
    let mut z_ancillas = Vec::with_capacity(num_z);
    for p in plaqs.iter().filter(|p| p.z_type) {
        for &dq in &p.data {
            push(Instruction::Gate {
                gate: Gate::Cx,
                targets: vec![dq, p.ancilla],
            });
        }
        z_ancillas.push(p.ancilla);
    }
    if config.measure_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::XError(config.measure_error),
            targets: z_ancillas.clone(),
        });
    }
    push(Instruction::MeasureReset {
        basis: crate::PauliKind::Z,
        targets: z_ancillas,
    });

    // -- X stabilizers: Hadamard basis change on the ancilla.
    let mut x_ancillas = Vec::with_capacity(num_x);
    for p in plaqs.iter().filter(|p| !p.z_type) {
        push(Instruction::Gate {
            gate: Gate::H,
            targets: vec![p.ancilla],
        });
        for &dq in &p.data {
            push(Instruction::Gate {
                gate: Gate::Cx,
                targets: vec![p.ancilla, dq],
            });
        }
        push(Instruction::Gate {
            gate: Gate::H,
            targets: vec![p.ancilla],
        });
        x_ancillas.push(p.ancilla);
    }
    if config.measure_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::XError(config.measure_error),
            targets: x_ancillas.clone(),
        });
    }
    push(Instruction::MeasureReset {
        basis: crate::PauliKind::Z,
        targets: x_ancillas,
    });

    // -- Detectors. In round 0 only the checks matching the data
    // initialization basis are deterministic (Z checks on |0…0⟩, X checks
    // on |+…+⟩); from round 1 every check compares pairwise with the
    // previous round. Coordinates are the plaquette's vertex-grid position
    // at the current time slice (SHIFT_COORDS advances `t` each round).
    for (i, p) in plaqs.iter().filter(|p| p.z_type).enumerate() {
        let this = -per_round + i as i64;
        let coords = vec![p.col as f64, p.row as f64, 0.0];
        match first {
            Some(MemoryBasis::Z) => push(Instruction::Detector {
                coords,
                lookbacks: vec![this],
            }),
            Some(MemoryBasis::X) => {}
            None => push(Instruction::Detector {
                coords,
                lookbacks: vec![this, this - per_round],
            }),
        }
    }
    for (i, p) in plaqs.iter().filter(|p| !p.z_type).enumerate() {
        let this = -(num_x as i64) + i as i64;
        let coords = vec![p.col as f64, p.row as f64, 0.0];
        match first {
            Some(MemoryBasis::Z) => {}
            Some(MemoryBasis::X) => push(Instruction::Detector {
                coords,
                lookbacks: vec![this],
            }),
            None => push(Instruction::Detector {
                coords,
                lookbacks: vec![this, this - per_round],
            }),
        }
    }
    push(Instruction::ShiftCoords {
        coords: vec![0.0, 0.0, 1.0],
    });
    push(Instruction::Tick);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plaquette_counts_d3() {
        let p = plaquettes(3);
        assert_eq!(p.len(), 8);
        assert_eq!(p.iter().filter(|p| p.z_type).count(), 4);
        // Boundary plaquettes have weight 2, bulk weight 4.
        let w2 = p.iter().filter(|p| p.data.len() == 2).count();
        let w4 = p.iter().filter(|p| p.data.len() == 4).count();
        assert_eq!((w2, w4), (4, 4));
    }

    #[test]
    fn plaquette_counts_d5() {
        let p = plaquettes(5);
        assert_eq!(p.len(), 24);
        assert_eq!(p.iter().filter(|p| p.z_type).count(), 12);
    }

    #[test]
    fn stabilizers_commute() {
        // Every X plaquette must overlap every Z plaquette on an even number
        // of data qubits.
        for d in [3usize, 5] {
            let ps = plaquettes(d);
            for a in ps.iter().filter(|p| p.z_type) {
                for b in ps.iter().filter(|p| !p.z_type) {
                    let overlap = a.data.iter().filter(|q| b.data.contains(q)).count();
                    assert_eq!(overlap % 2, 0, "d={d}: Z{:?} vs X{:?}", a.data, b.data);
                }
            }
        }
    }

    #[test]
    fn logical_z_commutes_with_x_checks() {
        for d in [3usize, 5] {
            let ps = plaquettes(d);
            let top_row: Vec<u32> = (0..d as u32).collect();
            for p in ps.iter().filter(|p| !p.z_type) {
                let overlap = p.data.iter().filter(|q| top_row.contains(q)).count();
                assert_eq!(overlap % 2, 0, "logical Z anticommutes with an X check");
            }
        }
    }

    #[test]
    fn circuit_counts() {
        let c = surface_code_memory(&SurfaceCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.001,
            measure_error: 0.001,
        });
        // 8 ancillas per round × 2 rounds + 9 data.
        assert_eq!(c.stats().measurements, 8 * 2 + 9);
        // Round 0: 4 detectors (Z only); round 1: 8; final: 4.
        assert_eq!(c.num_detectors(), 4 + 8 + 4);
    }

    #[test]
    fn rounds_are_structured() {
        let cfg = SurfaceCodeConfig {
            distance: 3,
            rounds: 1000,
            data_error: 0.001,
            measure_error: 0.001,
        };
        let c = surface_code_memory(&cfg);
        // Reset, round 0, one REPEAT node, final measurement + detectors +
        // observable: the instruction list does not scale with rounds.
        assert!(c.instructions().len() < 60);
        let repeat = c
            .instructions()
            .iter()
            .find_map(|i| match i {
                Instruction::Repeat { count, body } => Some((*count, body)),
                _ => None,
            })
            .expect("steady-state rounds are one REPEAT block");
        assert_eq!(repeat.0, 999);
        assert_eq!(c.stats().measurements, 8 * 1000 + 9);
    }

    #[test]
    fn structured_rounds_flatten_to_legacy_sequence() {
        // The structured emission must be bit-identical (in flattened
        // instruction order) to emitting every round explicitly.
        let cfg = SurfaceCodeConfig {
            distance: 3,
            rounds: 4,
            data_error: 0.002,
            measure_error: 0.001,
        };
        let plaqs = plaquettes(cfg.distance);
        let data: Vec<u32> = (0..(cfg.distance * cfg.distance) as u32).collect();
        let total = (cfg.distance * cfg.distance + plaqs.len()) as u32;
        let mut legacy = Circuit::new(total);
        legacy.push(Instruction::Reset {
            basis: crate::PauliKind::Z,
            targets: (0..total).collect(),
        });
        for round in 0..cfg.rounds {
            let first = (round == 0).then_some(MemoryBasis::Z);
            push_round(&mut |i| legacy.push(i), &plaqs, &data, &cfg, first);
        }
        legacy.measure_many(&data);
        let nd = (cfg.distance * cfg.distance) as i64;
        let num_z = plaqs.iter().filter(|p| p.z_type).count();
        let num_x = plaqs.len() - num_z;
        for (z_seen, p) in plaqs.iter().filter(|p| p.z_type).enumerate() {
            let mut lookbacks: Vec<i64> = p.data.iter().map(|&dq| -nd + dq as i64).collect();
            lookbacks.push(-nd - (num_x as i64) - (num_z as i64) + z_seen as i64);
            legacy.detector_at(&[p.col as f64, p.row as f64, 0.0], &lookbacks);
        }
        let top_row: Vec<i64> = (0..cfg.distance as i64).map(|i| -nd + i).collect();
        legacy.observable_include(0, &top_row);

        assert_eq!(surface_code_memory(&cfg).flattened(), legacy);
    }

    #[test]
    fn structured_circuit_roundtrips_through_text() {
        let c = surface_code_memory(&SurfaceCodeConfig {
            distance: 3,
            rounds: 5,
            data_error: 0.001,
            measure_error: 0.002,
        });
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn memory_x_counts_and_roundtrip() {
        let cfg = SurfaceCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.001,
            measure_error: 0.001,
        };
        let c = surface_code_memory_in(&cfg, MemoryBasis::X);
        // Same record shape as memory-Z: 8 ancillas per round + 9 data.
        assert_eq!(c.stats().measurements, 8 * 3 + 9);
        // Round 0: 4 detectors (X checks only); rounds 1–2: 8 each;
        // final: 4 (X plaquettes against data MX parities).
        assert_eq!(c.num_detectors(), 4 + 8 * 2 + 4);
        assert_eq!(c.num_observables(), 1);
        // The basis-general instructions are actually used…
        let text = c.to_string();
        assert!(text.contains("RX "), "data must initialize with RX");
        assert!(text.contains("MX "), "final readout must be MX");
        // …and the text form round-trips structurally.
        assert_eq!(Circuit::parse(&text).unwrap(), c);
    }

    #[test]
    fn logical_x_commutes_with_z_checks() {
        for d in [3usize, 5] {
            let ps = plaquettes(d);
            let left_col: Vec<u32> = (0..d as u32).map(|r| r * d as u32).collect();
            for p in ps.iter().filter(|p| p.z_type) {
                let overlap = p.data.iter().filter(|q| left_col.contains(q)).count();
                assert_eq!(overlap % 2, 0, "logical X anticommutes with a Z check");
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_distance() {
        surface_code_memory(&SurfaceCodeConfig {
            distance: 4,
            rounds: 1,
            data_error: 0.0,
            measure_error: 0.0,
        });
    }
}
