//! Repetition-code memory circuits with detectors and a logical observable.
//!
//! The distance-`d` repetition code protects one logical bit against `X`
//! errors with `d` data qubits and `d − 1` ancillas. Data qubits sit at even
//! indices `0, 2, …, 2(d−1)`; ancilla `i` (odd index `2i+1`) compares data
//! qubits `2i` and `2i+2`.

use crate::{Circuit, NoiseChannel};

/// Configuration of a repetition-code memory experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepetitionCodeConfig {
    /// Code distance (number of data qubits), at least 2.
    pub distance: usize,
    /// Number of stabilizer-measurement rounds, at least 1.
    pub rounds: usize,
    /// Probability of an `X` error on every data qubit before each round
    /// (phenomenological data noise).
    pub data_error: f64,
    /// Probability of flipping each ancilla right before it is measured
    /// (measurement noise).
    pub measure_error: f64,
}

impl Default for RepetitionCodeConfig {
    fn default() -> Self {
        Self {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            measure_error: 0.0,
        }
    }
}

/// Generates a repetition-code memory circuit with detectors and the
/// logical-Z observable.
///
/// # Panics
///
/// Panics if `distance < 2` or `rounds < 1`.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
///
/// let c = repetition_code_memory(&RepetitionCodeConfig {
///     distance: 3,
///     rounds: 2,
///     data_error: 0.01,
///     measure_error: 0.0,
/// });
/// assert_eq!(c.num_qubits(), 5);
/// assert_eq!(c.num_detectors(), 2 * 2 + 2); // per-round + final comparisons
/// assert_eq!(c.num_observables(), 1);
/// ```
pub fn repetition_code_memory(config: &RepetitionCodeConfig) -> Circuit {
    assert!(config.distance >= 2, "distance must be at least 2");
    assert!(config.rounds >= 1, "need at least one round");
    let d = config.distance;
    let num_anc = d - 1;
    let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
    let anc: Vec<u32> = (0..num_anc as u32).map(|i| 2 * i + 1).collect();
    let mut c = Circuit::new((2 * d - 1) as u32);

    // Start in |0…0⟩ explicitly, as a real experiment would.
    let all: Vec<u32> = (0..(2 * d - 1) as u32).collect();
    c.push(crate::Instruction::Reset { targets: all });

    for round in 0..config.rounds {
        if config.data_error > 0.0 {
            c.noise(NoiseChannel::XError(config.data_error), &data);
        }
        // Parity transfer: ancilla i accumulates data 2i ⊕ data 2i+2.
        let mut cx_left = Vec::with_capacity(2 * num_anc);
        let mut cx_right = Vec::with_capacity(2 * num_anc);
        for i in 0..num_anc as u32 {
            cx_left.extend_from_slice(&[2 * i, 2 * i + 1]);
            cx_right.extend_from_slice(&[2 * i + 2, 2 * i + 1]);
        }
        c.gate(crate::Gate::Cx, &cx_left);
        c.gate(crate::Gate::Cx, &cx_right);
        if config.measure_error > 0.0 {
            c.noise(NoiseChannel::XError(config.measure_error), &anc);
        }
        c.push(crate::Instruction::MeasureReset {
            targets: anc.clone(),
        });
        // Detectors: first round ancillas are deterministic 0; later rounds
        // compare against the previous round.
        for i in 0..num_anc as i64 {
            let this = -(num_anc as i64) + i;
            if round == 0 {
                c.detector(&[this]);
            } else {
                c.detector(&[this, this - num_anc as i64]);
            }
        }
        c.tick();
    }

    // Final data measurement; compare data parities against the last
    // ancilla round.
    c.measure_many(&data);
    for i in 0..num_anc as i64 {
        let data_a = -(d as i64) + i;
        let data_b = data_a + 1;
        let last_anc = -(d as i64) - (num_anc as i64) + i;
        c.detector(&[data_a, data_b, last_anc]);
    }
    // Logical Z is any single data qubit's value (all agree in the code
    // space); use the first.
    c.observable_include(0, &[-(d as i64)]);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_distance_and_rounds() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 5,
            rounds: 4,
            data_error: 0.01,
            measure_error: 0.002,
        });
        assert_eq!(c.num_qubits(), 9);
        // 4 ancillas × 4 rounds + 5 final data measurements.
        assert_eq!(c.stats().measurements, 4 * 4 + 5);
        assert_eq!(c.num_detectors(), 4 * 4 + 4);
        assert_eq!(c.num_observables(), 1);
        // Noise: data errors each round + measurement errors each round.
        assert_eq!(c.stats().noise_sites, 4 * 5 + 4 * 4);
    }

    #[test]
    fn noiseless_circuit_has_no_noise() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.0,
            measure_error: 0.0,
        });
        assert_eq!(c.stats().noise_sites, 0);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn rejects_distance_one() {
        repetition_code_memory(&RepetitionCodeConfig {
            distance: 1,
            rounds: 1,
            data_error: 0.0,
            measure_error: 0.0,
        });
    }
}
