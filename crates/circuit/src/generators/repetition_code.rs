//! Repetition-code memory circuits with detectors and a logical observable.
//!
//! The distance-`d` repetition code protects one logical bit against `X`
//! errors with `d` data qubits and `d − 1` ancillas. Data qubits sit at even
//! indices `0, 2, …, 2(d−1)`; ancilla `i` (odd index `2i+1`) compares data
//! qubits `2i` and `2i+2`.
//!
//! Rounds are emitted **structured**: round 0 (boundary detectors) flat,
//! rounds `1..rounds` as one `REPEAT` block whose detectors reach into
//! the previous iteration — deep memory experiments cost O(one round) of
//! circuit memory.

use crate::{Block, Circuit, Instruction, NoiseChannel};

/// Configuration of a repetition-code memory experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepetitionCodeConfig {
    /// Code distance (number of data qubits), at least 2.
    pub distance: usize,
    /// Number of stabilizer-measurement rounds, at least 1.
    pub rounds: usize,
    /// Probability of an `X` error on every data qubit before each round
    /// (phenomenological data noise).
    pub data_error: f64,
    /// Probability of flipping each ancilla right before it is measured
    /// (measurement noise).
    pub measure_error: f64,
}

impl Default for RepetitionCodeConfig {
    fn default() -> Self {
        Self {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            measure_error: 0.0,
        }
    }
}

/// Generates a repetition-code memory circuit with detectors and the
/// logical-Z observable.
///
/// # Panics
///
/// Panics if `distance < 2` or `rounds < 1`.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{repetition_code_memory, RepetitionCodeConfig};
///
/// let c = repetition_code_memory(&RepetitionCodeConfig {
///     distance: 3,
///     rounds: 2,
///     data_error: 0.01,
///     measure_error: 0.0,
/// });
/// assert_eq!(c.num_qubits(), 5);
/// assert_eq!(c.num_detectors(), 2 * 2 + 2); // per-round + final comparisons
/// assert_eq!(c.num_observables(), 1);
/// ```
pub fn repetition_code_memory(config: &RepetitionCodeConfig) -> Circuit {
    assert!(config.distance >= 2, "distance must be at least 2");
    assert!(config.rounds >= 1, "need at least one round");
    let d = config.distance;
    let num_anc = d - 1;
    let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
    let anc: Vec<u32> = (0..num_anc as u32).map(|i| 2 * i + 1).collect();
    let mut c = Circuit::new((2 * d - 1) as u32);

    // Start in |0…0⟩ explicitly, as a real experiment would.
    let all: Vec<u32> = (0..(2 * d - 1) as u32).collect();
    c.push(Instruction::Reset {
        basis: crate::PauliKind::Z,
        targets: all,
    });

    // Round 0 declares the boundary detectors; rounds 1..rounds are the
    // identical steady-state round, emitted once as a REPEAT block.
    push_round(&mut |inst| c.push(inst), config, &data, &anc, true);
    if config.rounds > 1 {
        let mut body = Block::new();
        push_round(&mut |inst| body.push(inst), config, &data, &anc, false);
        c.push(Instruction::Repeat {
            count: (config.rounds - 1) as u64,
            body: Box::new(body),
        });
    }

    // Final data measurement; compare data parities against the last
    // ancilla round.
    c.measure_many(&data);
    for i in 0..num_anc as i64 {
        let data_a = -(d as i64) + i;
        let data_b = data_a + 1;
        let last_anc = -(d as i64) - (num_anc as i64) + i;
        c.detector_at(&[(2 * i + 1) as f64, 0.0], &[data_a, data_b, last_anc]);
    }
    // Logical Z is any single data qubit's value (all agree in the code
    // space); use the first.
    c.observable_include(0, &[-(d as i64)]);
    c
}

/// Emits one stabilizer-measurement round through `push`. `first` rounds
/// declare single-outcome boundary detectors; steady-state rounds compare
/// against the previous round (a lookback into the previous `REPEAT`
/// iteration).
fn push_round(
    push: &mut dyn FnMut(Instruction),
    config: &RepetitionCodeConfig,
    data: &[u32],
    anc: &[u32],
    first: bool,
) {
    let num_anc = anc.len();
    if config.data_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::XError(config.data_error),
            targets: data.to_vec(),
        });
    }
    // Parity transfer: ancilla i accumulates data 2i ⊕ data 2i+2.
    let mut cx_left = Vec::with_capacity(2 * num_anc);
    let mut cx_right = Vec::with_capacity(2 * num_anc);
    for i in 0..num_anc as u32 {
        cx_left.extend_from_slice(&[2 * i, 2 * i + 1]);
        cx_right.extend_from_slice(&[2 * i + 2, 2 * i + 1]);
    }
    push(Instruction::Gate {
        gate: crate::Gate::Cx,
        targets: cx_left,
    });
    push(Instruction::Gate {
        gate: crate::Gate::Cx,
        targets: cx_right,
    });
    if config.measure_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::XError(config.measure_error),
            targets: anc.to_vec(),
        });
    }
    push(Instruction::MeasureReset {
        basis: crate::PauliKind::Z,
        targets: anc.to_vec(),
    });
    // Detectors: first round ancillas are deterministic 0; later rounds
    // compare against the previous round. Coordinates are `(ancilla, t)`
    // on the 1-D qubit line; SHIFT_COORDS advances `t` each round.
    for i in 0..num_anc as i64 {
        let this = -(num_anc as i64) + i;
        let coords = vec![(2 * i + 1) as f64, 0.0];
        if first {
            push(Instruction::Detector {
                coords,
                lookbacks: vec![this],
            });
        } else {
            push(Instruction::Detector {
                coords,
                lookbacks: vec![this, this - num_anc as i64],
            });
        }
    }
    push(Instruction::ShiftCoords {
        coords: vec![0.0, 1.0],
    });
    push(Instruction::Tick);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_distance_and_rounds() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 5,
            rounds: 4,
            data_error: 0.01,
            measure_error: 0.002,
        });
        assert_eq!(c.num_qubits(), 9);
        // 4 ancillas × 4 rounds + 5 final data measurements.
        assert_eq!(c.stats().measurements, 4 * 4 + 5);
        assert_eq!(c.num_detectors(), 4 * 4 + 4);
        assert_eq!(c.num_observables(), 1);
        // Noise: data errors each round + measurement errors each round.
        assert_eq!(c.stats().noise_sites, 4 * 5 + 4 * 4);
    }

    #[test]
    fn noiseless_circuit_has_no_noise() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 2,
            data_error: 0.0,
            measure_error: 0.0,
        });
        assert_eq!(c.stats().noise_sites, 0);
    }

    #[test]
    fn rounds_are_structured_and_flatten_to_legacy() {
        let cfg = RepetitionCodeConfig {
            distance: 4,
            rounds: 6,
            data_error: 0.01,
            measure_error: 0.002,
        };
        let c = repetition_code_memory(&cfg);
        assert!(c
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Repeat { count: 5, .. })));

        // Flattened order must be bit-identical to emitting every round.
        let d = cfg.distance;
        let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..(d - 1) as u32).map(|i| 2 * i + 1).collect();
        let mut legacy = Circuit::new((2 * d - 1) as u32);
        legacy.push(Instruction::Reset {
            basis: crate::PauliKind::Z,
            targets: (0..(2 * d - 1) as u32).collect(),
        });
        for round in 0..cfg.rounds {
            push_round(&mut |i| legacy.push(i), &cfg, &data, &anc, round == 0);
        }
        legacy.measure_many(&data);
        for i in 0..(d - 1) as i64 {
            let data_a = -(d as i64) + i;
            legacy.detector_at(
                &[(2 * i + 1) as f64, 0.0],
                &[data_a, data_a + 1, -(d as i64) - ((d - 1) as i64) + i],
            );
        }
        legacy.observable_include(0, &[-(d as i64)]);

        assert_eq!(c.flattened(), legacy);
        // And the text format round-trips the structure.
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn detector_coordinates_advance_with_rounds() {
        let c = repetition_code_memory(&RepetitionCodeConfig {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            measure_error: 0.0,
        });
        let coords = c.detector_coordinates();
        assert_eq!(coords.len(), c.num_detectors());
        // Round 0 at t=0 on the ancilla line x = 1, 3.
        assert_eq!(coords[0], vec![1.0, 0.0]);
        assert_eq!(coords[1], vec![3.0, 0.0]);
        // SHIFT_COORDS advances t through the REPEAT body…
        assert_eq!(coords[2], vec![1.0, 1.0]);
        // …and the final comparisons sit at t = rounds.
        assert_eq!(coords.last().unwrap(), &vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn rejects_distance_one() {
        repetition_code_memory(&RepetitionCodeConfig {
            distance: 1,
            rounds: 1,
            data_error: 0.0,
            measure_error: 0.0,
        });
    }
}
