//! Small named circuits used by examples and tests.

use crate::{Circuit, NoiseChannel, PauliKind};

/// A Bell-pair circuit: `H 0; CX 0 1; M 0 1`. The two outcomes are random
/// but always equal.
pub fn bell_pair() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.measure_many(&[0, 1]);
    c
}

/// An `n`-qubit GHZ circuit measured in the computational basis: all `n`
/// outcomes are random but identical.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz(n: u32) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c.measure_all();
    c
}

/// A noisy GHZ chain: `H 0`, then `CX (q−1) q` with `X_ERROR(p)` after
/// every link, measured in full.
///
/// The first outcome is a fresh coin; every later outcome is *determined*
/// — it equals that coin XOR the errors on its prefix of the chain. The
/// measurement matrix is therefore triangular and ~50% dense, which makes
/// this the canonical **dense** workload for the Sampling step's `M · B`
/// product (long-range entanglement carries every local fault into every
/// downstream measurement). Contrast with deep random circuits, whose
/// random outcomes keep measurement rows sparse.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn noisy_ghz_chain(n: u32, p: f64) -> Circuit {
    assert!(n >= 2, "GHZ chain needs at least two qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
        c.noise(NoiseChannel::XError(p), &[q]);
    }
    c.measure_all();
    c
}

/// Quantum teleportation with classically-controlled corrections (the
/// dynamic-circuit workload of paper §6).
///
/// Qubit 0 carries the state `S·H|0⟩`; it is teleported onto qubit 2 through
/// a Bell pair on qubits 1–2 and Pauli corrections conditioned on the two
/// measurement outcomes. The circuit finally undoes the preparation on
/// qubit 2 and measures it: the last outcome is always 0 when teleportation
/// works.
pub fn teleportation() -> Circuit {
    let mut c = Circuit::new(3);
    // Prepare the message |ψ⟩ = S·H|0⟩ on qubit 0.
    c.h(0).s(0);
    // Bell pair on qubits 1, 2.
    c.h(1).cx(1, 2);
    // Bell measurement of qubits 0, 1.
    c.cx(0, 1).h(0);
    c.measure(0); // rec[-2] at correction time
    c.measure(1); // rec[-1] at correction time
                  // Corrections: X^{m1} then Z^{m0} on the receiver.
    c.feedback(PauliKind::X, -1, 2);
    c.feedback(PauliKind::Z, -2, 2);
    // Undo the preparation (S·H)⁻¹ = H·S† and verify.
    c.gate(crate::Gate::SDag, &[2]);
    c.h(2);
    c.measure(2); // deterministic 0
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_pair_shape() {
        let c = bell_pair();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.stats().measurements, 2);
    }

    #[test]
    fn ghz_shape() {
        let c = ghz(5);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.stats().gates, 5);
        assert_eq!(c.stats().measurements, 5);
    }

    #[test]
    fn teleportation_has_feedback() {
        let c = teleportation();
        assert_eq!(c.stats().feedback_ops, 2);
        assert_eq!(c.stats().measurements, 3);
    }
}
