//! Benchmark and example circuit generators.
//!
//! * [`random_layered`] — the layered random interaction circuits of the
//!   paper's evaluation (Fig. 3a–3c).
//! * [`repetition_code`] — repetition-code memory circuits with detectors
//!   and a logical observable.
//! * [`surface_code`] — rotated surface-code memory circuits (memory-Z
//!   and, via [`MemoryBasis::X`], memory-X built on `RX`/`MX`).
//! * [`phase_memory`] — phase-flip repetition memory with direct `MPP`
//!   checks and correlated `E`/`ELSE_CORRELATED_ERROR` pair noise.
//! * [`named`] — small named circuits (Bell pair, GHZ, teleportation with
//!   feedback).

pub mod named;
pub mod phase_memory;
pub mod random_layered;
pub mod repetition_code;
pub mod surface_code;

pub use named::{bell_pair, ghz, noisy_ghz_chain, teleportation};
pub use phase_memory::{mpp_phase_memory, PhaseMemoryConfig};
pub use random_layered::{
    fig3a_circuit, fig3b_circuit, fig3c_circuit, LayeredCircuitConfig, PairsPerLayer,
};
pub use repetition_code::{repetition_code_memory, RepetitionCodeConfig};
pub use surface_code::{
    surface_code_memory, surface_code_memory_in, MemoryBasis, SurfaceCodeConfig,
};
