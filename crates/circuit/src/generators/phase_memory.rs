//! Phase-flip repetition-code memory built on `MPP` checks and
//! correlated noise — the first-class workload for the basis-general
//! instruction surface.
//!
//! The distance-`d` phase-flip code uses `d` data qubits, no ancillas:
//! its stabilizers `X_i X_{i+1}` are measured **directly** as
//! Pauli-product measurements (`MPP Xi*Xi+1`), exactly the `measure(P)`
//! generalization of the paper's Init-M. Data qubits start in `|+…+⟩`
//! (`RX`), so every check is deterministic from round 0, and the final
//! transversal readout is `MX`. Phase noise is `Z_ERROR` on the data plus
//! an optional **correlated** `E`/`ELSE_CORRELATED_ERROR` chain of
//! adjacent `Z⊗Z` pairs (at most one pair error per round — a bursty,
//! spatially correlated channel no independent single-qubit model can
//! express).
//!
//! Rounds are emitted structured: round 0 flat, the steady state as one
//! `REPEAT` block, as in the other memory generators.

use crate::{Block, Circuit, Instruction, NoiseChannel, PauliKind};

/// Configuration of an MPP-based phase-flip memory experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseMemoryConfig {
    /// Code distance (number of data qubits), at least 2.
    pub distance: usize,
    /// Number of check-measurement rounds, at least 1.
    pub rounds: usize,
    /// Probability of a `Z` error on every data qubit before each round.
    pub data_error: f64,
    /// Probability of each element of the per-round correlated
    /// `Z⊗Z`-pair chain (0 disables the chain).
    pub pair_error: f64,
}

impl Default for PhaseMemoryConfig {
    fn default() -> Self {
        Self {
            distance: 3,
            rounds: 3,
            data_error: 0.01,
            pair_error: 0.0,
        }
    }
}

/// Generates the MPP phase-flip memory circuit with detectors and the
/// logical-X observable (data qubit 0's `MX` outcome).
///
/// # Panics
///
/// Panics if `distance < 2` or `rounds < 1`.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::{mpp_phase_memory, PhaseMemoryConfig};
///
/// let c = mpp_phase_memory(&PhaseMemoryConfig {
///     distance: 3,
///     rounds: 2,
///     data_error: 0.01,
///     pair_error: 0.005,
/// });
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.num_observables(), 1);
/// assert!(c.to_string().contains("MPP"));
/// ```
pub fn mpp_phase_memory(config: &PhaseMemoryConfig) -> Circuit {
    assert!(config.distance >= 2, "distance must be at least 2");
    assert!(config.rounds >= 1, "need at least one round");
    let d = config.distance;
    let data: Vec<u32> = (0..d as u32).collect();
    let mut c = Circuit::new(d as u32);

    c.reset_many_in(PauliKind::X, &data);

    push_round(&mut |inst| c.push(inst), config, &data, true);
    if config.rounds > 1 {
        let mut body = Block::new();
        push_round(&mut |inst| body.push(inst), config, &data, false);
        c.push(Instruction::Repeat {
            count: (config.rounds - 1) as u64,
            body: Box::new(body),
        });
    }

    // Final data noise, then the transversal X readout; compare adjacent
    // data parities against the last round's checks. Without this last
    // noise layer the closing detectors re-measure the last round's
    // checks noiselessly — symbolically constant, i.e. vacuous.
    if config.data_error > 0.0 {
        c.push(Instruction::Noise {
            channel: NoiseChannel::ZError(config.data_error),
            targets: data.to_vec(),
        });
    }
    c.measure_many_in(PauliKind::X, &data);
    let num_checks = d as i64 - 1;
    for i in 0..num_checks {
        let data_a = -(d as i64) + i;
        let data_b = data_a + 1;
        let last_check = -(d as i64) - num_checks + i;
        c.detector_at(&[i as f64 + 0.5, 0.0], &[data_a, data_b, last_check]);
    }
    // Logical X is any single data qubit's X value in the code space.
    c.observable_include(0, &[-(d as i64)]);
    c
}

/// Emits one check round through `push`: phase noise, the correlated
/// pair chain, the `MPP` checks, and detectors (single-outcome in round
/// 0 — `|+…+⟩` stabilizes every check — pairwise afterwards).
fn push_round(
    push: &mut dyn FnMut(Instruction),
    config: &PhaseMemoryConfig,
    data: &[u32],
    first: bool,
) {
    let d = data.len();
    let num_checks = (d - 1) as i64;
    if config.data_error > 0.0 {
        push(Instruction::Noise {
            channel: NoiseChannel::ZError(config.data_error),
            targets: data.to_vec(),
        });
    }
    if config.pair_error > 0.0 {
        // One chain over all adjacent pairs: at most one Z⊗Z burst fires
        // per round.
        for i in 0..d as u32 - 1 {
            push(Instruction::CorrelatedError {
                probability: config.pair_error,
                product: vec![(PauliKind::Z, i), (PauliKind::Z, i + 1)],
                else_branch: i != 0,
            });
        }
    }
    let products: Vec<Vec<(PauliKind, u32)>> = (0..d as u32 - 1)
        .map(|i| vec![(PauliKind::X, i), (PauliKind::X, i + 1)])
        .collect();
    push(Instruction::MeasurePauliProduct { products });
    // Check `i` sits between data qubits `i` and `i+1`; SHIFT_COORDS
    // advances `t` each round.
    for i in 0..num_checks {
        let this = -num_checks + i;
        let lookbacks = if first {
            vec![this]
        } else {
            vec![this, this - num_checks]
        };
        push(Instruction::Detector {
            coords: vec![i as f64 + 0.5, 0.0],
            lookbacks,
        });
    }
    push(Instruction::ShiftCoords {
        coords: vec![0.0, 1.0],
    });
    push(Instruction::Tick);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_scale_with_distance_and_rounds() {
        let c = mpp_phase_memory(&PhaseMemoryConfig {
            distance: 5,
            rounds: 4,
            data_error: 0.01,
            pair_error: 0.002,
        });
        assert_eq!(c.num_qubits(), 5);
        // 4 checks × 4 rounds + 5 final data readouts.
        assert_eq!(c.stats().measurements, 4 * 4 + 5);
        assert_eq!(c.num_detectors(), 4 * 4 + 4);
        assert_eq!(c.num_observables(), 1);
        // Noise: 5 Z sites + 4 chain elements per round, plus the final
        // pre-readout data layer.
        assert_eq!(c.stats().noise_sites, 4 * (5 + 4) + 5);
    }

    #[test]
    fn rounds_are_structured_and_text_roundtrips() {
        let c = mpp_phase_memory(&PhaseMemoryConfig {
            distance: 4,
            rounds: 100,
            data_error: 0.01,
            pair_error: 0.001,
        });
        assert!(c
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Repeat { count: 99, .. })));
        let text = c.to_string();
        assert!(text.contains("MPP X0*X1 X1*X2 X2*X3"));
        assert!(text.contains("E(0.001) Z0 Z1"));
        assert!(text.contains("ELSE_CORRELATED_ERROR(0.001) Z1 Z2"));
        assert_eq!(Circuit::parse(&text).unwrap(), c);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn rejects_distance_one() {
        mpp_phase_memory(&PhaseMemoryConfig {
            distance: 1,
            rounds: 1,
            data_error: 0.0,
            pair_error: 0.0,
        });
    }
}
