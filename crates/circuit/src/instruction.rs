//! Circuit instructions: gates, measurements, noise, feedback, annotations,
//! and structured `REPEAT` blocks.

use std::fmt;

use crate::circuit::Block;
use crate::gate::{Gate, PauliKind};

/// A Pauli noise channel attached to qubit targets.
///
/// Under phase symbolization every channel decomposes into symbolic Pauli
/// faults (`X^s`, `Z^s`, …) whose symbols are later sampled with the joint
/// distribution listed here (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// `X` with probability `p` on each target (1 symbol per target).
    XError(f64),
    /// `Y` with probability `p` on each target (1 symbol per target).
    YError(f64),
    /// `Z` with probability `p` on each target (1 symbol per target).
    ZError(f64),
    /// Single-qubit depolarizing: `X`, `Y`, `Z` each with probability `p/3`
    /// (2 symbols per target, jointly distributed).
    Depolarize1(f64),
    /// Two-qubit depolarizing over target pairs: each of the 15 non-identity
    /// two-qubit Paulis with probability `p/15` (4 symbols per pair).
    Depolarize2(f64),
    /// Biased single-qubit channel: `X`, `Y`, `Z` with probabilities
    /// `px, py, pz` (2 symbols per target).
    PauliChannel1 {
        /// Probability of an `X` fault.
        px: f64,
        /// Probability of a `Y` fault.
        py: f64,
        /// Probability of a `Z` fault.
        pz: f64,
    },
}

impl NoiseChannel {
    /// Qubits consumed per application (1, or 2 for two-qubit channels).
    pub fn arity(self) -> usize {
        match self {
            NoiseChannel::Depolarize2(_) => 2,
            _ => 1,
        }
    }

    /// Number of bit-symbols the channel introduces per application
    /// (the `n_p` accounting of the paper's Table 1).
    pub fn symbols_per_application(self) -> usize {
        match self {
            NoiseChannel::XError(_) | NoiseChannel::YError(_) | NoiseChannel::ZError(_) => 1,
            NoiseChannel::Depolarize1(_) | NoiseChannel::PauliChannel1 { .. } => 2,
            NoiseChannel::Depolarize2(_) => 4,
        }
    }

    /// Probability that one application of the channel fires (produces a
    /// non-identity fault). Drives the sampler's event-driven `Hybrid`
    /// strategy selection: at low fire probabilities almost no per-shot
    /// work happens.
    pub fn fire_probability(self) -> f64 {
        match self {
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => p,
            NoiseChannel::PauliChannel1 { px, py, pz } => px + py + pz,
        }
    }

    /// Canonical instruction-file name.
    pub fn name(self) -> &'static str {
        match self {
            NoiseChannel::XError(_) => "X_ERROR",
            NoiseChannel::YError(_) => "Y_ERROR",
            NoiseChannel::ZError(_) => "Z_ERROR",
            NoiseChannel::Depolarize1(_) => "DEPOLARIZE1",
            NoiseChannel::Depolarize2(_) => "DEPOLARIZE2",
            NoiseChannel::PauliChannel1 { .. } => "PAULI_CHANNEL_1",
        }
    }

    /// Validates probability arguments.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(self) -> Result<(), String> {
        let check = |p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("probability {p} out of [0, 1]"))
            }
        };
        match self {
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => check(p),
            NoiseChannel::PauliChannel1 { px, py, pz } => {
                check(px)?;
                check(py)?;
                check(pz)?;
                if px + py + pz > 1.0 + 1e-12 {
                    return Err(format!("px+py+pz = {} exceeds 1", px + py + pz));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseChannel::PauliChannel1 { px, py, pz } => {
                write!(f, "PAULI_CHANNEL_1({px},{py},{pz})")
            }
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => write!(f, "{}({p})", self.name()),
        }
    }
}

/// One instruction of a stabilizer circuit.
///
/// Gate and noise targets *broadcast*: a single-qubit operation with `k`
/// targets applies `k` times; a two-qubit operation consumes targets in
/// consecutive pairs (Stim's convention).
#[derive(Clone, Debug, PartialEq)]
pub enum Instruction {
    /// A unitary Clifford gate application.
    Gate {
        /// Which gate.
        gate: Gate,
        /// Broadcast targets (pairs for two-qubit gates).
        targets: Vec<u32>,
    },
    /// Computational-basis measurement of each target, appending outcomes to
    /// the measurement record in target order.
    Measure {
        /// Measured qubits.
        targets: Vec<u32>,
    },
    /// Reset of each target to `|0⟩`.
    Reset {
        /// Reset qubits.
        targets: Vec<u32>,
    },
    /// Measurement immediately followed by reset to `|0⟩`.
    MeasureReset {
        /// Measured-and-reset qubits.
        targets: Vec<u32>,
    },
    /// A Pauli noise channel application.
    Noise {
        /// The channel and its parameters.
        channel: NoiseChannel,
        /// Broadcast targets (pairs for two-qubit channels).
        targets: Vec<u32>,
    },
    /// A Pauli applied iff an earlier measurement outcome was 1 (dynamic
    /// circuits; written `CX rec[-k] t` / `CY` / `CZ` in the text format).
    Feedback {
        /// Which Pauli to apply.
        pauli: PauliKind,
        /// Measurement-record lookback (negative, `-1` = most recent).
        lookback: i64,
        /// Target qubit.
        target: u32,
    },
    /// Declares a detector: the XOR of the referenced measurement outcomes
    /// is deterministic (0) in the absence of faults.
    Detector {
        /// Measurement-record lookbacks (all negative).
        lookbacks: Vec<i64>,
    },
    /// Accumulates the referenced measurements into logical observable
    /// `index`.
    ObservableInclude {
        /// Observable id.
        index: u32,
        /// Measurement-record lookbacks (all negative).
        lookbacks: Vec<i64>,
    },
    /// A no-op layer marker.
    Tick,
    /// A structured `REPEAT count { … }` block: the body executes `count`
    /// times in sequence. The block is **never flattened** — engines
    /// stream it through `Circuit::flat_instructions`, and record
    /// lookbacks inside the body resolve dynamically per iteration, so
    /// `rec[-k]` may legitimately reach into the previous iteration's
    /// measurements (see [`Block`]).
    Repeat {
        /// Number of iterations (at least 1).
        count: u64,
        /// The repeated instruction sequence.
        body: Box<Block>,
    },
}

impl Instruction {
    /// Number of measurement outcomes this instruction appends to the
    /// record. A `REPEAT` counts its body's outcomes times the trip count
    /// (saturating).
    pub fn measurements_added(&self) -> usize {
        match self {
            Instruction::Measure { targets } | Instruction::MeasureReset { targets } => {
                targets.len()
            }
            Instruction::Repeat { count, body } => body
                .measurements()
                .saturating_mul(usize::try_from(*count).unwrap_or(usize::MAX)),
            _ => 0,
        }
    }

    /// Largest referenced qubit index plus one, or 0 if no qubits are
    /// referenced.
    pub fn max_qubit_bound(&self) -> u32 {
        let targets: &[u32] = match self {
            Instruction::Gate { targets, .. }
            | Instruction::Measure { targets }
            | Instruction::Reset { targets }
            | Instruction::MeasureReset { targets }
            | Instruction::Noise { targets, .. } => targets,
            Instruction::Feedback { target, .. } => std::slice::from_ref(target),
            Instruction::Repeat { body, .. } => return body.max_qubit_bound(),
            _ => &[],
        };
        targets.iter().max().map_or(0, |&m| m + 1)
    }

    /// Writes the instruction at the given `REPEAT` nesting level (4
    /// spaces per level). `Repeat` renders as a multi-line
    /// `REPEAT n {` / indented body / `}` group; everything else is the
    /// single-line form of `Display`. No trailing newline is written.
    pub fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = indent * 4;
        write!(f, "{:pad$}", "")?;
        match self {
            Instruction::Repeat { count, body } => {
                writeln!(f, "REPEAT {count} {{")?;
                for inst in body.instructions() {
                    inst.fmt_indented(f, indent + 1)?;
                    writeln!(f)?;
                }
                write!(f, "{:pad$}}}", "")
            }
            other => other.fmt_single_line(f),
        }
    }

    /// The one-line rendering of every non-`Repeat` instruction.
    fn fmt_single_line(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Gate { gate, targets } => {
                write!(f, "{}", gate.name())?;
                write_targets(f, targets)
            }
            Instruction::Measure { targets } => {
                write!(f, "M")?;
                write_targets(f, targets)
            }
            Instruction::Reset { targets } => {
                write!(f, "R")?;
                write_targets(f, targets)
            }
            Instruction::MeasureReset { targets } => {
                write!(f, "MR")?;
                write_targets(f, targets)
            }
            Instruction::Noise { channel, targets } => {
                write!(f, "{channel}")?;
                write_targets(f, targets)
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => write!(f, "C{pauli} rec[{lookback}] {target}"),
            Instruction::Detector { lookbacks } => {
                write!(f, "DETECTOR")?;
                for l in lookbacks {
                    write!(f, " rec[{l}]")?;
                }
                Ok(())
            }
            Instruction::ObservableInclude { index, lookbacks } => {
                write!(f, "OBSERVABLE_INCLUDE({index})")?;
                for l in lookbacks {
                    write!(f, " rec[{l}]")?;
                }
                Ok(())
            }
            Instruction::Tick => write!(f, "TICK"),
            Instruction::Repeat { .. } => unreachable!("handled by fmt_indented"),
        }
    }
}

fn write_targets(f: &mut fmt::Formatter<'_>, targets: &[u32]) -> fmt::Result {
    for t in targets {
        write!(f, " {t}")?;
    }
    Ok(())
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let i = Instruction::Gate {
            gate: Gate::Cx,
            targets: vec![0, 1, 2, 3],
        };
        assert_eq!(i.to_string(), "CX 0 1 2 3");
        let i = Instruction::Noise {
            channel: NoiseChannel::Depolarize1(0.01),
            targets: vec![5],
        };
        assert_eq!(i.to_string(), "DEPOLARIZE1(0.01) 5");
        let i = Instruction::Feedback {
            pauli: PauliKind::X,
            lookback: -2,
            target: 3,
        };
        assert_eq!(i.to_string(), "CX rec[-2] 3");
        let i = Instruction::Detector {
            lookbacks: vec![-1, -3],
        };
        assert_eq!(i.to_string(), "DETECTOR rec[-1] rec[-3]");
        let i = Instruction::ObservableInclude {
            index: 0,
            lookbacks: vec![-1],
        };
        assert_eq!(i.to_string(), "OBSERVABLE_INCLUDE(0) rec[-1]");
    }

    #[test]
    fn symbols_per_application_counts() {
        assert_eq!(NoiseChannel::XError(0.1).symbols_per_application(), 1);
        assert_eq!(NoiseChannel::Depolarize1(0.1).symbols_per_application(), 2);
        assert_eq!(NoiseChannel::Depolarize2(0.1).symbols_per_application(), 4);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(NoiseChannel::XError(1.5).validate().is_err());
        assert!(NoiseChannel::XError(-0.1).validate().is_err());
        assert!(NoiseChannel::PauliChannel1 {
            px: 0.5,
            py: 0.5,
            pz: 0.5
        }
        .validate()
        .is_err());
        assert!(NoiseChannel::PauliChannel1 {
            px: 0.2,
            py: 0.3,
            pz: 0.1
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn max_qubit_bound_views_all_target_kinds() {
        let g = Instruction::Gate {
            gate: Gate::H,
            targets: vec![3, 9],
        };
        assert_eq!(g.max_qubit_bound(), 10);
        let fb = Instruction::Feedback {
            pauli: PauliKind::Z,
            lookback: -1,
            target: 4,
        };
        assert_eq!(fb.max_qubit_bound(), 5);
        assert_eq!(Instruction::Tick.max_qubit_bound(), 0);
    }

    #[test]
    fn measurements_added_counts() {
        let m = Instruction::Measure {
            targets: vec![1, 2, 3],
        };
        assert_eq!(m.measurements_added(), 3);
        let mr = Instruction::MeasureReset { targets: vec![1] };
        assert_eq!(mr.measurements_added(), 1);
        let r = Instruction::Reset { targets: vec![1] };
        assert_eq!(r.measurements_added(), 0);
    }
}
