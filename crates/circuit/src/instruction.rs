//! Circuit instructions: gates, measurements, noise, feedback, annotations,
//! and structured `REPEAT` blocks.

use std::fmt;

use crate::circuit::Block;
use crate::gate::{Gate, PauliKind};

/// A Pauli noise channel attached to qubit targets.
///
/// Under phase symbolization every channel decomposes into symbolic Pauli
/// faults (`X^s`, `Z^s`, …) whose symbols are later sampled with the joint
/// distribution listed here (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// `X` with probability `p` on each target (1 symbol per target).
    XError(f64),
    /// `Y` with probability `p` on each target (1 symbol per target).
    YError(f64),
    /// `Z` with probability `p` on each target (1 symbol per target).
    ZError(f64),
    /// Single-qubit depolarizing: `X`, `Y`, `Z` each with probability `p/3`
    /// (2 symbols per target, jointly distributed).
    Depolarize1(f64),
    /// Two-qubit depolarizing over target pairs: each of the 15 non-identity
    /// two-qubit Paulis with probability `p/15` (4 symbols per pair).
    Depolarize2(f64),
    /// Biased single-qubit channel: `X`, `Y`, `Z` with probabilities
    /// `px, py, pz` (2 symbols per target).
    PauliChannel1 {
        /// Probability of an `X` fault.
        px: f64,
        /// Probability of a `Y` fault.
        py: f64,
        /// Probability of a `Z` fault.
        pz: f64,
    },
    /// Biased two-qubit channel over target pairs: each of the 15
    /// non-identity two-qubit Paulis with its own probability, in Stim's
    /// argument order `IX IY IZ XI XX XY XZ YI YX YY YZ ZI ZX ZY ZZ`
    /// (first letter = first target of the pair). 4 symbols per pair,
    /// jointly distributed — the per-Pauli fault accounting of the
    /// paper's Table 1 extended to arbitrary two-qubit biases.
    PauliChannel2 {
        /// Outcome probabilities; index `m - 1` holds the Pauli pair
        /// `(m / 4, m % 4)` with `0=I, 1=X, 2=Y, 3=Z`.
        probs: [f64; 15],
    },
}

/// The `(x_a, z_a, x_b, z_b)` bit pattern of two-qubit Pauli outcome `m`
/// (`1..=15`, Stim argument order: `m = 4·first + second` with
/// `0=I, 1=X, 2=Y, 3=Z`) — the symbol order of a `PAULI_CHANNEL_2` /
/// `DEPOLARIZE2` site.
pub fn pauli_channel_2_bits(m: usize) -> [bool; 4] {
    debug_assert!((1..=15).contains(&m));
    let bits = |p: usize| match p {
        0 => (false, false),
        1 => (true, false),
        2 => (true, true),
        _ => (false, true),
    };
    let (xa, za) = bits(m / 4);
    let (xb, zb) = bits(m % 4);
    [xa, za, xb, zb]
}

/// Maps a uniform draw `u ∈ [0, Σprobs)` to the fired outcome index
/// (1-based, so the result feeds [`pauli_channel_2_bits`] directly). Every
/// engine selects `PAULI_CHANNEL_2` outcomes through this one cumulative
/// scan so the channel's conditional distribution cannot drift apart.
pub fn pauli_channel_2_select(u: f64, probs: &[f64; 15]) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i + 1;
        }
    }
    15
}

impl NoiseChannel {
    /// Qubits consumed per application (1, or 2 for two-qubit channels).
    pub fn arity(self) -> usize {
        match self {
            NoiseChannel::Depolarize2(_) | NoiseChannel::PauliChannel2 { .. } => 2,
            _ => 1,
        }
    }

    /// Number of bit-symbols the channel introduces per application
    /// (the `n_p` accounting of the paper's Table 1).
    pub fn symbols_per_application(self) -> usize {
        match self {
            NoiseChannel::XError(_) | NoiseChannel::YError(_) | NoiseChannel::ZError(_) => 1,
            NoiseChannel::Depolarize1(_) | NoiseChannel::PauliChannel1 { .. } => 2,
            NoiseChannel::Depolarize2(_) | NoiseChannel::PauliChannel2 { .. } => 4,
        }
    }

    /// Probability that one application of the channel fires (produces a
    /// non-identity fault). Drives the sampler's event-driven `Hybrid`
    /// strategy selection: at low fire probabilities almost no per-shot
    /// work happens.
    pub fn fire_probability(self) -> f64 {
        match self {
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => p,
            NoiseChannel::PauliChannel1 { px, py, pz } => px + py + pz,
            NoiseChannel::PauliChannel2 { probs } => probs.iter().sum(),
        }
    }

    /// Canonical instruction-file name.
    pub fn name(self) -> &'static str {
        match self {
            NoiseChannel::XError(_) => "X_ERROR",
            NoiseChannel::YError(_) => "Y_ERROR",
            NoiseChannel::ZError(_) => "Z_ERROR",
            NoiseChannel::Depolarize1(_) => "DEPOLARIZE1",
            NoiseChannel::Depolarize2(_) => "DEPOLARIZE2",
            NoiseChannel::PauliChannel1 { .. } => "PAULI_CHANNEL_1",
            NoiseChannel::PauliChannel2 { .. } => "PAULI_CHANNEL_2",
        }
    }

    /// Validates probability arguments.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(self) -> Result<(), String> {
        let check = |p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("probability {p} out of [0, 1]"))
            }
        };
        match self {
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => check(p),
            NoiseChannel::PauliChannel1 { px, py, pz } => {
                check(px)?;
                check(py)?;
                check(pz)?;
                if px + py + pz > 1.0 + 1e-12 {
                    return Err(format!("px+py+pz = {} exceeds 1", px + py + pz));
                }
                Ok(())
            }
            NoiseChannel::PauliChannel2 { probs } => {
                for &p in &probs {
                    check(p)?;
                }
                let total: f64 = probs.iter().sum();
                if total > 1.0 + 1e-12 {
                    return Err(format!("probabilities sum to {total}, exceeding 1"));
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for NoiseChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseChannel::PauliChannel1 { px, py, pz } => {
                write!(f, "PAULI_CHANNEL_1({px},{py},{pz})")
            }
            NoiseChannel::PauliChannel2 { probs } => {
                write!(f, "PAULI_CHANNEL_2(")?;
                for (i, p) in probs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            NoiseChannel::XError(p)
            | NoiseChannel::YError(p)
            | NoiseChannel::ZError(p)
            | NoiseChannel::Depolarize1(p)
            | NoiseChannel::Depolarize2(p) => write!(f, "{}({p})", self.name()),
        }
    }
}

/// One multiplicative factor of a Pauli product: a Pauli letter on a
/// qubit (the `X0` of `MPP X0*Z1` or `E(p) X0 Y1`).
pub type PauliFactor = (PauliKind, u32);

/// One instruction of a stabilizer circuit.
///
/// Gate and noise targets *broadcast*: a single-qubit operation with `k`
/// targets applies `k` times; a two-qubit operation consumes targets in
/// consecutive pairs (Stim's convention).
#[derive(Clone, Debug, PartialEq)]
pub enum Instruction {
    /// A unitary Clifford gate application.
    Gate {
        /// Which gate.
        gate: Gate,
        /// Broadcast targets (pairs for two-qubit gates).
        targets: Vec<u32>,
    },
    /// Single-qubit Pauli measurement of each target (`M`/`MX`/`MY`),
    /// appending outcomes to the measurement record in target order.
    /// Outcome 0 is the `+1` eigenstate of the basis Pauli.
    Measure {
        /// Measured Pauli (`Z` is the computational basis).
        basis: PauliKind,
        /// Measured qubits.
        targets: Vec<u32>,
    },
    /// Reset of each target to the `+1` eigenstate of the basis Pauli
    /// (`R` → `|0⟩`, `RX` → `|+⟩`, `RY` → `|+i⟩`).
    Reset {
        /// Reset basis.
        basis: PauliKind,
        /// Reset qubits.
        targets: Vec<u32>,
    },
    /// Measurement immediately followed by reset to the `+1` eigenstate
    /// of the same basis (`MR`/`MRX`/`MRY`).
    MeasureReset {
        /// Measurement-and-reset basis.
        basis: PauliKind,
        /// Measured-and-reset qubits.
        targets: Vec<u32>,
    },
    /// Multi-qubit Pauli-product measurement (`MPP X0*Z1*Y2 X3*X4`): each
    /// product appends one outcome to the record, in product order. The
    /// paper's Init-M conjugation measures any Pauli product exactly like
    /// the Z observable — see [`pauli_product_plan`] for the shared
    /// reduction every engine runs.
    MeasurePauliProduct {
        /// The measured products, each a non-empty list of factors on
        /// distinct qubits.
        products: Vec<Vec<PauliFactor>>,
    },
    /// A Pauli noise channel application.
    Noise {
        /// The channel and its parameters.
        channel: NoiseChannel,
        /// Broadcast targets (pairs for two-qubit channels).
        targets: Vec<u32>,
    },
    /// A correlated Pauli-product error (`E(p) X0 Y1` /
    /// `ELSE_CORRELATED_ERROR(p) Z2`): with probability `p` the whole
    /// product is applied at once — one bit-symbol per instruction under
    /// phase symbolization, whatever the product weight. An `else_branch`
    /// instruction fires only when no earlier element of its chain (the
    /// immediately preceding `E`/`ELSE_CORRELATED_ERROR` run) fired, so a
    /// chain realizes at most one of its products per shot.
    CorrelatedError {
        /// Probability of the product being applied (for `else_branch`:
        /// conditional on the chain not having fired yet).
        probability: f64,
        /// The applied Pauli product (non-empty, distinct qubits).
        product: Vec<PauliFactor>,
        /// `true` for `ELSE_CORRELATED_ERROR` (continues the chain of the
        /// directly preceding correlated error).
        else_branch: bool,
    },
    /// A Pauli applied iff an earlier measurement outcome was 1 (dynamic
    /// circuits; written `CX rec[-k] t` / `CY` / `CZ` in the text format).
    Feedback {
        /// Which Pauli to apply.
        pauli: PauliKind,
        /// Measurement-record lookback (negative, `-1` = most recent).
        lookback: i64,
        /// Target qubit.
        target: u32,
    },
    /// Declares a detector: the XOR of the referenced measurement outcomes
    /// is deterministic (0) in the absence of faults.
    Detector {
        /// Optional coordinate arguments (`DETECTOR(1,2,0) …`), carried
        /// verbatim for round-tripping and decoder tooling; engines ignore
        /// them.
        coords: Vec<f64>,
        /// Measurement-record lookbacks (all negative).
        lookbacks: Vec<i64>,
    },
    /// Accumulates the referenced measurements into logical observable
    /// `index`.
    ObservableInclude {
        /// Observable id.
        index: u32,
        /// Measurement-record lookbacks (all negative).
        lookbacks: Vec<i64>,
    },
    /// A no-op layer marker.
    Tick,
    /// `QUBIT_COORDS(…) q…`: coordinate annotation for the listed qubits.
    /// Pure metadata — engines ignore it, but it round-trips through the
    /// text format (previously these lines were silently dropped).
    QubitCoords {
        /// Coordinate arguments.
        coords: Vec<f64>,
        /// Annotated qubits.
        targets: Vec<u32>,
    },
    /// `SHIFT_COORDS(…)`: shifts the coordinate origin of later
    /// annotations. Pure metadata, preserved for round-tripping.
    ShiftCoords {
        /// Per-axis offsets.
        coords: Vec<f64>,
    },
    /// A structured `REPEAT count { … }` block: the body executes `count`
    /// times in sequence. The block is **never flattened** — engines
    /// stream it through `Circuit::flat_instructions`, and record
    /// lookbacks inside the body resolve dynamically per iteration, so
    /// `rec[-k]` may legitimately reach into the previous iteration's
    /// measurements (see [`Block`]).
    Repeat {
        /// Number of iterations (at least 1).
        count: u64,
        /// The repeated instruction sequence.
        body: Box<Block>,
    },
}

impl Instruction {
    /// Number of measurement outcomes this instruction appends to the
    /// record. A `REPEAT` counts its body's outcomes times the trip count
    /// (saturating).
    pub fn measurements_added(&self) -> usize {
        match self {
            Instruction::Measure { targets, .. } | Instruction::MeasureReset { targets, .. } => {
                targets.len()
            }
            Instruction::MeasurePauliProduct { products } => products.len(),
            Instruction::Repeat { count, body } => body
                .measurements()
                .saturating_mul(usize::try_from(*count).unwrap_or(usize::MAX)),
            _ => 0,
        }
    }

    /// Largest referenced qubit index plus one, or 0 if no qubits are
    /// referenced.
    pub fn max_qubit_bound(&self) -> u32 {
        let targets: &[u32] = match self {
            Instruction::Gate { targets, .. }
            | Instruction::Measure { targets, .. }
            | Instruction::Reset { targets, .. }
            | Instruction::MeasureReset { targets, .. }
            | Instruction::Noise { targets, .. }
            | Instruction::QubitCoords { targets, .. } => targets,
            Instruction::Feedback { target, .. } => std::slice::from_ref(target),
            Instruction::MeasurePauliProduct { products } => {
                return products
                    .iter()
                    .flatten()
                    .map(|&(_, q)| q + 1)
                    .max()
                    .unwrap_or(0)
            }
            Instruction::CorrelatedError { product, .. } => {
                return product.iter().map(|&(_, q)| q + 1).max().unwrap_or(0)
            }
            Instruction::Repeat { body, .. } => return body.max_qubit_bound(),
            _ => &[],
        };
        targets.iter().max().map_or(0, |&m| m + 1)
    }

    /// Writes the instruction at the given `REPEAT` nesting level (4
    /// spaces per level). `Repeat` renders as a multi-line
    /// `REPEAT n {` / indented body / `}` group; everything else is the
    /// single-line form of `Display`. No trailing newline is written.
    pub fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = indent * 4;
        write!(f, "{:pad$}", "")?;
        match self {
            Instruction::Repeat { count, body } => {
                writeln!(f, "REPEAT {count} {{")?;
                for inst in body.instructions() {
                    inst.fmt_indented(f, indent + 1)?;
                    writeln!(f)?;
                }
                write!(f, "{:pad$}}}", "")
            }
            other => other.fmt_single_line(f),
        }
    }

    /// The one-line rendering of every non-`Repeat` instruction.
    fn fmt_single_line(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Gate { gate, targets } => {
                write!(f, "{}", gate.name())?;
                write_targets(f, targets)
            }
            Instruction::Measure { basis, targets } => {
                write!(f, "M{}", basis_suffix(*basis))?;
                write_targets(f, targets)
            }
            Instruction::Reset { basis, targets } => {
                write!(f, "R{}", basis_suffix(*basis))?;
                write_targets(f, targets)
            }
            Instruction::MeasureReset { basis, targets } => {
                write!(f, "MR{}", basis_suffix(*basis))?;
                write_targets(f, targets)
            }
            Instruction::MeasurePauliProduct { products } => {
                write!(f, "MPP")?;
                for product in products {
                    write!(f, " ")?;
                    write_product(f, product, "*")?;
                }
                Ok(())
            }
            Instruction::Noise { channel, targets } => {
                write!(f, "{channel}")?;
                write_targets(f, targets)
            }
            Instruction::CorrelatedError {
                probability,
                product,
                else_branch,
            } => {
                let name = if *else_branch {
                    "ELSE_CORRELATED_ERROR"
                } else {
                    "E"
                };
                write!(f, "{name}({probability}) ")?;
                write_product(f, product, " ")
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => write!(f, "C{pauli} rec[{lookback}] {target}"),
            Instruction::Detector { coords, lookbacks } => {
                write!(f, "DETECTOR")?;
                write_coords(f, coords)?;
                for l in lookbacks {
                    write!(f, " rec[{l}]")?;
                }
                Ok(())
            }
            Instruction::ObservableInclude { index, lookbacks } => {
                write!(f, "OBSERVABLE_INCLUDE({index})")?;
                for l in lookbacks {
                    write!(f, " rec[{l}]")?;
                }
                Ok(())
            }
            Instruction::Tick => write!(f, "TICK"),
            Instruction::QubitCoords { coords, targets } => {
                write!(f, "QUBIT_COORDS")?;
                write_coords(f, coords)?;
                write_targets(f, targets)
            }
            Instruction::ShiftCoords { coords } => {
                write!(f, "SHIFT_COORDS")?;
                write_coords(f, coords)
            }
            Instruction::Repeat { .. } => unreachable!("handled by fmt_indented"),
        }
    }
}

/// Canonical name suffix of a measurement/reset basis (`Z` stays bare so
/// legacy `M`/`R`/`MR` text round-trips unchanged).
fn basis_suffix(basis: PauliKind) -> &'static str {
    match basis {
        PauliKind::Z => "",
        PauliKind::X => "X",
        PauliKind::Y => "Y",
    }
}

fn write_targets(f: &mut fmt::Formatter<'_>, targets: &[u32]) -> fmt::Result {
    for t in targets {
        write!(f, " {t}")?;
    }
    Ok(())
}

/// Writes a Pauli product as `X0<sep>Z1<sep>…`.
fn write_product(f: &mut fmt::Formatter<'_>, product: &[PauliFactor], sep: &str) -> fmt::Result {
    for (i, (kind, q)) in product.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{kind}{q}")?;
    }
    Ok(())
}

/// Writes a parenthesised coordinate list, or nothing when empty.
fn write_coords(f: &mut fmt::Formatter<'_>, coords: &[f64]) -> fmt::Result {
    if coords.is_empty() {
        return Ok(());
    }
    write!(f, "(")?;
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

/// One gate application of a [`pauli_product_plan`]: a self-inverse gate
/// on one or two qubits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOp {
    /// The (self-inverse) gate.
    pub gate: Gate,
    /// Backing target storage; use [`PlanOp::targets`].
    targets: [u32; 2],
}

impl PlanOp {
    /// The gate's targets (one or two qubits).
    pub fn targets(&self) -> &[u32] {
        &self.targets[..self.gate.arity()]
    }
}

/// The shared reduction of an arbitrary Pauli-product measurement to a
/// Z-basis measurement — the `measure(P)` generalization of Init-M, used
/// identically by every engine (symbolic, tableau, frame, state-vector).
///
/// Returns `(ops, anchor)` where `ops` is a self-inverse gate sequence
/// `U` such that `U† Z_anchor U = P`: apply `ops` in order, run the
/// engine's Z-basis measurement (or reset) of `anchor`, then apply `ops`
/// in **reverse** order to uncompute. The sequence is per-factor basis
/// changes (`H` for `X`, `H_YZ` for `Y`) followed by `CX other → anchor`
/// parity fan-in.
///
/// # Panics
///
/// Panics if `product` is empty (validated at circuit construction).
pub fn pauli_product_plan(product: &[PauliFactor]) -> (Vec<PlanOp>, u32) {
    let anchor = product.first().expect("empty Pauli product").1;
    let mut ops = Vec::with_capacity(2 * product.len());
    for &(kind, q) in product {
        if let Some(gate) = kind.z_conjugator() {
            ops.push(PlanOp {
                gate,
                targets: [q, q],
            });
        }
    }
    for &(_, q) in &product[1..] {
        ops.push(PlanOp {
            gate: Gate::Cx,
            targets: [q, anchor],
        });
    }
    (ops, anchor)
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let i = Instruction::Gate {
            gate: Gate::Cx,
            targets: vec![0, 1, 2, 3],
        };
        assert_eq!(i.to_string(), "CX 0 1 2 3");
        let i = Instruction::Noise {
            channel: NoiseChannel::Depolarize1(0.01),
            targets: vec![5],
        };
        assert_eq!(i.to_string(), "DEPOLARIZE1(0.01) 5");
        let i = Instruction::Feedback {
            pauli: PauliKind::X,
            lookback: -2,
            target: 3,
        };
        assert_eq!(i.to_string(), "CX rec[-2] 3");
        let i = Instruction::Detector {
            coords: vec![],
            lookbacks: vec![-1, -3],
        };
        assert_eq!(i.to_string(), "DETECTOR rec[-1] rec[-3]");
        let i = Instruction::Detector {
            coords: vec![1.0, 2.5, 0.0],
            lookbacks: vec![-1],
        };
        assert_eq!(i.to_string(), "DETECTOR(1,2.5,0) rec[-1]");
        let i = Instruction::ObservableInclude {
            index: 0,
            lookbacks: vec![-1],
        };
        assert_eq!(i.to_string(), "OBSERVABLE_INCLUDE(0) rec[-1]");
    }

    #[test]
    fn display_formats_new_instructions() {
        let i = Instruction::Measure {
            basis: PauliKind::X,
            targets: vec![0, 2],
        };
        assert_eq!(i.to_string(), "MX 0 2");
        let i = Instruction::MeasureReset {
            basis: PauliKind::Y,
            targets: vec![1],
        };
        assert_eq!(i.to_string(), "MRY 1");
        let i = Instruction::Reset {
            basis: PauliKind::X,
            targets: vec![3],
        };
        assert_eq!(i.to_string(), "RX 3");
        let i = Instruction::MeasurePauliProduct {
            products: vec![
                vec![(PauliKind::X, 0), (PauliKind::Z, 1), (PauliKind::Y, 2)],
                vec![(PauliKind::X, 3)],
            ],
        };
        assert_eq!(i.to_string(), "MPP X0*Z1*Y2 X3");
        let i = Instruction::CorrelatedError {
            probability: 0.25,
            product: vec![(PauliKind::X, 0), (PauliKind::Y, 1)],
            else_branch: false,
        };
        assert_eq!(i.to_string(), "E(0.25) X0 Y1");
        let i = Instruction::CorrelatedError {
            probability: 0.125,
            product: vec![(PauliKind::Z, 2)],
            else_branch: true,
        };
        assert_eq!(i.to_string(), "ELSE_CORRELATED_ERROR(0.125) Z2");
        let i = Instruction::QubitCoords {
            coords: vec![0.0, 1.0],
            targets: vec![4],
        };
        assert_eq!(i.to_string(), "QUBIT_COORDS(0,1) 4");
        let i = Instruction::ShiftCoords {
            coords: vec![0.0, 0.0, 1.0],
        };
        assert_eq!(i.to_string(), "SHIFT_COORDS(0,0,1)");
    }

    #[test]
    fn pauli_product_plan_reduces_to_anchor_z() {
        let product = vec![(PauliKind::X, 2), (PauliKind::Z, 0), (PauliKind::Y, 5)];
        let (ops, anchor) = pauli_product_plan(&product);
        assert_eq!(anchor, 2);
        // Basis changes on X/Y factors, then CX fan-in from the others.
        let rendered: Vec<(Gate, Vec<u32>)> = ops
            .iter()
            .map(|op| (op.gate, op.targets().to_vec()))
            .collect();
        assert_eq!(
            rendered,
            vec![
                (Gate::H, vec![2]),
                (Gate::HYz, vec![5]),
                (Gate::Cx, vec![0, 2]),
                (Gate::Cx, vec![5, 2]),
            ]
        );
        // Conjugating Z_anchor through the ops (in reverse) reproduces the
        // product: check via the reference conjugation on each factor.
        // (Full behavioral checks live in the engine test suites.)
        for op in &ops {
            assert_eq!(op.gate, op.gate.inverse(), "plan ops must be self-inverse");
        }
    }

    #[test]
    fn pauli_channel_2_mapping() {
        // m = 4·a + b with 0=I,1=X,2=Y,3=Z; bits in (xa, za, xb, zb).
        assert_eq!(pauli_channel_2_bits(1), [false, false, true, false]); // IX
        assert_eq!(pauli_channel_2_bits(4), [true, false, false, false]); // XI
        assert_eq!(pauli_channel_2_bits(10), [true, true, true, true]); // YY
        assert_eq!(pauli_channel_2_bits(15), [false, true, false, true]); // ZZ
        let mut probs = [0.0; 15];
        probs[0] = 0.1; // IX
        probs[14] = 0.2; // ZZ
        assert_eq!(pauli_channel_2_select(0.05, &probs), 1);
        assert_eq!(pauli_channel_2_select(0.15, &probs), 15);
        assert_eq!(pauli_channel_2_select(0.2999, &probs), 15);
    }

    #[test]
    fn symbols_per_application_counts() {
        assert_eq!(NoiseChannel::XError(0.1).symbols_per_application(), 1);
        assert_eq!(NoiseChannel::Depolarize1(0.1).symbols_per_application(), 2);
        assert_eq!(NoiseChannel::Depolarize2(0.1).symbols_per_application(), 4);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(NoiseChannel::XError(1.5).validate().is_err());
        assert!(NoiseChannel::XError(-0.1).validate().is_err());
        assert!(NoiseChannel::PauliChannel1 {
            px: 0.5,
            py: 0.5,
            pz: 0.5
        }
        .validate()
        .is_err());
        assert!(NoiseChannel::PauliChannel1 {
            px: 0.2,
            py: 0.3,
            pz: 0.1
        }
        .validate()
        .is_ok());
        // Two-qubit channel: each entry in [0,1] and the sum at most 1.
        let mut probs = [1.0 / 15.0; 15];
        assert!(NoiseChannel::PauliChannel2 { probs }.validate().is_ok());
        probs[3] = -0.01;
        assert!(NoiseChannel::PauliChannel2 { probs }.validate().is_err());
        let probs = [0.1; 15]; // sums to 1.5
        assert!(NoiseChannel::PauliChannel2 { probs }.validate().is_err());
    }

    #[test]
    fn max_qubit_bound_views_all_target_kinds() {
        let g = Instruction::Gate {
            gate: Gate::H,
            targets: vec![3, 9],
        };
        assert_eq!(g.max_qubit_bound(), 10);
        let fb = Instruction::Feedback {
            pauli: PauliKind::Z,
            lookback: -1,
            target: 4,
        };
        assert_eq!(fb.max_qubit_bound(), 5);
        assert_eq!(Instruction::Tick.max_qubit_bound(), 0);
    }

    #[test]
    fn measurements_added_counts() {
        let m = Instruction::Measure {
            basis: PauliKind::Z,
            targets: vec![1, 2, 3],
        };
        assert_eq!(m.measurements_added(), 3);
        let mr = Instruction::MeasureReset {
            basis: PauliKind::X,
            targets: vec![1],
        };
        assert_eq!(mr.measurements_added(), 1);
        let r = Instruction::Reset {
            basis: PauliKind::Z,
            targets: vec![1],
        };
        assert_eq!(r.measurements_added(), 0);
        let mpp = Instruction::MeasurePauliProduct {
            products: vec![
                vec![(PauliKind::X, 0), (PauliKind::X, 1)],
                vec![(PauliKind::Z, 2)],
            ],
        };
        assert_eq!(mpp.measurements_added(), 2);
        assert_eq!(mpp.max_qubit_bound(), 3);
        let e = Instruction::CorrelatedError {
            probability: 0.1,
            product: vec![(PauliKind::Z, 7)],
            else_branch: false,
        };
        assert_eq!(e.measurements_added(), 0);
        assert_eq!(e.max_qubit_bound(), 8);
    }
}
