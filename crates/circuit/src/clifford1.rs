//! The 24-element single-qubit Clifford group, derived from
//! [`Gate::conjugate`].
//!
//! A single-qubit Clifford is determined (up to global phase) by where it
//! sends the Pauli generators `X` and `Z` under conjugation: a signed
//! Pauli image for each, with the two images anticommuting. Six signed
//! images for `X` times four anticommuting signed images for `Z` gives
//! the familiar 24 elements.
//!
//! [`Clifford1`] stores exactly that pair of images, composes with
//! [`Clifford1::then`], and canonicalizes through a lazily-built table
//! mapping each of the 24 elements to its shortest named-gate word
//! (length 0–2, deterministic tie-break in [`Gate::ALL`] order). The
//! table is *derived* from `Gate::conjugate` at first use — there is no
//! hand-written 24×24 array to drift from the reference semantics — and
//! the tests in this module pin the derivation exhaustively against
//! pairwise conjugation.
//!
//! This is the algebra behind the optimizer's fuse pass
//! (`symphase-analysis`): a run of adjacent single-qubit gates on one
//! qubit composes to one `Clifford1`, which then re-emits as its
//! canonical word.

use std::sync::OnceLock;

use crate::gate::{Gate, SmallPauli};

/// A single-qubit Clifford element, represented by the signed Pauli
/// images of the `X` and `Z` generators under conjugation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Clifford1 {
    x_img: SmallPauli,
    z_img: SmallPauli,
}

impl Clifford1 {
    /// The identity element (`X → X`, `Z → Z`).
    #[must_use]
    pub fn identity() -> Clifford1 {
        Clifford1 {
            x_img: SmallPauli::x0(),
            z_img: SmallPauli::z0(),
        }
    }

    /// The element implemented by a named single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not single-qubit.
    #[must_use]
    pub fn from_gate(gate: Gate) -> Clifford1 {
        assert_eq!(
            gate.arity(),
            1,
            "{} is not a single-qubit gate",
            gate.name()
        );
        Clifford1 {
            x_img: gate.conjugate(SmallPauli::x0()),
            z_img: gate.conjugate(SmallPauli::z0()),
        }
    }

    /// Conjugates a qubit-0 Pauli through this element: `P ↦ U P U†`.
    ///
    /// Mirrors the canonical-order expansion of [`Gate::conjugate`]: the
    /// input's phase carries over and each present generator contributes
    /// its image, `X` factor first.
    #[must_use]
    pub fn apply(self, p: SmallPauli) -> SmallPauli {
        debug_assert!(!p.x1 && !p.z1, "Clifford1 acts on qubit 0 only");
        let mut out = SmallPauli::identity().phased(p.phase);
        if p.x0 {
            out = out.mul(self.x_img);
        }
        if p.z0 {
            out = out.mul(self.z_img);
        }
        out
    }

    /// Composition in circuit order: `self` acts first, `next` second.
    ///
    /// The combined conjugation map is `P ↦ U_next (U_self P U_self†)
    /// U_next†`, so each generator image of `self` is pushed through
    /// `next`.
    #[must_use]
    pub fn then(self, next: Clifford1) -> Clifford1 {
        Clifford1 {
            x_img: next.apply(self.x_img),
            z_img: next.apply(self.z_img),
        }
    }

    /// The canonical shortest named-gate word for this element, in
    /// circuit order (`[]` for the identity, otherwise one or two gates).
    ///
    /// Deterministic: among equal-length words the first in
    /// lexicographic [`Gate::ALL`] order wins, so re-canonicalizing a
    /// canonical word is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not one of the 24 group elements (impossible
    /// for values built from [`Clifford1::from_gate`] and
    /// [`Clifford1::then`]).
    #[must_use]
    pub fn canonical_gates(self) -> &'static [Gate] {
        let table = canonical_table();
        table
            .iter()
            .find(|(c, _)| *c == self)
            .map(|(_, word)| word.as_slice())
            .expect("every composition of single-qubit gates is in the 24-element table")
    }
}

/// The canonical table: each of the 24 elements paired with its shortest
/// named-gate word. Built once from `Gate::conjugate` by enumerating
/// words of length 0, 1, 2 over the named single-qubit gates in
/// [`Gate::ALL`] order and keeping the first word reaching each element.
fn canonical_table() -> &'static Vec<(Clifford1, Vec<Gate>)> {
    static TABLE: OnceLock<Vec<(Clifford1, Vec<Gate>)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let single: Vec<Gate> = Gate::ALL
            .iter()
            .copied()
            .filter(|g| g.arity() == 1)
            .collect();
        let mut table: Vec<(Clifford1, Vec<Gate>)> = vec![(Clifford1::identity(), Vec::new())];
        let insert = |table: &mut Vec<(Clifford1, Vec<Gate>)>, c: Clifford1, word: Vec<Gate>| {
            if !table.iter().any(|(seen, _)| *seen == c) {
                table.push((c, word));
            }
        };
        for &g in &single {
            insert(&mut table, Clifford1::from_gate(g), vec![g]);
        }
        for &a in &single {
            for &b in &single {
                let c = Clifford1::from_gate(a).then(Clifford1::from_gate(b));
                insert(&mut table, c, vec![a, b]);
            }
        }
        assert_eq!(
            table.len(),
            24,
            "words of length ≤ 2 over the named gates must cover the group"
        );
        table
    })
}

impl Gate {
    /// The canonical named-gate word for a single-qubit gate — the word
    /// the optimizer's fuse pass would replace it with. `I` canonicalizes
    /// to the empty word; every other named single-qubit gate is its own
    /// canonical representative (pinned by the module tests).
    ///
    /// # Panics
    ///
    /// Panics if `self` is a two-qubit gate.
    #[must_use]
    pub fn canonical_single_qubit(self) -> &'static [Gate] {
        Clifford1::from_gate(self).canonical_gates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::PauliKind;

    fn single_qubit_gates() -> Vec<Gate> {
        Gate::ALL
            .iter()
            .copied()
            .filter(|g| g.arity() == 1)
            .collect()
    }

    /// Composition through `then` agrees with pairwise conjugation
    /// through `Gate::conjugate` for every ordered pair of named gates
    /// and every signed single-qubit Pauli input.
    #[test]
    fn composition_matches_pairwise_conjugation() {
        let inputs: Vec<SmallPauli> = [PauliKind::X, PauliKind::Y, PauliKind::Z]
            .iter()
            .flat_map(|&k| (0..4).map(move |q| SmallPauli::from_kind(k).phased(q)))
            .collect();
        for &a in &single_qubit_gates() {
            for &b in &single_qubit_gates() {
                let composed = Clifford1::from_gate(a).then(Clifford1::from_gate(b));
                for &p in &inputs {
                    assert_eq!(
                        composed.apply(p),
                        b.conjugate(a.conjugate(p)),
                        "{} then {} on {p:?}",
                        a.name(),
                        b.name(),
                    );
                }
            }
        }
    }

    /// The canonical table covers exactly 24 elements and every word
    /// reproduces its element when re-composed.
    #[test]
    fn canonical_words_reproduce_their_elements() {
        let mut seen = std::collections::HashSet::new();
        for &a in &single_qubit_gates() {
            for &b in &single_qubit_gates() {
                seen.insert(Clifford1::from_gate(a).then(Clifford1::from_gate(b)));
            }
        }
        assert_eq!(seen.len(), 24, "pairwise products must cover the group");
        for c in seen {
            let word = c.canonical_gates();
            assert!(word.len() <= 2);
            let rebuilt = word.iter().fold(Clifford1::identity(), |acc, &g| {
                acc.then(Clifford1::from_gate(g))
            });
            assert_eq!(
                rebuilt, c,
                "canonical word {word:?} does not reproduce {c:?}"
            );
        }
    }

    /// Canonicalization is idempotent: the canonical word of a canonical
    /// word's composition is the same word.
    #[test]
    fn canonicalization_is_idempotent() {
        for (c, word) in canonical_table() {
            let rebuilt = word.iter().fold(Clifford1::identity(), |acc, &g| {
                acc.then(Clifford1::from_gate(g))
            });
            assert_eq!(rebuilt.canonical_gates(), word.as_slice(), "{c:?}");
        }
    }

    /// Every named single-qubit gate other than `I` is its own canonical
    /// representative (the 15 names denote 15 distinct elements), and `I`
    /// canonicalizes away entirely.
    #[test]
    fn named_gates_are_canonical_representatives() {
        assert_eq!(Gate::I.canonical_single_qubit(), &[] as &[Gate]);
        for &g in &single_qubit_gates() {
            if g == Gate::I {
                continue;
            }
            assert_eq!(g.canonical_single_qubit(), &[g], "{}", g.name());
        }
    }

    /// Identity laws and inverses: `g then g.inverse()` is the identity
    /// element for every named single-qubit gate.
    #[test]
    fn inverses_compose_to_identity() {
        for &g in &single_qubit_gates() {
            let c = Clifford1::from_gate(g).then(Clifford1::from_gate(g.inverse()));
            assert_eq!(c, Clifford1::identity(), "{}", g.name());
            assert_eq!(c.canonical_gates().len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not a single-qubit gate")]
    fn two_qubit_gate_rejected() {
        let _ = Clifford1::from_gate(Gate::Cx);
    }
}
