//! The single per-gate dispatch table shared by the bit-packed simulators.
//!
//! Every word-parallel engine (the Pauli-frame batch, the stabilizer
//! tableau) applies a Clifford gate the same way: the F₂ **bit action**
//! `(x, z) ↦ (x', z')` is linear, and the **sign flip** is a boolean
//! function of the input Pauli, expressible as a truth table over the
//! input's X/Z bits. Historically each engine hand-wrote one `match gate`
//! with both pieces fused; those tables drifted independently and had to
//! be cross-checked one by one.
//!
//! This module hoists the semantics into one place: [`Gate::xz_action1`] /
//! [`Gate::xz_action2`] return the table entry for a gate, **derived from
//! the reference conjugation semantics** ([`Gate::conjugate`]) on first
//! use and cached. Engines execute entries with the word kernels
//! [`apply_action1`] / [`apply_action2`], passing a phase sink — a no-op
//! closure for sign-oblivious engines like the Pauli frame, or
//! `PhaseStore::xor_constant_word` for the tableau.
//!
//! Truth-table convention: minterm index `x + 2z` (single-qubit) or
//! `x0 + 2·z0 + 4·x1 + 8·z1` (two-qubit), bit set ⇔ the gate flips the
//! sign of that input Pauli written in the canonical `i^e·X^x Z^z` row
//! form. Minterm 0 (identity) is never set — no Clifford flips the sign
//! of the identity — which keeps slack bits beyond a tableau's row count
//! clean.

use std::sync::OnceLock;

use crate::gate::{Gate, SmallPauli};

/// Table entry for a single-qubit gate: F₂ bit action plus sign-flip
/// truth table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XZAction1 {
    /// `x' = (x & x_from_x) ⊕ (z & x_from_z)`.
    pub x_from_x: bool,
    /// See [`XZAction1::x_from_x`].
    pub x_from_z: bool,
    /// `z' = (x & z_from_x) ⊕ (z & z_from_z)`.
    pub z_from_x: bool,
    /// See [`XZAction1::z_from_x`].
    pub z_from_z: bool,
    /// Sign-flip truth table; bit `x + 2z`.
    pub phase_tt: u8,
}

impl XZAction1 {
    /// Whether the bit action is the identity (`x' = x`, `z' = z`).
    /// Paulis and `I` qualify: engines that ignore signs (the Pauli
    /// frame) can skip them entirely.
    pub fn is_identity_bit_action(&self) -> bool {
        self.x_from_x && !self.x_from_z && !self.z_from_x && self.z_from_z
    }
}

/// Table entry for a two-qubit gate. Each output is the XOR of the input
/// bits selected by its 4-bit mask (bit 0 = `x0`, 1 = `z0`, 2 = `x1`,
/// 3 = `z1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XZAction2 {
    /// Source mask of `x0'`.
    pub xa: u8,
    /// Source mask of `z0'`.
    pub za: u8,
    /// Source mask of `x1'`.
    pub xb: u8,
    /// Source mask of `z1'`.
    pub zb: u8,
    /// Sign-flip truth table; bit `x0 + 2·z0 + 4·x1 + 8·z1`.
    pub phase_tt: u16,
}

/// The canonical tableau-row Pauli for an (x, z) bit pair: `Y` carries the
/// `i` making `i·XZ` Hermitian, matching how rows store phases.
fn canonical1(x: bool, z: bool) -> SmallPauli {
    let mut p = SmallPauli::two(x, z, false, false);
    if x && z {
        p = p.phased(1);
    }
    p
}

fn canonical2(x0: bool, z0: bool, x1: bool, z1: bool) -> SmallPauli {
    let mut p = SmallPauli::two(x0, z0, x1, z1);
    if x0 && z0 {
        p = p.phased(1);
    }
    if x1 && z1 {
        p = p.phased(1);
    }
    p
}

fn derive_action1(gate: Gate) -> XZAction1 {
    debug_assert_eq!(gate.arity(), 1);
    let ix = gate.conjugate(canonical1(true, false));
    let iz = gate.conjugate(canonical1(false, true));
    let mut tt = 0u8;
    for (x, z) in [(true, false), (false, true), (true, true)] {
        let img = gate.conjugate(canonical1(x, z));
        if img.sign_is_negative() {
            tt |= 1 << (usize::from(x) + 2 * usize::from(z));
        }
    }
    XZAction1 {
        x_from_x: ix.x0,
        x_from_z: iz.x0,
        z_from_x: ix.z0,
        z_from_z: iz.z0,
        phase_tt: tt,
    }
}

fn derive_action2(gate: Gate) -> XZAction2 {
    debug_assert_eq!(gate.arity(), 2);
    let imgs = [
        gate.conjugate(canonical2(true, false, false, false)), // x0
        gate.conjugate(canonical2(false, true, false, false)), // z0
        gate.conjugate(canonical2(false, false, true, false)), // x1
        gate.conjugate(canonical2(false, false, false, true)), // z1
    ];
    let mask = |pick: fn(&SmallPauli) -> bool| -> u8 {
        imgs.iter()
            .enumerate()
            .fold(0u8, |m, (s, img)| m | (u8::from(pick(img)) << s))
    };
    let mut tt = 0u16;
    for idx in 1usize..16 {
        let p = canonical2(idx & 1 != 0, idx & 2 != 0, idx & 4 != 0, idx & 8 != 0);
        if gate.conjugate(p).sign_is_negative() {
            tt |= 1 << idx;
        }
    }
    XZAction2 {
        xa: mask(|p| p.x0),
        za: mask(|p| p.z0),
        xb: mask(|p| p.x1),
        zb: mask(|p| p.z1),
        phase_tt: tt,
    }
}

impl Gate {
    /// Stable dense index of this gate (position in [`Gate::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The dispatch-table entry of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if called on a two-qubit gate.
    pub fn xz_action1(self) -> &'static XZAction1 {
        assert_eq!(self.arity(), 1, "{self} is not a single-qubit gate");
        static TABLE: OnceLock<Vec<XZAction1>> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            Gate::ALL
                .iter()
                .map(|&g| {
                    if g.arity() == 1 {
                        derive_action1(g)
                    } else {
                        // Placeholder keeping indices dense; unreachable
                        // through the public accessor.
                        XZAction1 {
                            x_from_x: true,
                            x_from_z: false,
                            z_from_x: false,
                            z_from_z: true,
                            phase_tt: 0,
                        }
                    }
                })
                .collect()
        });
        &table[self.index()]
    }

    /// The dispatch-table entry of a two-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit gate.
    pub fn xz_action2(self) -> &'static XZAction2 {
        assert_eq!(self.arity(), 2, "{self} is not a two-qubit gate");
        static TABLE: OnceLock<Vec<XZAction2>> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            Gate::ALL
                .iter()
                .map(|&g| {
                    if g.arity() == 2 {
                        derive_action2(g)
                    } else {
                        XZAction2 {
                            xa: 1,
                            za: 2,
                            xb: 4,
                            zb: 8,
                            phase_tt: 0,
                        }
                    }
                })
                .collect()
        });
        &table[self.index()]
    }
}

/// All-ones word when `b`, zero otherwise (branchless select).
#[inline]
fn wmask(b: bool) -> u64 {
    0u64.wrapping_sub(u64::from(b))
}

/// Applies a single-qubit table entry to packed X/Z columns (bit `r` of
/// word `r/64` is row/shot `r`), reporting per-word sign-flip masks to
/// `phase`.
///
/// # Panics
///
/// Panics (debug) if the slices have different lengths.
#[inline]
pub fn apply_action1(
    a: &XZAction1,
    x: &mut [u64],
    z: &mut [u64],
    mut phase: impl FnMut(usize, u64),
) {
    debug_assert_eq!(x.len(), z.len());
    debug_assert_eq!(a.phase_tt & 1, 0, "identity minterm must not flip");
    for w in 0..x.len() {
        let (xw, zw) = (x[w], z[w]);
        if a.phase_tt != 0 {
            let mut m = 0u64;
            if a.phase_tt & 0b0010 != 0 {
                m ^= xw & !zw;
            }
            if a.phase_tt & 0b0100 != 0 {
                m ^= !xw & zw;
            }
            if a.phase_tt & 0b1000 != 0 {
                m ^= xw & zw;
            }
            phase(w, m);
        }
        x[w] = (xw & wmask(a.x_from_x)) ^ (zw & wmask(a.x_from_z));
        z[w] = (xw & wmask(a.z_from_x)) ^ (zw & wmask(a.z_from_z));
    }
}

/// Applies a two-qubit table entry to the packed X/Z columns of the two
/// target qubits, reporting per-word sign-flip masks to `phase`.
#[inline]
pub fn apply_action2(
    a: &XZAction2,
    xa: &mut [u64],
    za: &mut [u64],
    xb: &mut [u64],
    zb: &mut [u64],
    mut phase: impl FnMut(usize, u64),
) {
    debug_assert!(xa.len() == za.len() && za.len() == xb.len() && xb.len() == zb.len());
    debug_assert_eq!(a.phase_tt & 1, 0, "identity minterm must not flip");
    let select = |m: u8, v: [u64; 4]| -> u64 {
        (v[0] & wmask(m & 1 != 0))
            ^ (v[1] & wmask(m & 2 != 0))
            ^ (v[2] & wmask(m & 4 != 0))
            ^ (v[3] & wmask(m & 8 != 0))
    };
    for w in 0..xa.len() {
        let v = [xa[w], za[w], xb[w], zb[w]];
        if a.phase_tt != 0 {
            let mut m = 0u64;
            let mut tt = a.phase_tt & !1;
            while tt != 0 {
                let idx = tt.trailing_zeros();
                tt &= tt - 1;
                let lit = |bit: u32, word: u64| if idx & (1 << bit) != 0 { word } else { !word };
                m ^= lit(0, v[0]) & lit(1, v[1]) & lit(2, v[2]) & lit(3, v[3]);
            }
            phase(w, m);
        }
        xa[w] = select(a.xa, v);
        za[w] = select(a.za, v);
        xb[w] = select(a.xb, v);
        zb[w] = select(a.zb, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every single-qubit entry reproduces the reference conjugation on
    /// all Pauli inputs, bit action and sign both.
    #[test]
    fn action1_matches_conjugation() {
        for gate in Gate::ALL {
            if gate.arity() != 1 {
                continue;
            }
            let a = gate.xz_action1();
            for (x, z) in [(true, false), (false, true), (true, true)] {
                let expect = gate.conjugate(canonical1(x, z));
                let mut xw = [wmask(x)];
                let mut zw = [wmask(z)];
                let mut flip = 0u64;
                apply_action1(a, &mut xw, &mut zw, |_, m| flip = m);
                assert_eq!(
                    (xw[0] & 1 == 1, zw[0] & 1 == 1, flip & 1 == 1),
                    (expect.x0, expect.z0, expect.sign_is_negative()),
                    "{gate} on x={x} z={z}"
                );
            }
        }
    }

    /// Every two-qubit entry reproduces the reference conjugation on all
    /// 15 non-identity inputs — including CY, which older engines handled
    /// by S-conjugated decomposition.
    #[test]
    fn action2_matches_conjugation() {
        for gate in [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap] {
            let a = gate.xz_action2();
            for idx in 1usize..16 {
                let (x0, z0, x1, z1) = (idx & 1 != 0, idx & 2 != 0, idx & 4 != 0, idx & 8 != 0);
                let expect = gate.conjugate(canonical2(x0, z0, x1, z1));
                let mut v = [[wmask(x0)], [wmask(z0)], [wmask(x1)], [wmask(z1)]];
                let [mut xa, mut za, mut xb, mut zb] = v;
                let mut flip = 0u64;
                apply_action2(a, &mut xa, &mut za, &mut xb, &mut zb, |_, m| flip = m);
                v = [xa, za, xb, zb];
                assert_eq!(
                    (
                        v[0][0] & 1 == 1,
                        v[1][0] & 1 == 1,
                        v[2][0] & 1 == 1,
                        v[3][0] & 1 == 1,
                        flip & 1 == 1
                    ),
                    (
                        expect.x0,
                        expect.z0,
                        expect.x1,
                        expect.z1,
                        expect.sign_is_negative()
                    ),
                    "{gate} on minterm {idx:04b}"
                );
            }
        }
    }

    /// Slack bits (rows beyond the logical count, always 0/0) must never
    /// receive a sign flip from any gate.
    #[test]
    fn slack_bits_never_flip() {
        for gate in Gate::ALL {
            if gate.arity() == 1 {
                assert_eq!(gate.xz_action1().phase_tt & 1, 0, "{gate}");
            } else {
                assert_eq!(gate.xz_action2().phase_tt & 1, 0, "{gate}");
            }
        }
    }

    /// The derived table is exactly the hand-written one the engines used
    /// to carry (regression against silent derivation changes).
    #[test]
    fn spot_check_known_entries() {
        let h = Gate::H.xz_action1();
        assert_eq!(
            *h,
            XZAction1 {
                x_from_x: false,
                x_from_z: true,
                z_from_x: true,
                z_from_z: false,
                phase_tt: 0b1000,
            }
        );
        let s = Gate::S.xz_action1();
        assert_eq!(
            *s,
            XZAction1 {
                x_from_x: true,
                x_from_z: false,
                z_from_x: true,
                z_from_z: true,
                phase_tt: 0b1000,
            }
        );
        let cx = Gate::Cx.xz_action2();
        assert_eq!(
            *cx,
            XZAction2 {
                xa: 0b0001,
                za: 0b1010,
                xb: 0b0101,
                zb: 0b1000,
                phase_tt: (1 << 9) | (1 << 15),
            }
        );
        let swap = Gate::Swap.xz_action2();
        assert_eq!(
            *swap,
            XZAction2 {
                xa: 0b0100,
                za: 0b1000,
                xb: 0b0001,
                zb: 0b0010,
                phase_tt: 0,
            }
        );
    }
}
