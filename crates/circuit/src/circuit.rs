//! The [`Circuit`] container and its builder API.

use std::fmt;

use crate::gate::{Gate, PauliKind};
use crate::instruction::{Instruction, NoiseChannel};

/// Aggregate size statistics of a circuit, matching the cost parameters of
/// the paper's Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// `n_g`: number of elementary gate applications (a broadcast `H 0 1 2`
    /// counts 3; `CX 0 1 2 3` counts 2).
    pub gates: usize,
    /// `n_m`: number of measurement outcomes recorded.
    pub measurements: usize,
    /// Number of reset operations (including the reset half of `MR`).
    pub resets: usize,
    /// Number of noise-channel applications (sites).
    pub noise_sites: usize,
    /// `n_p`: number of bit-symbols the noise introduces (each
    /// `DEPOLARIZE1` site contributes 2, `DEPOLARIZE2` 4, `X/Y/Z_ERROR` 1).
    pub noise_symbols: usize,
    /// Number of detector annotations.
    pub detectors: usize,
    /// Number of distinct logical observables referenced.
    pub observables: usize,
    /// Number of classically-controlled Pauli applications.
    pub feedback_ops: usize,
}

/// A stabilizer circuit: a qubit count plus a flat instruction list.
///
/// Qubit indices grow the circuit automatically (referencing qubit 7 in a
/// 3-qubit circuit widens it to 8 qubits), mirroring Stim. Instructions are
/// validated as they are appended; see [`Circuit::push`].
///
/// # Example
///
/// ```
/// use symphase_circuit::{Circuit, NoiseChannel};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// c.noise(NoiseChannel::Depolarize1(1e-3), &[0, 1, 2]);
/// c.measure_all();
/// assert_eq!(c.stats().gates, 3);
/// assert_eq!(c.stats().measurements, 3);
/// assert_eq!(c.stats().noise_symbols, 6);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: u32,
    instructions: Vec<Instruction>,
    stats: CircuitStats,
    max_observable: Option<u32>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Self {
            num_qubits,
            ..Self::default()
        }
    }

    /// Number of qubits (grows automatically when instructions reference
    /// higher indices).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Size statistics (gate/measurement/noise counts).
    pub fn stats(&self) -> CircuitStats {
        self.stats
    }

    /// Number of measurement outcomes the circuit records.
    pub fn num_measurements(&self) -> usize {
        self.stats.measurements
    }

    /// Mean fire probability across the circuit's noise sites (0 when the
    /// circuit is noiseless). Together with [`Circuit::stats`] this is
    /// what the sampler's automatic strategy selection reads: low mean
    /// probabilities mean the event-driven `Hybrid` multiplication almost
    /// never has to touch a fault.
    pub fn mean_noise_probability(&self) -> f64 {
        let mut sites = 0usize;
        let mut total = 0.0f64;
        for ins in &self.instructions {
            if let Instruction::Noise { channel, targets } = ins {
                let n = targets.len() / channel.arity();
                sites += n;
                total += n as f64 * channel.fire_probability();
            }
        }
        if sites == 0 {
            0.0
        } else {
            total / sites as f64
        }
    }

    /// Number of detectors declared.
    pub fn num_detectors(&self) -> usize {
        self.stats.detectors
    }

    /// Number of logical observables (max declared index + 1).
    pub fn num_observables(&self) -> usize {
        self.max_observable.map_or(0, |m| m as usize + 1)
    }

    /// Appends an instruction after validating it.
    ///
    /// # Panics
    ///
    /// Panics when the instruction is malformed: an odd number of targets
    /// for a two-qubit gate or channel, a repeated qubit inside one pair, an
    /// out-of-range noise probability, a non-negative record lookback, or a
    /// lookback that reaches before the start of the measurement record.
    /// Use [`Circuit::try_push`] for a fallible variant.
    pub fn push(&mut self, instruction: Instruction) {
        if let Err(msg) = self.try_push(instruction) {
            panic!("{msg}");
        }
    }

    /// Appends an instruction, reporting malformed instructions as errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (see
    /// [`Circuit::push`]) and leaves the circuit unchanged.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), String> {
        self.validate_instruction(&instruction)?;
        self.num_qubits = self.num_qubits.max(instruction.max_qubit_bound());
        match &instruction {
            Instruction::Gate { gate, targets } => {
                self.stats.gates += targets.len() / gate.arity();
            }
            Instruction::Measure { targets } => self.stats.measurements += targets.len(),
            Instruction::Reset { targets } => self.stats.resets += targets.len(),
            Instruction::MeasureReset { targets } => {
                self.stats.measurements += targets.len();
                self.stats.resets += targets.len();
            }
            Instruction::Noise { channel, targets } => {
                let sites = targets.len() / channel.arity();
                self.stats.noise_sites += sites;
                self.stats.noise_symbols += sites * channel.symbols_per_application();
            }
            Instruction::Feedback { .. } => self.stats.feedback_ops += 1,
            Instruction::Detector { .. } => self.stats.detectors += 1,
            Instruction::ObservableInclude { index, .. } => {
                self.max_observable = Some(self.max_observable.map_or(*index, |m| m.max(*index)));
                self.stats.observables = self.num_observables();
            }
            Instruction::Tick => {}
        }
        self.instructions.push(instruction);
        Ok(())
    }

    fn validate_instruction(&self, instruction: &Instruction) -> Result<(), String> {
        match instruction {
            Instruction::Gate { gate, targets } if gate.arity() == 2 => {
                if !targets.len().is_multiple_of(2) {
                    return Err(format!(
                        "{} needs an even number of targets, got {}",
                        gate.name(),
                        targets.len()
                    ));
                }
                for pair in targets.chunks_exact(2) {
                    if pair[0] == pair[1] {
                        return Err(format!("{} targets must differ", gate.name()));
                    }
                }
            }
            Instruction::Gate { .. } => {}
            Instruction::Noise { channel, targets } => {
                if let Err(msg) = channel.validate() {
                    return Err(format!("invalid {}: {msg}", channel.name()));
                }
                if channel.arity() == 2 {
                    if targets.len() % 2 != 0 {
                        return Err(format!(
                            "{} needs an even number of targets",
                            channel.name()
                        ));
                    }
                    for pair in targets.chunks_exact(2) {
                        if pair[0] == pair[1] {
                            return Err(format!("{} targets must differ", channel.name()));
                        }
                    }
                }
            }
            Instruction::Feedback { lookback, .. } => {
                self.validate_lookback(*lookback)?;
            }
            Instruction::Detector { lookbacks } => {
                for &l in lookbacks {
                    self.validate_lookback(l)?;
                }
            }
            Instruction::ObservableInclude { lookbacks, .. } => {
                for &l in lookbacks {
                    self.validate_lookback(l)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn validate_lookback(&self, lookback: i64) -> Result<(), String> {
        if lookback >= 0 {
            return Err(format!("record lookback must be negative, got {lookback}"));
        }
        let depth = (-lookback) as usize;
        if depth > self.stats.measurements {
            return Err(format!(
                "rec[{lookback}] reaches before the start of the record ({} measurements so far)",
                self.stats.measurements
            ));
        }
        Ok(())
    }

    /// Appends all instructions of `other`, remapping nothing (qubit indices
    /// are shared).
    pub fn append(&mut self, other: &Circuit) {
        for inst in &other.instructions {
            self.push(inst.clone());
        }
    }

    // -- builder helpers ---------------------------------------------------

    /// Applies `gate` to `targets` (broadcast).
    pub fn gate(&mut self, gate: Gate, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Gate {
            gate,
            targets: targets.to_vec(),
        });
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// Phase gate on `q`.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::S, &[q])
    }

    /// Pauli X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::X, &[q])
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.gate(Gate::Cx, &[c, t])
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::Cz, &[a, b])
    }

    /// Swap of `a` and `b`.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// Measures `q` in the computational basis; returns the measurement
    /// record index of the outcome.
    pub fn measure(&mut self, q: u32) -> usize {
        let idx = self.stats.measurements;
        self.push(Instruction::Measure { targets: vec![q] });
        idx
    }

    /// Measures several qubits; outcomes are recorded in target order.
    pub fn measure_many(&mut self, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Measure {
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures every qubit in index order.
    pub fn measure_all(&mut self) -> &mut Self {
        let targets: Vec<u32> = (0..self.num_qubits).collect();
        self.measure_many(&targets)
    }

    /// Resets `q` to `|0⟩`.
    pub fn reset(&mut self, q: u32) -> &mut Self {
        self.push(Instruction::Reset { targets: vec![q] });
        self
    }

    /// Measures and resets `q`; returns the record index.
    pub fn measure_reset(&mut self, q: u32) -> usize {
        let idx = self.stats.measurements;
        self.push(Instruction::MeasureReset { targets: vec![q] });
        idx
    }

    /// Applies a noise channel to `targets` (broadcast; pairs for two-qubit
    /// channels).
    pub fn noise(&mut self, channel: NoiseChannel, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Noise {
            channel,
            targets: targets.to_vec(),
        });
        self
    }

    /// Applies `pauli` to `target` iff measurement `rec[lookback]` was 1.
    pub fn feedback(&mut self, pauli: PauliKind, lookback: i64, target: u32) -> &mut Self {
        self.push(Instruction::Feedback {
            pauli,
            lookback,
            target,
        });
        self
    }

    /// Declares a detector over the given record lookbacks.
    pub fn detector(&mut self, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::Detector {
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Adds record lookbacks to logical observable `index`.
    pub fn observable_include(&mut self, index: u32, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::ObservableInclude {
            index,
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Appends a `TICK` layer marker.
    pub fn tick(&mut self) -> &mut Self {
        self.push(Instruction::Tick);
        self
    }

    /// Returns a copy with every noise instruction removed (the noiseless
    /// reference circuit used to compute reference samples).
    pub fn without_noise(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for inst in &self.instructions {
            if !matches!(inst, Instruction::Noise { .. }) {
                out.push(inst.clone());
            }
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in &self.instructions {
            writeln!(f, "{inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_stats() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let m0 = c.measure(0);
        let m1 = c.measure(1);
        assert_eq!((m0, m1), (0, 1));
        let s = c.stats();
        assert_eq!(s.gates, 2);
        assert_eq!(s.measurements, 2);
    }

    #[test]
    fn qubit_count_grows() {
        let mut c = Circuit::new(1);
        c.cx(0, 5);
        assert_eq!(c.num_qubits(), 6);
    }

    #[test]
    fn broadcast_counting() {
        let mut c = Circuit::new(4);
        c.gate(Gate::H, &[0, 1, 2]);
        c.gate(Gate::Cx, &[0, 1, 2, 3]);
        assert_eq!(c.stats().gates, 5);
        c.noise(NoiseChannel::Depolarize2(0.01), &[0, 1, 2, 3]);
        assert_eq!(c.stats().noise_sites, 2);
        assert_eq!(c.stats().noise_symbols, 8);
    }

    #[test]
    #[should_panic(expected = "even number of targets")]
    fn odd_two_qubit_targets_panics() {
        Circuit::new(3).gate(Gate::Cx, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "targets must differ")]
    fn equal_pair_panics() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_noise_probability_panics() {
        Circuit::new(1).noise(NoiseChannel::XError(2.0), &[0]);
    }

    #[test]
    #[should_panic(expected = "before the start")]
    fn lookback_too_deep_panics() {
        let mut c = Circuit::new(2);
        c.measure(0);
        c.detector(&[-2]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn non_negative_lookback_panics() {
        let mut c = Circuit::new(2);
        c.measure(0);
        c.feedback(PauliKind::X, 0, 1);
    }

    #[test]
    fn without_noise_strips_channels() {
        let mut c = Circuit::new(2);
        c.h(0).noise(NoiseChannel::XError(0.1), &[0]).cx(0, 1);
        c.measure_all();
        let clean = c.without_noise();
        assert_eq!(clean.stats().noise_sites, 0);
        assert_eq!(clean.stats().gates, 2);
        assert_eq!(clean.stats().measurements, 2);
    }

    #[test]
    fn observables_count_max_index() {
        let mut c = Circuit::new(1);
        c.measure(0);
        c.observable_include(2, &[-1]);
        assert_eq!(c.num_observables(), 3);
    }

    #[test]
    fn display_roundtrips_through_lines() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let text = c.to_string();
        assert_eq!(text, "H 0\nCX 0 1\nM 0 1\n");
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.stats().gates, 2);
    }
}
