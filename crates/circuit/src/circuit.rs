//! The [`Circuit`] container, the structured [`Block`] body of `REPEAT`
//! instructions, and the builder API shared between them.

use std::fmt;

use crate::gate::{Gate, PauliKind};
use crate::instruction::{Instruction, NoiseChannel};
use crate::traverse::FlatInstructions;

/// Aggregate size statistics of a circuit, matching the cost parameters of
/// the paper's Table 1.
///
/// Statistics are computed **from structure**: a `REPEAT n { … }` block
/// contributes its body's statistics times `n` without ever being
/// expanded, so a million-round memory experiment reports its true counts
/// in O(body) work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// `n_g`: number of elementary gate applications (a broadcast `H 0 1 2`
    /// counts 3; `CX 0 1 2 3` counts 2).
    pub gates: usize,
    /// `n_m`: number of measurement outcomes recorded.
    pub measurements: usize,
    /// Number of reset operations (including the reset half of `MR`).
    pub resets: usize,
    /// Number of noise-channel applications (sites).
    pub noise_sites: usize,
    /// `n_p`: number of bit-symbols the noise introduces (each
    /// `DEPOLARIZE1` site contributes 2, `DEPOLARIZE2` 4, `X/Y/Z_ERROR` 1).
    pub noise_symbols: usize,
    /// Number of detector annotations.
    pub detectors: usize,
    /// Number of distinct logical observables referenced.
    pub observables: usize,
    /// Number of classically-controlled Pauli applications.
    pub feedback_ops: usize,
}

/// Adds one instruction's contribution to running statistics. `REPEAT`
/// contributes its body's statistics times the trip count; the
/// multiplication saturates so absurd trip counts cannot wrap the
/// accounting.
fn accumulate_stats(
    stats: &mut CircuitStats,
    max_observable: &mut Option<u32>,
    instruction: &Instruction,
) {
    match instruction {
        Instruction::Gate { gate, targets } => stats.gates += targets.len() / gate.arity(),
        Instruction::Measure { targets, .. } => stats.measurements += targets.len(),
        Instruction::Reset { targets, .. } => stats.resets += targets.len(),
        Instruction::MeasureReset { targets, .. } => {
            stats.measurements += targets.len();
            stats.resets += targets.len();
        }
        Instruction::MeasurePauliProduct { products } => stats.measurements += products.len(),
        Instruction::Noise { channel, targets } => {
            let sites = targets.len() / channel.arity();
            stats.noise_sites += sites;
            stats.noise_symbols += sites * channel.symbols_per_application();
        }
        // One bit-symbol per correlated-error instruction, whatever the
        // product weight (the whole product fires together).
        Instruction::CorrelatedError { .. } => {
            stats.noise_sites += 1;
            stats.noise_symbols += 1;
        }
        Instruction::Feedback { .. } => stats.feedback_ops += 1,
        Instruction::Detector { .. } => stats.detectors += 1,
        Instruction::ObservableInclude { index, .. } => {
            *max_observable = Some(max_observable.map_or(*index, |m| m.max(*index)));
        }
        Instruction::Tick | Instruction::QubitCoords { .. } | Instruction::ShiftCoords { .. } => {}
        Instruction::Repeat { count, body } => {
            let k = usize::try_from(*count).unwrap_or(usize::MAX);
            let b = body.stats();
            let mul = |v: usize| v.saturating_mul(k);
            stats.gates = stats.gates.saturating_add(mul(b.gates));
            stats.measurements = stats.measurements.saturating_add(mul(b.measurements));
            stats.resets = stats.resets.saturating_add(mul(b.resets));
            stats.noise_sites = stats.noise_sites.saturating_add(mul(b.noise_sites));
            stats.noise_symbols = stats.noise_symbols.saturating_add(mul(b.noise_symbols));
            stats.detectors = stats.detectors.saturating_add(mul(b.detectors));
            stats.feedback_ops = stats.feedback_ops.saturating_add(mul(b.feedback_ops));
            if let Some(m) = body.max_observable() {
                *max_observable = Some(max_observable.map_or(m, |x| x.max(m)));
            }
        }
    }
    stats.observables = max_observable.map_or(0, |m| m as usize + 1);
}

/// Validates one Pauli-product target list (`MPP` products, correlated
/// errors): non-empty, distinct qubits.
fn validate_product(what: &str, product: &[crate::instruction::PauliFactor]) -> Result<(), String> {
    if product.is_empty() {
        return Err(format!("{what} needs at least one Pauli factor"));
    }
    for (i, &(_, q)) in product.iter().enumerate() {
        if product[..i].iter().any(|&(_, p)| p == q) {
            return Err(format!("{what} repeats qubit {q}"));
        }
    }
    Ok(())
}

/// Context-free structural validation shared by [`Circuit`] and [`Block`]:
/// target pairing, noise probabilities, trip counts.
fn validate_shape(instruction: &Instruction) -> Result<(), String> {
    match instruction {
        Instruction::Gate { gate, targets } if gate.arity() == 2 => {
            if !targets.len().is_multiple_of(2) {
                return Err(format!(
                    "{} needs an even number of targets, got {}",
                    gate.name(),
                    targets.len()
                ));
            }
            for pair in targets.chunks_exact(2) {
                if pair[0] == pair[1] {
                    return Err(format!("{} targets must differ", gate.name()));
                }
            }
            Ok(())
        }
        Instruction::Noise { channel, targets } => {
            if let Err(msg) = channel.validate() {
                return Err(format!("invalid {}: {msg}", channel.name()));
            }
            if channel.arity() == 2 {
                if targets.len() % 2 != 0 {
                    return Err(format!(
                        "{} needs an even number of targets",
                        channel.name()
                    ));
                }
                for pair in targets.chunks_exact(2) {
                    if pair[0] == pair[1] {
                        return Err(format!("{} targets must differ", channel.name()));
                    }
                }
            }
            Ok(())
        }
        Instruction::MeasurePauliProduct { products } => {
            if products.is_empty() {
                return Err("MPP needs at least one Pauli product".into());
            }
            for product in products {
                validate_product("an MPP product", product)?;
            }
            Ok(())
        }
        Instruction::CorrelatedError {
            probability,
            product,
            else_branch,
        } => {
            if !(0.0..=1.0).contains(probability) {
                let name = if *else_branch {
                    "ELSE_CORRELATED_ERROR"
                } else {
                    "CORRELATED_ERROR"
                };
                return Err(format!(
                    "invalid {name}: probability {probability} out of [0, 1]"
                ));
            }
            validate_product("a correlated error", product)
        }
        Instruction::Repeat { count, .. } => {
            if *count == 0 {
                return Err("REPEAT count must be at least 1".into());
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Number of measurements that must already be in the record immediately
/// before `instruction` executes, for every record lookback to land.
///
/// For a `REPEAT`, the body's requirement applies at block *entry*: the
/// first iteration sees the shortest record, so satisfying it there
/// satisfies every later iteration (each adds `body.measurements()` more
/// outcomes before the same lookback recurs).
///
/// # Errors
///
/// Rejects non-negative lookbacks, which are invalid everywhere.
fn record_need(instruction: &Instruction) -> Result<usize, String> {
    fn depth(lookback: i64) -> Result<usize, String> {
        if lookback >= 0 {
            return Err(format!("record lookback must be negative, got {lookback}"));
        }
        Ok(usize::try_from(lookback.unsigned_abs()).unwrap_or(usize::MAX))
    }
    match instruction {
        Instruction::Feedback { lookback, .. } => depth(*lookback),
        Instruction::Detector { lookbacks, .. }
        | Instruction::ObservableInclude { lookbacks, .. } => lookbacks
            .iter()
            .try_fold(0usize, |m, &l| Ok(m.max(depth(l)?))),
        Instruction::Repeat { body, .. } => Ok(body.required_record()),
        _ => Ok(0),
    }
}

/// The body of an [`Instruction::Repeat`] block: a structured instruction
/// sequence with **per-iteration record semantics**.
///
/// A block validates instructions *structurally* as they are pushed
/// (target pairing, probabilities, nested trip counts), but record
/// lookbacks are **lenient**: `rec[-k]` may reach past the measurements
/// the block itself has produced so far, because at execution time the
/// lookback lands in the previous iteration — or in the record preceding
/// the block. The deepest such reach is tracked as
/// [`Block::required_record`] and checked once, when the block is pushed
/// into a [`Circuit`] (or an enclosing block): the first iteration sees
/// the shortest record, so entry-time validation covers all iterations.
///
/// # Example
///
/// ```
/// use symphase_circuit::{Block, Instruction};
///
/// let mut round = Block::new();
/// round.measure_many(&[1]);
/// // Compares this round's outcome with the previous round's: rec[-2]
/// // reaches one measurement past what the block itself produced.
/// round.detector(&[-1, -2]);
/// assert_eq!(round.required_record(), 1);
/// assert_eq!(round.measurements(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Block {
    instructions: Vec<Instruction>,
    stats: CircuitStats,
    max_observable: Option<u32>,
    max_qubit_bound: u32,
    required_record: usize,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instruction sequence of one iteration.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Size statistics of **one** iteration (the enclosing `REPEAT`
    /// multiplies them by the trip count).
    pub fn stats(&self) -> CircuitStats {
        self.stats
    }

    /// Measurement outcomes one iteration appends to the record.
    pub fn measurements(&self) -> usize {
        self.stats.measurements
    }

    /// Largest observable index referenced inside the block, if any.
    pub fn max_observable(&self) -> Option<u32> {
        self.max_observable
    }

    /// Largest referenced qubit index plus one.
    pub fn max_qubit_bound(&self) -> u32 {
        self.max_qubit_bound
    }

    /// Minimum number of measurements that must precede the block for
    /// every lookback to land in its first iteration (see the type docs).
    pub fn required_record(&self) -> usize {
        self.required_record
    }

    /// `true` when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of (structured) instructions in the block.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Appends an instruction, validating its structure; lookbacks that
    /// reach before the block raise [`Block::required_record`] instead of
    /// erroring (see the type docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (malformed target
    /// pairing, invalid probability, zero trip count, non-negative
    /// lookback) and leaves the block unchanged.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), String> {
        validate_shape(&instruction)?;
        // Chain linkage: an ELSE_CORRELATED_ERROR's conditional ("no
        // earlier chain element fired") is only well-defined when the
        // chain is contiguous, so it must directly follow its chain.
        if let Instruction::CorrelatedError {
            else_branch: true, ..
        } = &instruction
        {
            if !matches!(
                self.instructions.last(),
                Some(Instruction::CorrelatedError { .. })
            ) {
                return Err("ELSE_CORRELATED_ERROR must immediately follow \
                     CORRELATED_ERROR or another ELSE_CORRELATED_ERROR"
                    .into());
            }
        }
        let need = record_need(&instruction)?;
        self.required_record = self
            .required_record
            .max(need.saturating_sub(self.stats.measurements));
        self.max_qubit_bound = self.max_qubit_bound.max(instruction.max_qubit_bound());
        accumulate_stats(&mut self.stats, &mut self.max_observable, &instruction);
        self.instructions.push(instruction);
        Ok(())
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics when the instruction is malformed; see [`Block::try_push`].
    pub fn push(&mut self, instruction: Instruction) {
        if let Err(msg) = self.try_push(instruction) {
            panic!("{msg}");
        }
    }

    // -- builder helpers (mirroring the [`Circuit`] conveniences) ----------

    /// Applies `gate` to `targets` (broadcast).
    pub fn gate(&mut self, gate: Gate, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Gate {
            gate,
            targets: targets.to_vec(),
        });
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.gate(Gate::Cx, &[c, t])
    }

    /// Applies a noise channel to `targets` (broadcast; pairs for
    /// two-qubit channels).
    pub fn noise(&mut self, channel: NoiseChannel, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Noise {
            channel,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures several qubits; outcomes are recorded in target order.
    pub fn measure_many(&mut self, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Measure {
            basis: PauliKind::Z,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures several qubits in the given Pauli basis.
    pub fn measure_many_in(&mut self, basis: PauliKind, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Measure {
            basis,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures and resets several qubits.
    pub fn measure_reset_many(&mut self, targets: &[u32]) -> &mut Self {
        self.push(Instruction::MeasureReset {
            basis: PauliKind::Z,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures and resets several qubits in the given Pauli basis.
    pub fn measure_reset_many_in(&mut self, basis: PauliKind, targets: &[u32]) -> &mut Self {
        self.push(Instruction::MeasureReset {
            basis,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures one Pauli product (`MPP`), appending one outcome.
    pub fn measure_pauli_product(&mut self, product: &[(PauliKind, u32)]) -> &mut Self {
        self.push(Instruction::MeasurePauliProduct {
            products: vec![product.to_vec()],
        });
        self
    }

    /// Measures several Pauli products as one `MPP` instruction.
    pub fn measure_pauli_products(&mut self, products: &[&[(PauliKind, u32)]]) -> &mut Self {
        self.push(Instruction::MeasurePauliProduct {
            products: products.iter().map(|p| p.to_vec()).collect(),
        });
        self
    }

    /// Starts a correlated-error chain: applies the whole `product` with
    /// probability `p`.
    pub fn correlated_error(&mut self, p: f64, product: &[(PauliKind, u32)]) -> &mut Self {
        self.push(Instruction::CorrelatedError {
            probability: p,
            product: product.to_vec(),
            else_branch: false,
        });
        self
    }

    /// Continues a correlated-error chain (`ELSE_CORRELATED_ERROR`).
    pub fn else_correlated_error(&mut self, p: f64, product: &[(PauliKind, u32)]) -> &mut Self {
        self.push(Instruction::CorrelatedError {
            probability: p,
            product: product.to_vec(),
            else_branch: true,
        });
        self
    }

    /// Applies `pauli` to `target` iff measurement `rec[lookback]` was 1.
    pub fn feedback(&mut self, pauli: PauliKind, lookback: i64, target: u32) -> &mut Self {
        self.push(Instruction::Feedback {
            pauli,
            lookback,
            target,
        });
        self
    }

    /// Declares a detector over the given record lookbacks.
    pub fn detector(&mut self, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::Detector {
            coords: vec![],
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Declares a detector with coordinate arguments.
    pub fn detector_at(&mut self, coords: &[f64], lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::Detector {
            coords: coords.to_vec(),
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Adds record lookbacks to logical observable `index`.
    pub fn observable_include(&mut self, index: u32, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::ObservableInclude {
            index,
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Appends a `TICK` layer marker.
    pub fn tick(&mut self) -> &mut Self {
        self.push(Instruction::Tick);
        self
    }
}

/// A stabilizer circuit: a qubit count plus a **structured** instruction
/// list in which `REPEAT` blocks stay first-class [`Block`] nodes — they
/// are never flattened. Engines traverse the flattened execution order
/// through the streaming [`Circuit::flat_instructions`] iterator, so a
/// `REPEAT 1000000 { … }` round costs O(body) memory end to end.
///
/// Qubit indices grow the circuit automatically (referencing qubit 7 in a
/// 3-qubit circuit widens it to 8 qubits), mirroring Stim. Instructions are
/// validated as they are appended; see [`Circuit::push`].
///
/// # Example
///
/// ```
/// use symphase_circuit::{Circuit, NoiseChannel};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// c.noise(NoiseChannel::Depolarize1(1e-3), &[0, 1, 2]);
/// c.measure_all();
/// assert_eq!(c.stats().gates, 3);
/// assert_eq!(c.stats().measurements, 3);
/// assert_eq!(c.stats().noise_symbols, 6);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: u32,
    body: Block,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Self {
            num_qubits,
            ..Self::default()
        }
    }

    /// Number of qubits (grows automatically when instructions reference
    /// higher indices).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The **structured** instruction list: `REPEAT` blocks appear as
    /// single [`Instruction::Repeat`] nodes. Use
    /// [`Circuit::flat_instructions`] for the flattened execution order.
    pub fn instructions(&self) -> &[Instruction] {
        self.body.instructions()
    }

    /// Streams every instruction in flattened execution order, expanding
    /// `REPEAT` blocks lazily in O(nesting depth) memory — the traversal
    /// every engine runs on. `Repeat` nodes themselves are never yielded.
    pub fn flat_instructions(&self) -> FlatInstructions<'_> {
        FlatInstructions::new(self.body.instructions())
    }

    /// Materializes [`Circuit::flat_instructions`] into a circuit with no
    /// `REPEAT` nodes. Memory is proportional to the *flattened* size, so
    /// prefer the streaming iterator for deep circuits; this exists for
    /// structured-vs-flattened equivalence checks and interop.
    pub fn flattened(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.flat_instructions() {
            out.push(inst.clone());
        }
        out
    }

    /// Size statistics (gate/measurement/noise counts), computed from
    /// structure: `REPEAT` bodies contribute `count ×` their one-iteration
    /// statistics.
    pub fn stats(&self) -> CircuitStats {
        self.body.stats()
    }

    /// Number of measurement outcomes the circuit records.
    pub fn num_measurements(&self) -> usize {
        self.body.stats().measurements
    }

    /// Mean fire probability across the circuit's noise sites (0 when the
    /// circuit is noiseless), weighting `REPEAT` bodies by their trip
    /// count. Together with [`Circuit::stats`] this is what the sampler's
    /// automatic strategy selection reads: low mean probabilities mean the
    /// event-driven `Hybrid` multiplication almost never has to touch a
    /// fault.
    pub fn mean_noise_probability(&self) -> f64 {
        fn scan(instructions: &[Instruction]) -> (f64, f64) {
            let mut sites = 0.0f64;
            let mut total = 0.0f64;
            for ins in instructions {
                match ins {
                    Instruction::Noise { channel, targets } => {
                        let n = (targets.len() / channel.arity()) as f64;
                        sites += n;
                        total += n * channel.fire_probability();
                    }
                    Instruction::CorrelatedError { probability, .. } => {
                        sites += 1.0;
                        total += probability;
                    }
                    Instruction::Repeat { count, body } => {
                        let (s, t) = scan(body.instructions());
                        sites += *count as f64 * s;
                        total += *count as f64 * t;
                    }
                    _ => {}
                }
            }
            (sites, total)
        }
        let (sites, total) = scan(self.body.instructions());
        if sites == 0.0 {
            0.0
        } else {
            total / sites
        }
    }

    /// Number of detectors declared.
    pub fn num_detectors(&self) -> usize {
        self.body.stats().detectors
    }

    /// Number of logical observables (max declared index + 1).
    pub fn num_observables(&self) -> usize {
        self.body.max_observable().map_or(0, |m| m as usize + 1)
    }

    /// Per-detector coordinates in flattened execution order, with
    /// `SHIFT_COORDS` offsets accumulated componentwise — the annotation
    /// layer `symphase dem` attaches to extracted detector error models.
    /// Detectors declared without coordinates yield an empty vec. Streams
    /// the flattened circuit, so time is O(flattened) and memory is
    /// O(detectors).
    pub fn detector_coordinates(&self) -> Vec<Vec<f64>> {
        let mut shift: Vec<f64> = Vec::new();
        let mut out = Vec::with_capacity(self.num_detectors());
        for inst in self.flat_instructions() {
            match inst {
                Instruction::ShiftCoords { coords } => {
                    if coords.len() > shift.len() {
                        shift.resize(coords.len(), 0.0);
                    }
                    for (s, c) in shift.iter_mut().zip(coords) {
                        *s += c;
                    }
                }
                Instruction::Detector { coords, .. } => {
                    if coords.is_empty() {
                        out.push(Vec::new());
                    } else {
                        out.push(
                            coords
                                .iter()
                                .enumerate()
                                .map(|(i, c)| c + shift.get(i).copied().unwrap_or(0.0))
                                .collect(),
                        );
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Appends an instruction after validating it.
    ///
    /// # Panics
    ///
    /// Panics when the instruction is malformed: an odd number of targets
    /// for a two-qubit gate or channel, a repeated qubit inside one pair, an
    /// out-of-range noise probability, a zero `REPEAT` count, a
    /// non-negative record lookback, or a lookback that reaches before the
    /// start of the measurement record (for a `REPEAT`, in its first
    /// iteration). Use [`Circuit::try_push`] for a fallible variant.
    pub fn push(&mut self, instruction: Instruction) {
        if let Err(msg) = self.try_push(instruction) {
            panic!("{msg}");
        }
    }

    /// Appends an instruction, reporting malformed instructions as errors.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (see
    /// [`Circuit::push`]) and leaves the circuit unchanged.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), String> {
        self.check_record(&instruction)?;
        let bound = instruction.max_qubit_bound();
        self.body.try_push(instruction)?;
        self.num_qubits = self.num_qubits.max(bound);
        Ok(())
    }

    /// The strict top-level lookback check: unlike inside a [`Block`],
    /// nothing precedes the circuit, so the requirement [`record_need`]
    /// computes must already be met by the record built so far. (The
    /// deepest lookback of a plain instruction is exactly `-need`, so the
    /// error can name it.)
    fn check_record(&self, instruction: &Instruction) -> Result<(), String> {
        let need = record_need(instruction)?;
        let available = self.body.stats().measurements;
        if need <= available {
            return Ok(());
        }
        match instruction {
            Instruction::Repeat { .. } => Err(format!(
                "REPEAT body reaches {need} measurement(s) before the block, \
                 but only {available} precede it"
            )),
            _ => Err(format!(
                "rec[-{need}] reaches before the start of the record \
                 ({available} measurements so far)"
            )),
        }
    }

    /// Appends all instructions of `other`, remapping nothing (qubit indices
    /// are shared). `REPEAT` blocks are appended as structured nodes.
    pub fn append(&mut self, other: &Circuit) {
        for inst in other.instructions() {
            self.push(inst.clone());
        }
    }

    // -- builder helpers ---------------------------------------------------

    /// Applies `gate` to `targets` (broadcast).
    pub fn gate(&mut self, gate: Gate, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Gate {
            gate,
            targets: targets.to_vec(),
        });
        self
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::H, &[q])
    }

    /// Phase gate on `q`.
    pub fn s(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::S, &[q])
    }

    /// Pauli X on `q`.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::X, &[q])
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: u32, t: u32) -> &mut Self {
        self.gate(Gate::Cx, &[c, t])
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::Cz, &[a, b])
    }

    /// Swap of `a` and `b`.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// Measures `q` in the computational basis; returns the measurement
    /// record index of the outcome.
    pub fn measure(&mut self, q: u32) -> usize {
        let idx = self.body.stats().measurements;
        self.push(Instruction::Measure {
            basis: PauliKind::Z,
            targets: vec![q],
        });
        idx
    }

    /// Measures `q` in the given Pauli basis (`MX`/`MY`/`M`); returns the
    /// record index of the outcome.
    pub fn measure_in(&mut self, basis: PauliKind, q: u32) -> usize {
        let idx = self.body.stats().measurements;
        self.push(Instruction::Measure {
            basis,
            targets: vec![q],
        });
        idx
    }

    /// Measures several qubits; outcomes are recorded in target order.
    pub fn measure_many(&mut self, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Measure {
            basis: PauliKind::Z,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures several qubits in the given Pauli basis.
    pub fn measure_many_in(&mut self, basis: PauliKind, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Measure {
            basis,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures every qubit in index order.
    pub fn measure_all(&mut self) -> &mut Self {
        let targets: Vec<u32> = (0..self.num_qubits).collect();
        self.measure_many(&targets)
    }

    /// Measures one Pauli product (`MPP`), appending one outcome; returns
    /// the record index.
    pub fn measure_pauli_product(&mut self, product: &[(PauliKind, u32)]) -> usize {
        let idx = self.body.stats().measurements;
        self.push(Instruction::MeasurePauliProduct {
            products: vec![product.to_vec()],
        });
        idx
    }

    /// Measures several Pauli products as one `MPP` instruction.
    pub fn measure_pauli_products(&mut self, products: &[&[(PauliKind, u32)]]) -> &mut Self {
        self.push(Instruction::MeasurePauliProduct {
            products: products.iter().map(|p| p.to_vec()).collect(),
        });
        self
    }

    /// Resets `q` to `|0⟩`.
    pub fn reset(&mut self, q: u32) -> &mut Self {
        self.push(Instruction::Reset {
            basis: PauliKind::Z,
            targets: vec![q],
        });
        self
    }

    /// Resets `q` to the `+1` eigenstate of the given Pauli basis
    /// (`RX` → `|+⟩`, `RY` → `|+i⟩`).
    pub fn reset_in(&mut self, basis: PauliKind, q: u32) -> &mut Self {
        self.push(Instruction::Reset {
            basis,
            targets: vec![q],
        });
        self
    }

    /// Resets several qubits in the given Pauli basis.
    pub fn reset_many_in(&mut self, basis: PauliKind, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Reset {
            basis,
            targets: targets.to_vec(),
        });
        self
    }

    /// Measures and resets `q`; returns the record index.
    pub fn measure_reset(&mut self, q: u32) -> usize {
        let idx = self.body.stats().measurements;
        self.push(Instruction::MeasureReset {
            basis: PauliKind::Z,
            targets: vec![q],
        });
        idx
    }

    /// Measures and resets `q` in the given Pauli basis; returns the
    /// record index.
    pub fn measure_reset_in(&mut self, basis: PauliKind, q: u32) -> usize {
        let idx = self.body.stats().measurements;
        self.push(Instruction::MeasureReset {
            basis,
            targets: vec![q],
        });
        idx
    }

    /// Starts a correlated-error chain: applies the whole `product` with
    /// probability `p`.
    pub fn correlated_error(&mut self, p: f64, product: &[(PauliKind, u32)]) -> &mut Self {
        self.push(Instruction::CorrelatedError {
            probability: p,
            product: product.to_vec(),
            else_branch: false,
        });
        self
    }

    /// Continues a correlated-error chain (`ELSE_CORRELATED_ERROR`).
    pub fn else_correlated_error(&mut self, p: f64, product: &[(PauliKind, u32)]) -> &mut Self {
        self.push(Instruction::CorrelatedError {
            probability: p,
            product: product.to_vec(),
            else_branch: true,
        });
        self
    }

    /// Applies a noise channel to `targets` (broadcast; pairs for two-qubit
    /// channels).
    pub fn noise(&mut self, channel: NoiseChannel, targets: &[u32]) -> &mut Self {
        self.push(Instruction::Noise {
            channel,
            targets: targets.to_vec(),
        });
        self
    }

    /// Applies `pauli` to `target` iff measurement `rec[lookback]` was 1.
    pub fn feedback(&mut self, pauli: PauliKind, lookback: i64, target: u32) -> &mut Self {
        self.push(Instruction::Feedback {
            pauli,
            lookback,
            target,
        });
        self
    }

    /// Declares a detector over the given record lookbacks.
    pub fn detector(&mut self, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::Detector {
            coords: vec![],
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Declares a detector with coordinate arguments.
    pub fn detector_at(&mut self, coords: &[f64], lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::Detector {
            coords: coords.to_vec(),
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Adds record lookbacks to logical observable `index`.
    pub fn observable_include(&mut self, index: u32, lookbacks: &[i64]) -> &mut Self {
        self.push(Instruction::ObservableInclude {
            index,
            lookbacks: lookbacks.to_vec(),
        });
        self
    }

    /// Appends a `TICK` layer marker.
    pub fn tick(&mut self) -> &mut Self {
        self.push(Instruction::Tick);
        self
    }

    /// Annotates qubit coordinates (`QUBIT_COORDS`) — metadata only.
    pub fn qubit_coords(&mut self, coords: &[f64], targets: &[u32]) -> &mut Self {
        self.push(Instruction::QubitCoords {
            coords: coords.to_vec(),
            targets: targets.to_vec(),
        });
        self
    }

    /// Appends a structured `REPEAT count { … }` block whose body is built
    /// by `build`.
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` or when a lookback inside the body reaches
    /// before the start of the record even in the block's first iteration.
    ///
    /// # Example
    ///
    /// ```
    /// use symphase_circuit::Circuit;
    ///
    /// let mut c = Circuit::new(1);
    /// c.measure(0);
    /// c.repeat_with(1_000_000, |round| {
    ///     round.measure_many(&[0]);
    ///     round.detector(&[-1, -2]); // compares with the previous round
    /// });
    /// assert_eq!(c.num_measurements(), 1_000_001);
    /// assert_eq!(c.num_detectors(), 1_000_000);
    /// assert_eq!(c.instructions().len(), 2); // structured, not flattened
    /// ```
    pub fn repeat_with(&mut self, count: u64, build: impl FnOnce(&mut Block)) -> &mut Self {
        let mut body = Block::new();
        build(&mut body);
        self.push(Instruction::Repeat {
            count,
            body: Box::new(body),
        });
        self
    }

    /// Returns a copy with every noise instruction removed (the noiseless
    /// reference circuit used to compute reference samples). `REPEAT`
    /// structure is preserved.
    pub fn without_noise(&self) -> Circuit {
        fn strip(instructions: &[Instruction]) -> Vec<Instruction> {
            instructions
                .iter()
                .filter_map(|inst| match inst {
                    Instruction::Noise { .. } | Instruction::CorrelatedError { .. } => None,
                    Instruction::Repeat { count, body } => {
                        let mut b = Block::new();
                        for inner in strip(body.instructions()) {
                            b.push(inner);
                        }
                        Some(Instruction::Repeat {
                            count: *count,
                            body: Box::new(b),
                        })
                    }
                    other => Some(other.clone()),
                })
                .collect()
        }
        let mut out = Circuit::new(self.num_qubits);
        for inst in strip(self.body.instructions()) {
            out.push(inst);
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for inst in self.body.instructions() {
            inst.fmt_indented(f, 0)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_stats() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let m0 = c.measure(0);
        let m1 = c.measure(1);
        assert_eq!((m0, m1), (0, 1));
        let s = c.stats();
        assert_eq!(s.gates, 2);
        assert_eq!(s.measurements, 2);
    }

    #[test]
    fn qubit_count_grows() {
        let mut c = Circuit::new(1);
        c.cx(0, 5);
        assert_eq!(c.num_qubits(), 6);
    }

    #[test]
    fn broadcast_counting() {
        let mut c = Circuit::new(4);
        c.gate(Gate::H, &[0, 1, 2]);
        c.gate(Gate::Cx, &[0, 1, 2, 3]);
        assert_eq!(c.stats().gates, 5);
        c.noise(NoiseChannel::Depolarize2(0.01), &[0, 1, 2, 3]);
        assert_eq!(c.stats().noise_sites, 2);
        assert_eq!(c.stats().noise_symbols, 8);
    }

    #[test]
    #[should_panic(expected = "even number of targets")]
    fn odd_two_qubit_targets_panics() {
        Circuit::new(3).gate(Gate::Cx, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "targets must differ")]
    fn equal_pair_panics() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_noise_probability_panics() {
        Circuit::new(1).noise(NoiseChannel::XError(2.0), &[0]);
    }

    #[test]
    #[should_panic(expected = "before the start")]
    fn lookback_too_deep_panics() {
        let mut c = Circuit::new(2);
        c.measure(0);
        c.detector(&[-2]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn non_negative_lookback_panics() {
        let mut c = Circuit::new(2);
        c.measure(0);
        c.feedback(PauliKind::X, 0, 1);
    }

    #[test]
    fn without_noise_strips_channels() {
        let mut c = Circuit::new(2);
        c.h(0).noise(NoiseChannel::XError(0.1), &[0]).cx(0, 1);
        c.measure_all();
        let clean = c.without_noise();
        assert_eq!(clean.stats().noise_sites, 0);
        assert_eq!(clean.stats().gates, 2);
        assert_eq!(clean.stats().measurements, 2);
    }

    #[test]
    fn without_noise_preserves_repeat_structure() {
        let mut c = Circuit::new(1);
        c.repeat_with(1000, |b| {
            b.noise(NoiseChannel::XError(0.1), &[0]);
            b.measure_many(&[0]);
        });
        let clean = c.without_noise();
        assert_eq!(clean.instructions().len(), 1);
        assert_eq!(clean.stats().noise_sites, 0);
        assert_eq!(clean.num_measurements(), 1000);
        match &clean.instructions()[0] {
            Instruction::Repeat { count, body } => {
                assert_eq!(*count, 1000);
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn observables_count_max_index() {
        let mut c = Circuit::new(1);
        c.measure(0);
        c.observable_include(2, &[-1]);
        assert_eq!(c.num_observables(), 3);
    }

    #[test]
    fn display_roundtrips_through_lines() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let text = c.to_string();
        assert_eq!(text, "H 0\nCX 0 1\nM 0 1\n");
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.stats().gates, 2);
    }

    // -- structured REPEAT -------------------------------------------------

    #[test]
    fn repeat_stats_multiply_by_count() {
        let mut c = Circuit::new(2);
        c.repeat_with(1_000_000, |b| {
            b.h(0);
            b.noise(NoiseChannel::Depolarize1(0.01), &[0, 1]);
            b.measure_reset_many(&[0]);
            b.detector(&[-1]);
        });
        let s = c.stats();
        assert_eq!(s.gates, 1_000_000);
        assert_eq!(s.measurements, 1_000_000);
        assert_eq!(s.resets, 1_000_000);
        assert_eq!(s.noise_sites, 2_000_000);
        assert_eq!(s.noise_symbols, 4_000_000);
        assert_eq!(s.detectors, 1_000_000);
        assert_eq!(c.instructions().len(), 1);
    }

    #[test]
    fn nested_repeat_counts_multiply() {
        let mut c = Circuit::new(1);
        c.repeat_with(1000, |outer| {
            let mut inner = Block::new();
            inner.gate(Gate::X, &[0]);
            outer.push(Instruction::Repeat {
                count: 1000,
                body: Box::new(inner),
            });
        });
        assert_eq!(c.stats().gates, 1_000_000);
    }

    #[test]
    fn repeat_observables_propagate() {
        let mut c = Circuit::new(1);
        c.repeat_with(3, |b| {
            b.measure_many(&[0]);
            b.observable_include(4, &[-1]);
        });
        assert_eq!(c.num_observables(), 5);
        assert_eq!(c.stats().observables, 5);
    }

    #[test]
    fn repeat_qubit_bound_propagates() {
        let mut c = Circuit::new(1);
        c.repeat_with(2, |b| {
            b.h(9);
        });
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    #[should_panic(expected = "REPEAT count must be at least 1")]
    fn zero_repeat_count_panics() {
        Circuit::new(1).repeat_with(0, |b| {
            b.h(0);
        });
    }

    #[test]
    fn repeat_lookback_into_previous_iteration_is_valid() {
        let mut c = Circuit::new(1);
        c.measure(0);
        c.repeat_with(5, |b| {
            b.measure_many(&[0]);
            b.detector(&[-1, -2]); // -2 reaches the previous iteration
        });
        assert_eq!(c.num_detectors(), 5);
    }

    #[test]
    #[should_panic(expected = "REPEAT body reaches")]
    fn repeat_lookback_before_record_start_panics() {
        let mut c = Circuit::new(1);
        // No measurement precedes the block: rec[-2] cannot land in the
        // first iteration.
        c.repeat_with(5, |b| {
            b.measure_many(&[0]);
            b.detector(&[-1, -2]);
        });
    }

    #[test]
    fn block_required_record_tracks_deepest_unmet_reach() {
        let mut b = Block::new();
        b.measure_many(&[0, 1]);
        b.detector(&[-1, -4]); // needs 2 more than the block produced
        assert_eq!(b.required_record(), 2);
        b.measure_many(&[0]);
        b.detector(&[-3]); // fully inside the block now
        assert_eq!(b.required_record(), 2);
    }

    #[test]
    fn nested_block_requirement_propagates() {
        let mut inner = Block::new();
        inner.measure_many(&[0]);
        inner.detector(&[-1, -3]); // needs 2 before the inner block
        assert_eq!(inner.required_record(), 2);

        let mut outer = Block::new();
        outer.measure_many(&[0]); // provides 1 of the 2
        outer.push(Instruction::Repeat {
            count: 4,
            body: Box::new(inner),
        });
        assert_eq!(outer.required_record(), 1);
    }

    #[test]
    fn flattened_matches_structure() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure(0);
        c.repeat_with(3, |b| {
            b.cx(0, 1);
            b.measure_many(&[1]);
            b.detector(&[-1, -2]);
        });
        let flat = c.flattened();
        assert!(flat
            .instructions()
            .iter()
            .all(|i| !matches!(i, Instruction::Repeat { .. })));
        assert_eq!(flat.instructions().len(), 2 + 3 * 3);
        assert_eq!(flat.stats(), c.stats());
        assert_eq!(flat.num_qubits(), c.num_qubits());
        // The streaming iterator yields exactly the flattened list.
        let streamed: Vec<&Instruction> = c.flat_instructions().collect();
        let materialized: Vec<&Instruction> = flat.instructions().iter().collect();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn mean_noise_probability_weights_by_trip_count() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.repeat_with(9, |b| {
            b.noise(NoiseChannel::XError(0.0), &[0]);
        });
        // 1 site at p=1 and 9 sites at p=0.
        assert!((c.mean_noise_probability() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn repeat_display_roundtrips() {
        let mut c = Circuit::new(1);
        c.measure(0);
        c.repeat_with(42, |b| {
            b.h(0);
            b.measure_many(&[0]);
            b.detector(&[-1, -2]);
        });
        let text = c.to_string();
        assert!(text.contains("REPEAT 42 {"));
        let parsed = Circuit::parse(&text).unwrap();
        assert_eq!(parsed, c);
    }
}
