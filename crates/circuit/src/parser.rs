//! Parser for the Stim-compatible circuit text format.
//!
//! Supported lines (compare Stim's `.stim` format):
//!
//! ```text
//! # comment
//! H 0 1                     — gate broadcast
//! CX 0 1 2 3                — two-qubit gates take target pairs
//! CX rec[-1] 2              — classically-controlled Pauli (feedback)
//! X_ERROR(0.01) 0 1         — noise channels with parenthesised arguments
//! PAULI_CHANNEL_1(a,b,c) 0
//! PAULI_CHANNEL_2(p1,…,p15) 0 1
//! E(0.1) X0 Y1              — correlated Pauli-product error (alias CORRELATED_ERROR)
//! ELSE_CORRELATED_ERROR(0.1) Z2
//! M 0 1 / MR 0 / R 0        — measure, measure-reset, reset (Z basis)
//! MX 0 / MY 0 / RX 0 / RY 0 / MRX 0 / MRY 0
//! MPP X0*Z1*Y2 X3*X4        — Pauli-product measurements
//! DETECTOR(1,2,0) rec[-1] rec[-2]
//! OBSERVABLE_INCLUDE(0) rec[-1]
//! REPEAT 5 { ... }          — kept structured: the body is parsed once
//! TICK
//! QUBIT_COORDS(0, 1) 0      — annotation, preserved for round-tripping
//! SHIFT_COORDS(0, 2)
//! ```
//!
//! `REPEAT` blocks become [`Instruction::Repeat`] nodes: the body is
//! parsed **exactly once** whatever the trip count (the previous parser
//! re-parsed the body `count` times and refused expansions past 50M
//! instructions), so parse cost is O(file) and `REPEAT 1000000 { … }`
//! files parse in memory proportional to the file. Record lookbacks
//! inside a body may reach into the previous iteration; the unmet reach
//! is tracked per block and validated once, where the block closes (see
//! [`Block`]).

use std::error::Error;
use std::fmt;

use crate::circuit::{Block, Circuit};
use crate::gate::{Gate, PauliKind};
use crate::instruction::{Instruction, NoiseChannel};

/// Error produced when parsing circuit text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseCircuitError {}

fn err(line: usize, message: impl Into<String>) -> ParseCircuitError {
    ParseCircuitError {
        line,
        message: message.into(),
    }
}

/// Maps every parsed [`Instruction`] back to its 1-based source line.
///
/// Index `i` corresponds to the `i`-th instruction of the block it
/// describes; `REPEAT` nodes additionally carry a nested map for their
/// body, addressed through [`SourceMap::child`]. Produced by
/// [`Circuit::parse_with_sources`]; [`Circuit::parse`] pays nothing for
/// it (the tracing hooks compile to no-ops there).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceMap {
    lines: Vec<usize>,
    children: Vec<Option<Box<SourceMap>>>,
}

impl SourceMap {
    /// 1-based source line of instruction `i` in this block.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn line(&self, i: usize) -> usize {
        self.lines[i]
    }

    /// Body map of instruction `i` when it is a `REPEAT` node.
    #[must_use]
    pub fn child(&self, i: usize) -> Option<&SourceMap> {
        self.children.get(i).and_then(|c| c.as_deref())
    }

    /// Number of instructions mapped in this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether this block maps no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Resolves a structural path (indices into nested instruction
    /// lists, outermost first) to its source line.
    #[must_use]
    pub fn line_at(&self, path: &[usize]) -> Option<usize> {
        let (&first, rest) = path.split_first()?;
        if rest.is_empty() {
            self.lines.get(first).copied()
        } else {
            self.child(first)?.line_at(rest)
        }
    }
}

/// Parser hook recording where each successfully pushed instruction came
/// from. `()` is the no-op tracer used by [`Circuit::parse`];
/// [`SourceMap`] records line numbers for [`Circuit::parse_with_sources`].
trait Tracer {
    type Child: Tracer;
    fn child(&mut self) -> Self::Child;
    fn on_push(&mut self, line: usize);
    fn on_repeat(&mut self, line: usize, body: Self::Child);
}

impl Tracer for () {
    type Child = ();
    fn child(&mut self) -> Self::Child {}
    fn on_push(&mut self, _line: usize) {}
    fn on_repeat(&mut self, _line: usize, _body: Self::Child) {}
}

impl Tracer for SourceMap {
    type Child = SourceMap;
    fn child(&mut self) -> Self::Child {
        SourceMap::default()
    }
    fn on_push(&mut self, line: usize) {
        self.lines.push(line);
        self.children.push(None);
    }
    fn on_repeat(&mut self, line: usize, body: Self::Child) {
        self.lines.push(line);
        self.children.push(Some(Box::new(body)));
    }
}

/// Where parsed instructions go: the top-level [`Circuit`] (strict record
/// validation) or a `REPEAT` body [`Block`] (lenient per-iteration
/// validation). Both expose the same fallible push.
trait Sink {
    fn try_push(&mut self, instruction: Instruction) -> Result<(), String>;
}

impl Sink for Circuit {
    fn try_push(&mut self, instruction: Instruction) -> Result<(), String> {
        Circuit::try_push(self, instruction)
    }
}

impl Sink for Block {
    fn try_push(&mut self, instruction: Instruction) -> Result<(), String> {
        Block::try_push(self, instruction)
    }
}

impl Circuit {
    /// Parses circuit text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCircuitError`] carrying the line number for unknown
    /// instructions, malformed arguments or targets, unmatched `REPEAT`
    /// braces, zero trip counts, invalid probabilities, or record
    /// lookbacks that reach before the start of the measurement record
    /// (for lookbacks inside `REPEAT` bodies: in the first iteration).
    pub fn parse(text: &str) -> Result<Circuit, ParseCircuitError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut circuit = Circuit::new(0);
        let mut pos = 0;
        parse_block(&lines, &mut pos, &mut circuit, &mut (), 0)?;
        if pos < lines.len() {
            return Err(err(pos + 1, "unmatched '}'"));
        }
        Ok(circuit)
    }

    /// Parses circuit text like [`Circuit::parse`], additionally
    /// returning a [`SourceMap`] from instructions to 1-based source
    /// lines (used by diagnostics tooling such as `symphase lint`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::parse`].
    pub fn parse_with_sources(text: &str) -> Result<(Circuit, SourceMap), ParseCircuitError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut circuit = Circuit::new(0);
        let mut map = SourceMap::default();
        let mut pos = 0;
        parse_block(&lines, &mut pos, &mut circuit, &mut map, 0)?;
        if pos < lines.len() {
            return Err(err(pos + 1, "unmatched '}'"));
        }
        Ok((circuit, map))
    }
}

/// Parses until end of input or a closing `}` (when `depth > 0`).
fn parse_block<S: Sink, T: Tracer>(
    lines: &[&str],
    pos: &mut usize,
    sink: &mut S,
    tracer: &mut T,
    depth: usize,
) -> Result<(), ParseCircuitError> {
    while *pos < lines.len() {
        let line_no = *pos + 1;
        let raw = lines[*pos];
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            *pos += 1;
            continue;
        }
        if line == "}" {
            // Never consumed here; the REPEAT that opened the block (or
            // the top-level caller, for an unmatched brace) handles it.
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("REPEAT") {
            let rest = rest.trim();
            let (count_str, brace) = match rest.strip_suffix('{') {
                Some(c) => (c.trim(), true),
                None => (rest, false),
            };
            if !brace {
                return Err(err(line_no, "REPEAT must end with '{'"));
            }
            // Underscore separators are accepted for readability
            // (`REPEAT 1_000_000 {`).
            let count: u64 = count_str
                .replace('_', "")
                .parse()
                .map_err(|_| err(line_no, format!("bad REPEAT count '{count_str}'")))?;
            if count == 0 {
                return Err(err(line_no, "REPEAT count must be at least 1"));
            }
            *pos += 1;
            // Parse the body exactly once, whatever the trip count.
            let mut body = Block::new();
            let mut body_tracer = tracer.child();
            parse_block(lines, pos, &mut body, &mut body_tracer, depth + 1)?;
            if *pos >= lines.len() || strip_comment(lines[*pos]).trim() != "}" {
                return Err(err(line_no, "unterminated REPEAT block"));
            }
            *pos += 1; // consume '}'
            sink.try_push(Instruction::Repeat {
                count,
                body: Box::new(body),
            })
            .map_err(|msg| err(line_no, msg))?;
            tracer.on_repeat(line_no, body_tracer);
            continue;
        }
        parse_line(line, line_no, sink, tracer)?;
        *pos += 1;
    }
    if depth > 0 {
        return Err(err(lines.len(), "missing '}'"));
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_line<S: Sink, T: Tracer>(
    line: &str,
    line_no: usize,
    sink: &mut S,
    tracer: &mut T,
) -> Result<(), ParseCircuitError> {
    // Split `NAME(args…) targets…` on the whole line (not the first
    // whitespace token) so parenthesised arguments may contain spaces, as
    // in `QUBIT_COORDS(0, 1) 0`.
    let (name, args, rest) = split_name_args(line, line_no)?;

    if name == "TICK" {
        reject_args(name, &args, line_no)?;
        if !rest.is_empty() {
            return Err(err(line_no, "TICK takes no targets"));
        }
        push_checked(sink, tracer, Instruction::Tick, line_no)?;
        return Ok(());
    }

    // Controlled-Pauli lines may mix plain gate pairs and classically-
    // controlled (feedback) pairs in any position, e.g. `CX 0 1 rec[-1] 2`
    // (Stim semantics: the record target must be the control of its own
    // pair). Dispatch pair by pair rather than routing the whole line.
    if matches!(name, "CX" | "CNOT" | "CY" | "CZ") && rest.iter().any(|t| t.starts_with("rec[")) {
        reject_args(name, &args, line_no)?;
        return parse_mixed_controlled(name, &rest, line_no, sink, tracer);
    }

    // Basis-general measurement / reset families: Z is the bare name.
    let basis_family = |fam: &str| -> Option<PauliKind> {
        let suffix = name.strip_prefix(fam)?;
        match suffix {
            "" | "Z" => Some(PauliKind::Z),
            "X" => Some(PauliKind::X),
            "Y" => Some(PauliKind::Y),
            _ => None,
        }
    };

    match name {
        "M" | "MZ" | "MX" | "MY" => {
            reject_args(name, &args, line_no)?;
            let basis = basis_family("M").expect("matched above");
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::Measure { basis, targets },
                line_no,
            )?;
        }
        "R" | "RZ" | "RX" | "RY" => {
            reject_args(name, &args, line_no)?;
            let basis = basis_family("R").expect("matched above");
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(sink, tracer, Instruction::Reset { basis, targets }, line_no)?;
        }
        "MR" | "MRZ" | "MRX" | "MRY" => {
            reject_args(name, &args, line_no)?;
            let basis = basis_family("MR").expect("matched above");
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::MeasureReset { basis, targets },
                line_no,
            )?;
        }
        "MPP" => {
            reject_args(name, &args, line_no)?;
            if rest.is_empty() {
                return Err(err(line_no, "MPP needs at least one Pauli product"));
            }
            let products = rest
                .iter()
                .map(|tok| {
                    tok.split('*')
                        .map(|f| parse_pauli_factor(f, line_no))
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            push_checked(
                sink,
                tracer,
                Instruction::MeasurePauliProduct { products },
                line_no,
            )?;
        }
        "E" | "CORRELATED_ERROR" | "ELSE_CORRELATED_ERROR" => {
            let probability = match args.as_slice() {
                [p] => *p,
                _ => return Err(err(line_no, format!("{name} needs exactly one argument"))),
            };
            let product = rest
                .iter()
                .map(|tok| parse_pauli_factor(tok, line_no))
                .collect::<Result<Vec<_>, _>>()?;
            push_checked(
                sink,
                tracer,
                Instruction::CorrelatedError {
                    probability,
                    product,
                    else_branch: name == "ELSE_CORRELATED_ERROR",
                },
                line_no,
            )?;
        }
        "DETECTOR" => {
            let lookbacks = parse_lookbacks(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::Detector {
                    coords: args,
                    lookbacks,
                },
                line_no,
            )?;
        }
        "OBSERVABLE_INCLUDE" => {
            let index = match args.as_slice() {
                [i] if i.fract() == 0.0 && *i >= 0.0 => *i as u32,
                _ => {
                    return Err(err(
                        line_no,
                        "OBSERVABLE_INCLUDE needs one integer argument",
                    ))
                }
            };
            let lookbacks = parse_lookbacks(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::ObservableInclude { index, lookbacks },
                line_no,
            )?;
        }
        "QUBIT_COORDS" => {
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::QubitCoords {
                    coords: args,
                    targets,
                },
                line_no,
            )?;
        }
        "SHIFT_COORDS" => {
            if !rest.is_empty() {
                return Err(err(line_no, "SHIFT_COORDS takes no targets"));
            }
            push_checked(
                sink,
                tracer,
                Instruction::ShiftCoords { coords: args },
                line_no,
            )?;
        }
        "X_ERROR" | "Y_ERROR" | "Z_ERROR" | "DEPOLARIZE1" | "DEPOLARIZE2" | "PAULI_CHANNEL_1"
        | "PAULI_CHANNEL_2" => {
            let channel = parse_channel(name, &args, line_no)?;
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(
                sink,
                tracer,
                Instruction::Noise { channel, targets },
                line_no,
            )?;
        }
        _ => {
            let Some(gate) = Gate::from_name(name) else {
                return Err(err(line_no, format!("unknown instruction '{name}'")));
            };
            if !args.is_empty() {
                return Err(err(line_no, format!("gate {name} takes no arguments")));
            }
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(sink, tracer, Instruction::Gate { gate, targets }, line_no)?;
        }
    }
    Ok(())
}

/// Pushes via the sink's fallible push, attaching the line number to
/// validation errors and recording the source line on success.
fn push_checked<S: Sink, T: Tracer>(
    sink: &mut S,
    tracer: &mut T,
    instruction: Instruction,
    line_no: usize,
) -> Result<(), ParseCircuitError> {
    sink.try_push(instruction)
        .map_err(|msg| err(line_no, msg))?;
    tracer.on_push(line_no);
    Ok(())
}

/// Splits a line into its instruction name, parenthesised numeric
/// arguments, and remaining whitespace-separated target tokens. The
/// argument list may contain spaces (`QUBIT_COORDS(0, 1) 0`); empty
/// argument slots (`PAULI_CHANNEL_1(,,0.1)`) are rejected rather than
/// silently skipped — a dropped slot would shift every later argument.
fn split_name_args(
    line: &str,
    line_no: usize,
) -> Result<(&str, Vec<f64>, Vec<&str>), ParseCircuitError> {
    let open = line.find('(');
    let space = line.find(char::is_whitespace);
    let splits_at_paren = match (open, space) {
        (Some(o), Some(s)) => o < s,
        (Some(_), None) => true,
        (None, _) => false,
    };
    if !splits_at_paren {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("non-empty line");
        return Ok((name, Vec::new(), parts.collect()));
    }
    let open = open.expect("checked above");
    let name = &line[..open];
    let Some(close_rel) = line[open..].find(')') else {
        return Err(err(line_no, "missing ')'"));
    };
    let close = open + close_rel;
    let inner = &line[open + 1..close];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                return Err(err(
                    line_no,
                    format!("empty argument slot in '{name}({inner})'"),
                ));
            }
            args.push(
                piece
                    .parse::<f64>()
                    .map_err(|_| err(line_no, format!("bad numeric argument '{piece}'")))?,
            );
        }
    }
    Ok((name, args, line[close + 1..].split_whitespace().collect()))
}

/// Rejects parenthesised arguments on instructions that take none.
fn reject_args(name: &str, args: &[f64], line_no: usize) -> Result<(), ParseCircuitError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(err(line_no, format!("{name} takes no arguments")))
    }
}

/// Parses one Pauli factor token (`X0`, `Z12`).
fn parse_pauli_factor(token: &str, line_no: usize) -> Result<(PauliKind, u32), ParseCircuitError> {
    let bad = || {
        err(
            line_no,
            format!("expected a Pauli target like X0, got '{token}'"),
        )
    };
    let mut chars = token.chars();
    let kind = chars
        .next()
        .and_then(PauliKind::from_letter)
        .ok_or_else(bad)?;
    let qubit: u32 = chars.as_str().parse().map_err(|_| bad())?;
    Ok((kind, qubit))
}

fn parse_channel(
    name: &str,
    args: &[f64],
    line_no: usize,
) -> Result<NoiseChannel, ParseCircuitError> {
    let one = |args: &[f64]| -> Result<f64, ParseCircuitError> {
        match args {
            [p] => Ok(*p),
            _ => Err(err(line_no, format!("{name} needs exactly one argument"))),
        }
    };
    Ok(match name {
        "X_ERROR" => NoiseChannel::XError(one(args)?),
        "Y_ERROR" => NoiseChannel::YError(one(args)?),
        "Z_ERROR" => NoiseChannel::ZError(one(args)?),
        "DEPOLARIZE1" => NoiseChannel::Depolarize1(one(args)?),
        "DEPOLARIZE2" => NoiseChannel::Depolarize2(one(args)?),
        "PAULI_CHANNEL_1" => match args {
            [px, py, pz] => NoiseChannel::PauliChannel1 {
                px: *px,
                py: *py,
                pz: *pz,
            },
            _ => return Err(err(line_no, "PAULI_CHANNEL_1 needs three arguments")),
        },
        "PAULI_CHANNEL_2" => {
            let probs: [f64; 15] = args
                .try_into()
                .map_err(|_| err(line_no, "PAULI_CHANNEL_2 needs 15 arguments"))?;
            NoiseChannel::PauliChannel2 { probs }
        }
        _ => unreachable!("caller filtered channel names"),
    })
}

fn parse_qubits(tokens: &[&str], line_no: usize) -> Result<Vec<u32>, ParseCircuitError> {
    tokens
        .iter()
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| err(line_no, format!("bad qubit target '{t}'")))
        })
        .collect()
}

fn parse_lookbacks(tokens: &[&str], line_no: usize) -> Result<Vec<i64>, ParseCircuitError> {
    tokens.iter().map(|t| parse_rec(t, line_no)).collect()
}

fn parse_rec(token: &str, line_no: usize) -> Result<i64, ParseCircuitError> {
    let inner = token
        .strip_prefix("rec[")
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected rec[-k], got '{token}'")))?;
    inner
        .parse::<i64>()
        .map_err(|_| err(line_no, format!("bad record lookback '{inner}'")))
}

/// Parses a controlled-Pauli line containing at least one `rec[...]`
/// target: each `(control, target)` pair is dispatched independently —
/// pairs with a record target become [`Instruction::Feedback`], runs of
/// plain pairs stay unitary gate applications, in line order.
fn parse_mixed_controlled<S: Sink, T: Tracer>(
    name: &str,
    tokens: &[&str],
    line_no: usize,
    sink: &mut S,
    tracer: &mut T,
) -> Result<(), ParseCircuitError> {
    if !tokens.len().is_multiple_of(2) {
        return Err(err(line_no, format!("{name} takes target pairs")));
    }
    let gate = Gate::from_name(name).expect("caller filtered controlled gate names");
    let mut plain: Vec<u32> = Vec::new();
    for pair in tokens.chunks_exact(2) {
        if pair.iter().any(|t| t.starts_with("rec[")) {
            if !plain.is_empty() {
                push_checked(
                    sink,
                    tracer,
                    Instruction::Gate {
                        gate,
                        targets: std::mem::take(&mut plain),
                    },
                    line_no,
                )?;
            }
            parse_feedback_pair(name, pair[0], pair[1], line_no, sink, tracer)?;
        } else {
            for t in pair {
                plain.push(
                    t.parse::<u32>()
                        .map_err(|_| err(line_no, format!("bad qubit target '{t}'")))?,
                );
            }
        }
    }
    if !plain.is_empty() {
        push_checked(
            sink,
            tracer,
            Instruction::Gate {
                gate,
                targets: plain,
            },
            line_no,
        )?;
    }
    Ok(())
}

/// Parses one `(control, target)` pair where one side is a `rec[...]`
/// measurement-record target.
fn parse_feedback_pair<S: Sink, T: Tracer>(
    name: &str,
    first: &str,
    second: &str,
    line_no: usize,
    sink: &mut S,
    tracer: &mut T,
) -> Result<(), ParseCircuitError> {
    let pauli = match name {
        "CX" | "CNOT" => PauliKind::X,
        "CY" => PauliKind::Y,
        "CZ" => PauliKind::Z,
        _ => unreachable!("caller filtered"),
    };
    let (rec_tok, qubit_tok) = if first.starts_with("rec[") {
        (first, second)
    } else if second.starts_with("rec[") && pauli == PauliKind::Z {
        // CZ is symmetric, so `CZ 2 rec[-1]` is also meaningful.
        (second, first)
    } else {
        return Err(err(line_no, "feedback control must be a rec[] target"));
    };
    let lookback = parse_rec(rec_tok, line_no)?;
    let target: u32 = qubit_tok
        .parse()
        .map_err(|_| err(line_no, format!("bad qubit target '{qubit_tok}'")))?;
    push_checked(
        sink,
        tracer,
        Instruction::Feedback {
            pauli,
            lookback,
            target,
        },
        line_no,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseChannel;

    #[test]
    fn parses_basic_circuit() {
        let c = Circuit::parse("H 0\nCX 0 1\nM 0 1\n").unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.stats().gates, 2);
        assert_eq!(c.stats().measurements, 2);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let c = Circuit::parse("# header\n\nH 0 # trailing\n\n  M 0\n").unwrap();
        assert_eq!(c.stats().gates, 1);
        assert_eq!(c.stats().measurements, 1);
    }

    #[test]
    fn parses_noise_channels() {
        let text = "X_ERROR(0.25) 0\nDEPOLARIZE1(0.1) 0 1\nDEPOLARIZE2(0.05) 0 1\nPAULI_CHANNEL_1(0.1,0.2,0.3) 1\n";
        let c = Circuit::parse(text).unwrap();
        assert_eq!(c.stats().noise_sites, 5);
        assert_eq!(c.stats().noise_symbols, 1 + 2 + 2 + 4 + 2);
        match &c.instructions()[3] {
            Instruction::Noise {
                channel: NoiseChannel::PauliChannel1 { px, py, pz },
                ..
            } => {
                assert_eq!((*px, *py, *pz), (0.1, 0.2, 0.3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_detector_and_observable() {
        let c = Circuit::parse("M 0 1\nDETECTOR rec[-1] rec[-2]\nOBSERVABLE_INCLUDE(1) rec[-1]\n")
            .unwrap();
        assert_eq!(c.num_detectors(), 1);
        assert_eq!(c.num_observables(), 2);
    }

    #[test]
    fn parses_feedback() {
        let c = Circuit::parse("M 0\nCX rec[-1] 1\nCZ 1 rec[-1]\n").unwrap();
        assert_eq!(c.stats().feedback_ops, 2);
        assert_eq!(
            c.instructions()[1],
            Instruction::Feedback {
                pauli: PauliKind::X,
                lookback: -1,
                target: 1
            }
        );
    }

    #[test]
    fn parses_mixed_gate_and_feedback_pairs() {
        // A rec[] anywhere on the line must not swallow the plain pairs.
        let c = Circuit::parse("M 0\nCX 0 1 rec[-1] 2 3 4\n").unwrap();
        assert_eq!(c.stats().gates, 2); // pairs (0,1) and (3,4)
        assert_eq!(c.stats().feedback_ops, 1);
        assert_eq!(
            c.instructions()[2],
            Instruction::Feedback {
                pauli: PauliKind::X,
                lookback: -1,
                target: 2
            }
        );
        match &c.instructions()[1] {
            Instruction::Gate { targets, .. } => assert_eq!(targets, &[0, 1]),
            other => panic!("unexpected {other:?}"),
        }
        match &c.instructions()[3] {
            Instruction::Gate { targets, .. } => assert_eq!(targets, &[3, 4]),
            other => panic!("unexpected {other:?}"),
        }
        // Feedback-first ordering works too.
        let c = Circuit::parse("M 0\nCZ rec[-1] 2 0 1\n").unwrap();
        assert_eq!(c.stats().gates, 1);
        assert_eq!(c.stats().feedback_ops, 1);
    }

    #[test]
    fn rejects_rec_in_target_position() {
        // Only CZ is symmetric; a record target cannot be the *target* of
        // a CX/CY pair.
        let e = Circuit::parse("M 0\nCX 2 rec[-1]\n").unwrap_err();
        assert!(e.message.contains("control"));
        assert!(Circuit::parse("M 0\nCY 2 rec[-1]\n").is_err());
        assert!(Circuit::parse("M 0\nCX 0 1 2 rec[-1]\n").is_err());
        // Odd token counts with a rec[] are malformed pairs.
        assert!(Circuit::parse("M 0\nCX rec[-1] 2 3\n").is_err());
    }

    #[test]
    fn parses_repeat_structured() {
        let c = Circuit::parse("REPEAT 3 {\n  H 0\n  M 0\n}\n").unwrap();
        // Statistics come from structure (body × count)…
        assert_eq!(c.stats().gates, 3);
        assert_eq!(c.stats().measurements, 3);
        // …while the instruction list keeps the block as one node.
        assert_eq!(c.instructions().len(), 1);
        match &c.instructions()[0] {
            Instruction::Repeat { count, body } => {
                assert_eq!(*count, 3);
                assert_eq!(body.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_repeat() {
        let c = Circuit::parse("REPEAT 2 {\n REPEAT 3 {\n X 0\n }\n}\n").unwrap();
        assert_eq!(c.stats().gates, 6);
        assert_eq!(c.instructions().len(), 1);
    }

    #[test]
    fn repeat_lookbacks_use_dynamic_record() {
        // Each iteration's DETECTOR refers to its own iteration's M.
        let c = Circuit::parse("REPEAT 3 {\n M 0\n DETECTOR rec[-1]\n}\n").unwrap();
        assert_eq!(c.num_detectors(), 3);
        // A lookback crossing the iteration boundary is valid when the
        // record preceding the block covers the first iteration.
        let c = Circuit::parse("M 0\nREPEAT 3 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n").unwrap();
        assert_eq!(c.num_detectors(), 3);
        // …and rejected when it cannot land in the first iteration.
        let e = Circuit::parse("REPEAT 3 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n").unwrap_err();
        assert!(e.message.contains("REPEAT body reaches"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn repeat_bodies_parse_once_without_expansion() {
        // One million trips: the body is parsed exactly once, the
        // structured list holds one REPEAT node (not 10⁶ clones), and the
        // whole parse is O(file).
        let start = std::time::Instant::now();
        let c = Circuit::parse("REPEAT 1000000 {\n X 0\n M 0\n}\n").unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "parse must not scale with the trip count"
        );
        assert_eq!(c.instructions().len(), 1);
        assert_eq!(c.stats().gates, 1_000_000);
        assert_eq!(c.stats().measurements, 1_000_000);
    }

    #[test]
    fn nested_repeat_exceeds_old_flattening_cap() {
        // 10¹⁰ flattened gates: the old flattener refused anything past
        // 50M materialized instructions; the structured parse is instant.
        let c = Circuit::parse("REPEAT 100000 {\n REPEAT 100000 {\n X 0\n }\n}\n").unwrap();
        assert_eq!(c.instructions().len(), 1);
        assert_eq!(c.stats().gates, 10_000_000_000);
    }

    #[test]
    fn repeat_count_accepts_underscores_and_rejects_zero() {
        let c = Circuit::parse("REPEAT 1_000_000 {\n X 0\n}\n").unwrap();
        assert_eq!(c.stats().gates, 1_000_000);
        let e = Circuit::parse("REPEAT 0 {\n X 0\n}\n").unwrap_err();
        assert!(e.message.contains("at least 1"));
    }

    #[test]
    fn source_map_tracks_lines_through_nesting() {
        let text =
            "# header\nH 0\n\nREPEAT 3 {\n  M 0\n  DETECTOR rec[-1]\n}\nM 0\nCX 0 1 rec[-1] 2\n";
        let (c, map) = Circuit::parse_with_sources(text).unwrap();
        assert_eq!(map.len(), c.instructions().len());
        assert_eq!(map.line(0), 2); // H 0
        assert_eq!(map.line(1), 4); // REPEAT header
        let body = map.child(1).expect("REPEAT has a body map");
        assert_eq!(body.line(0), 5); // M 0
        assert_eq!(body.line(1), 6); // DETECTOR
        assert_eq!(map.line(2), 8); // M 0
                                    // The mixed controlled line splits into several instructions, all
                                    // mapped to the same source line.
        assert_eq!(map.line(3), 9);
        assert_eq!(map.line(4), 9);
        assert_eq!(map.child(0), None);
        // Structural paths resolve through nesting.
        assert_eq!(map.line_at(&[1, 1]), Some(6));
        assert_eq!(map.line_at(&[1, 2]), None);
        assert_eq!(map.line_at(&[]), None);
        // Both entry points produce the same circuit.
        assert_eq!(c, Circuit::parse(text).unwrap());
    }

    #[test]
    fn rejects_unknown_instruction() {
        let e = Circuit::parse("FROB 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("FROB"));
    }

    #[test]
    fn rejects_bad_targets() {
        assert!(Circuit::parse("H x\n").is_err());
        assert!(Circuit::parse("CX 0\n").is_err());
        assert!(Circuit::parse("CX 1 1\n").is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        let e = Circuit::parse("X_ERROR(1.5) 0\n").unwrap_err();
        assert!(e.message.contains("probability"));
        // Inside a REPEAT body too (structural validation is not lenient).
        assert!(Circuit::parse("REPEAT 2 {\n X_ERROR(1.5) 0\n}\n").is_err());
    }

    #[test]
    fn rejects_deep_lookback() {
        let e = Circuit::parse("M 0\nDETECTOR rec[-2]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(
            e.message
                .contains("rec[-2] reaches before the start of the record"),
            "{}",
            e.message
        );
        // OBSERVABLE_INCLUDE gets the same strict top-level check, with
        // the line of the offending instruction (not the lookback count).
        let e = Circuit::parse("M 0 1\nTICK\nOBSERVABLE_INCLUDE(0) rec[-1] rec[-3]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(
            e.message
                .contains("rec[-3] reaches before the start of the record"),
            "{}",
            e.message
        );
        // Feedback lookbacks are validated identically.
        let e = Circuit::parse("M 0\nCX rec[-2] 1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_unmatched_braces() {
        assert!(Circuit::parse("REPEAT 2 {\nH 0\n").is_err());
        assert!(Circuit::parse("}\n").is_err());
        assert!(Circuit::parse("REPEAT 2\nH 0\n").is_err());
    }

    #[test]
    fn preserves_coordinate_lines() {
        // Previously these lines were silently dropped; they now
        // round-trip as annotation instructions that engines ignore.
        let text = "QUBIT_COORDS(0, 1) 0\nH 0\nSHIFT_COORDS(0, 2)\n";
        let c = Circuit::parse(text).unwrap();
        assert_eq!(c.stats().gates, 1);
        assert_eq!(c.instructions().len(), 3);
        assert_eq!(
            c.instructions()[0],
            Instruction::QubitCoords {
                coords: vec![0.0, 1.0],
                targets: vec![0],
            }
        );
        assert_eq!(
            c.instructions()[2],
            Instruction::ShiftCoords {
                coords: vec![0.0, 2.0],
            }
        );
        assert_eq!(
            c.to_string(),
            "QUBIT_COORDS(0,1) 0\nH 0\nSHIFT_COORDS(0,2)\n"
        );
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn detector_coordinates_roundtrip() {
        let c = Circuit::parse("M 0\nDETECTOR(1,2,0) rec[-1]\n").unwrap();
        assert_eq!(
            c.instructions()[1],
            Instruction::Detector {
                coords: vec![1.0, 2.0, 0.0],
                lookbacks: vec![-1],
            }
        );
        assert_eq!(c.to_string(), "M 0\nDETECTOR(1,2,0) rec[-1]\n");
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
        // Coordinate-free detectors keep the bare form.
        let c = Circuit::parse("M 0\nDETECTOR rec[-1]\n").unwrap();
        assert_eq!(c.to_string(), "M 0\nDETECTOR rec[-1]\n");
    }

    #[test]
    fn parses_basis_measurements_and_resets() {
        let c =
            Circuit::parse("MX 0\nMY 1\nRX 0\nRY 1\nMRX 0\nMRY 1\nMZ 2\nRZ 2\nMRZ 2\n").unwrap();
        assert_eq!(c.stats().measurements, 6);
        assert_eq!(c.stats().resets, 6);
        assert_eq!(
            c.instructions()[0],
            Instruction::Measure {
                basis: PauliKind::X,
                targets: vec![0],
            }
        );
        assert_eq!(
            c.instructions()[5],
            Instruction::MeasureReset {
                basis: PauliKind::Y,
                targets: vec![1],
            }
        );
        // Canonical re-emission: Z stays bare, X/Y keep their suffix.
        assert_eq!(
            c.to_string(),
            "MX 0\nMY 1\nRX 0\nRY 1\nMRX 0\nMRY 1\nM 2\nR 2\nMR 2\n"
        );
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn parses_mpp_products() {
        let c = Circuit::parse("MPP X0*Z1*Y2 X3\nDETECTOR rec[-2]\n").unwrap();
        assert_eq!(c.stats().measurements, 2);
        assert_eq!(
            c.instructions()[0],
            Instruction::MeasurePauliProduct {
                products: vec![
                    vec![(PauliKind::X, 0), (PauliKind::Z, 1), (PauliKind::Y, 2)],
                    vec![(PauliKind::X, 3)],
                ],
            }
        );
        assert_eq!(c.to_string(), "MPP X0*Z1*Y2 X3\nDETECTOR rec[-2]\n");
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
        // Malformed products.
        assert!(Circuit::parse("MPP\n").is_err());
        assert!(Circuit::parse("MPP Q0\n").is_err());
        assert!(Circuit::parse("MPP X0*\n").is_err());
        let e = Circuit::parse("MPP X0*Z0\n").unwrap_err();
        assert!(e.message.contains("repeats qubit"), "{}", e.message);
    }

    #[test]
    fn parses_correlated_errors() {
        let text = "E(0.25) X0 Y1\nELSE_CORRELATED_ERROR(0.5) Z2\nM 0 1 2\n";
        let c = Circuit::parse(text).unwrap();
        assert_eq!(c.stats().noise_sites, 2);
        assert_eq!(c.stats().noise_symbols, 2);
        assert_eq!(
            c.instructions()[0],
            Instruction::CorrelatedError {
                probability: 0.25,
                product: vec![(PauliKind::X, 0), (PauliKind::Y, 1)],
                else_branch: false,
            }
        );
        assert_eq!(c.to_string(), text);
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
        // CORRELATED_ERROR is an alias of E.
        let alias = Circuit::parse("CORRELATED_ERROR(0.25) X0 Y1\n").unwrap();
        assert_eq!(
            alias.instructions()[0],
            Circuit::parse("E(0.25) X0 Y1\n").unwrap().instructions()[0]
        );
    }

    #[test]
    fn else_correlated_error_requires_a_chain() {
        let e = Circuit::parse("ELSE_CORRELATED_ERROR(0.5) Z0\n").unwrap_err();
        assert!(e.message.contains("immediately follow"), "{}", e.message);
        assert_eq!(e.line, 1);
        // A gate in between breaks the chain.
        assert!(Circuit::parse("E(0.1) X0\nH 0\nELSE_CORRELATED_ERROR(0.5) Z0\n").is_err());
        // Chains of several ELSE elements are fine.
        assert!(Circuit::parse(
            "E(0.1) X0\nELSE_CORRELATED_ERROR(0.2) Y0\nELSE_CORRELATED_ERROR(0.3) Z0\n"
        )
        .is_ok());
    }

    #[test]
    fn parses_pauli_channel_2() {
        let args: Vec<String> = (1..=15).map(|i| format!("{}", i as f64 / 1000.0)).collect();
        let text = format!("PAULI_CHANNEL_2({}) 0 1\n", args.join(","));
        let c = Circuit::parse(&text).unwrap();
        assert_eq!(c.stats().noise_sites, 1);
        assert_eq!(c.stats().noise_symbols, 4);
        match &c.instructions()[0] {
            Instruction::Noise {
                channel: NoiseChannel::PauliChannel2 { probs },
                targets,
            } => {
                assert_eq!(targets, &[0, 1]);
                assert!((probs[0] - 0.001).abs() < 1e-12);
                assert!((probs[14] - 0.015).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
        // Wrong arity and bad sums are rejected with line numbers.
        assert!(Circuit::parse("PAULI_CHANNEL_2(0.1,0.2) 0 1\n").is_err());
        let fifteen = vec!["0.1"; 15].join(",");
        let e = Circuit::parse(&format!("PAULI_CHANNEL_2({fifteen}) 0 1\n")).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("sum"), "{}", e.message);
    }

    #[test]
    fn rejects_empty_argument_slots() {
        let e = Circuit::parse("PAULI_CHANNEL_1(,,0.1) 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("empty argument"), "{}", e.message);
        assert!(Circuit::parse("X_ERROR(0.1,) 0\n").is_err());
        assert!(Circuit::parse("DETECTOR(1,,2) rec[-1]\n").is_err());
    }

    #[test]
    fn rejects_arguments_on_measurements() {
        assert!(Circuit::parse("M(0.01) 0\n").is_err());
        assert!(Circuit::parse("MPP(0.01) X0\n").is_err());
        assert!(Circuit::parse("R(1) 0\n").is_err());
        assert!(Circuit::parse("TICK(0.5)\n").is_err());
        // Feedback-form controlled-Pauli lines reject arguments too (the
        // pairwise dispatch path must not silently drop them).
        assert!(Circuit::parse("M 0\nCX(0.3) rec[-1] 1\n").is_err());
        assert!(Circuit::parse("M 0\nCZ(0.3) 1 rec[-1]\n").is_err());
    }

    #[test]
    fn rejects_invalid_probabilities_with_line_numbers() {
        for bad in [
            "X_ERROR(1.5) 0\n",
            "X_ERROR(-0.1) 0\n",
            "PAULI_CHANNEL_1(0.5,0.4,0.3) 0\n",
            "E(1.01) X0\n",
            "DEPOLARIZE2(2) 0 1\n",
        ] {
            let e = Circuit::parse(&format!("H 0\n{bad}")).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).s(2);
        c.noise(NoiseChannel::Depolarize1(0.125), &[0, 1]);
        c.measure_many(&[0, 1]);
        c.detector(&[-1, -2]);
        c.observable_include(0, &[-1]);
        c.feedback(PauliKind::X, -1, 2);
        c.measure_reset(2);
        c.reset(0);
        c.tick();
        let text = c.to_string();
        let parsed = Circuit::parse(&text).unwrap();
        assert_eq!(parsed, c);
    }

    /// `parse ∘ to_string` is the identity on a circuit containing every
    /// supported instruction (the acceptance criterion's round-trip file).
    #[test]
    fn full_instruction_surface_roundtrips() {
        let mut c = Circuit::new(4);
        c.qubit_coords(&[0.0, 1.5], &[0]);
        c.qubit_coords(&[1.0, 0.0], &[1]);
        c.reset_in(PauliKind::X, 0);
        c.reset_in(PauliKind::Y, 1);
        c.reset(2);
        c.h(0).cx(0, 1).cz(1, 2).swap(2, 3).s(3);
        c.noise(NoiseChannel::XError(0.01), &[0]);
        c.noise(NoiseChannel::YError(0.02), &[1]);
        c.noise(NoiseChannel::ZError(0.03), &[2]);
        c.noise(NoiseChannel::Depolarize1(0.04), &[0, 1]);
        c.noise(NoiseChannel::Depolarize2(0.05), &[0, 1]);
        c.noise(
            NoiseChannel::PauliChannel1 {
                px: 0.01,
                py: 0.02,
                pz: 0.03,
            },
            &[3],
        );
        let mut probs = [0.0; 15];
        probs[0] = 0.01;
        probs[9] = 0.02;
        c.noise(NoiseChannel::PauliChannel2 { probs }, &[2, 3]);
        c.correlated_error(0.1, &[(PauliKind::X, 0), (PauliKind::Z, 1)]);
        c.else_correlated_error(0.2, &[(PauliKind::Y, 2)]);
        c.measure_in(PauliKind::X, 0);
        c.measure_in(PauliKind::Y, 1);
        c.measure(2);
        c.measure_pauli_products(&[
            &[(PauliKind::X, 0), (PauliKind::Z, 1), (PauliKind::Y, 2)],
            &[(PauliKind::X, 3)],
        ]);
        c.measure_reset_in(PauliKind::X, 0);
        c.measure_reset_in(PauliKind::Y, 1);
        c.measure_reset(2);
        c.feedback(PauliKind::Z, -1, 3);
        c.detector_at(&[1.0, 2.0, 0.0], &[-1, -2]);
        c.detector(&[-3]);
        c.observable_include(0, &[-1]);
        c.tick();
        c.repeat_with(3, |b| {
            b.measure_many_in(PauliKind::X, &[0]);
            b.measure_pauli_product(&[(PauliKind::Z, 1), (PauliKind::Z, 2)]);
            b.correlated_error(0.01, &[(PauliKind::Z, 0)]);
            b.detector(&[-1, -3]);
        });
        c.push(Instruction::ShiftCoords {
            coords: vec![0.0, 0.0, 1.0],
        });
        let text = c.to_string();
        let parsed = Circuit::parse(&text).unwrap();
        assert_eq!(parsed, c, "parse ∘ to_string must be the identity");
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn nested_repeat_display_roundtrip() {
        let text = "M 0\nREPEAT 2 {\n    H 0\n    REPEAT 3 {\n        M 0\n        DETECTOR rec[-1] rec[-2]\n    }\n    CX rec[-1] 1\n}\n";
        let c = Circuit::parse(text).unwrap();
        assert_eq!(c.to_string(), text);
        assert_eq!(Circuit::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn mz_and_aliases() {
        let c = Circuit::parse("MZ 0\nRZ 0\nMRZ 0\nCNOT 0 1\nSQRT_Z 0\n").unwrap();
        assert_eq!(c.stats().measurements, 2);
        assert_eq!(c.stats().resets, 2);
        assert_eq!(c.stats().gates, 2);
    }
}
