//! Parser for the Stim-compatible circuit text format.
//!
//! Supported lines (compare Stim's `.stim` format):
//!
//! ```text
//! # comment
//! H 0 1                     — gate broadcast
//! CX 0 1 2 3                — two-qubit gates take target pairs
//! CX rec[-1] 2              — classically-controlled Pauli (feedback)
//! X_ERROR(0.01) 0 1         — noise channels with parenthesised arguments
//! PAULI_CHANNEL_1(a,b,c) 0
//! M 0 1 / MR 0 / R 0        — measure, measure-reset, reset
//! DETECTOR rec[-1] rec[-2]
//! OBSERVABLE_INCLUDE(0) rec[-1]
//! REPEAT 5 { ... }          — flattened during parsing
//! TICK
//! QUBIT_COORDS(...) 0       — accepted and ignored
//! ```

use std::error::Error;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::{Gate, PauliKind};
use crate::instruction::{Instruction, NoiseChannel};

/// Error produced when parsing circuit text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCircuitError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseCircuitError {}

fn err(line: usize, message: impl Into<String>) -> ParseCircuitError {
    ParseCircuitError {
        line,
        message: message.into(),
    }
}

/// Upper bound on instructions produced by nested `REPEAT` expansion.
const MAX_FLATTENED_INSTRUCTIONS: usize = 50_000_000;

impl Circuit {
    /// Parses circuit text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseCircuitError`] carrying the line number for unknown
    /// instructions, malformed arguments or targets, unmatched `REPEAT`
    /// braces, invalid probabilities, or record lookbacks that reach before
    /// the start of the measurement record.
    pub fn parse(text: &str) -> Result<Circuit, ParseCircuitError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut circuit = Circuit::new(0);
        let mut pos = 0;
        parse_block(&lines, &mut pos, &mut circuit, 0)?;
        if pos < lines.len() {
            return Err(err(pos + 1, "unmatched '}'"));
        }
        Ok(circuit)
    }
}

/// Parses until end of input or a closing `}` (when `depth > 0`).
fn parse_block(
    lines: &[&str],
    pos: &mut usize,
    circuit: &mut Circuit,
    depth: usize,
) -> Result<(), ParseCircuitError> {
    while *pos < lines.len() {
        let line_no = *pos + 1;
        let raw = lines[*pos];
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            *pos += 1;
            continue;
        }
        if line == "}" {
            if depth == 0 {
                return Ok(()); // caller reports unmatched brace
            }
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("REPEAT") {
            let rest = rest.trim();
            let (count_str, brace) = match rest.strip_suffix('{') {
                Some(c) => (c.trim(), true),
                None => (rest, false),
            };
            if !brace {
                return Err(err(line_no, "REPEAT must end with '{'"));
            }
            let count: usize = count_str
                .parse()
                .map_err(|_| err(line_no, format!("bad REPEAT count '{count_str}'")))?;
            *pos += 1;
            // Parse the body into a scratch circuit once, then replay it.
            let body_start = *pos;
            let mut scratch = circuit.clone();
            parse_block(lines, pos, &mut scratch, depth + 1)?;
            if *pos >= lines.len() || strip_comment(lines[*pos]).trim() != "}" {
                return Err(err(body_start, "unterminated REPEAT block"));
            }
            let body_end = *pos;
            *pos += 1; // consume '}'
            for _ in 0..count {
                let mut inner = body_start;
                parse_block(lines, &mut inner, circuit, depth + 1)?;
                debug_assert_eq!(inner, body_end);
                if circuit.instructions().len() > MAX_FLATTENED_INSTRUCTIONS {
                    return Err(err(line_no, "REPEAT expansion too large"));
                }
            }
            continue;
        }
        parse_line(line, line_no, circuit)?;
        *pos += 1;
    }
    if depth > 0 {
        return Err(err(lines.len(), "missing '}'"));
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_line(line: &str, line_no: usize, circuit: &mut Circuit) -> Result<(), ParseCircuitError> {
    // Coordinate annotations are accepted and ignored (their arguments may
    // contain spaces, so check before tokenizing).
    if line.starts_with("QUBIT_COORDS") || line.starts_with("SHIFT_COORDS") {
        return Ok(());
    }

    let mut parts = line.split_whitespace();
    let head = parts.next().expect("non-empty line");
    let rest: Vec<&str> = parts.collect();

    let (name, args) = split_name_args(head, line_no)?;

    if name == "TICK" {
        circuit.push(Instruction::Tick);
        return Ok(());
    }

    // Controlled-Pauli lines may mix plain gate pairs and classically-
    // controlled (feedback) pairs in any position, e.g. `CX 0 1 rec[-1] 2`
    // (Stim semantics: the record target must be the control of its own
    // pair). Dispatch pair by pair rather than routing the whole line.
    if matches!(name, "CX" | "CNOT" | "CY" | "CZ") && rest.iter().any(|t| t.starts_with("rec[")) {
        return parse_mixed_controlled(name, &rest, line_no, circuit);
    }

    match name {
        "M" | "MZ" => {
            let targets = parse_qubits(&rest, line_no)?;
            circuit.push(Instruction::Measure { targets });
        }
        "R" | "RZ" => {
            let targets = parse_qubits(&rest, line_no)?;
            circuit.push(Instruction::Reset { targets });
        }
        "MR" | "MRZ" => {
            let targets = parse_qubits(&rest, line_no)?;
            circuit.push(Instruction::MeasureReset { targets });
        }
        "DETECTOR" => {
            let lookbacks = parse_lookbacks(&rest, line_no)?;
            push_checked(circuit, Instruction::Detector { lookbacks }, line_no)?;
        }
        "OBSERVABLE_INCLUDE" => {
            let index = match args.as_slice() {
                [i] if i.fract() == 0.0 && *i >= 0.0 => *i as u32,
                _ => {
                    return Err(err(
                        line_no,
                        "OBSERVABLE_INCLUDE needs one integer argument",
                    ))
                }
            };
            let lookbacks = parse_lookbacks(&rest, line_no)?;
            push_checked(
                circuit,
                Instruction::ObservableInclude { index, lookbacks },
                line_no,
            )?;
        }
        "X_ERROR" | "Y_ERROR" | "Z_ERROR" | "DEPOLARIZE1" | "DEPOLARIZE2" | "PAULI_CHANNEL_1" => {
            let channel = parse_channel(name, &args, line_no)?;
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(circuit, Instruction::Noise { channel, targets }, line_no)?;
        }
        _ => {
            let Some(gate) = Gate::from_name(name) else {
                return Err(err(line_no, format!("unknown instruction '{name}'")));
            };
            if !args.is_empty() {
                return Err(err(line_no, format!("gate {name} takes no arguments")));
            }
            let targets = parse_qubits(&rest, line_no)?;
            push_checked(circuit, Instruction::Gate { gate, targets }, line_no)?;
        }
    }
    Ok(())
}

/// Pushes via [`Circuit::try_push`], attaching the line number to validation
/// errors.
fn push_checked(
    circuit: &mut Circuit,
    instruction: Instruction,
    line_no: usize,
) -> Result<(), ParseCircuitError> {
    circuit
        .try_push(instruction)
        .map_err(|msg| err(line_no, msg))
}

fn split_name_args(head: &str, line_no: usize) -> Result<(&str, Vec<f64>), ParseCircuitError> {
    match head.find('(') {
        None => Ok((head, Vec::new())),
        Some(open) => {
            let name = &head[..open];
            let Some(close) = head.rfind(')') else {
                return Err(err(line_no, "missing ')'"));
            };
            let inner = &head[open + 1..close];
            let mut args = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                args.push(
                    piece
                        .parse::<f64>()
                        .map_err(|_| err(line_no, format!("bad numeric argument '{piece}'")))?,
                );
            }
            Ok((name, args))
        }
    }
}

fn parse_channel(
    name: &str,
    args: &[f64],
    line_no: usize,
) -> Result<NoiseChannel, ParseCircuitError> {
    let one = |args: &[f64]| -> Result<f64, ParseCircuitError> {
        match args {
            [p] => Ok(*p),
            _ => Err(err(line_no, format!("{name} needs exactly one argument"))),
        }
    };
    Ok(match name {
        "X_ERROR" => NoiseChannel::XError(one(args)?),
        "Y_ERROR" => NoiseChannel::YError(one(args)?),
        "Z_ERROR" => NoiseChannel::ZError(one(args)?),
        "DEPOLARIZE1" => NoiseChannel::Depolarize1(one(args)?),
        "DEPOLARIZE2" => NoiseChannel::Depolarize2(one(args)?),
        "PAULI_CHANNEL_1" => match args {
            [px, py, pz] => NoiseChannel::PauliChannel1 {
                px: *px,
                py: *py,
                pz: *pz,
            },
            _ => return Err(err(line_no, "PAULI_CHANNEL_1 needs three arguments")),
        },
        _ => unreachable!("caller filtered channel names"),
    })
}

fn parse_qubits(tokens: &[&str], line_no: usize) -> Result<Vec<u32>, ParseCircuitError> {
    tokens
        .iter()
        .map(|t| {
            t.parse::<u32>()
                .map_err(|_| err(line_no, format!("bad qubit target '{t}'")))
        })
        .collect()
}

fn parse_lookbacks(tokens: &[&str], line_no: usize) -> Result<Vec<i64>, ParseCircuitError> {
    tokens.iter().map(|t| parse_rec(t, line_no)).collect()
}

fn parse_rec(token: &str, line_no: usize) -> Result<i64, ParseCircuitError> {
    let inner = token
        .strip_prefix("rec[")
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected rec[-k], got '{token}'")))?;
    inner
        .parse::<i64>()
        .map_err(|_| err(line_no, format!("bad record lookback '{inner}'")))
}

/// Parses a controlled-Pauli line containing at least one `rec[...]`
/// target: each `(control, target)` pair is dispatched independently —
/// pairs with a record target become [`Instruction::Feedback`], runs of
/// plain pairs stay unitary gate applications, in line order.
fn parse_mixed_controlled(
    name: &str,
    tokens: &[&str],
    line_no: usize,
    circuit: &mut Circuit,
) -> Result<(), ParseCircuitError> {
    if !tokens.len().is_multiple_of(2) {
        return Err(err(line_no, format!("{name} takes target pairs")));
    }
    let gate = Gate::from_name(name).expect("caller filtered controlled gate names");
    let mut plain: Vec<u32> = Vec::new();
    for pair in tokens.chunks_exact(2) {
        if pair.iter().any(|t| t.starts_with("rec[")) {
            if !plain.is_empty() {
                push_checked(
                    circuit,
                    Instruction::Gate {
                        gate,
                        targets: std::mem::take(&mut plain),
                    },
                    line_no,
                )?;
            }
            parse_feedback_pair(name, pair[0], pair[1], line_no, circuit)?;
        } else {
            for t in pair {
                plain.push(
                    t.parse::<u32>()
                        .map_err(|_| err(line_no, format!("bad qubit target '{t}'")))?,
                );
            }
        }
    }
    if !plain.is_empty() {
        push_checked(
            circuit,
            Instruction::Gate {
                gate,
                targets: plain,
            },
            line_no,
        )?;
    }
    Ok(())
}

/// Parses one `(control, target)` pair where one side is a `rec[...]`
/// measurement-record target.
fn parse_feedback_pair(
    name: &str,
    first: &str,
    second: &str,
    line_no: usize,
    circuit: &mut Circuit,
) -> Result<(), ParseCircuitError> {
    let pauli = match name {
        "CX" | "CNOT" => PauliKind::X,
        "CY" => PauliKind::Y,
        "CZ" => PauliKind::Z,
        _ => unreachable!("caller filtered"),
    };
    let (rec_tok, qubit_tok) = if first.starts_with("rec[") {
        (first, second)
    } else if second.starts_with("rec[") && pauli == PauliKind::Z {
        // CZ is symmetric, so `CZ 2 rec[-1]` is also meaningful.
        (second, first)
    } else {
        return Err(err(line_no, "feedback control must be a rec[] target"));
    };
    let lookback = parse_rec(rec_tok, line_no)?;
    let target: u32 = qubit_tok
        .parse()
        .map_err(|_| err(line_no, format!("bad qubit target '{qubit_tok}'")))?;
    push_checked(
        circuit,
        Instruction::Feedback {
            pauli,
            lookback,
            target,
        },
        line_no,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseChannel;

    #[test]
    fn parses_basic_circuit() {
        let c = Circuit::parse("H 0\nCX 0 1\nM 0 1\n").unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.stats().gates, 2);
        assert_eq!(c.stats().measurements, 2);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let c = Circuit::parse("# header\n\nH 0 # trailing\n\n  M 0\n").unwrap();
        assert_eq!(c.stats().gates, 1);
        assert_eq!(c.stats().measurements, 1);
    }

    #[test]
    fn parses_noise_channels() {
        let text = "X_ERROR(0.25) 0\nDEPOLARIZE1(0.1) 0 1\nDEPOLARIZE2(0.05) 0 1\nPAULI_CHANNEL_1(0.1,0.2,0.3) 1\n";
        let c = Circuit::parse(text).unwrap();
        assert_eq!(c.stats().noise_sites, 5);
        assert_eq!(c.stats().noise_symbols, 1 + 2 + 2 + 4 + 2);
        match &c.instructions()[3] {
            Instruction::Noise {
                channel: NoiseChannel::PauliChannel1 { px, py, pz },
                ..
            } => {
                assert_eq!((*px, *py, *pz), (0.1, 0.2, 0.3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_detector_and_observable() {
        let c = Circuit::parse("M 0 1\nDETECTOR rec[-1] rec[-2]\nOBSERVABLE_INCLUDE(1) rec[-1]\n")
            .unwrap();
        assert_eq!(c.num_detectors(), 1);
        assert_eq!(c.num_observables(), 2);
    }

    #[test]
    fn parses_feedback() {
        let c = Circuit::parse("M 0\nCX rec[-1] 1\nCZ 1 rec[-1]\n").unwrap();
        assert_eq!(c.stats().feedback_ops, 2);
        assert_eq!(
            c.instructions()[1],
            Instruction::Feedback {
                pauli: PauliKind::X,
                lookback: -1,
                target: 1
            }
        );
    }

    #[test]
    fn parses_mixed_gate_and_feedback_pairs() {
        // A rec[] anywhere on the line must not swallow the plain pairs.
        let c = Circuit::parse("M 0\nCX 0 1 rec[-1] 2 3 4\n").unwrap();
        assert_eq!(c.stats().gates, 2); // pairs (0,1) and (3,4)
        assert_eq!(c.stats().feedback_ops, 1);
        assert_eq!(
            c.instructions()[2],
            Instruction::Feedback {
                pauli: PauliKind::X,
                lookback: -1,
                target: 2
            }
        );
        match &c.instructions()[1] {
            Instruction::Gate { targets, .. } => assert_eq!(targets, &[0, 1]),
            other => panic!("unexpected {other:?}"),
        }
        match &c.instructions()[3] {
            Instruction::Gate { targets, .. } => assert_eq!(targets, &[3, 4]),
            other => panic!("unexpected {other:?}"),
        }
        // Feedback-first ordering works too.
        let c = Circuit::parse("M 0\nCZ rec[-1] 2 0 1\n").unwrap();
        assert_eq!(c.stats().gates, 1);
        assert_eq!(c.stats().feedback_ops, 1);
    }

    #[test]
    fn rejects_rec_in_target_position() {
        // Only CZ is symmetric; a record target cannot be the *target* of
        // a CX/CY pair.
        let e = Circuit::parse("M 0\nCX 2 rec[-1]\n").unwrap_err();
        assert!(e.message.contains("control"));
        assert!(Circuit::parse("M 0\nCY 2 rec[-1]\n").is_err());
        assert!(Circuit::parse("M 0\nCX 0 1 2 rec[-1]\n").is_err());
        // Odd token counts with a rec[] are malformed pairs.
        assert!(Circuit::parse("M 0\nCX rec[-1] 2 3\n").is_err());
    }

    #[test]
    fn parses_repeat_flattening() {
        let c = Circuit::parse("REPEAT 3 {\n  H 0\n  M 0\n}\n").unwrap();
        assert_eq!(c.stats().gates, 3);
        assert_eq!(c.stats().measurements, 3);
    }

    #[test]
    fn parses_nested_repeat() {
        let c = Circuit::parse("REPEAT 2 {\n REPEAT 3 {\n X 0\n }\n}\n").unwrap();
        assert_eq!(c.stats().gates, 6);
    }

    #[test]
    fn repeat_lookbacks_use_dynamic_record() {
        // Each iteration's DETECTOR refers to its own iteration's M.
        let c = Circuit::parse("REPEAT 3 {\n M 0\n DETECTOR rec[-1]\n}\n").unwrap();
        assert_eq!(c.num_detectors(), 3);
    }

    #[test]
    fn rejects_unknown_instruction() {
        let e = Circuit::parse("FROB 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("FROB"));
    }

    #[test]
    fn rejects_bad_targets() {
        assert!(Circuit::parse("H x\n").is_err());
        assert!(Circuit::parse("CX 0\n").is_err());
        assert!(Circuit::parse("CX 1 1\n").is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        let e = Circuit::parse("X_ERROR(1.5) 0\n").unwrap_err();
        assert!(e.message.contains("probability"));
    }

    #[test]
    fn rejects_deep_lookback() {
        let e = Circuit::parse("M 0\nDETECTOR rec[-2]\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_unmatched_braces() {
        assert!(Circuit::parse("REPEAT 2 {\nH 0\n").is_err());
        assert!(Circuit::parse("}\n").is_err());
        assert!(Circuit::parse("REPEAT 2\nH 0\n").is_err());
    }

    #[test]
    fn ignores_coordinate_lines() {
        let c = Circuit::parse("QUBIT_COORDS(0, 1) 0\nH 0\nSHIFT_COORDS(0, 2)\n").unwrap();
        assert_eq!(c.stats().gates, 1);
    }

    #[test]
    fn display_parse_roundtrip() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).s(2);
        c.noise(NoiseChannel::Depolarize1(0.125), &[0, 1]);
        c.measure_many(&[0, 1]);
        c.detector(&[-1, -2]);
        c.observable_include(0, &[-1]);
        c.feedback(PauliKind::X, -1, 2);
        c.measure_reset(2);
        c.reset(0);
        c.tick();
        let text = c.to_string();
        let parsed = Circuit::parse(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn mz_and_aliases() {
        let c = Circuit::parse("MZ 0\nRZ 0\nMRZ 0\nCNOT 0 1\nSQRT_Z 0\n").unwrap();
        assert_eq!(c.stats().measurements, 2);
        assert_eq!(c.stats().resets, 2);
        assert_eq!(c.stats().gates, 2);
    }
}
