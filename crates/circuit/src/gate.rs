//! Clifford gates and their reference conjugation semantics.
//!
//! Every optimized tableau/frame update rule in the simulator crates is
//! cross-checked against [`Gate::conjugate`], which applies the gate to a
//! [`SmallPauli`] (a one- or two-qubit Pauli with an `i^e` phase) using the
//! gate's action on the generators `X` and `Z`.

use std::fmt;

/// A single-qubit Pauli kind (used by noise channels and feedback).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauliKind {
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl PauliKind {
    /// The (x, z) bit pair of this Pauli in the tableau encoding.
    pub fn xz(self) -> (bool, bool) {
        match self {
            PauliKind::X => (true, false),
            PauliKind::Y => (true, true),
            PauliKind::Z => (false, true),
        }
    }

    /// Parses a single Pauli letter (`X`, `Y`, `Z`).
    pub fn from_letter(c: char) -> Option<PauliKind> {
        match c {
            'X' => Some(PauliKind::X),
            'Y' => Some(PauliKind::Y),
            'Z' => Some(PauliKind::Z),
            _ => None,
        }
    }

    /// The self-inverse Clifford `G` with `G Z G† = P` (basis change for
    /// measuring/resetting in this basis through the Z-basis machinery):
    /// `H` for `X`, `H_YZ` for `Y`, and nothing for `Z` itself.
    pub fn z_conjugator(self) -> Option<Gate> {
        match self {
            PauliKind::X => Some(Gate::H),
            PauliKind::Y => Some(Gate::HYz),
            PauliKind::Z => None,
        }
    }
}

impl fmt::Display for PauliKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PauliKind::X => "X",
            PauliKind::Y => "Y",
            PauliKind::Z => "Z",
        })
    }
}

/// The unitary Clifford gates supported by all simulators in this
/// reproduction.
///
/// Conjugation conventions follow Stim's gate documentation (e.g.
/// `S: X → Y`, `SQRT_X: Z → -Y`, `CX: X_c → X_c X_t`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Identity (kept explicit because the Fig. 3 workloads emit it).
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate (√Z).
    S,
    /// Inverse phase gate.
    SDag,
    /// √X.
    SqrtX,
    /// Inverse √X.
    SqrtXDag,
    /// √Y.
    SqrtY,
    /// Inverse √Y.
    SqrtYDag,
    /// Axis cycle X→Y→Z→X (120° rotation about the XYZ diagonal).
    CXyz,
    /// Inverse axis cycle X→Z→Y→X.
    CZyx,
    /// Hadamard-like swap of X and Y (Z negates).
    HXy,
    /// Hadamard-like swap of Y and Z (X negates).
    HYz,
    /// Controlled-X (CNOT); targets come in (control, target) pairs.
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// Swap.
    Swap,
}

impl Gate {
    /// All gates, for exhaustive tests.
    pub const ALL: [Gate; 19] = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::SDag,
        Gate::SqrtX,
        Gate::SqrtXDag,
        Gate::SqrtY,
        Gate::SqrtYDag,
        Gate::CXyz,
        Gate::CZyx,
        Gate::HXy,
        Gate::HYz,
        Gate::Cx,
        Gate::Cy,
        Gate::Cz,
        Gate::Swap,
    ];

    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Swap => 2,
            _ => 1,
        }
    }

    /// Canonical instruction-file name.
    pub fn name(self) -> &'static str {
        match self {
            Gate::I => "I",
            Gate::X => "X",
            Gate::Y => "Y",
            Gate::Z => "Z",
            Gate::H => "H",
            Gate::S => "S",
            Gate::SDag => "S_DAG",
            Gate::SqrtX => "SQRT_X",
            Gate::SqrtXDag => "SQRT_X_DAG",
            Gate::SqrtY => "SQRT_Y",
            Gate::SqrtYDag => "SQRT_Y_DAG",
            Gate::CXyz => "C_XYZ",
            Gate::CZyx => "C_ZYX",
            Gate::HXy => "H_XY",
            Gate::HYz => "H_YZ",
            Gate::Cx => "CX",
            Gate::Cy => "CY",
            Gate::Cz => "CZ",
            Gate::Swap => "SWAP",
        }
    }

    /// Parses a gate name (accepting common aliases such as `CNOT`).
    pub fn from_name(name: &str) -> Option<Gate> {
        Some(match name {
            "I" => Gate::I,
            "X" => Gate::X,
            "Y" => Gate::Y,
            "Z" => Gate::Z,
            "H" => Gate::H,
            "S" | "SQRT_Z" => Gate::S,
            "S_DAG" | "SQRT_Z_DAG" => Gate::SDag,
            "SQRT_X" => Gate::SqrtX,
            "SQRT_X_DAG" => Gate::SqrtXDag,
            "SQRT_Y" => Gate::SqrtY,
            "SQRT_Y_DAG" => Gate::SqrtYDag,
            "C_XYZ" => Gate::CXyz,
            "C_ZYX" => Gate::CZyx,
            "H_XY" => Gate::HXy,
            "H_YZ" => Gate::HYz,
            "CX" | "CNOT" | "ZCX" => Gate::Cx,
            "CY" | "ZCY" => Gate::Cy,
            "CZ" | "ZCZ" => Gate::Cz,
            "SWAP" => Gate::Swap,
            _ => return None,
        })
    }

    /// The inverse gate.
    pub fn inverse(self) -> Gate {
        match self {
            Gate::S => Gate::SDag,
            Gate::SDag => Gate::S,
            Gate::SqrtX => Gate::SqrtXDag,
            Gate::SqrtXDag => Gate::SqrtX,
            Gate::SqrtY => Gate::SqrtYDag,
            Gate::SqrtYDag => Gate::SqrtY,
            Gate::CXyz => Gate::CZyx,
            Gate::CZyx => Gate::CXyz,
            g => g, // self-inverse otherwise
        }
    }

    /// Image of `X` (single-qubit gates) or of `X ⊗ I` (two-qubit gates)
    /// under conjugation by this gate.
    fn image_of_x0(self) -> SmallPauli {
        match self {
            Gate::I => SmallPauli::x0(),
            Gate::X => SmallPauli::x0(),
            Gate::Y => SmallPauli::x0().negated(),
            Gate::Z => SmallPauli::x0().negated(),
            Gate::H => SmallPauli::z0(),
            Gate::S => SmallPauli::y0(),
            Gate::SDag => SmallPauli::y0().negated(),
            Gate::SqrtX => SmallPauli::x0(),
            Gate::SqrtXDag => SmallPauli::x0(),
            Gate::SqrtY => SmallPauli::z0().negated(),
            Gate::SqrtYDag => SmallPauli::z0(),
            Gate::CXyz => SmallPauli::y0(),
            Gate::CZyx => SmallPauli::z0(),
            Gate::HXy => SmallPauli::y0(),
            Gate::HYz => SmallPauli::x0().negated(),
            Gate::Cx => SmallPauli::two(true, false, true, false), // X⊗X
            Gate::Cy => SmallPauli::two(true, false, true, true).phased(1), // X⊗Y
            Gate::Cz => SmallPauli::two(true, false, false, true), // X⊗Z
            Gate::Swap => SmallPauli::two(false, false, true, false), // I⊗X
        }
    }

    /// Image of `Z` (single-qubit) or `Z ⊗ I` (two-qubit).
    fn image_of_z0(self) -> SmallPauli {
        match self {
            Gate::I => SmallPauli::z0(),
            Gate::X => SmallPauli::z0().negated(),
            Gate::Y => SmallPauli::z0().negated(),
            Gate::Z => SmallPauli::z0(),
            Gate::H => SmallPauli::x0(),
            Gate::S => SmallPauli::z0(),
            Gate::SDag => SmallPauli::z0(),
            Gate::SqrtX => SmallPauli::y0().negated(),
            Gate::SqrtXDag => SmallPauli::y0(),
            Gate::SqrtY => SmallPauli::x0(),
            Gate::SqrtYDag => SmallPauli::x0().negated(),
            Gate::CXyz => SmallPauli::x0(),
            Gate::CZyx => SmallPauli::y0(),
            Gate::HXy => SmallPauli::z0().negated(),
            Gate::HYz => SmallPauli::y0(),
            Gate::Cx => SmallPauli::two(false, true, false, false), // Z⊗I
            Gate::Cy => SmallPauli::two(false, true, false, false),
            Gate::Cz => SmallPauli::two(false, true, false, false),
            Gate::Swap => SmallPauli::two(false, false, false, true), // I⊗Z
        }
    }

    /// Image of `I ⊗ X` (two-qubit gates only).
    fn image_of_x1(self) -> SmallPauli {
        match self {
            Gate::Cx => SmallPauli::two(false, false, true, false), // I⊗X
            Gate::Cy => SmallPauli::two(false, true, true, false),  // Z⊗X
            Gate::Cz => SmallPauli::two(false, true, true, false),  // Z⊗X
            Gate::Swap => SmallPauli::two(true, false, false, false), // X⊗I
            _ => unreachable!("single-qubit gate has no second qubit"),
        }
    }

    /// Image of `I ⊗ Z` (two-qubit gates only).
    fn image_of_z1(self) -> SmallPauli {
        match self {
            Gate::Cx => SmallPauli::two(false, true, false, true), // Z⊗Z
            Gate::Cy => SmallPauli::two(false, true, false, true), // Z⊗Z
            Gate::Cz => SmallPauli::two(false, false, false, true), // I⊗Z
            Gate::Swap => SmallPauli::two(false, true, false, false), // Z⊗I
            _ => unreachable!("single-qubit gate has no second qubit"),
        }
    }

    /// Conjugates a one- or two-qubit Pauli by this gate: `U P U†`.
    ///
    /// This is the *reference* semantics; simulators implement equivalent
    /// word-parallel updates and are tested against it.
    ///
    /// # Panics
    ///
    /// Panics if `p` spans two qubits but the gate is single-qubit (apply
    /// single-qubit gates per qubit instead).
    pub fn conjugate(self, p: SmallPauli) -> SmallPauli {
        let mut out = SmallPauli::identity().phased(p.phase);
        // P = i^e · X0^x0 Z0^z0 X1^x1 Z1^z1 (in this canonical order); the
        // conjugate is the product of generator images in the same order.
        if self.arity() == 1 {
            assert!(
                !p.x1 && !p.z1,
                "cannot conjugate a two-qubit Pauli by a single-qubit gate"
            );
            if p.x0 {
                out = out.mul(self.image_of_x0());
            }
            if p.z0 {
                out = out.mul(self.image_of_z0());
            }
        } else {
            if p.x0 {
                out = out.mul(self.image_of_x0());
            }
            if p.z0 {
                out = out.mul(self.image_of_z0());
            }
            if p.x1 {
                out = out.mul(self.image_of_x1());
            }
            if p.z1 {
                out = out.mul(self.image_of_z1());
            }
        }
        out
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A Pauli on at most two qubits with an `i^phase` prefactor, in the
/// canonical form `i^phase · X0^x0 Z0^z0 · X1^x1 Z1^z1`.
///
/// Only used as reference semantics (conjugation tables and tests); the
/// simulators use packed representations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SmallPauli {
    /// X component on qubit 0.
    pub x0: bool,
    /// Z component on qubit 0.
    pub z0: bool,
    /// X component on qubit 1.
    pub x1: bool,
    /// Z component on qubit 1.
    pub z1: bool,
    /// Power of `i` in the prefactor, mod 4.
    pub phase: u8,
}

impl SmallPauli {
    /// The identity Pauli.
    pub fn identity() -> Self {
        Self {
            x0: false,
            z0: false,
            x1: false,
            z1: false,
            phase: 0,
        }
    }

    /// `X` on qubit 0.
    pub fn x0() -> Self {
        Self {
            x0: true,
            ..Self::identity()
        }
    }

    /// `Z` on qubit 0.
    pub fn z0() -> Self {
        Self {
            z0: true,
            ..Self::identity()
        }
    }

    /// `Y = i·XZ` on qubit 0.
    pub fn y0() -> Self {
        Self {
            x0: true,
            z0: true,
            phase: 1,
            ..Self::identity()
        }
    }

    /// A phase-free two-qubit Pauli from its x/z bits.
    pub fn two(x0: bool, z0: bool, x1: bool, z1: bool) -> Self {
        Self {
            x0,
            z0,
            x1,
            z1,
            phase: 0,
        }
    }

    /// Builds the single-qubit Pauli of `kind` on qubit 0 (with the real
    /// `+1` prefactor, so `Y` has `phase = 1` in `i^e·XZ` form).
    pub fn from_kind(kind: PauliKind) -> Self {
        match kind {
            PauliKind::X => Self::x0(),
            PauliKind::Y => Self::y0(),
            PauliKind::Z => Self::z0(),
        }
    }

    /// Multiplies the prefactor by `i^quarter_turns`.
    pub fn phased(mut self, quarter_turns: u8) -> Self {
        self.phase = (self.phase + quarter_turns) % 4;
        self
    }

    /// Multiplies the prefactor by `-1`.
    pub fn negated(self) -> Self {
        self.phased(2)
    }

    /// Canonical product `self · other` with full `i^e` bookkeeping.
    ///
    /// Reordering `Z^z X^x'` to `X^x' Z^z` on the same qubit contributes
    /// `(-1)^(z·x')`.
    // Named after the mathematical operation; the type deliberately does
    // not implement `std::ops::Mul` (reference semantics stay explicit).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: SmallPauli) -> SmallPauli {
        let mut phase = (self.phase + other.phase) % 4;
        // Qubit 0: move other's X0 left past self's Z0.
        if self.z0 && other.x0 {
            phase = (phase + 2) % 4;
        }
        // Qubit 1: move other's X1 left past self's Z1.
        if self.z1 && other.x1 {
            phase = (phase + 2) % 4;
        }
        SmallPauli {
            x0: self.x0 ^ other.x0,
            z0: self.z0 ^ other.z0,
            x1: self.x1 ^ other.x1,
            z1: self.z1 ^ other.z1,
            phase,
        }
    }

    /// `true` if the prefactor is `±1` (a physical Pauli in `i^e·XZ` form
    /// has `phase + x·z` even on each qubit; this only checks the prefactor).
    pub fn is_real_prefactor(self) -> bool {
        self.phase.is_multiple_of(2)
    }

    /// The sign of the *physical* Pauli: converts from `i^e · X^x Z^z` form
    /// to `± {I,X,Y,Z}` form (each qubit with both x and z set contributes
    /// one factor `i` because `Y = i·XZ`). Returns `true` for negative.
    ///
    /// # Panics
    ///
    /// Panics if the Pauli is not real (phase `i` or `-i`), which cannot
    /// happen for conjugates of real Paulis.
    pub fn sign_is_negative(self) -> bool {
        let ys = u8::from(self.x0 && self.z0) + u8::from(self.x1 && self.z1);
        // i^phase · XZ-pairs = i^phase · (−i)^ys · Y-pairs
        let e = (self.phase + 4 - ys % 4) % 4;
        assert!(e.is_multiple_of(2), "non-real Pauli has no sign: {self:?}");
        e == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_products_match_algebra() {
        let x = SmallPauli::x0();
        let z = SmallPauli::z0();
        let y = SmallPauli::y0();
        // XZ = -iY  →  i^3 · XZ-form of Y is X·Z with phase 3+1=… check via mul:
        let xz = x.mul(z);
        assert_eq!(
            xz,
            SmallPauli {
                x0: true,
                z0: true,
                x1: false,
                z1: false,
                phase: 0
            }
        );
        // ZX = -XZ
        let zx = z.mul(x);
        assert_eq!(zx.phase, 2);
        // Y·Y = I
        assert_eq!(y.mul(y), SmallPauli::identity());
        // X·Y = iZ
        let xy = x.mul(y);
        assert_eq!((xy.x0, xy.z0, xy.phase), (false, true, 1));
    }

    #[test]
    fn signs_of_physical_paulis() {
        assert!(!SmallPauli::y0().sign_is_negative());
        assert!(SmallPauli::y0().negated().sign_is_negative());
        assert!(!SmallPauli::x0().sign_is_negative());
        assert!(SmallPauli::z0().negated().sign_is_negative());
    }

    #[test]
    fn hadamard_conjugation() {
        let h = Gate::H;
        assert_eq!(h.conjugate(SmallPauli::x0()), SmallPauli::z0());
        assert_eq!(h.conjugate(SmallPauli::z0()), SmallPauli::x0());
        // HYH = -Y
        assert_eq!(h.conjugate(SmallPauli::y0()), SmallPauli::y0().negated());
    }

    #[test]
    fn s_gate_conjugation() {
        assert_eq!(Gate::S.conjugate(SmallPauli::x0()), SmallPauli::y0());
        assert_eq!(Gate::S.conjugate(SmallPauli::z0()), SmallPauli::z0());
        // S Y S† = -X
        assert_eq!(
            Gate::S.conjugate(SmallPauli::y0()),
            SmallPauli::x0().negated()
        );
        assert_eq!(Gate::SDag.conjugate(SmallPauli::y0()), SmallPauli::x0());
    }

    #[test]
    fn sqrt_x_conjugation() {
        assert_eq!(
            Gate::SqrtX.conjugate(SmallPauli::z0()),
            SmallPauli::y0().negated()
        );
        assert_eq!(Gate::SqrtX.conjugate(SmallPauli::y0()), SmallPauli::z0());
        assert_eq!(Gate::SqrtXDag.conjugate(SmallPauli::z0()), SmallPauli::y0());
    }

    #[test]
    fn cx_conjugation() {
        let xc = SmallPauli::two(true, false, false, false);
        let zt = SmallPauli::two(false, false, false, true);
        assert_eq!(
            Gate::Cx.conjugate(xc),
            SmallPauli::two(true, false, true, false)
        );
        assert_eq!(
            Gate::Cx.conjugate(zt),
            SmallPauli::two(false, true, false, true)
        );
        // Z_c and X_t are invariant.
        let zc = SmallPauli::two(false, true, false, false);
        let xt = SmallPauli::two(false, false, true, false);
        assert_eq!(Gate::Cx.conjugate(zc), zc);
        assert_eq!(Gate::Cx.conjugate(xt), xt);
    }

    #[test]
    fn conjugation_preserves_products() {
        // U(PQ)U† = (UPU†)(UQU†) for every gate and generator pair.
        let paulis1 = [SmallPauli::x0(), SmallPauli::z0(), SmallPauli::y0()];
        for g in Gate::ALL {
            if g.arity() != 1 {
                continue;
            }
            for p in paulis1 {
                for q in paulis1 {
                    assert_eq!(
                        g.conjugate(p.mul(q)),
                        g.conjugate(p).mul(g.conjugate(q)),
                        "homomorphism failed for {g} on {p:?}·{q:?}"
                    );
                }
            }
        }
        let mut paulis2 = Vec::new();
        for bits in 0..16u8 {
            paulis2.push(SmallPauli::two(
                bits & 1 != 0,
                bits & 2 != 0,
                bits & 4 != 0,
                bits & 8 != 0,
            ));
        }
        for g in [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap] {
            for &p in &paulis2 {
                for &q in &paulis2 {
                    assert_eq!(
                        g.conjugate(p.mul(q)),
                        g.conjugate(p).mul(g.conjugate(q)),
                        "homomorphism failed for {g}"
                    );
                }
            }
        }
    }

    #[test]
    fn conjugation_by_inverse_roundtrips() {
        let paulis1 = [SmallPauli::x0(), SmallPauli::z0(), SmallPauli::y0()];
        for g in Gate::ALL {
            if g.arity() != 1 {
                continue;
            }
            for p in paulis1 {
                assert_eq!(
                    g.inverse().conjugate(g.conjugate(p)),
                    p,
                    "inverse roundtrip failed for {g}"
                );
            }
        }
    }

    #[test]
    fn conjugation_involutions() {
        // Self-inverse gates applied twice give back the input.
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
        ] {
            let probe = if g.arity() == 1 {
                vec![SmallPauli::x0(), SmallPauli::z0(), SmallPauli::y0()]
            } else {
                (0..16u8)
                    .map(|b| SmallPauli::two(b & 1 != 0, b & 2 != 0, b & 4 != 0, b & 8 != 0))
                    .collect()
            };
            for p in probe {
                assert_eq!(g.conjugate(g.conjugate(p)), p, "{g} not involutive");
            }
        }
    }

    #[test]
    fn axis_cycle_conjugation() {
        // C_XYZ: X→Y→Z→X; C_ZYX is its inverse.
        assert_eq!(Gate::CXyz.conjugate(SmallPauli::x0()), SmallPauli::y0());
        assert_eq!(Gate::CXyz.conjugate(SmallPauli::y0()), SmallPauli::z0());
        assert_eq!(Gate::CXyz.conjugate(SmallPauli::z0()), SmallPauli::x0());
        for p in [SmallPauli::x0(), SmallPauli::y0(), SmallPauli::z0()] {
            assert_eq!(Gate::CZyx.conjugate(Gate::CXyz.conjugate(p)), p);
            // Period three.
            let thrice = Gate::CXyz.conjugate(Gate::CXyz.conjugate(Gate::CXyz.conjugate(p)));
            assert_eq!(thrice, p);
        }
    }

    #[test]
    fn axis_swap_conjugation() {
        assert_eq!(Gate::HXy.conjugate(SmallPauli::x0()), SmallPauli::y0());
        assert_eq!(Gate::HXy.conjugate(SmallPauli::y0()), SmallPauli::x0());
        assert_eq!(
            Gate::HXy.conjugate(SmallPauli::z0()),
            SmallPauli::z0().negated()
        );
        assert_eq!(Gate::HYz.conjugate(SmallPauli::y0()), SmallPauli::z0());
        assert_eq!(Gate::HYz.conjugate(SmallPauli::z0()), SmallPauli::y0());
        assert_eq!(
            Gate::HYz.conjugate(SmallPauli::x0()),
            SmallPauli::x0().negated()
        );
    }

    #[test]
    fn names_roundtrip() {
        for g in Gate::ALL {
            assert_eq!(Gate::from_name(g.name()), Some(g), "{g}");
        }
        assert_eq!(Gate::from_name("CNOT"), Some(Gate::Cx));
        assert_eq!(Gate::from_name("NOPE"), None);
    }

    #[test]
    fn swap_conjugation_swaps() {
        let x0 = SmallPauli::two(true, false, false, false);
        assert_eq!(
            Gate::Swap.conjugate(x0),
            SmallPauli::two(false, false, true, false)
        );
        let y1 = SmallPauli {
            x0: false,
            z0: false,
            x1: true,
            z1: true,
            phase: 1,
        };
        let y0 = SmallPauli {
            x0: true,
            z0: true,
            x1: false,
            z1: false,
            phase: 1,
        };
        assert_eq!(Gate::Swap.conjugate(y1), y0);
    }

    #[test]
    fn cy_conjugation() {
        // X_c → X_c ⊗ Y_t
        let xc = SmallPauli::two(true, false, false, false);
        let expect = SmallPauli {
            x0: true,
            z0: false,
            x1: true,
            z1: true,
            phase: 1,
        };
        assert_eq!(Gate::Cy.conjugate(xc), expect);
        // X_t → Z_c X_t
        let xt = SmallPauli::two(false, false, true, false);
        assert_eq!(
            Gate::Cy.conjugate(xt),
            SmallPauli::two(false, true, true, false)
        );
        // Y_t → Y_t
        let yt = SmallPauli {
            x0: false,
            z0: false,
            x1: true,
            z1: true,
            phase: 1,
        };
        assert_eq!(Gate::Cy.conjugate(yt), yt);
    }
}
