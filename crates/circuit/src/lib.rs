//! Stabilizer-circuit intermediate representation for the SymPhase
//! reproduction.
//!
//! A [`Circuit`] is a flat sequence of [`Instruction`]s over `num_qubits`
//! qubits: Clifford [`Gate`]s, computational-basis measurements and resets,
//! Pauli noise channels (the faults that phase symbolization accumulates),
//! classically-controlled Paulis (dynamic circuits, paper §6), and
//! detector/observable annotations for QEC workloads.
//!
//! The crate also provides:
//!
//! * a Stim-compatible text format ([`Circuit::parse`], `Display`),
//!   including `REPEAT` blocks (flattened during parsing);
//! * reference Clifford conjugation semantics ([`SmallPauli`],
//!   [`Gate::conjugate`]) used to cross-check every optimized simulator
//!   update rule;
//! * the benchmark workload generators of the paper's evaluation
//!   ([`generators`]): layered random interaction circuits (Fig. 3a–3c),
//!   repetition-code and rotated-surface-code memory circuits, and small
//!   named circuits (Bell, GHZ, teleportation).
//!
//! # Example
//!
//! ```
//! use symphase_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure(0);
//! c.measure(1);
//! assert_eq!(c.stats().measurements, 2);
//!
//! let parsed = Circuit::parse("H 0\nCX 0 1\nM 0 1\n")?;
//! assert_eq!(parsed.num_qubits(), 2);
//! # Ok::<(), symphase_circuit::ParseCircuitError>(())
//! ```

pub mod action;
mod circuit;
pub mod gate;
pub mod generators;
mod instruction;
pub mod noise_model;
mod parser;

pub use action::{apply_action1, apply_action2, XZAction1, XZAction2};
pub use circuit::{Circuit, CircuitStats};
pub use gate::{Gate, PauliKind, SmallPauli};
pub use instruction::{Instruction, NoiseChannel};
pub use parser::ParseCircuitError;
