//! Stabilizer-circuit intermediate representation for the SymPhase
//! reproduction.
//!
//! A [`Circuit`] is a **structured** sequence of [`Instruction`]s over
//! `num_qubits` qubits: Clifford [`Gate`]s, computational-basis
//! measurements and resets, Pauli noise channels (the faults that phase
//! symbolization accumulates), classically-controlled Paulis (dynamic
//! circuits, paper §6), detector/observable annotations for QEC
//! workloads, and first-class `REPEAT` nodes
//! ([`Instruction::Repeat`]) whose bodies are [`Block`]s.
//!
//! # The block model
//!
//! `REPEAT count { … }` is **never flattened**. Parsing a repeat block
//! costs O(body) — the body is parsed exactly once however large the trip
//! count — and statistics ([`Circuit::stats`], `num_measurements`,
//! detector/observable counts) are computed from structure as
//! `count × body`. Engines traverse the flattened execution order through
//! the streaming [`Circuit::flat_instructions`] iterator, which expands
//! blocks lazily in O(nesting depth) memory, so the million-round memory
//! experiments the paper targets parse and initialize without any
//! expansion cap (the previous parser materialized every iteration and
//! refused circuits past 50M flattened instructions).
//!
//! Record lookbacks inside a block resolve **dynamically per iteration**:
//! `rec[-k]` may reach into the previous iteration's measurements (QEC
//! rounds compare each stabilizer outcome against the previous round this
//! way). A [`Block`] therefore tracks the deepest reach past its own
//! measurements as [`Block::required_record`], validated once against the
//! record preceding the block — the first iteration sees the shortest
//! record, so entry-time validation covers all iterations.
//!
//! The crate also provides:
//!
//! * a Stim-compatible text format ([`Circuit::parse`], `Display`) that
//!   round-trips `REPEAT` structure (re-emitted as indented
//!   `REPEAT n { … }` groups);
//! * reference Clifford conjugation semantics ([`SmallPauli`],
//!   [`Gate::conjugate`]) used to cross-check every optimized simulator
//!   update rule;
//! * the benchmark workload generators of the paper's evaluation
//!   ([`generators`]): layered random interaction circuits (Fig. 3a–3c),
//!   repetition-code and rotated-surface-code memory circuits (emitting
//!   structured rounds), and small named circuits (Bell, GHZ,
//!   teleportation).
//!
//! # Example
//!
//! ```
//! use symphase_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure(0);
//! c.measure(1);
//! assert_eq!(c.stats().measurements, 2);
//!
//! let parsed = Circuit::parse("H 0\nCX 0 1\nM 0 1\n")?;
//! assert_eq!(parsed.num_qubits(), 2);
//! # Ok::<(), symphase_circuit::ParseCircuitError>(())
//! ```

pub mod action;
mod circuit;
pub mod clifford1;
pub mod gate;
pub mod generators;
mod instruction;
pub mod noise_model;
mod parser;
mod traverse;

pub use action::{apply_action1, apply_action2, XZAction1, XZAction2};
pub use circuit::{Block, Circuit, CircuitStats};
pub use clifford1::Clifford1;
pub use gate::{Gate, PauliKind, SmallPauli};
pub use instruction::{
    pauli_channel_2_bits, pauli_channel_2_select, pauli_product_plan, Instruction, NoiseChannel,
    PauliFactor, PlanOp,
};
pub use parser::{ParseCircuitError, SourceMap};
pub use traverse::FlatInstructions;
