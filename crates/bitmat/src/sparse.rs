//! Sparse bit-vectors: sorted index lists with merge-XOR.
//!
//! Symbolic phases of QEC-style circuits touch only a handful of symbols per
//! stabilizer generator (the paper's "sparse circuits" case in Table 1), so
//! the phase columns and the measurement matrix `M` are stored as sorted
//! lists of set-bit indices. XOR of two rows is a sorted merge that drops
//! indices appearing twice.

use std::fmt;

#[cfg(test)]
use crate::WORD_BITS;
use crate::{BitVec, Word};

/// A sparse bit-vector: the sorted, deduplicated indices of its set bits.
///
/// # Example
///
/// ```
/// use symphase_bitmat::SparseBitVec;
///
/// let mut a = SparseBitVec::from_indices([1, 5, 9]);
/// let b = SparseBitVec::from_indices([5, 7]);
/// a.xor_assign(&b);
/// assert_eq!(a.indices(), &[1, 7, 9]); // 5 ⊕ 5 cancels
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseBitVec {
    indices: Vec<u32>,
}

impl SparseBitVec {
    /// Creates an empty (all-zero) sparse bit-vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sparse bit-vector from set-bit indices.
    ///
    /// The input may be unsorted and may contain duplicates; duplicated
    /// indices cancel in pairs (XOR semantics).
    pub fn from_indices<I: IntoIterator<Item = u32>>(indices: I) -> Self {
        let mut v: Vec<u32> = indices.into_iter().collect();
        v.sort_unstable();
        // Cancel pairs: keep an index iff it appears an odd number of times.
        let mut out = Vec::with_capacity(v.len());
        let mut i = 0;
        while i < v.len() {
            let mut j = i + 1;
            while j < v.len() && v[j] == v[i] {
                j += 1;
            }
            if (j - i) % 2 == 1 {
                out.push(v[i]);
            }
            i = j;
        }
        Self { indices: out }
    }

    /// Creates a singleton vector with only `index` set.
    pub fn singleton(index: u32) -> Self {
        Self {
            indices: vec![index],
        }
    }

    /// Builds from a dense [`BitVec`].
    pub fn from_bitvec(v: &BitVec) -> Self {
        Self {
            indices: v.iter_ones().map(|i| i as u32).collect(),
        }
    }

    /// Expands to a dense [`BitVec`] of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if any set index is `>= len`.
    pub fn to_bitvec(&self, len: usize) -> BitVec {
        let mut out = BitVec::zeros(len);
        for &i in &self.indices {
            out.set(i as usize, true);
        }
        out
    }

    /// The sorted set-bit indices.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.indices.len()
    }

    /// `true` if no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.indices.is_empty()
    }

    /// Tests bit `index`.
    pub fn get(&self, index: u32) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// Flips bit `index`.
    pub fn flip(&mut self, index: u32) {
        match self.indices.binary_search(&index) {
            Ok(pos) => {
                self.indices.remove(pos);
            }
            Err(pos) => self.indices.insert(pos, index),
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.indices.clear();
    }

    /// XORs `other` into `self` by sorted merge.
    pub fn xor_assign(&mut self, other: &Self) {
        if other.indices.is_empty() {
            return;
        }
        if self.indices.is_empty() {
            self.indices.clone_from(&other.indices);
            return;
        }
        let mut out = Vec::with_capacity(self.indices.len() + other.indices.len());
        let (a, b) = (&self.indices, &other.indices);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.indices = out;
    }

    /// XOR-accumulates, for every set bit `k`, the packed row `rows(k)` into
    /// `acc` — the sparse-row half of the paper's sparse matrix
    /// multiplication (§3.2.3): `acc ^= Σ_k B[k]`.
    ///
    /// `rows(k)` must yield slices at least as long as `acc`.
    pub fn xor_gather_rows<'a>(&self, mut rows: impl FnMut(u32) -> &'a [Word], acc: &mut [Word]) {
        for &k in &self.indices {
            let src = rows(k);
            for (d, s) in acc.iter_mut().zip(src) {
                *d ^= *s;
            }
        }
    }

    /// Parity of the bits of `assignment` selected by this vector — i.e. the
    /// value of the XOR expression under a concrete assignment.
    ///
    /// # Panics
    ///
    /// Panics if any set index is out of range of `assignment`.
    pub fn eval(&self, assignment: &BitVec) -> bool {
        self.indices
            .iter()
            .fold(false, |acc, &i| acc ^ assignment.get(i as usize))
    }

    /// Largest set index, if any.
    pub fn max_index(&self) -> Option<u32> {
        self.indices.last().copied()
    }
}

impl fmt::Debug for SparseBitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseBitVec{:?}", self.indices)
    }
}

impl FromIterator<u32> for SparseBitVec {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_indices(iter)
    }
}

/// A matrix whose rows are [`SparseBitVec`]s — the measurement matrix of
/// Algorithm 1 in its sparse form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseRowMatrix {
    rows: Vec<SparseBitVec>,
    cols: usize,
}

impl SparseRowMatrix {
    /// Creates an empty matrix with a fixed column count.
    pub fn new(cols: usize) -> Self {
        Self {
            rows: Vec::new(),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grows the column count (columns are only ever appended).
    pub fn grow_cols(&mut self, cols: usize) {
        assert!(cols >= self.cols, "column count cannot shrink");
        self.cols = cols;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row references a column `>= cols()`.
    pub fn push_row(&mut self, row: SparseBitVec) {
        if let Some(max) = row.max_index() {
            assert!(
                (max as usize) < self.cols,
                "row index {max} exceeds {} cols",
                self.cols
            );
        }
        self.rows.push(row);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &SparseBitVec {
        &self.rows[r]
    }

    /// Iterates over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, SparseBitVec> {
        self.rows.iter()
    }

    /// Total set bits across rows.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(SparseBitVec::count_ones).sum()
    }

    /// Converts to a dense [`crate::BitMatrix`].
    pub fn to_dense(&self) -> crate::BitMatrix {
        let mut m = crate::BitMatrix::zeros(self.rows.len(), self.cols);
        for (r, row) in self.rows.iter().enumerate() {
            for &c in row.indices() {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// Sparse × dense product against a row-major packed `B` matrix whose
    /// row `k` is `b.row(k)`: output row `r` = XOR of `B` rows selected by
    /// sparse row `r`. This is the paper's sparse sampling multiplication
    /// with 64 shots processed per word.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != self.cols()`.
    pub fn mul_dense(&self, b: &crate::BitMatrix) -> crate::BitMatrix {
        let mut out = crate::BitMatrix::zeros(self.rows.len(), b.cols());
        self.mul_dense_into(b, &mut out, 0);
        out
    }

    /// Like [`SparseRowMatrix::mul_dense`], but XORs the product into a
    /// word-aligned column window of an existing output matrix (used for
    /// shot-batched sampling without intermediate allocations).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if the window does not fit.
    pub fn mul_dense_into(
        &self,
        b: &crate::BitMatrix,
        out: &mut crate::BitMatrix,
        col_word_offset: usize,
    ) {
        assert_eq!(b.rows(), self.cols, "dimension mismatch in mul_dense_into");
        assert_eq!(out.rows(), self.rows.len(), "output row count mismatch");
        let bstride = b.stride();
        let ostride = out.stride();
        assert!(col_word_offset + bstride <= ostride, "window out of range");
        for (r, row) in self.rows.iter().enumerate() {
            let start = r * ostride + col_word_offset;
            let dst = &mut out.words_mut()[start..start + bstride];
            row.xor_gather_rows(|k| b.row(k as usize), dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_indices_sorts_and_cancels() {
        let v = SparseBitVec::from_indices([9, 1, 5, 9, 9]);
        assert_eq!(v.indices(), &[1, 5, 9]);
        let v = SparseBitVec::from_indices([2, 2]);
        assert!(v.is_zero());
    }

    #[test]
    fn xor_assign_merges() {
        let mut a = SparseBitVec::from_indices([0, 3, 7]);
        a.xor_assign(&SparseBitVec::from_indices([3, 4]));
        assert_eq!(a.indices(), &[0, 4, 7]);
        a.xor_assign(&SparseBitVec::new());
        assert_eq!(a.indices(), &[0, 4, 7]);
        let mut e = SparseBitVec::new();
        e.xor_assign(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn xor_is_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = BitVec::random(200, &mut rng);
        let b = BitVec::random(200, &mut rng);
        let sa = SparseBitVec::from_bitvec(&a);
        let sb = SparseBitVec::from_bitvec(&b);
        let mut x = sa.clone();
        x.xor_assign(&sb);
        x.xor_assign(&sb);
        assert_eq!(x, sa);
    }

    #[test]
    fn dense_roundtrip_matches_dense_xor() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = BitVec::random(150, &mut rng);
        let b = BitVec::random(150, &mut rng);
        let mut sa = SparseBitVec::from_bitvec(&a);
        let sb = SparseBitVec::from_bitvec(&b);
        sa.xor_assign(&sb);
        a.xor_assign(&b);
        assert_eq!(sa.to_bitvec(150), a);
    }

    #[test]
    fn flip_get() {
        let mut v = SparseBitVec::new();
        v.flip(10);
        assert!(v.get(10));
        v.flip(5);
        assert_eq!(v.indices(), &[5, 10]);
        v.flip(10);
        assert_eq!(v.indices(), &[5]);
    }

    #[test]
    fn eval_computes_expression_value() {
        let v = SparseBitVec::from_indices([0, 2]);
        let assign = BitVec::from_bools([true, true, false]);
        assert!(v.eval(&assign)); // 1 ⊕ 0
        let assign = BitVec::from_bools([true, true, true]);
        assert!(!v.eval(&assign)); // 1 ⊕ 1
    }

    #[test]
    fn sparse_mul_matches_dense_mul() {
        let mut rng = StdRng::seed_from_u64(12);
        let dense_m = BitMatrix::random(23, 45, &mut rng);
        let mut sparse_m = SparseRowMatrix::new(45);
        for r in 0..23 {
            sparse_m.push_row(SparseBitVec::from_bitvec(&dense_m.row_bitvec(r)));
        }
        let b = BitMatrix::random(45, 130, &mut rng);
        assert_eq!(sparse_m.mul_dense(&b), dense_m.mul(&b));
        assert_eq!(sparse_m.to_dense(), dense_m);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn push_row_validates_cols() {
        let mut m = SparseRowMatrix::new(4);
        m.push_row(SparseBitVec::singleton(4));
    }

    #[test]
    fn word_bits_constant_is_64() {
        // The sparse×dense batching assumes 64 shots per word.
        assert_eq!(WORD_BITS, 64);
    }
}
