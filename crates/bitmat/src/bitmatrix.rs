//! Dense row-major bit-matrix over F₂.

use std::fmt;

use rand::Rng;

use crate::transpose::transpose_packed;
use crate::word::{split_index, tail_mask, words_for, Word, WORD_BITS};
use crate::BitVec;

/// A dense bit-matrix stored row-major, each row padded to whole words.
///
/// This is the container for measurement matrices `M`, symbol-assignment
/// batches `B`, and sample matrices `M · B` (paper Eq. (4)), as well as the
/// general-purpose F₂ linear algebra used in tests and verification.
///
/// # Example
///
/// ```
/// use symphase_bitmat::BitMatrix;
///
/// let eye = BitMatrix::identity(8);
/// let mut m = BitMatrix::zeros(8, 8);
/// m.set(2, 5, true);
/// let prod = m.mul(&eye);
/// assert_eq!(prod, m);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    stride: usize,
    data: Vec<Word>,
}

impl BitMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = words_for(cols);
        Self {
            rows,
            cols,
            stride,
            data: vec![0; rows * stride],
        }
    }

    /// Reshapes to a `rows × cols` zero matrix, reusing the backing
    /// allocation when capacity suffices. Returns `true` if the backing
    /// buffer had to grow (an allocation event).
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) -> bool {
        let stride = words_for(cols);
        let words = rows * stride;
        let grew = words > self.data.capacity();
        self.rows = rows;
        self.cols = cols;
        self.stride = stride;
        self.data.clear();
        self.data.resize(words, 0);
        grew
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Creates a matrix where entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Creates a uniformly random matrix.
    pub fn random(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for w in m.data.iter_mut() {
            *w = rng.random();
        }
        m.canonicalize();
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        let (w, b) = split_index(c);
        (self.data[r * self.stride + w] >> b) & 1 == 1
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        let (w, b) = split_index(c);
        let word = &mut self.data[r * self.stride + w];
        if v {
            *word |= 1 << b;
        } else {
            *word &= !(1 << b);
        }
    }

    /// Flips entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn flip(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        let (w, b) = split_index(c);
        self.data[r * self.stride + w] ^= 1 << b;
    }

    /// Packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[Word] {
        &self.data[r * self.stride..(r + 1) * self.stride]
    }

    /// Mutable packed words of row `r`. Slack bits must stay zero.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Word] {
        &mut self.data[r * self.stride..(r + 1) * self.stride]
    }

    /// Copies row `r` into a [`BitVec`].
    pub fn row_bitvec(&self, r: usize) -> BitVec {
        let mut v = BitVec::zeros(self.cols);
        v.words_mut().copy_from_slice(self.row(r));
        v
    }

    /// Copies column `c` into a [`BitVec`].
    pub fn col_bitvec(&self, c: usize) -> BitVec {
        BitVec::from_fn(self.rows, |r| self.get(r, c))
    }

    /// XORs row `src` into row `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range (or if they are equal, which
    /// would zero the row silently — callers never want that).
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows, "row index out of range");
        assert_ne!(src, dst, "xor of a row into itself zeroes it");
        let stride = self.stride;
        let (src_off, dst_off) = (src * stride, dst * stride);
        let kernels = crate::simd::kernels();
        if src_off < dst_off {
            let (lo, hi) = self.data.split_at_mut(dst_off);
            kernels.xor_into(&mut hi[..stride], &lo[src_off..src_off + stride]);
        } else {
            let (lo, hi) = self.data.split_at_mut(src_off);
            kernels.xor_into(&mut lo[dst_off..dst_off + stride], &hi[..stride]);
        }
    }

    /// Swaps two rows.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (lo, hi) = self.data.split_at_mut(b * self.stride);
        lo[a * self.stride..a * self.stride + self.stride].swap_with_slice(&mut hi[..self.stride]);
    }

    /// XORs an external packed row into row `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than the row stride.
    pub fn xor_words_into_row(&mut self, dst: usize, words: &[Word]) {
        let row = self.row_mut(dst);
        assert!(words.len() >= row.len(), "word slice too short");
        crate::simd::kernels().xor_into(row, words);
    }

    /// F₂ matrix product `self · other` by the method of rows: for every set
    /// bit `k` in a row of `self`, XOR row `k` of `other` into the output
    /// row. This is exactly the sampling step of the paper (Eq. (4)) when
    /// `self` is the measurement matrix and `other` the symbol batch.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = BitMatrix::zeros(self.rows, other.cols);
        let kernels = crate::simd::kernels();
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = &mut out.data[r * out.stride..(r + 1) * out.stride];
            for (w, &word) in src.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let k = w * WORD_BITS + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    kernels.xor_into(dst, other.row(k));
                }
            }
        }
        out
    }

    /// F₂ matrix product `self · other` with the blocked
    /// Four-Russians kernel ([`crate::m4r`]): bit-identical to
    /// [`BitMatrix::mul`], asymptotically ~8× fewer row XORs on dense
    /// operands, and adaptive per column group so sparse rows fall back to
    /// the plain gather. This is the kernel behind the sampler's
    /// `DenseMatMul` method.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul_blocked(&self, other: &BitMatrix) -> BitMatrix {
        crate::m4r::mul_blocked(self, other)
    }

    /// Blocked-kernel product XOR-accumulated into a word-aligned column
    /// window of `out`, reusing `scratch` across calls (see
    /// [`crate::m4r::mul_blocked_into`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if the window does not fit.
    pub fn mul_into(
        &self,
        other: &BitMatrix,
        out: &mut BitMatrix,
        col_word_offset: usize,
        scratch: &mut crate::m4r::M4rScratch,
    ) {
        crate::m4r::mul_blocked_into(self, other, out, col_word_offset, scratch);
    }

    /// Matrix–vector product `self · v` over F₂.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let kernels = crate::simd::kernels();
        BitVec::from_fn(self.rows, |r| {
            kernels.and_count(self.row(r), v.words()) % 2 == 1
        })
    }

    /// Returns the transpose, computed with 64×64 block kernels.
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        self.transpose_into_prepared(&mut out);
        out
    }

    /// Transposes into `out`, reshaping it to `cols × rows` and reusing
    /// its backing allocation when capacity suffices. Returns `true` if
    /// the backing buffer had to grow (an allocation event — the m4r
    /// scratch uses this to pin zero-allocation steady state).
    pub fn transpose_into(&self, out: &mut BitMatrix) -> bool {
        let words = self.cols * words_for(self.rows);
        let grew = words > out.data.capacity();
        out.rows = self.cols;
        out.cols = self.rows;
        out.stride = words_for(self.rows);
        out.data.clear();
        out.data.resize(words, 0);
        self.transpose_into_prepared(out);
        grew
    }

    fn transpose_into_prepared(&self, out: &mut BitMatrix) {
        transpose_packed(
            &self.data,
            self.rows,
            self.cols,
            self.stride,
            &mut out.data,
            out.stride,
        );
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw backing words, row-major.
    #[inline]
    pub fn words(&self) -> &[Word] {
        &self.data
    }

    /// Mutable raw backing words. Slack bits must stay zero.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [Word] {
        &mut self.data
    }

    /// Zeroes slack bits in every row's final word.
    pub fn canonicalize(&mut self) {
        if self.stride == 0 {
            return;
        }
        let mask = tail_mask(self.cols);
        for r in 0..self.rows {
            self.data[r * self.stride + self.stride - 1] &= mask;
        }
    }
}

impl Default for BitMatrix {
    /// The `0 × 0` matrix (used by scratch buffers that grow on first use).
    fn default() -> Self {
        BitMatrix::zeros(0, 0)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix[{}×{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(32) {
            for c in 0..self.cols.min(128) {
                write!(f, "{}", u8::from(self.get(r, c)))?;
            }
            writeln!(f)?;
        }
        if self.rows > 32 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_mul(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        BitMatrix::from_fn(a.rows(), b.cols(), |r, c| {
            (0..a.cols()).fold(false, |acc, k| acc ^ (a.get(r, k) & b.get(k, c)))
        })
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = BitMatrix::random(33, 33, &mut rng);
        assert_eq!(m.mul(&BitMatrix::identity(33)), m);
        assert_eq!(BitMatrix::identity(33).mul(&m), m);
    }

    #[test]
    fn mul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BitMatrix::random(17, 70, &mut rng);
        let b = BitMatrix::random(70, 91, &mut rng);
        assert_eq!(a.mul(&b), naive_mul(&a, &b));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = BitMatrix::random(40, 65, &mut rng);
        let v = BitVec::random(65, &mut rng);
        let mut vm = BitMatrix::zeros(65, 1);
        for i in v.iter_ones() {
            vm.set(i, 0, true);
        }
        let prod = a.mul(&vm);
        let pv = a.mul_vec(&v);
        for r in 0..40 {
            assert_eq!(prod.get(r, 0), pv.get(r));
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = BitMatrix::random(70, 130, &mut rng);
        let t = m.transpose();
        assert_eq!(t.rows(), 130);
        assert_eq!(t.cols(), 70);
        for r in 0..70 {
            for c in 0..130 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn xor_row_into_both_directions() {
        let mut m = BitMatrix::zeros(3, 70);
        m.set(0, 69, true);
        m.set(2, 1, true);
        m.xor_row_into(0, 2);
        assert!(m.get(2, 69) && m.get(2, 1));
        m.xor_row_into(2, 0);
        assert!(!m.get(0, 69) && m.get(0, 1));
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn xor_row_into_self_panics() {
        let mut m = BitMatrix::zeros(2, 2);
        m.xor_row_into(1, 1);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = BitMatrix::from_fn(4, 10, |r, c| r == c);
        m.swap_rows(0, 3);
        assert!(m.get(0, 3) && m.get(3, 0));
        assert!(!m.get(0, 0) && !m.get(3, 3));
        m.swap_rows(2, 2);
        assert!(m.get(2, 2));
    }

    #[test]
    fn row_bitvec_and_col_bitvec() {
        let m = BitMatrix::from_fn(5, 7, |r, c| (r + c) % 3 == 0);
        let row2 = m.row_bitvec(2);
        for c in 0..7 {
            assert_eq!(row2.get(c), m.get(2, c));
        }
        let col3 = m.col_bitvec(3);
        for r in 0..5 {
            assert_eq!(col3.get(r), m.get(r, 3));
        }
    }

    #[test]
    fn mul_associativity() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = BitMatrix::random(9, 20, &mut rng);
        let b = BitMatrix::random(20, 31, &mut rng);
        let c = BitMatrix::random(31, 8, &mut rng);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn zero_sized_matrices() {
        let m = BitMatrix::zeros(0, 0);
        assert_eq!(m.transpose().rows(), 0);
        let m = BitMatrix::zeros(3, 0);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (0, 3));
    }
}
