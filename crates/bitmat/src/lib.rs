//! Packed linear algebra over the two-element field F₂.
//!
//! This crate is the bit-manipulation substrate of the SymPhase reproduction.
//! It provides the containers and kernels that the stabilizer-tableau
//! simulators ([`symphase-tableau`], [`symphase-core`]) and the Pauli-frame
//! baseline ([`symphase-frame`]) are built on:
//!
//! * [`BitVec`] — a growable, 64-bit packed bit-vector.
//! * [`BitMatrix`] — a dense row-major bit-matrix with F₂ multiplication,
//!   word-blocked transposition and Gaussian elimination.
//! * [`SparseBitVec`] — a sorted sparse bit-vector with merge-XOR, used for
//!   sparse symbolic phases and the paper's sparse sampling multiplication.
//! * [`m4r`] — the blocked F₂ multiplication kernel (Method of Four
//!   Russians with cache-sized shot tiles) behind
//!   [`BitMatrix::mul_blocked`].
//! * [`bernoulli`] — block generation of biased random bits (noise symbol
//!   assignments; paper §3.1).
//! * [`layout`] — the three stabilizer-tableau memory layouts compared in
//!   Fig. 2 of the paper (`chp.c` row-major, Stim 8×8 blocks, SymPhase
//!   512×512 blocks with local transposition).
//! * [`simd`] — the runtime-dispatched AVX2/AVX-512 kernel layer every
//!   hot loop above routes through (scalar fallback always available,
//!   `SYMPHASE_SIMD` env override, bit-identical across levels).
//!
//! # Example
//!
//! ```
//! use symphase_bitmat::{BitMatrix, BitVec};
//!
//! // Multiplying a measurement matrix by a batch of symbol assignments
//! // (paper Eq. (4)) is a plain F₂ matrix product.
//! let mut m = BitMatrix::zeros(2, 3);
//! m.set(0, 0, true); // m₁ = s₀
//! m.set(1, 0, true);
//! m.set(1, 2, true); // m₂ = s₀ ⊕ s₂
//! let mut b = BitMatrix::zeros(3, 64);
//! b.row_mut(2).iter_mut().for_each(|w| *w = !0); // s₂ = 1 in every shot
//! let samples = m.mul(&b);
//! assert!(!samples.get(0, 17)); // m₁ never flips
//! assert!(samples.get(1, 17)); // m₂ flips in every shot
//! # let _ = BitVec::zeros(4);
//! ```
//!
//! [`symphase-tableau`]: https://github.com/symphase-repro/symphase
//! [`symphase-core`]: https://github.com/symphase-repro/symphase
//! [`symphase-frame`]: https://github.com/symphase-repro/symphase

// Every `unsafe fn` in this crate must open its own `unsafe {}` block
// with a `// SAFETY:` justification — an unsafe signature alone does not
// license unsafe operations. CI greps for undocumented blocks.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bernoulli;
mod bitmatrix;
mod bitvec;
pub mod gauss;
pub mod layout;
pub mod m4r;
pub mod simd;
mod sparse;
pub mod transpose;
pub mod word;

pub use bitmatrix::BitMatrix;
pub use bitvec::BitVec;
pub use m4r::M4rScratch;
pub use sparse::{SparseBitVec, SparseRowMatrix};
pub use word::{words_for, Word, WORD_BITS};
