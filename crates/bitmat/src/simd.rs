//! Runtime-dispatched SIMD kernels for the packed-F₂ hot loops.
//!
//! Every inner loop of this crate — the m4r table XOR-accumulate, the
//! Gray-code table build, row XOR/AND primitives, and the 64×64 transpose
//! swap network — moves whole machine words with no cross-word carries,
//! so the same code runs unchanged over 256-bit (AVX2) or 512-bit
//! (AVX-512) lanes. This module owns that widening:
//!
//! * [`SimdLevel`] — the dispatch ladder (`Scalar` → `Avx2` → `Avx512`),
//!   with one-time runtime feature detection and an optional
//!   `SYMPHASE_SIMD` environment override (`scalar|avx2|avx512`).
//! * [`Kernels`] — a resolved dispatch handle callers hoist out of their
//!   row loops; each method matches on the level once per call.
//! * [`with_level`] — a thread-local override so tests and benchmarks can
//!   force every available level and pin bit-identity against scalar.
//!
//! Every SIMD path computes exactly the word sequence of its scalar
//! fallback (XOR/AND are lane-local), so outputs are **bit-identical**
//! across levels; `crates/bitmat/tests/properties.rs` pins that with
//! proptests run at every available level.
//!
//! The scalar fallback is mandatory and always available: non-x86_64
//! targets (and x86_64 machines without AVX2) report only
//! [`SimdLevel::Scalar`].

use std::cell::Cell;
use std::sync::OnceLock;

use crate::word::Word;

/// One rung of the SIMD dispatch ladder, ordered weakest to widest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable word-at-a-time loops (always available).
    Scalar,
    /// 256-bit lanes via AVX2 (`std::arch` x86_64 intrinsics).
    Avx2,
    /// 512-bit lanes via AVX-512F (+BW for nothing extra — F suffices
    /// for the XOR/AND kernels here).
    Avx512,
}

impl SimdLevel {
    /// Every level, weakest first.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512];

    /// Stable name (the `SYMPHASE_SIMD` / `--simd` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// Parses a level name (`scalar`, `avx2`, `avx512`).
    pub fn from_name(name: &str) -> Option<SimdLevel> {
        Self::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// The widest level this CPU supports, detected once.
fn detect_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// The widest [`SimdLevel`] the running CPU supports (cached).
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(detect_level)
}

/// Every level the running CPU can execute, weakest first (the ladder up
/// to and including [`detected_level`]). Tests iterate this to pin
/// bit-identity at every rung.
pub fn available_levels() -> impl Iterator<Item = SimdLevel> {
    let max = detected_level();
    SimdLevel::ALL.into_iter().filter(move |&l| l <= max)
}

/// The process-wide default level: the detected maximum, clamped down by
/// a `SYMPHASE_SIMD=scalar|avx2|avx512` environment override. Requesting
/// a level the CPU lacks clamps to the detected maximum (running AVX-512
/// code on a CPU without it would fault, so the override can only narrow
/// the ladder); an unrecognized value is reported once via `eprintln` and
/// ignored. Read once and cached.
pub fn default_level() -> SimdLevel {
    static DEFAULT: OnceLock<SimdLevel> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let detected = detected_level();
        match std::env::var("SYMPHASE_SIMD") {
            Ok(name) => match SimdLevel::from_name(name.trim()) {
                Some(requested) => requested.min(detected),
                None => {
                    eprintln!(
                        "warning: SYMPHASE_SIMD='{name}' is not one of \
                         scalar|avx2|avx512; using {}",
                        detected.name()
                    );
                    detected
                }
            },
            Err(_) => detected,
        }
    })
}

thread_local! {
    /// Per-thread forced level (tests, the bench `--simd` flag).
    static FORCED: Cell<Option<SimdLevel>> = const { Cell::new(None) };
}

/// The level kernels dispatch on *right now* for this thread: the
/// [`with_level`] override if one is active, else [`default_level`].
pub fn active_level() -> SimdLevel {
    FORCED.with(|f| f.get()).unwrap_or_else(default_level)
}

/// Runs `f` with this thread's kernels forced to `level`, restoring the
/// previous override afterwards (also on panic). Nests.
///
/// # Panics
///
/// Panics if `level` exceeds [`detected_level`] — executing wider
/// instructions than the CPU has would be undefined behavior, so the
/// override can only select levels the machine actually supports.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    assert!(
        level <= detected_level(),
        "SIMD level {} not available on this CPU (detected {})",
        level.name(),
        detected_level().name()
    );
    struct Restore(Option<SimdLevel>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.with(|f| f.set(self.0));
        }
    }
    let _restore = Restore(FORCED.with(|f| f.replace(Some(level))));
    f()
}

/// A resolved dispatch handle: callers obtain one per kernel invocation
/// (one thread-local read) and reuse it across their row loops, so the
/// per-row dispatch cost is a single enum match.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    level: SimdLevel,
}

/// The kernels for this thread's [`active_level`].
#[inline]
pub fn kernels() -> Kernels {
    Kernels {
        level: active_level(),
    }
}

/// The kernels for an explicit level (benchmarks comparing rungs).
///
/// # Panics
///
/// Panics if `level` exceeds [`detected_level`].
pub fn kernels_for(level: SimdLevel) -> Kernels {
    assert!(
        level <= detected_level(),
        "SIMD level {} not available on this CPU",
        level.name()
    );
    Kernels { level }
}

impl Kernels {
    /// The level this handle dispatches to.
    #[inline]
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// `dst[i] ^= src[i]` over the common prefix (`dst.len()` must not
    /// exceed `src.len()`; callers slice beforehand).
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than `dst`.
    #[inline]
    pub fn xor_into(&self, dst: &mut [Word], src: &[Word]) {
        assert!(src.len() >= dst.len(), "xor_into source too short");
        match self.level {
            SimdLevel::Scalar => scalar::xor_into(dst, src),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: constructing a handle at this level proves the CPU
            // feature was detected (kernels_for / with_level assert it).
            SimdLevel::Avx2 => unsafe { x86::xor_into_avx2(dst, src) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            SimdLevel::Avx512 => unsafe { x86::xor_into_avx512(dst, src) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::xor_into(dst, src),
        }
    }

    /// Fused Gray-table step: `acc[i] ^= src[i]; out[i] = acc[i]` — one
    /// pass instead of an XOR loop followed by a copy.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `out` is shorter than `acc`.
    #[inline]
    pub fn xor_accum_copy(&self, acc: &mut [Word], src: &[Word], out: &mut [Word]) {
        assert!(
            src.len() >= acc.len() && out.len() >= acc.len(),
            "xor_accum_copy slice mismatch"
        );
        match self.level {
            SimdLevel::Scalar => scalar::xor_accum_copy(acc, src, out),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: handle construction proves feature support.
            SimdLevel::Avx2 => unsafe { x86::xor_accum_copy_avx2(acc, src, out) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            SimdLevel::Avx512 => unsafe { x86::xor_accum_copy_avx512(acc, src, out) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::xor_accum_copy(acc, src, out),
        }
    }

    /// Total set bits of `a[i] & b[i]` over the common prefix — the row
    /// AND-popcount behind `BitMatrix::mul_vec` parity.
    ///
    /// # Panics
    ///
    /// Panics if `b` is shorter than `a`.
    #[inline]
    pub fn and_count(&self, a: &[Word], b: &[Word]) -> usize {
        assert!(b.len() >= a.len(), "and_count source too short");
        match self.level {
            SimdLevel::Scalar => scalar::and_count(a, b),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: handle construction proves feature support.
            SimdLevel::Avx2 => unsafe { x86::and_count_avx2(a, b) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            SimdLevel::Avx512 => unsafe { x86::and_count_avx512(a, b) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::and_count(a, b),
        }
    }

    /// Transposes a 64×64 bit-block in place (the swap-network kernel of
    /// [`crate::transpose`], with the outer swap scales running over wide
    /// lanes).
    #[inline]
    pub fn transpose_64x64(&self, a: &mut [Word; 64]) {
        match self.level {
            SimdLevel::Scalar => crate::transpose::transpose_64x64(a),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: handle construction proves feature support.
            SimdLevel::Avx2 => unsafe { x86::transpose_64x64_avx2(a) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above. The AVX-512 kernel only uses AVX2-wide
            // registers for the j ≥ 4 scales plus 512-bit lanes at j ≥ 8;
            // avx512f implies avx2 support on every CPU that reports it.
            SimdLevel::Avx512 => unsafe { x86::transpose_64x64_avx512(a) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => crate::transpose::transpose_64x64(a),
        }
    }
}

/// Portable word-at-a-time fallbacks (the reference semantics every wide
/// path must reproduce bit for bit).
mod scalar {
    use crate::word::Word;

    pub fn xor_into(dst: &mut [Word], src: &[Word]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
    }

    pub fn xor_accum_copy(acc: &mut [Word], src: &[Word], out: &mut [Word]) {
        for ((a, s), o) in acc.iter_mut().zip(src).zip(out.iter_mut()) {
            *a ^= *s;
            *o = *a;
        }
    }

    pub fn and_count(a: &[Word], b: &[Word]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }
}

/// AVX2 / AVX-512 lane implementations. Each function is gated by
/// `#[target_feature]`; callers prove support via runtime detection
/// before dispatching here.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use crate::word::Word;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and `src.len() >= dst.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_into_avx2(dst: &mut [Word], src: &[Word]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let d0 = d.add(i) as *mut __m256i;
                let s0 = s.add(i) as *const __m256i;
                let a = _mm256_xor_si256(_mm256_loadu_si256(d0), _mm256_loadu_si256(s0));
                let b =
                    _mm256_xor_si256(_mm256_loadu_si256(d0.add(1)), _mm256_loadu_si256(s0.add(1)));
                _mm256_storeu_si256(d0, a);
                _mm256_storeu_si256(d0.add(1), b);
                i += 8;
            }
            while i + 4 <= n {
                let d0 = d.add(i) as *mut __m256i;
                let s0 = s.add(i) as *const __m256i;
                _mm256_storeu_si256(
                    d0,
                    _mm256_xor_si256(_mm256_loadu_si256(d0), _mm256_loadu_si256(s0)),
                );
                i += 4;
            }
            while i < n {
                *d.add(i) ^= *s.add(i);
                i += 1;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F and
    /// `src.len() >= dst.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn xor_into_avx512(dst: &mut [Word], src: &[Word]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = dst.len();
            let d = dst.as_mut_ptr();
            let s = src.as_ptr();
            let mut i = 0;
            while i + 16 <= n {
                let d0 = d.add(i) as *mut __m512i;
                let s0 = s.add(i) as *const __m512i;
                let a = _mm512_xor_si512(_mm512_loadu_si512(d0), _mm512_loadu_si512(s0));
                let b =
                    _mm512_xor_si512(_mm512_loadu_si512(d0.add(1)), _mm512_loadu_si512(s0.add(1)));
                _mm512_storeu_si512(d0, a);
                _mm512_storeu_si512(d0.add(1), b);
                i += 16;
            }
            while i + 8 <= n {
                let d0 = d.add(i) as *mut __m512i;
                let s0 = s.add(i) as *const __m512i;
                _mm512_storeu_si512(
                    d0,
                    _mm512_xor_si512(_mm512_loadu_si512(d0), _mm512_loadu_si512(s0)),
                );
                i += 8;
            }
            while i < n {
                *d.add(i) ^= *s.add(i);
                i += 1;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and both `src` and `out`
    /// cover `acc.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_accum_copy_avx2(acc: &mut [Word], src: &[Word], out: &mut [Word]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = acc.len();
            let a = acc.as_mut_ptr();
            let s = src.as_ptr();
            let o = out.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let ap = a.add(i) as *mut __m256i;
                let v = _mm256_xor_si256(
                    _mm256_loadu_si256(ap),
                    _mm256_loadu_si256(s.add(i) as *const __m256i),
                );
                _mm256_storeu_si256(ap, v);
                _mm256_storeu_si256(o.add(i) as *mut __m256i, v);
                i += 4;
            }
            while i < n {
                let v = *a.add(i) ^ *s.add(i);
                *a.add(i) = v;
                *o.add(i) = v;
                i += 1;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F and both `src` and
    /// `out` cover `acc.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn xor_accum_copy_avx512(acc: &mut [Word], src: &[Word], out: &mut [Word]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = acc.len();
            let a = acc.as_mut_ptr();
            let s = src.as_ptr();
            let o = out.as_mut_ptr();
            let mut i = 0;
            while i + 8 <= n {
                let ap = a.add(i) as *mut __m512i;
                let v = _mm512_xor_si512(
                    _mm512_loadu_si512(ap),
                    _mm512_loadu_si512(s.add(i) as *const __m512i),
                );
                _mm512_storeu_si512(ap, v);
                _mm512_storeu_si512(o.add(i) as *mut __m512i, v);
                i += 8;
            }
            while i < n {
                let v = *a.add(i) ^ *s.add(i);
                *a.add(i) = v;
                *o.add(i) = v;
                i += 1;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and `b.len() >= a.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count_avx2(a: &[Word], b: &[Word]) -> usize {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut total = 0usize;
            let mut i = 0;
            while i + 4 <= n {
                let v = _mm256_and_si256(
                    _mm256_loadu_si256(ap.add(i) as *const __m256i),
                    _mm256_loadu_si256(bp.add(i) as *const __m256i),
                );
                let mut lanes = [0u64; 4];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
                total += lanes.iter().map(|w| w.count_ones() as usize).sum::<usize>();
                i += 4;
            }
            while i < n {
                total += (*ap.add(i) & *bp.add(i)).count_ones() as usize;
                i += 1;
            }
            total
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F and
    /// `b.len() >= a.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn and_count_avx512(a: &[Word], b: &[Word]) -> usize {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let n = a.len();
            let ap = a.as_ptr();
            let bp = b.as_ptr();
            let mut total = 0usize;
            let mut i = 0;
            while i + 8 <= n {
                let v = _mm512_and_si512(
                    _mm512_loadu_si512(ap.add(i) as *const __m512i),
                    _mm512_loadu_si512(bp.add(i) as *const __m512i),
                );
                let mut lanes = [0u64; 8];
                _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, v);
                total += lanes.iter().map(|w| w.count_ones() as usize).sum::<usize>();
                i += 8;
            }
            while i < n {
                total += (*ap.add(i) & *bp.add(i)).count_ones() as usize;
                i += 1;
            }
            total
        }
    }

    /// One swap scale of the 64×64 transpose network over 256-bit lanes:
    /// for `j ∈ {32, 16, 8, 4}` the partner rows `k` / `k|j` come in runs
    /// of `j ≥ 4` consecutive indices, so four rows move per vector op.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2; `a` must point at 64
    /// words.
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_scale_avx2(a: *mut Word, j: usize, m: Word) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let mask = _mm256_set1_epi64x(m as i64);
            let shift = _mm_cvtsi64_si128(j as i64);
            let mut base = 0usize;
            while base < 64 {
                let mut k = base;
                while k < base + j {
                    let lo = a.add(k) as *mut __m256i;
                    let hi = a.add(k + j) as *mut __m256i;
                    let vlo = _mm256_loadu_si256(lo);
                    let vhi = _mm256_loadu_si256(hi);
                    let t =
                        _mm256_and_si256(_mm256_xor_si256(_mm256_srl_epi64(vlo, shift), vhi), mask);
                    _mm256_storeu_si256(hi, _mm256_xor_si256(vhi, t));
                    _mm256_storeu_si256(lo, _mm256_xor_si256(vlo, _mm256_sll_epi64(t, shift)));
                    k += 4;
                }
                base += 2 * j;
            }
        }
    }

    /// The same swap scale over 512-bit lanes (`j ≥ 8`).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F; `a` must point at 64
    /// words.
    #[target_feature(enable = "avx512f")]
    unsafe fn transpose_scale_avx512(a: *mut Word, j: usize, m: Word) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let mask = _mm512_set1_epi64(m as i64);
            let shift = _mm_cvtsi64_si128(j as i64);
            let mut base = 0usize;
            while base < 64 {
                let mut k = base;
                while k < base + j {
                    let lo = a.add(k) as *mut __m512i;
                    let hi = a.add(k + j) as *mut __m512i;
                    let vlo = _mm512_loadu_si512(lo);
                    let vhi = _mm512_loadu_si512(hi);
                    let t =
                        _mm512_and_si512(_mm512_xor_si512(_mm512_srl_epi64(vlo, shift), vhi), mask);
                    _mm512_storeu_si512(hi, _mm512_xor_si512(vhi, t));
                    _mm512_storeu_si512(lo, _mm512_xor_si512(vlo, _mm512_sll_epi64(t, shift)));
                    k += 8;
                }
                base += 2 * j;
            }
        }
    }

    /// The last two swap scales (`j ∈ {2, 1}`) stay scalar: partner rows
    /// are closer together than one vector of rows.
    ///
    /// # Safety
    /// `a` must point at 64 valid, exclusively borrowed words.
    unsafe fn transpose_tail_scalar(a: *mut Word) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let mut j = 2usize;
            let mut m: Word = 0x3333_3333_3333_3333;
            while j != 0 {
                let mut k = 0usize;
                while k < 64 {
                    let t = ((*a.add(k) >> j) ^ *a.add(k | j)) & m;
                    *a.add(k | j) ^= t;
                    *a.add(k) ^= t << j;
                    k = ((k | j) + 1) & !j;
                }
                j >>= 1;
                m ^= m << j;
            }
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn transpose_64x64_avx2(a: &mut [Word; 64]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let p = a.as_mut_ptr();
            transpose_scale_avx2(p, 32, 0x0000_0000_FFFF_FFFF);
            transpose_scale_avx2(p, 16, 0x0000_FFFF_0000_FFFF);
            transpose_scale_avx2(p, 8, 0x00FF_00FF_00FF_00FF);
            transpose_scale_avx2(p, 4, 0x0F0F_0F0F_0F0F_0F0F);
            transpose_tail_scalar(p);
        }
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F (which implies AVX2).
    #[target_feature(enable = "avx512f", enable = "avx2")]
    pub unsafe fn transpose_64x64_avx512(a: &mut [Word; 64]) {
        // SAFETY: the `# Safety` contract above holds — the caller has
        // verified the required CPU features, and every pointer offset
        // below stays within the slices/arrays passed in.
        unsafe {
            let p = a.as_mut_ptr();
            transpose_scale_avx512(p, 32, 0x0000_0000_FFFF_FFFF);
            transpose_scale_avx512(p, 16, 0x0000_FFFF_0000_FFFF);
            transpose_scale_avx512(p, 8, 0x00FF_00FF_00FF_00FF);
            transpose_scale_avx2(p, 4, 0x0F0F_0F0F_0F0F_0F0F);
            transpose_tail_scalar(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_words(n: usize, seed: u64) -> Vec<Word> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random()).collect()
    }

    #[test]
    fn level_names_round_trip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::from_name("sse9"), None);
    }

    #[test]
    fn ladder_is_ordered_and_scalar_always_available() {
        assert!(SimdLevel::Scalar < SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
        let levels: Vec<_> = available_levels().collect();
        assert_eq!(levels[0], SimdLevel::Scalar);
        assert!(levels.contains(&detected_level()));
    }

    #[test]
    fn with_level_forces_and_restores() {
        let before = active_level();
        with_level(SimdLevel::Scalar, || {
            assert_eq!(active_level(), SimdLevel::Scalar);
            assert_eq!(kernels().level(), SimdLevel::Scalar);
        });
        assert_eq!(active_level(), before);
        // Restores across panics too.
        let caught = std::panic::catch_unwind(|| {
            with_level(SimdLevel::Scalar, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(active_level(), before);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn with_level_rejects_unavailable() {
        if detected_level() < SimdLevel::Avx512 {
            let caught = std::panic::catch_unwind(|| with_level(SimdLevel::Avx512, || ()));
            assert!(caught.is_err());
        }
    }

    #[test]
    fn xor_into_matches_scalar_at_every_level() {
        for n in [0usize, 1, 3, 4, 7, 8, 15, 16, 31, 64, 200] {
            let src = random_words(n, 1000 + n as u64);
            let base = random_words(n, 2000 + n as u64);
            let mut expect = base.clone();
            scalar::xor_into(&mut expect, &src);
            for level in available_levels() {
                let mut got = base.clone();
                kernels_for(level).xor_into(&mut got, &src);
                assert_eq!(got, expect, "level {} n {n}", level.name());
            }
        }
    }

    #[test]
    fn xor_accum_copy_matches_scalar_at_every_level() {
        for n in [0usize, 1, 5, 8, 13, 32, 100] {
            let src = random_words(n, 3000 + n as u64);
            let acc0 = random_words(n, 4000 + n as u64);
            let mut eacc = acc0.clone();
            let mut eout = vec![0; n];
            scalar::xor_accum_copy(&mut eacc, &src, &mut eout);
            for level in available_levels() {
                let mut acc = acc0.clone();
                let mut out = vec![0; n];
                kernels_for(level).xor_accum_copy(&mut acc, &src, &mut out);
                assert_eq!((acc, out), (eacc.clone(), eout.clone()), "{}", level.name());
            }
        }
    }

    #[test]
    fn and_count_matches_scalar_at_every_level() {
        for n in [0usize, 1, 4, 9, 16, 33, 128] {
            let a = random_words(n, 5000 + n as u64);
            let b = random_words(n, 6000 + n as u64);
            let expect = scalar::and_count(&a, &b);
            for level in available_levels() {
                assert_eq!(
                    kernels_for(level).and_count(&a, &b),
                    expect,
                    "{}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn transpose_matches_scalar_at_every_level() {
        for seed in 0..8u64 {
            let words = random_words(64, 7000 + seed);
            let mut expect: [Word; 64] = words.clone().try_into().unwrap();
            crate::transpose::transpose_64x64(&mut expect);
            for level in available_levels() {
                let mut got: [Word; 64] = words.clone().try_into().unwrap();
                kernels_for(level).transpose_64x64(&mut got);
                assert_eq!(got, expect, "{}", level.name());
            }
        }
    }
}
