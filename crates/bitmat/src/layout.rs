//! The three stabilizer-tableau memory layouts compared in Fig. 2 of the
//! paper.
//!
//! A tableau simulator alternates between *column* operations (Clifford
//! gates touch one or two qubit columns across all generator rows) and *row*
//! operations (measurements multiply generator rows together). The layout of
//! the backing bit-matrix decides which of the two is cheap:
//!
//! * [`ChpLayout`] (Fig. 2a) — plain row-major packed words, as in
//!   Aaronson–Gottesman's `chp.c`. Row ops are contiguous word XORs; column
//!   ops walk a strided bit per row.
//! * [`StimLayout`] (Fig. 2b) — 8×8-bit blocks packed in `u64`s, block grid
//!   column-major, as in Stim. Column ops are word ops over contiguous
//!   blocks; before a batch of row ops the whole matrix is transposed (and
//!   transposed back afterwards).
//! * [`SymLayout512`] (Fig. 2d) — 512×512-bit blocks whose interior words
//!   are stored column-major for gates; row batches only *locally* transpose
//!   each block (Fig. 2c), never moving data between blocks, so rows become
//!   piecewise-contiguous runs of 512 bits.
//!
//! All three implement [`TableauLayout`] so the `fig2_layout` bench can
//! drive identical operation sequences through each.

use rand::Rng;

use crate::word::{split_index, Word};
use crate::BitMatrix;

/// Common interface over the Fig. 2 layouts.
///
/// Implementations may reorganize their storage when switching between
/// column mode and row mode; the logical matrix is unchanged by mode
/// switches.
pub trait TableauLayout {
    /// Layout name as used in the paper ("chp", "stim", "symphase").
    const NAME: &'static str;

    /// Creates a `rows × cols` zero matrix in column mode.
    fn zeros(rows: usize, cols: usize) -> Self;

    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Reads entry `(r, c)` (any mode).
    fn get(&self, r: usize, c: usize) -> bool;

    /// Writes entry `(r, c)` (any mode).
    fn set(&mut self, r: usize, c: usize, v: bool);

    /// Reorganizes storage for a batch of column operations (no-op if
    /// already in column mode).
    fn ensure_col_mode(&mut self);

    /// Reorganizes storage for a batch of row operations (no-op if already
    /// in row mode).
    fn ensure_row_mode(&mut self);

    /// XORs column `src` into column `dst`.
    ///
    /// # Panics
    ///
    /// Panics if out of range or `src == dst`.
    fn xor_col_into(&mut self, src: usize, dst: usize);

    /// XORs row `src` into row `dst`.
    ///
    /// # Panics
    ///
    /// Panics if out of range or `src == dst`.
    fn xor_row_into(&mut self, src: usize, dst: usize);

    /// Fills with uniformly random bits (for benches/tests).
    fn fill_random(&mut self, rng: &mut impl Rng)
    where
        Self: Sized,
    {
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                self.set(r, c, rng.random());
            }
        }
    }

    /// Copies into a dense [`BitMatrix`] (for verification).
    fn to_bitmatrix(&self) -> BitMatrix {
        BitMatrix::from_fn(self.rows(), self.cols(), |r, c| self.get(r, c))
    }
}

// ---------------------------------------------------------------------------
// Fig. 2a: chp.c row-major layout
// ---------------------------------------------------------------------------

/// Row-major packed layout of `chp.c` (paper Fig. 2a).
#[derive(Clone, Debug)]
pub struct ChpLayout {
    m: BitMatrix,
}

impl TableauLayout for ChpLayout {
    const NAME: &'static str = "chp";

    fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            m: BitMatrix::zeros(rows, cols),
        }
    }

    fn rows(&self) -> usize {
        self.m.rows()
    }

    fn cols(&self) -> usize {
        self.m.cols()
    }

    fn get(&self, r: usize, c: usize) -> bool {
        self.m.get(r, c)
    }

    fn set(&mut self, r: usize, c: usize, v: bool) {
        self.m.set(r, c, v);
    }

    fn ensure_col_mode(&mut self) {}

    fn ensure_row_mode(&mut self) {}

    fn xor_col_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.cols() && dst < self.cols(),
            "column out of range"
        );
        assert_ne!(src, dst, "column xor into itself");
        let stride = self.m.stride();
        let (ws, bs) = split_index(src);
        let (wd, bd) = split_index(dst);
        let data = self.m.words_mut();
        for r in 0..data.len() / stride {
            let bit = (data[r * stride + ws] >> bs) & 1;
            data[r * stride + wd] ^= bit << bd;
        }
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        self.m.xor_row_into(src, dst);
    }

    fn to_bitmatrix(&self) -> BitMatrix {
        self.m.clone()
    }
}

// ---------------------------------------------------------------------------
// Fig. 2b: Stim 8×8-block layout
// ---------------------------------------------------------------------------

/// Transposes an 8×8 bit-matrix packed in a `u64` (bit `(r, c)` at `r*8+c`).
#[inline]
pub fn transpose_8x8(x: Word) -> Word {
    let mut x = x;
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Stim's layout (paper Fig. 2b): `u64`s interpreted as 8×8 bit-matrices,
/// block grid stored column-major. Row batches transpose the whole matrix.
#[derive(Clone, Debug)]
pub struct StimLayout {
    /// Block grid, column-major: block `(br, bc)` at `bc * block_rows + br`.
    blocks: Vec<Word>,
    rows: usize,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    /// When `true`, storage holds the transpose and logical `(r, c)` maps to
    /// physical `(c, r)`.
    transposed: bool,
}

impl StimLayout {
    #[inline]
    fn block_index(&self, br: usize, bc: usize) -> usize {
        bc * self.block_rows + br
    }

    /// Physical column XOR (operates on current storage orientation).
    fn phys_xor_col(&mut self, src: usize, dst: usize) {
        let (bcs, js) = (src / 8, src % 8);
        let (bcd, jd) = (dst / 8, dst % 8);
        const COL0: Word = 0x0101_0101_0101_0101;
        for br in 0..self.block_rows {
            let s = self.blocks[self.block_index(br, bcs)];
            let bits = (s >> js) & COL0;
            let d = &mut self.blocks[bc_index(bcd, self.block_rows, br)];
            *d ^= bits << jd;
        }
    }

    /// Physical row XOR (strided across block columns).
    fn phys_xor_row(&mut self, src: usize, dst: usize) {
        let (brs, rs) = (src / 8, src % 8);
        let (brd, rd) = (dst / 8, dst % 8);
        for bc in 0..self.block_cols {
            let s = self.blocks[self.block_index(brs, bc)];
            let byte = (s >> (rs * 8)) & 0xFF;
            let d = &mut self.blocks[bc_index(bc, self.block_rows, brd)];
            *d ^= byte << (rd * 8);
        }
    }

    /// Transposes the stored matrix: each 8×8 block is bit-transposed and
    /// the block grid is flipped about its diagonal.
    fn transpose_storage(&mut self) {
        let (old_brs, old_bcs) = (self.block_rows, self.block_cols);
        let mut out = vec![0 as Word; self.blocks.len()];
        for br in 0..old_brs {
            for bc in 0..old_bcs {
                let w = self.blocks[bc * old_brs + br];
                // New grid has old_bcs block-rows; block (bc, br) in it.
                out[br * old_bcs + bc] = transpose_8x8(w);
            }
        }
        self.blocks = out;
        self.block_rows = old_bcs;
        self.block_cols = old_brs;
        std::mem::swap(&mut self.rows, &mut self.cols);
        self.transposed = !self.transposed;
    }
}

#[inline]
fn bc_index(bc: usize, block_rows: usize, br: usize) -> usize {
    bc * block_rows + br
}

impl TableauLayout for StimLayout {
    const NAME: &'static str = "stim";

    fn zeros(rows: usize, cols: usize) -> Self {
        let block_rows = rows.div_ceil(8);
        let block_cols = cols.div_ceil(8);
        Self {
            blocks: vec![0; block_rows * block_cols],
            rows,
            cols,
            block_rows,
            block_cols,
            transposed: false,
        }
    }

    fn rows(&self) -> usize {
        if self.transposed {
            self.cols
        } else {
            self.rows
        }
    }

    fn cols(&self) -> usize {
        if self.transposed {
            self.rows
        } else {
            self.cols
        }
    }

    fn get(&self, r: usize, c: usize) -> bool {
        let (r, c) = if self.transposed { (c, r) } else { (r, c) };
        assert!(r < self.rows && c < self.cols, "index out of range");
        let w = self.blocks[self.block_index(r / 8, c / 8)];
        (w >> ((r % 8) * 8 + (c % 8))) & 1 == 1
    }

    fn set(&mut self, r: usize, c: usize, v: bool) {
        let (r, c) = if self.transposed { (c, r) } else { (r, c) };
        assert!(r < self.rows && c < self.cols, "index out of range");
        let idx = self.block_index(r / 8, c / 8);
        let bit = (r % 8) * 8 + (c % 8);
        if v {
            self.blocks[idx] |= 1 << bit;
        } else {
            self.blocks[idx] &= !(1 << bit);
        }
    }

    fn ensure_col_mode(&mut self) {
        if self.transposed {
            self.transpose_storage();
        }
    }

    fn ensure_row_mode(&mut self) {
        if !self.transposed {
            self.transpose_storage();
        }
    }

    fn xor_col_into(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.cols() && dst < self.cols(),
            "column out of range"
        );
        assert_ne!(src, dst, "column xor into itself");
        if self.transposed {
            self.phys_xor_row(src, dst);
        } else {
            self.phys_xor_col(src, dst);
        }
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows() && dst < self.rows(), "row out of range");
        assert_ne!(src, dst, "row xor into itself");
        if self.transposed {
            self.phys_xor_col(src, dst);
        } else {
            self.phys_xor_row(src, dst);
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 2d: SymPhase 512×512-block layout with local transposition
// ---------------------------------------------------------------------------

/// Bits per block edge in [`SymLayout512`].
pub const SYM_BLOCK_BITS: usize = 512;
/// Words per block row (512 bits / 64).
const BLOCK_WORD_COLS: usize = SYM_BLOCK_BITS / 64;
/// Words per block (512 × 8).
const BLOCK_WORDS: usize = SYM_BLOCK_BITS * BLOCK_WORD_COLS;

/// SymPhase's layout (paper Fig. 2d): 512×512-bit blocks; inside each block
/// the 512×8 word grid is column-major in column mode and row-major in row
/// mode. Switching modes transposes word *positions* inside each block only
/// ("local transposition", Fig. 2c) — bits never cross block boundaries.
#[derive(Clone, Debug)]
pub struct SymLayout512 {
    /// Blocks row-major in the grid; each block occupies [`BLOCK_WORDS`]
    /// words.
    blocks: Vec<Word>,
    rows: usize,
    cols: usize,
    block_rows: usize,
    block_cols: usize,
    row_mode: bool,
}

impl SymLayout512 {
    #[inline]
    fn block_offset(&self, br: usize, bc: usize) -> usize {
        (br * self.block_cols + bc) * BLOCK_WORDS
    }

    /// Index of word `(r, wc)` inside a block for the current mode.
    #[inline]
    fn word_in_block(&self, r: usize, wc: usize) -> usize {
        if self.row_mode {
            r * BLOCK_WORD_COLS + wc
        } else {
            wc * SYM_BLOCK_BITS + r
        }
    }

    /// Locally transposes every block between the two word orders.
    fn relayout_blocks(&mut self) {
        let mut scratch = vec![0 as Word; BLOCK_WORDS];
        let nblocks = self.block_rows * self.block_cols;
        for b in 0..nblocks {
            let base = b * BLOCK_WORDS;
            let blk = &mut self.blocks[base..base + BLOCK_WORDS];
            // Transpose the 512×8 word grid: (r, wc) col-major ↔ row-major.
            for r in 0..SYM_BLOCK_BITS {
                for wc in 0..BLOCK_WORD_COLS {
                    let (from, to) = if self.row_mode {
                        (r * BLOCK_WORD_COLS + wc, wc * SYM_BLOCK_BITS + r)
                    } else {
                        (wc * SYM_BLOCK_BITS + r, r * BLOCK_WORD_COLS + wc)
                    };
                    scratch[to] = blk[from];
                }
            }
            blk.copy_from_slice(&scratch);
        }
        self.row_mode = !self.row_mode;
    }
}

impl TableauLayout for SymLayout512 {
    const NAME: &'static str = "symphase";

    fn zeros(rows: usize, cols: usize) -> Self {
        let block_rows = rows.div_ceil(SYM_BLOCK_BITS).max(1);
        let block_cols = cols.div_ceil(SYM_BLOCK_BITS).max(1);
        Self {
            blocks: vec![0; block_rows * block_cols * BLOCK_WORDS],
            rows,
            cols,
            block_rows,
            block_cols,
            row_mode: false,
        }
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "index out of range");
        let (br, bc) = (r / SYM_BLOCK_BITS, c / SYM_BLOCK_BITS);
        let (ri, ci) = (r % SYM_BLOCK_BITS, c % SYM_BLOCK_BITS);
        let w = self.blocks[self.block_offset(br, bc) + self.word_in_block(ri, ci / 64)];
        (w >> (ci % 64)) & 1 == 1
    }

    fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        let (br, bc) = (r / SYM_BLOCK_BITS, c / SYM_BLOCK_BITS);
        let (ri, ci) = (r % SYM_BLOCK_BITS, c % SYM_BLOCK_BITS);
        let idx = self.block_offset(br, bc) + self.word_in_block(ri, ci / 64);
        if v {
            self.blocks[idx] |= 1 << (ci % 64);
        } else {
            self.blocks[idx] &= !(1 << (ci % 64));
        }
    }

    fn ensure_col_mode(&mut self) {
        if self.row_mode {
            self.relayout_blocks();
        }
    }

    fn ensure_row_mode(&mut self) {
        if !self.row_mode {
            self.relayout_blocks();
        }
    }

    fn xor_col_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.cols && dst < self.cols, "column out of range");
        assert_ne!(src, dst, "column xor into itself");
        self.ensure_col_mode();
        let (bcs, cis) = (src / SYM_BLOCK_BITS, src % SYM_BLOCK_BITS);
        let (bcd, cid) = (dst / SYM_BLOCK_BITS, dst % SYM_BLOCK_BITS);
        let (wcs, js) = (cis / 64, (cis % 64) as u32);
        let (wcd, jd) = (cid / 64, (cid % 64) as u32);
        for br in 0..self.block_rows {
            let src_base = self.block_offset(br, bcs) + wcs * SYM_BLOCK_BITS;
            let dst_base = self.block_offset(br, bcd) + wcd * SYM_BLOCK_BITS;
            if src_base == dst_base {
                // Same word column: both bits live in the same words.
                for r in 0..SYM_BLOCK_BITS {
                    let w = self.blocks[src_base + r];
                    let bit = (w >> js) & 1;
                    self.blocks[dst_base + r] ^= bit << jd;
                }
            } else {
                let (lo_base, hi_base, src_first) = if src_base < dst_base {
                    (src_base, dst_base, true)
                } else {
                    (dst_base, src_base, false)
                };
                let (lo, hi) = self.blocks.split_at_mut(hi_base);
                let lo = &mut lo[lo_base..lo_base + SYM_BLOCK_BITS];
                let hi = &mut hi[..SYM_BLOCK_BITS];
                if src_first {
                    for r in 0..SYM_BLOCK_BITS {
                        let bit = (lo[r] >> js) & 1;
                        hi[r] ^= bit << jd;
                    }
                } else {
                    for r in 0..SYM_BLOCK_BITS {
                        let bit = (hi[r] >> js) & 1;
                        lo[r] ^= bit << jd;
                    }
                }
            }
        }
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows, "row out of range");
        assert_ne!(src, dst, "row xor into itself");
        self.ensure_row_mode();
        let (brs, ris) = (src / SYM_BLOCK_BITS, src % SYM_BLOCK_BITS);
        let (brd, rid) = (dst / SYM_BLOCK_BITS, dst % SYM_BLOCK_BITS);
        for bc in 0..self.block_cols {
            let src_base = self.block_offset(brs, bc) + ris * BLOCK_WORD_COLS;
            let dst_base = self.block_offset(brd, bc) + rid * BLOCK_WORD_COLS;
            if src_base == dst_base {
                unreachable!("src == dst rows rejected above");
            }
            let (lo_base, hi_base, src_first) = if src_base < dst_base {
                (src_base, dst_base, true)
            } else {
                (dst_base, src_base, false)
            };
            let (lo, hi) = self.blocks.split_at_mut(hi_base);
            let lo = &mut lo[lo_base..lo_base + BLOCK_WORD_COLS];
            let hi = &mut hi[..BLOCK_WORD_COLS];
            if src_first {
                for i in 0..BLOCK_WORD_COLS {
                    hi[i] ^= lo[i];
                }
            } else {
                for i in 0..BLOCK_WORD_COLS {
                    lo[i] ^= hi[i];
                }
            }
        }
    }
}

// Re-exported so the bench can also exercise the raw kernel.
pub use crate::transpose::transpose_64x64 as transpose_kernel_64;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_transpose_8(x: Word) -> Word {
        let mut out = 0;
        for r in 0..8 {
            for c in 0..8 {
                if (x >> (r * 8 + c)) & 1 == 1 {
                    out |= 1 << (c * 8 + r);
                }
            }
        }
        out
    }

    #[test]
    fn transpose_8x8_matches_naive() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100 {
            let x: Word = rand::Rng::random(&mut rng);
            assert_eq!(transpose_8x8(x), naive_transpose_8(x));
        }
    }

    fn exercise<L: TableauLayout>(rows: usize, cols: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layout = L::zeros(rows, cols);
        layout.fill_random(&mut rng);
        let mut reference = layout.to_bitmatrix();

        // Mixed column/row operation sequence with mode switches.
        for step in 0..60 {
            if step % 20 < 12 {
                let src = rand::Rng::random_range(&mut rng, 0..cols);
                let mut dst = rand::Rng::random_range(&mut rng, 0..cols);
                if dst == src {
                    dst = (dst + 1) % cols;
                }
                layout.xor_col_into(src, dst);
                for r in 0..rows {
                    let v = reference.get(r, dst) ^ reference.get(r, src);
                    reference.set(r, dst, v);
                }
            } else {
                layout.ensure_row_mode();
                let src = rand::Rng::random_range(&mut rng, 0..rows);
                let mut dst = rand::Rng::random_range(&mut rng, 0..rows);
                if dst == src {
                    dst = (dst + 1) % rows;
                }
                layout.xor_row_into(src, dst);
                reference.xor_row_into(src, dst);
            }
            if step % 20 == 11 {
                layout.ensure_row_mode();
            }
            if step % 20 == 19 {
                layout.ensure_col_mode();
            }
        }
        layout.ensure_col_mode();
        assert_eq!(
            layout.to_bitmatrix(),
            reference,
            "{} layout diverged",
            L::NAME
        );
    }

    #[test]
    fn chp_layout_agrees_with_reference() {
        exercise::<ChpLayout>(100, 130, 31);
    }

    #[test]
    fn stim_layout_agrees_with_reference() {
        exercise::<StimLayout>(100, 130, 32);
        exercise::<StimLayout>(64, 64, 33);
        exercise::<StimLayout>(17, 90, 34);
    }

    #[test]
    fn sym_layout_agrees_with_reference() {
        exercise::<SymLayout512>(100, 130, 35);
        exercise::<SymLayout512>(600, 520, 36);
    }

    #[test]
    fn stim_mode_switch_preserves_contents() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut l = StimLayout::zeros(50, 70);
        l.fill_random(&mut rng);
        let before = l.to_bitmatrix();
        l.ensure_row_mode();
        assert_eq!(l.to_bitmatrix(), before);
        l.ensure_col_mode();
        assert_eq!(l.to_bitmatrix(), before);
    }

    #[test]
    fn sym_mode_switch_preserves_contents() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut l = SymLayout512::zeros(520, 600);
        l.fill_random(&mut rng);
        let before = l.to_bitmatrix();
        l.ensure_row_mode();
        assert_eq!(l.to_bitmatrix(), before);
        l.ensure_col_mode();
        assert_eq!(l.to_bitmatrix(), before);
    }

    #[test]
    fn col_op_then_get_roundtrip_small() {
        // Hand-checked miniature: set (0, 0), xor col 0 into col 1.
        let mut l = SymLayout512::zeros(4, 4);
        l.set(0, 0, true);
        l.xor_col_into(0, 1);
        assert!(l.get(0, 1));
        assert!(l.get(0, 0));
        l.xor_col_into(0, 1);
        assert!(!l.get(0, 1));
    }
}
