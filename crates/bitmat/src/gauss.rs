//! Gaussian elimination over F₂.
//!
//! Used by the stabilizer-group verifier (checking that tableau rows stay
//! independent generators) and by tests that validate sampled measurement
//! distributions against the row space of the measurement matrix.

use crate::{BitMatrix, BitVec};

/// The result of reducing a matrix to row echelon form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Echelon {
    /// The reduced matrix (in *reduced* row echelon form).
    pub matrix: BitMatrix,
    /// Pivot column of each non-zero row, in row order.
    pub pivots: Vec<usize>,
}

impl Echelon {
    /// Rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }
}

/// Reduces `m` to reduced row echelon form.
pub fn row_reduce(mut m: BitMatrix) -> Echelon {
    let (rows, cols) = (m.rows(), m.cols());
    let mut pivots = Vec::new();
    let mut next_row = 0;
    for col in 0..cols {
        if next_row >= rows {
            break;
        }
        // Find a pivot at or below next_row.
        let Some(pivot) = (next_row..rows).find(|&r| m.get(r, col)) else {
            continue;
        };
        m.swap_rows(next_row, pivot);
        for r in 0..rows {
            if r != next_row && m.get(r, col) {
                m.xor_row_into(next_row, r);
            }
        }
        pivots.push(col);
        next_row += 1;
    }
    Echelon { matrix: m, pivots }
}

/// Rank of `m` over F₂.
pub fn rank(m: &BitMatrix) -> usize {
    row_reduce(m.clone()).rank()
}

/// Tests whether `v` lies in the row space of `m`.
pub fn in_row_space(m: &BitMatrix, v: &BitVec) -> bool {
    assert_eq!(m.cols(), v.len(), "dimension mismatch");
    let mut aug = BitMatrix::zeros(m.rows() + 1, m.cols());
    for r in 0..m.rows() {
        aug.row_mut(r).copy_from_slice(m.row(r));
    }
    let last = m.rows();
    for i in v.iter_ones() {
        aug.set(last, i, true);
    }
    rank(&aug) == rank(m)
}

/// Solves `x · m = v` for a row vector `x` (i.e. expresses `v` as an XOR of
/// rows of `m`), returning the set of row indices, or `None` when `v` is not
/// in the row space.
pub fn express_in_rows(m: &BitMatrix, v: &BitVec) -> Option<Vec<usize>> {
    assert_eq!(m.cols(), v.len(), "dimension mismatch");
    // Augment each row with an identity tag to track row combinations.
    let (rows, cols) = (m.rows(), m.cols());
    let mut work = BitMatrix::zeros(rows, cols + rows);
    for r in 0..rows {
        work.row_mut(r)[..m.stride()].copy_from_slice(m.row(r));
        work.set(r, cols + r, true);
    }
    // Forward-eliminate v against the rows.
    let reduced = row_reduce(work);
    let mut target = BitVec::zeros(cols);
    target.xor_assign(v);
    let mut tag_acc = BitVec::zeros(rows);
    for (row_idx, &p) in reduced.pivots.iter().enumerate() {
        if p >= cols {
            continue; // pivot in the tag region: row was dependent
        }
        if target.get(p) {
            for c in 0..cols {
                if reduced.matrix.get(row_idx, c) {
                    target.flip(c);
                }
            }
            for c in 0..rows {
                if reduced.matrix.get(row_idx, cols + c) {
                    tag_acc.flip(c);
                }
            }
        }
    }
    if target.any() {
        return None;
    }
    Some(tag_acc.iter_ones().collect())
}

/// A basis of the null space of `m` (vectors `x` with `m · x = 0`), one
/// [`BitVec`] of length `m.cols()` per basis vector.
pub fn nullspace(m: &BitMatrix) -> Vec<BitVec> {
    let reduced = row_reduce(m.clone());
    let cols = m.cols();
    let pivot_set: std::collections::HashSet<usize> = reduced.pivots.iter().copied().collect();
    let mut basis = Vec::new();
    for free in 0..cols {
        if pivot_set.contains(&free) {
            continue;
        }
        let mut v = BitVec::zeros(cols);
        v.set(free, true);
        for (row_idx, &p) in reduced.pivots.iter().enumerate() {
            if reduced.matrix.get(row_idx, free) {
                v.set(p, true);
            }
        }
        basis.push(v);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_of_identity() {
        assert_eq!(rank(&BitMatrix::identity(10)), 10);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let mut m = BitMatrix::zeros(3, 4);
        m.set(0, 0, true);
        m.set(1, 1, true);
        // row 2 = row 0 ⊕ row 1
        m.set(2, 0, true);
        m.set(2, 1, true);
        assert_eq!(rank(&m), 2);
    }

    #[test]
    fn rank_bounds_random() {
        let mut rng = StdRng::seed_from_u64(77);
        let m = BitMatrix::random(20, 67, &mut rng);
        let r = rank(&m);
        assert!(r <= 20);
        assert_eq!(rank(&m.transpose()), r);
    }

    #[test]
    fn in_row_space_detects_membership() {
        let mut m = BitMatrix::zeros(2, 3);
        m.set(0, 0, true);
        m.set(0, 1, true);
        m.set(1, 1, true);
        m.set(1, 2, true);
        let sum = BitVec::from_bools([true, false, true]); // row0 ⊕ row1
        assert!(in_row_space(&m, &sum));
        let not = BitVec::from_bools([false, false, true]);
        assert!(!in_row_space(&m, &not));
    }

    #[test]
    fn express_in_rows_finds_combination() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = BitMatrix::random(8, 30, &mut rng);
        // Construct v as a random XOR of rows and recover the combination.
        let select = BitVec::random(8, &mut rng);
        let mut v = BitVec::zeros(30);
        for r in select.iter_ones() {
            v.xor_assign(&m.row_bitvec(r));
        }
        let combo = express_in_rows(&m, &v).expect("must be expressible");
        let mut rebuilt = BitVec::zeros(30);
        for r in combo {
            rebuilt.xor_assign(&m.row_bitvec(r));
        }
        assert_eq!(rebuilt, v);
    }

    #[test]
    fn nullspace_vectors_annihilate() {
        let mut rng = StdRng::seed_from_u64(99);
        let m = BitMatrix::random(10, 25, &mut rng);
        let basis = nullspace(&m);
        assert_eq!(basis.len(), 25 - rank(&m));
        for v in basis {
            assert!(!m.mul_vec(&v).any(), "null space vector not annihilated");
        }
    }

    #[test]
    fn row_reduce_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = BitMatrix::random(12, 18, &mut rng);
        let e1 = row_reduce(m);
        let e2 = row_reduce(e1.matrix.clone());
        assert_eq!(e1.matrix, e2.matrix);
        assert_eq!(e1.pivots, e2.pivots);
    }
}
