//! Word-blocked bit-matrix transposition kernels.
//!
//! The 64×64 kernel is the classic recursive swap network (Hacker's Delight,
//! §7-3, widened to 64-bit words). Full-matrix transposition tiles the matrix
//! into 64×64 blocks, transposes each block with the kernel, and swaps the
//! block grid — the same structure Stim and SymPhase use for switching the
//! stabilizer tableau between row-major and column-major access (paper §4).
//!
//! [`transpose_packed`] dispatches the block kernel through [`crate::simd`]:
//! the outer swap scales (`j ≥ 4`) run over 256/512-bit lanes when the CPU
//! has them, bit-identical to the scalar [`transpose_64x64`] here.

use crate::word::Word;

/// Transposes a 64×64 bit-matrix in place.
///
/// `a[r]` holds row `r`; bit `c` of `a[r]` (little-endian) is the element at
/// `(r, c)`. After the call, `a[c]` bit `r` holds the old `(r, c)`.
///
/// ```
/// let mut m = [0u64; 64];
/// m[3] = 1 << 10;
/// symphase_bitmat::transpose::transpose_64x64(&mut m);
/// assert_eq!(m[10], 1 << 3);
/// ```
pub fn transpose_64x64(a: &mut [Word; 64]) {
    // Recursive block-swap network (Hacker's Delight §7-3), adapted to the
    // little-endian column convention used throughout this crate: at scale
    // `j`, the high bits of row `k` swap with the low bits of row `k+j`.
    let mut j: usize = 32;
    let mut m: Word = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k | j] ^= t;
            a[k] ^= t << j;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Transposes a rectangular bit-matrix given as row-major packed words.
///
/// `src` has `rows` rows of `src_stride` words each; the result has `cols`
/// rows of `dst_stride` words. Both strides must cover the respective bit
/// counts. Slack bits in `src` beyond `cols` are ignored; slack bits in the
/// output are zero.
///
/// # Panics
///
/// Panics if the slices are too small for the described shapes.
pub fn transpose_packed(
    src: &[Word],
    rows: usize,
    cols: usize,
    src_stride: usize,
    dst: &mut [Word],
    dst_stride: usize,
) {
    assert!(src_stride * 64 >= cols || rows == 0, "src stride too small");
    assert!(dst_stride * 64 >= rows || cols == 0, "dst stride too small");
    assert!(src.len() >= rows * src_stride, "src slice too small");
    assert!(dst.len() >= cols * dst_stride, "dst slice too small");
    dst.iter_mut().for_each(|w| *w = 0);

    let kernels = crate::simd::kernels();
    let block_rows = rows.div_ceil(64);
    let block_cols = cols.div_ceil(64);
    let mut block = [0 as Word; 64];
    for br in 0..block_rows {
        for bc in 0..block_cols {
            // Gather the 64×64 block at (br, bc); rows beyond `rows` are zero.
            for (i, b) in block.iter_mut().enumerate() {
                let r = br * 64 + i;
                *b = if r < rows {
                    src[r * src_stride + bc]
                } else {
                    0
                };
            }
            // Mask slack columns of the final block column so they cannot
            // leak into the output as phantom rows.
            if (bc + 1) * 64 > cols {
                let valid = cols - bc * 64;
                let mask = if valid == 64 { !0 } else { (1 << valid) - 1 };
                for b in block.iter_mut() {
                    *b &= mask;
                }
            }
            kernels.transpose_64x64(&mut block);
            // Scatter to the transposed block position (bc, br).
            for (i, b) in block.iter().enumerate() {
                let r = bc * 64 + i;
                if r < cols {
                    dst[r * dst_stride + br] = *b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_transpose_64(a: &[Word; 64]) -> [Word; 64] {
        let mut out = [0; 64];
        for (r, &row) in a.iter().enumerate() {
            for (c, out_row) in out.iter_mut().enumerate() {
                if (row >> c) & 1 == 1 {
                    *out_row |= 1 << r;
                }
            }
        }
        out
    }

    #[test]
    fn kernel_matches_naive_on_random_input() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let mut a: [Word; 64] = [0; 64];
            for w in a.iter_mut() {
                *w = rng.random();
            }
            let expected = naive_transpose_64(&a);
            let mut got = a;
            transpose_64x64(&mut got);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn kernel_is_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a: [Word; 64] = [0; 64];
        for w in a.iter_mut() {
            *w = rng.random();
        }
        let orig = a;
        transpose_64x64(&mut a);
        transpose_64x64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn kernel_identity_fixed_point() {
        let mut eye: [Word; 64] = [0; 64];
        for (i, w) in eye.iter_mut().enumerate() {
            *w = 1 << i;
        }
        let orig = eye;
        transpose_64x64(&mut eye);
        assert_eq!(eye, orig);
    }

    #[test]
    fn packed_rectangular_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let (rows, cols): (usize, usize) = (70, 130);
        let src_stride = cols.div_ceil(64);
        let dst_stride = rows.div_ceil(64);
        let mut src = vec![0 as Word; rows * src_stride];
        for w in src.iter_mut() {
            *w = rng.random();
        }
        // Canonicalize slack bits of each row.
        for r in 0..rows {
            let last = &mut src[r * src_stride + src_stride - 1];
            *last &= (1 << (cols % 64)) - 1;
        }
        let mut t = vec![0 as Word; cols * dst_stride];
        transpose_packed(&src, rows, cols, src_stride, &mut t, dst_stride);
        for r in 0..rows {
            for c in 0..cols {
                let orig = (src[r * src_stride + c / 64] >> (c % 64)) & 1;
                let tr = (t[c * dst_stride + r / 64] >> (r % 64)) & 1;
                assert_eq!(orig, tr, "mismatch at ({r},{c})");
            }
        }
        let mut back = vec![0 as Word; rows * src_stride];
        transpose_packed(&t, cols, rows, dst_stride, &mut back, src_stride);
        assert_eq!(src, back);
    }
}
