//! Blocked F₂ matrix multiplication: Method of Four Russians over shot
//! tiles.
//!
//! The Sampling step of the paper is the product `M · B` (Eq. (4)) where
//! `M` is the measurement matrix and `B` the symbol-assignment batch with
//! 64 shots packed per word. [`crate::BitMatrix::mul`] computes it row by
//! row, XORing one `B` row per set bit of `M` — fine when `M` is sparse,
//! but on dense circuits every output row costs `n_s / 2` row XORs.
//!
//! The Method of Four Russians (M4RM) cuts that by the group width: the
//! columns of `M` are processed in groups of `GROUP_BITS` = 8, and for
//! each group a 256-entry table of all XOR combinations of the group's 8
//! `B` rows is precomputed in Gray-code order (one row XOR per entry).
//! Every output row then pays **one** table lookup per group instead of up
//! to 8 row XORs. The shot dimension is tiled (`TILE_WORDS`) so the
//! active table stays cache-resident no matter how many shots a batch
//! carries, and the per-group decision between the table and the plain
//! gather is made adaptively from the group's population count, so the
//! blocked kernel never loses badly on sparse rows either.
//!
//! Two pre-layout passes keep the inner loop straight-line:
//!
//! * the multiplier's nonzero bytes are re-laid out group-major as
//!   `(row, byte)` pairs, so the per-tile inner loops touch only rows
//!   that actually contribute — sparse matrices cost what their nonzeros
//!   cost, never a full scan;
//! * when there are fewer shots than one machine word, row XORs move
//!   almost no data and the tables cannot amortize; [`mul_blocked`] then
//!   transposes both operands (via the word-blocked
//!   [`crate::transpose::transpose_packed`] kernels) and multiplies in
//!   shot-major order, where every XOR moves a full row of the *output*
//!   instead of a sliver of shots.
//!
//! All entry points are XOR-accumulating and bit-identical to
//! [`crate::BitMatrix::mul`]; the property tests in
//! `crates/bitmat/tests/properties.rs` pin that on ragged shapes.

use crate::word::{Word, WORD_BITS};
use crate::BitMatrix;

/// Column-group width of the Four-Russians tables.
const GROUP_BITS: usize = 8;

/// Entries of a full group table (`2^GROUP_BITS`).
const TABLE_LEN: usize = 1 << GROUP_BITS;

/// Words per shot tile: the Gray-code table spans `TABLE_LEN × TILE_WORDS`
/// words = 64 KiB — sized to stay cache-resident while still covering
/// 2048 shots per tile.
const TILE_WORDS: usize = 32;

/// Reusable scratch for the blocked kernel.
///
/// Allocation happens on first use and is amortized across calls: the
/// sampler keeps one scratch per sampling call (and the parallel sampling
/// path one per thread), so steady-state multiplication allocates nothing.
/// Every slab — the Gray-code table, the group pre-layout, and the
/// transpose buffers of the narrow-shot path — is sized to the maximum
/// shape seen and never shrinks, so chunked streams with a fixed shape
/// settle to zero allocations after the first chunk;
/// [`M4rScratch::alloc_events`] counts capacity growth so tests can pin
/// that.
#[derive(Clone, Debug, Default)]
pub struct M4rScratch {
    /// Gray-code combination table: `TABLE_LEN` entries of `TILE_WORDS`
    /// words each (only the first `tile_width` words of each entry are
    /// live).
    table: Vec<Word>,
    /// Running Gray-code accumulator (one table entry wide): consecutive
    /// Gray codes differ by one bit, so each table entry is `acc ^= one
    /// B row` streamed straight into its slot.
    acc: Vec<Word>,
    /// Group-major pre-layout of the multiplier's nonzero bytes:
    /// `(row, byte)` pairs sorted by group then row. Zero bytes — the
    /// overwhelming majority for sparse measurement matrices — never
    /// appear, so per-tile work is proportional to the nonzero count.
    entries: Vec<(u32, u8)>,
    /// `starts[g]..starts[g + 1]` spans group `g` in `entries`.
    starts: Vec<u32>,
    /// Total set bits per group (the adaptive table-vs-gather decision).
    pops: Vec<u32>,
    /// Groups dense enough for the Gray-code table (the rest gather
    /// directly at full width).
    table_groups: Vec<u32>,
    /// Narrow-shot path: reusable transpose of `a` (was a fresh
    /// allocation per call).
    at: BitMatrix,
    /// Narrow-shot path: reusable transpose of `b`.
    bt: BitMatrix,
    /// Narrow-shot path: reusable transposed product.
    tt: BitMatrix,
    /// Number of times any slab's backing capacity had to grow. Constant
    /// across calls ⇔ the calls allocated nothing.
    alloc_events: u64,
}

impl M4rScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of backing-buffer growth events since construction. A
    /// steady-state chunked stream (fixed shapes after warm-up) must keep
    /// this constant; tests pin that. The counter is a plain increment on
    /// the (rare) growth path — no assertions, no debug-only gating.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

/// `v.resize(len, fill)` with capacity-growth tracking.
fn resize_tracked<T: Copy>(v: &mut Vec<T>, len: usize, fill: T, allocs: &mut u64) {
    if len > v.capacity() {
        *allocs += 1;
    }
    v.resize(len, fill);
}

/// `out[.., window] ^= a · b` over F₂ with the blocked kernel.
///
/// The product is XOR-accumulated into the word-aligned column window of
/// `out` starting at `col_word_offset` (mirroring
/// [`crate::SparseRowMatrix::mul_dense_into`]), so shot-batched sampling
/// can write each batch straight into the full-width output.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`, if `out.rows() != a.rows()`, or if
/// the window does not fit within `out`'s stride.
pub fn mul_blocked_into(
    a: &BitMatrix,
    b: &BitMatrix,
    out: &mut BitMatrix,
    col_word_offset: usize,
    scratch: &mut M4rScratch,
) {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch in mul_blocked_into");
    assert_eq!(out.rows(), a.rows(), "output row count mismatch");
    let bstride = b.stride();
    let ostride = out.stride();
    assert!(
        col_word_offset + bstride <= ostride || b.cols() == 0,
        "window out of range"
    );
    let rows = a.rows();
    let groups = a.cols().div_ceil(GROUP_BITS);
    if rows == 0 || groups == 0 || b.cols() == 0 {
        return;
    }

    fill_entries(a, groups, scratch);
    let kernels = crate::simd::kernels();

    // Adaptive split, decided once per group: `pop` row XORs pay for the
    // direct gather, `build + one lookup per nonzero byte` for the
    // Gray-code table. Gather groups run here at full row width (tiling
    // would only add per-tile loop overhead to work that streams whole
    // rows anyway); table groups run tiled below for cache residency.
    let groups_cap = scratch.table_groups.capacity();
    scratch.table_groups.clear();
    for g in 0..groups {
        let es = &scratch.entries[scratch.starts[g] as usize..scratch.starts[g + 1] as usize];
        if es.is_empty() {
            continue;
        }
        let base = g * GROUP_BITS;
        let nbits = (b.rows() - base).min(GROUP_BITS);
        let build_cost = (1usize << nbits) - 1;
        if scratch.pops[g] as usize > build_cost + es.len() {
            scratch.table_groups.push(g as u32);
            continue;
        }
        for &(r, byte) in es {
            let mut bits = byte;
            let o = r as usize * ostride + col_word_offset;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                kernels.xor_into(&mut out.words_mut()[o..o + bstride], b.row(base + j));
            }
        }
    }
    if scratch.table_groups.capacity() != groups_cap {
        scratch.alloc_events += 1;
    }
    if scratch.table_groups.is_empty() {
        return;
    }

    resize_tracked(
        &mut scratch.table,
        TABLE_LEN * TILE_WORDS,
        0,
        &mut scratch.alloc_events,
    );
    resize_tracked(&mut scratch.acc, TILE_WORDS, 0, &mut scratch.alloc_events);
    let mut tile_start = 0;
    while tile_start < bstride {
        let tw = TILE_WORDS.min(bstride - tile_start);
        for &g in &scratch.table_groups {
            let g = g as usize;
            let es = &scratch.entries[scratch.starts[g] as usize..scratch.starts[g + 1] as usize];
            let base = g * GROUP_BITS;
            let nbits = (b.rows() - base).min(GROUP_BITS);
            build_gray_table(
                b,
                base,
                nbits,
                tile_start,
                tw,
                &mut scratch.table,
                &mut scratch.acc,
                kernels,
            );
            for &(r, byte) in es {
                let t = byte as usize * TILE_WORDS;
                let o = r as usize * ostride + col_word_offset + tile_start;
                kernels.xor_into(&mut out.words_mut()[o..o + tw], &scratch.table[t..t + tw]);
            }
        }
        tile_start += tw;
    }
}

/// F₂ matrix product `a · b` with the blocked kernel, reusing `scratch`.
///
/// Chooses the operand layout per shape: when `b` is narrower than one
/// machine word (and `a` tall enough for the transposes to pay), the
/// product is computed shot-major as `(bᵀ · aᵀ)ᵀ` — each XOR then moves a
/// full output row instead of a sub-word sliver of shots. Both transposes
/// run through the word-blocked [`crate::transpose::transpose_packed`]
/// kernel.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn mul_blocked_with(a: &BitMatrix, b: &BitMatrix, scratch: &mut M4rScratch) -> BitMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch in mul_blocked");
    if b.cols() > 0 && b.cols() < WORD_BITS && a.rows() >= 4 * WORD_BITS {
        // The three intermediate matrices live in the scratch (taken out
        // while `scratch` is also threaded through the multiply), so
        // repeated narrow-shot products of the same shape allocate only
        // the returned output.
        let mut at = std::mem::take(&mut scratch.at);
        let mut bt = std::mem::take(&mut scratch.bt);
        let mut tt = std::mem::take(&mut scratch.tt);
        scratch.alloc_events += u64::from(a.transpose_into(&mut at));
        scratch.alloc_events += u64::from(b.transpose_into(&mut bt));
        scratch.alloc_events += u64::from(tt.reset_zeros(b.cols(), a.rows()));
        mul_blocked_into(&bt, &at, &mut tt, 0, scratch);
        let out = tt.transpose();
        scratch.at = at;
        scratch.bt = bt;
        scratch.tt = tt;
        return out;
    }
    let mut out = BitMatrix::zeros(a.rows(), b.cols());
    mul_blocked_into(a, b, &mut out, 0, scratch);
    out
}

/// F₂ matrix product `a · b` with the blocked kernel (fresh scratch).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn mul_blocked(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    mul_blocked_with(a, b, &mut M4rScratch::new())
}

/// Pre-layout: collects the multiplier's nonzero bytes as group-major
/// `(row, byte)` pairs (`scratch.entries` spanned by `scratch.starts`)
/// and per-group popcounts. Two sequential passes over `a`; row slack
/// bits are zero by the [`BitMatrix`] invariant, so tail bytes never
/// reference nonexistent `b` rows.
fn fill_entries(a: &BitMatrix, groups: usize, scratch: &mut M4rScratch) {
    const BYTES_PER_WORD: usize = WORD_BITS / 8;
    let rows = a.rows();
    scratch.pops.clear();
    resize_tracked(&mut scratch.pops, groups, 0, &mut scratch.alloc_events);
    scratch.starts.clear();
    resize_tracked(
        &mut scratch.starts,
        groups + 1,
        0,
        &mut scratch.alloc_events,
    );
    // Pass 1: count nonzero bytes and set bits per group.
    for r in 0..rows {
        for (w, &word) in a.row(r).iter().enumerate() {
            if word == 0 {
                continue;
            }
            for j in 0..BYTES_PER_WORD {
                let g = w * BYTES_PER_WORD + j;
                if g >= groups {
                    break;
                }
                let byte = (word >> (8 * j)) as u8;
                if byte != 0 {
                    scratch.starts[g + 1] += 1;
                    scratch.pops[g] += byte.count_ones();
                }
            }
        }
    }
    for g in 0..groups {
        scratch.starts[g + 1] += scratch.starts[g];
    }
    // Pass 2: place the entries, using `starts[g]` as the group cursor
    // (rows stay ascending within a group). Afterwards `starts[g]` has
    // advanced to the old `starts[g + 1]`, so one shift restores it.
    let entry_count = scratch.starts[groups] as usize;
    resize_tracked(
        &mut scratch.entries,
        entry_count,
        (0, 0),
        &mut scratch.alloc_events,
    );
    for r in 0..rows {
        for (w, &word) in a.row(r).iter().enumerate() {
            if word == 0 {
                continue;
            }
            for j in 0..BYTES_PER_WORD {
                let g = w * BYTES_PER_WORD + j;
                if g >= groups {
                    break;
                }
                let byte = (word >> (8 * j)) as u8;
                if byte != 0 {
                    scratch.entries[scratch.starts[g] as usize] = (r as u32, byte);
                    scratch.starts[g] += 1;
                }
            }
        }
    }
    for g in (0..groups).rev() {
        scratch.starts[g + 1] = scratch.starts[g];
    }
    scratch.starts[0] = 0;
}

/// Fills `table` with every XOR combination of `b` rows
/// `base..base + nbits` restricted to the shot tile
/// `[tile_start, tile_start + tw)`. Entries are generated in Gray-code
/// order: consecutive codes differ by one bit, so the running accumulator
/// picks up one `b` row per entry and streams straight into its slot —
/// the XOR and the store are one fused SIMD pass per entry.
#[allow(clippy::too_many_arguments)]
fn build_gray_table(
    b: &BitMatrix,
    base: usize,
    nbits: usize,
    tile_start: usize,
    tw: usize,
    table: &mut [Word],
    acc: &mut [Word],
    kernels: crate::simd::Kernels,
) {
    let acc = &mut acc[..tw];
    acc.fill(0);
    table[..tw].fill(0);
    for i in 1..(1usize << nbits) {
        let bit = i.trailing_zeros() as usize;
        let src = &b.row(base + bit)[tile_start..tile_start + tw];
        let gray = (i ^ (i >> 1)) * TILE_WORDS;
        kernels.xor_accum_copy(acc, src, &mut table[gray..gray + tw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
        BitMatrix::from_fn(a.rows(), b.cols(), |r, c| {
            (0..a.cols()).fold(false, |acc, k| acc ^ (a.get(r, k) & b.get(k, c)))
        })
    }

    #[test]
    fn matches_mul_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 9, 70),
            (65, 64, 64),
            (130, 257, 300),
            (200, 40, 5000),
        ] {
            let a = BitMatrix::random(m, k, &mut rng);
            let b = BitMatrix::random(k, n, &mut rng);
            let blocked = mul_blocked(&a, &b);
            assert_eq!(blocked, a.mul(&b), "{m}x{k} · {k}x{n}");
            assert_eq!(blocked, naive(&a, &b), "{m}x{k} · {k}x{n} (naive)");
        }
    }

    #[test]
    fn narrow_shot_path_matches() {
        // b.cols() < 64 with tall a triggers the transposed shot-major
        // path.
        let mut rng = StdRng::seed_from_u64(18);
        let a = BitMatrix::random(400, 129, &mut rng);
        let b = BitMatrix::random(129, 17, &mut rng);
        assert_eq!(mul_blocked(&a, &b), a.mul(&b));
    }

    #[test]
    fn sparse_rows_take_the_gather_branch() {
        // Two set bits per row: pop per group is far below the table
        // build cost, so the adaptive branch gathers directly. Result must
        // be identical either way.
        let a = BitMatrix::from_fn(90, 900, |r, c| c == r || c == r + 517);
        let mut rng = StdRng::seed_from_u64(19);
        let b = BitMatrix::random(900, 200, &mut rng);
        assert_eq!(mul_blocked(&a, &b), a.mul(&b));
    }

    #[test]
    fn window_accumulates_in_place() {
        let mut rng = StdRng::seed_from_u64(20);
        let a = BitMatrix::random(10, 30, &mut rng);
        let b = BitMatrix::random(30, 64, &mut rng);
        let mut out = BitMatrix::zeros(10, 192);
        let mut scratch = M4rScratch::new();
        mul_blocked_into(&a, &b, &mut out, 1, &mut scratch);
        let reference = a.mul(&b);
        for r in 0..10 {
            for c in 0..64 {
                assert!(!out.get(r, c), "window must not touch cols before it");
                assert_eq!(out.get(r, 64 + c), reference.get(r, c));
                assert!(!out.get(r, 128 + c), "window must not touch cols after it");
            }
        }
        // Second accumulation cancels (XOR semantics).
        mul_blocked_into(&a, &b, &mut out, 1, &mut scratch);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn zero_sized_operands() {
        let a = BitMatrix::zeros(0, 10);
        let b = BitMatrix::zeros(10, 10);
        assert_eq!(mul_blocked(&a, &b).rows(), 0);
        let a = BitMatrix::zeros(10, 0);
        let b = BitMatrix::zeros(0, 10);
        assert_eq!(mul_blocked(&a, &b), BitMatrix::zeros(10, 10));
        let a = BitMatrix::zeros(10, 10);
        let b = BitMatrix::zeros(10, 0);
        assert_eq!(mul_blocked(&a, &b).cols(), 0);
    }

    #[test]
    fn scratch_is_reusable_across_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = M4rScratch::new();
        for &(m, k, n) in &[(40usize, 80usize, 100usize), (7, 7, 7), (100, 300, 65)] {
            let a = BitMatrix::random(m, k, &mut rng);
            let b = BitMatrix::random(k, n, &mut rng);
            assert_eq!(mul_blocked_with(&a, &b, &mut scratch), a.mul(&b));
        }
    }

    #[test]
    fn steady_state_chunked_stream_allocates_nothing() {
        // Chunk-shaped workload: one fixed measurement matrix multiplied
        // against a fresh symbol batch per chunk, accumulated into a
        // reused output — the shape `sample_seeded` streams. After the
        // warm-up chunk the scratch slabs are at their maximum shape and
        // every further chunk must be allocation-free.
        let mut rng = StdRng::seed_from_u64(23);
        let a = BitMatrix::random(300, 500, &mut rng);
        let mut out = BitMatrix::zeros(300, 4096);
        let mut scratch = M4rScratch::new();
        let b = BitMatrix::random(500, 4096, &mut rng);
        mul_blocked_into(&a, &b, &mut out, 0, &mut scratch);
        let after_warmup = scratch.alloc_events();
        assert!(after_warmup > 0, "warm-up must have grown the slabs");
        for seed in 0..5 {
            let b = BitMatrix::random(500, 4096, &mut StdRng::seed_from_u64(100 + seed));
            mul_blocked_into(&a, &b, &mut out, 0, &mut scratch);
            assert_eq!(
                scratch.alloc_events(),
                after_warmup,
                "steady-state chunk {seed} grew a scratch slab"
            );
        }
    }

    #[test]
    fn scratch_slabs_never_shrink_across_shapes() {
        // Largest shape first: every later (smaller) shape fits in the
        // slabs already grown, including the narrow-shot transpose path.
        let mut rng = StdRng::seed_from_u64(24);
        let shapes = [(400usize, 300usize, 200usize), (300, 129, 17), (64, 64, 64)];
        let mut scratch = M4rScratch::new();
        let (m, k, n) = shapes[0];
        let a = BitMatrix::random(m, k, &mut rng);
        let b = BitMatrix::random(k, n, &mut rng);
        // Warm the narrow path slabs too (shape 2 triggers it).
        let (m2, k2, n2) = shapes[1];
        let a2 = BitMatrix::random(m2, k2, &mut rng);
        let b2 = BitMatrix::random(k2, n2, &mut rng);
        mul_blocked_with(&a, &b, &mut scratch);
        mul_blocked_with(&a2, &b2, &mut scratch);
        let warm = scratch.alloc_events();
        for &(m, k, n) in &shapes[1..] {
            let a = BitMatrix::random(m, k, &mut rng);
            let b = BitMatrix::random(k, n, &mut rng);
            assert_eq!(mul_blocked_with(&a, &b, &mut scratch), a.mul(&b));
        }
        assert_eq!(
            scratch.alloc_events(),
            warm,
            "smaller shapes must reuse the grown slabs"
        );
    }

    #[test]
    fn spans_multiple_tiles() {
        // > TILE_WORDS * 64 shots forces at least two shot tiles.
        let mut rng = StdRng::seed_from_u64(22);
        let a = BitMatrix::random(70, 100, &mut rng);
        let b = BitMatrix::random(100, TILE_WORDS * WORD_BITS * 2 + 7, &mut rng);
        assert_eq!(mul_blocked(&a, &b), a.mul(&b));
    }
}
