//! Machine-word primitives shared by every packed-bit container.

/// The machine word all packed-bit containers are built from.
pub type Word = u64;

/// Number of bits in a [`Word`].
pub const WORD_BITS: usize = Word::BITS as usize;

/// Number of words needed to store `bits` bits.
///
/// ```
/// assert_eq!(symphase_bitmat::words_for(0), 0);
/// assert_eq!(symphase_bitmat::words_for(64), 1);
/// assert_eq!(symphase_bitmat::words_for(65), 2);
/// ```
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Mask selecting the valid bits of the last word of a `bits`-bit vector.
///
/// Returns the all-ones word when `bits` is a multiple of the word size
/// (including zero), because in that case the final word has no slack.
#[inline]
pub const fn tail_mask(bits: usize) -> Word {
    let rem = bits % WORD_BITS;
    if rem == 0 {
        !0
    } else {
        (1 << rem) - 1
    }
}

/// Splits a bit index into `(word_index, bit_within_word)`.
#[inline]
pub const fn split_index(bit: usize) -> (usize, u32) {
    (bit / WORD_BITS, (bit % WORD_BITS) as u32)
}

/// XORs `src` into `dst` word-by-word, dispatching to the widest
/// available SIMD level (see [`crate::simd`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_into(dst: &mut [Word], src: &[Word]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    crate::simd::kernels().xor_into(dst, src);
}

/// Total number of set bits in a word slice.
#[inline]
pub fn count_ones(words: &[Word]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(0), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), (1 << 63) - 1);
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(65), 1);
    }

    #[test]
    fn split_index_examples() {
        assert_eq!(split_index(0), (0, 0));
        assert_eq!(split_index(63), (0, 63));
        assert_eq!(split_index(64), (1, 0));
        assert_eq!(split_index(130), (2, 2));
    }

    #[test]
    fn xor_into_works() {
        let mut a = [0b1100u64, 0b1010];
        let b = [0b1010u64, 0b1010];
        xor_into(&mut a, &b);
        assert_eq!(a, [0b0110, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_into_length_mismatch_panics() {
        let mut a = [0u64; 2];
        xor_into(&mut a, &[0u64; 3]);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(count_ones(&[0b101, 0b11, 0]), 4);
        assert_eq!(count_ones(&[]), 0);
    }
}
