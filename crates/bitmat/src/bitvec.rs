//! A growable, 64-bit packed bit-vector.

use std::fmt;

use rand::Rng;

use crate::word::{count_ones, split_index, tail_mask, words_for, xor_into, Word, WORD_BITS};

/// A packed vector of bits, the basic container for tableau columns, phase
/// rows, and measurement records.
///
/// Bits beyond `len` inside the final word are kept zero (the *canonical
/// form*); every mutating operation restores this invariant, so word-level
/// comparisons and popcounts are exact.
///
/// # Example
///
/// ```
/// use symphase_bitmat::BitVec;
///
/// let mut v = BitVec::zeros(100);
/// v.set(3, true);
/// v.set(99, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 99]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<Word>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit-vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit-vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a bit-vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = Self::new();
        for b in bits {
            v.push(b);
        }
        v
    }

    /// Creates a bit-vector of `len` bits where bit `i` is `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a bit-vector of `len` uniformly random bits.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut v = Self::zeros(len);
        for w in v.words.iter_mut() {
            *w = rng.random();
        }
        v.canonicalize();
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        (self.words[w] >> b) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips bit `i` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = split_index(i);
        self.words[w] ^= 1 << b;
        (self.words[w] >> b) & 1 == 1
    }

    /// Appends a bit.
    pub fn push(&mut self, v: bool) {
        let i = self.len;
        self.resize(self.len + 1);
        if v {
            self.set(i, true);
        }
    }

    /// Resizes to `len` bits; new bits are zero, truncated bits are discarded.
    pub fn resize(&mut self, len: usize) {
        self.words.resize(words_for(len), 0);
        self.len = len;
        self.canonicalize();
    }

    /// Sets every bit to zero without changing the length.
    pub fn clear_bits(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Sets every bit to one.
    pub fn fill_ones(&mut self) {
        self.words.iter_mut().for_each(|w| *w = !0);
        self.canonicalize();
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        xor_into(&mut self.words, &other.words);
    }

    /// ANDs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d &= *s;
        }
    }

    /// ORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d |= *s;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        count_ones(&self.words)
    }

    /// `true` if any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Parity (XOR) of all bits.
    pub fn parity(&self) -> bool {
        self.words.iter().fold(0, |acc, w| acc ^ w).count_ones() % 2 == 1
    }

    /// Parity of `self AND other` — the F₂ inner product ⟨self, other⟩.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .fold(0u32, |acc, (a, b)| acc ^ (a & b).count_ones())
            % 2
            == 1
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Backing words (little-endian bit order within each word).
    #[inline]
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Mutable backing words.
    ///
    /// Callers that set bits beyond `len()` in the final word must restore
    /// the canonical form themselves (e.g. by masking with
    /// [`crate::word::tail_mask`]); all other methods assume it.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [Word] {
        &mut self.words
    }

    /// Zeroes any slack bits in the final word.
    #[inline]
    pub fn canonicalize(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for i in 0..self.len.min(256) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 256 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over set-bit indices of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    words: &'a [Word],
    word_idx: usize,
    current: Word,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_set_get() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(!v.get(0));
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BitVec::zeros(3);
        assert!(v.flip(1));
        assert!(!v.flip(1));
        assert!(!v.get(1));
    }

    #[test]
    fn push_and_from_bools() {
        let v = BitVec::from_bools([true, false, true, true]);
        assert_eq!(v.len(), 4);
        assert!(v.get(0) && !v.get(1) && v.get(2) && v.get(3));
        let collected: BitVec = (0..100).map(|i| i % 3 == 0).collect();
        assert_eq!(collected.count_ones(), 34);
    }

    #[test]
    fn resize_truncates_and_zero_extends() {
        let mut v = BitVec::from_bools((0..70).map(|_| true));
        v.resize(65);
        assert_eq!(v.count_ones(), 65);
        v.resize(70);
        assert_eq!(v.count_ones(), 65);
        assert!(!v.get(69));
    }

    #[test]
    fn xor_and_or_assign() {
        let a0 = BitVec::from_bools([true, true, false, false]);
        let b = BitVec::from_bools([true, false, true, false]);
        let mut a = a0.clone();
        a.xor_assign(&b);
        assert_eq!(a, BitVec::from_bools([false, true, true, false]));
        let mut a = a0.clone();
        a.and_assign(&b);
        assert_eq!(a, BitVec::from_bools([true, false, false, false]));
        let mut a = a0;
        a.or_assign(&b);
        assert_eq!(a, BitVec::from_bools([true, true, true, false]));
    }

    #[test]
    fn parity_and_dot() {
        let a = BitVec::from_bools([true, true, true, false]);
        assert!(a.parity());
        let b = BitVec::from_bools([true, true, false, false]);
        assert!(!b.parity());
        // ⟨a, b⟩ = 1·1 ⊕ 1·1 = 0
        assert!(!a.dot(&b));
        let c = BitVec::from_bools([true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn iter_ones_spans_words() {
        let mut v = BitVec::zeros(200);
        for &i in &[0, 63, 64, 127, 199] {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 199]);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(BitVec::zeros(100).iter_ones().count(), 0);
        assert_eq!(BitVec::new().iter_ones().count(), 0);
    }

    #[test]
    fn fill_ones_respects_tail() {
        let mut v = BitVec::zeros(67);
        v.fill_ones();
        assert_eq!(v.count_ones(), 67);
    }

    #[test]
    fn random_is_canonical() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = BitVec::random(67, &mut rng);
        assert_eq!(v.words().last().unwrap() >> 3, 0);
    }

    #[test]
    fn clear_bits_keeps_len() {
        let mut v = BitVec::from_bools((0..80).map(|_| true));
        v.clear_bits();
        assert_eq!(v.len(), 80);
        assert_eq!(v.count_ones(), 0);
    }
}
