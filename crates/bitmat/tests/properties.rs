//! Property tests for the F₂ linear-algebra substrate.

use proptest::prelude::*;

use symphase_bitmat::gauss::{express_in_rows, nullspace, rank, row_reduce};
use symphase_bitmat::layout::{ChpLayout, StimLayout, SymLayout512, TableauLayout};
use symphase_bitmat::simd;
use symphase_bitmat::{BitMatrix, BitVec, SparseBitVec};

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
}

fn bitmatrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    proptest::collection::vec(any::<bool>(), rows * cols)
        .prop_map(move |bits| BitMatrix::from_fn(rows, cols, |r, c| bits[r * cols + c]))
}

fn xor_matrices(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    BitMatrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) ^ b.get(r, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitvec_xor_is_involution(a in bitvec_strategy(150), b in bitvec_strategy(150)) {
        let mut x = a.clone();
        x.xor_assign(&b);
        x.xor_assign(&b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn bitvec_xor_commutes(a in bitvec_strategy(130), b in bitvec_strategy(130)) {
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut ba = b.clone();
        ba.xor_assign(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bitvec_iter_ones_roundtrip(a in bitvec_strategy(200)) {
        let rebuilt = BitVec::from_fn(200, |i| a.iter_ones().any(|j| j == i));
        prop_assert_eq!(rebuilt, a.clone());
        prop_assert_eq!(a.iter_ones().count(), a.count_ones());
    }

    #[test]
    fn bitvec_parity_is_popcount_mod_2(a in bitvec_strategy(170)) {
        prop_assert_eq!(a.parity(), a.count_ones() % 2 == 1);
    }

    #[test]
    fn dot_is_bilinear(
        a in bitvec_strategy(96),
        b in bitvec_strategy(96),
        c in bitvec_strategy(96),
    ) {
        let mut bc = b.clone();
        bc.xor_assign(&c);
        prop_assert_eq!(a.dot(&bc), a.dot(&b) ^ a.dot(&c));
    }

    #[test]
    fn transpose_is_involution(m in bitmatrix_strategy(37, 75)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_distributes_over_xor(
        a in bitmatrix_strategy(9, 20),
        b in bitmatrix_strategy(20, 13),
        c in bitmatrix_strategy(20, 13),
    ) {
        let left = a.mul(&xor_matrices(&b, &c));
        let right = xor_matrices(&a.mul(&b), &a.mul(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn transpose_reverses_products(
        a in bitmatrix_strategy(8, 18),
        b in bitmatrix_strategy(18, 11),
    ) {
        prop_assert_eq!(a.mul(&b).transpose(), b.transpose().mul(&a.transpose()));
    }

    #[test]
    fn rank_is_transpose_invariant(m in bitmatrix_strategy(14, 29)) {
        prop_assert_eq!(rank(&m), rank(&m.transpose()));
    }

    #[test]
    fn rank_bounds(m in bitmatrix_strategy(12, 33)) {
        let r = rank(&m);
        prop_assert!(r <= 12);
        let reduced = row_reduce(m.clone());
        prop_assert_eq!(reduced.rank(), r);
        // Pivots are strictly increasing columns.
        for w in reduced.pivots.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn rank_nullity_theorem(m in bitmatrix_strategy(11, 27)) {
        prop_assert_eq!(rank(&m) + nullspace(&m).len(), 27);
    }

    #[test]
    fn express_in_rows_reconstructs(
        m in bitmatrix_strategy(9, 24),
        select in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let mut v = BitVec::zeros(24);
        for (r, &s) in select.iter().enumerate() {
            if s {
                v.xor_assign(&m.row_bitvec(r));
            }
        }
        let combo = express_in_rows(&m, &v).expect("v is in the row space");
        let mut rebuilt = BitVec::zeros(24);
        for r in combo {
            rebuilt.xor_assign(&m.row_bitvec(r));
        }
        prop_assert_eq!(rebuilt, v);
    }

    #[test]
    fn sparse_tracks_dense(a in bitvec_strategy(180), b in bitvec_strategy(180)) {
        let mut sa = SparseBitVec::from_bitvec(&a);
        let sb = SparseBitVec::from_bitvec(&b);
        sa.xor_assign(&sb);
        let mut dense = a.clone();
        dense.xor_assign(&b);
        prop_assert_eq!(sa.to_bitvec(180), dense);
    }

    #[test]
    fn sparse_eval_matches_dot(a in bitvec_strategy(140), assign in bitvec_strategy(140)) {
        let s = SparseBitVec::from_bitvec(&a);
        prop_assert_eq!(s.eval(&assign), a.dot(&assign));
    }
}

/// Drives the same random operation schedule through a layout and a plain
/// `BitMatrix`, then compares.
fn layout_conformance<L: TableauLayout>(
    rows: usize,
    cols: usize,
    ops: &[(bool, usize, usize, bool)],
) {
    let mut layout = L::zeros(rows, cols);
    let mut reference = BitMatrix::zeros(rows, cols);
    // Seed some content deterministically.
    for r in 0..rows {
        for c in 0..cols {
            if (r * 31 + c * 17) % 5 == 0 {
                layout.set(r, c, true);
                reference.set(r, c, true);
            }
        }
    }
    for &(is_col, a, b, switch) in ops {
        if is_col {
            let (src, dst) = (a % cols, b % cols);
            if src == dst {
                continue;
            }
            layout.xor_col_into(src, dst);
            for r in 0..rows {
                let v = reference.get(r, dst) ^ reference.get(r, src);
                reference.set(r, dst, v);
            }
        } else {
            let (src, dst) = (a % rows, b % rows);
            if src == dst {
                continue;
            }
            layout.xor_row_into(src, dst);
            reference.xor_row_into(src, dst);
        }
        if switch {
            layout.ensure_row_mode();
        } else {
            layout.ensure_col_mode();
        }
    }
    assert_eq!(layout.to_bitmatrix(), reference, "{} diverged", L::NAME);
}

/// Per-element reference product (the slow, obviously-correct definition).
fn naive_mul(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    BitMatrix::from_fn(a.rows(), b.cols(), |r, c| {
        (0..a.cols()).fold(false, |acc, k| acc ^ (a.get(r, k) & b.get(k, c)))
    })
}

/// Ragged dimensions around the word-size boundaries the kernels block on:
/// 0, 1, and non-multiples of 8/64 must all round-trip.
fn ragged_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
        2usize..130,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked Four-Russians kernel is bit-identical to both the
    /// row-gather `mul` and the per-element naive product on ragged
    /// shapes (rows/cols not multiples of 64, including 0 and 1).
    #[test]
    fn mul_blocked_matches_mul_and_naive(
        case in (ragged_dim(), ragged_dim(), ragged_dim()).prop_flat_map(|(m, k, n)| {
            let abits = proptest::collection::vec(any::<bool>(), (m * k).max(1));
            let bbits = proptest::collection::vec(any::<bool>(), (k * n).max(1));
            (Just(m), Just(k), Just(n), abits, bbits)
        }),
    ) {
        let (m, k, n, abits, bbits) = case;
        let a = BitMatrix::from_fn(m, k, |r, c| abits[r * k + c]);
        let b = BitMatrix::from_fn(k, n, |r, c| bbits[r * n + c]);
        let blocked = a.mul_blocked(&b);
        prop_assert_eq!(&blocked, &a.mul(&b));
        prop_assert_eq!(&blocked, &naive_mul(&a, &b));
    }

    /// `mul_into` accumulates the same product into a word-aligned window
    /// of a wider output, reusing one scratch across calls.
    #[test]
    fn mul_into_window_matches(
        case in (1usize..40, ragged_dim()).prop_flat_map(|(m, k)| {
            (Just(m), Just(k), proptest::collection::vec(any::<bool>(), (m * k).max(1)))
        }),
        n in 1usize..100,
        window in 0usize..3,
    ) {
        let (m, k, bits) = case;
        let a = BitMatrix::from_fn(m, k, |r, c| bits[r * k + c]);
        let b = BitMatrix::from_fn(k, n, |r, c| (r + 2 * c) % 3 == 0);
        let mut out = BitMatrix::zeros(m, n + 64 * (window + 2));
        let mut scratch = symphase_bitmat::M4rScratch::new();
        symphase_bitmat::m4r::mul_blocked_into(&a, &b, &mut out, window, &mut scratch);
        let reference = a.mul(&b);
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(out.get(r, window * 64 + c), reference.get(r, c));
            }
        }
        // XOR-accumulation: a second multiply cancels the window.
        symphase_bitmat::m4r::mul_blocked_into(&a, &b, &mut out, window, &mut scratch);
        prop_assert_eq!(out.count_ones(), 0);
    }

    /// `transpose_packed` (via `BitMatrix::transpose`) round-trips on
    /// ragged shapes, including empty and single-bit edges.
    #[test]
    fn transpose_packed_roundtrips_ragged(
        case in (ragged_dim(), ragged_dim()).prop_flat_map(|(r, c)| {
            (Just(r), Just(c), proptest::collection::vec(any::<bool>(), (r * c).max(1)))
        }),
    ) {
        let (rows, cols, bits) = case;
        let m = BitMatrix::from_fn(rows, cols, |r, c| bits[r * cols + c]);
        let t = m.transpose();
        prop_assert_eq!(t.rows(), cols);
        prop_assert_eq!(t.cols(), rows);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
        prop_assert_eq!(t.transpose(), m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every SIMD dispatch level produces **bit-identical** results to the
    /// scalar reference for the full kernel surface: the blocked
    /// Four-Russians multiply (table + gather + narrow-shot transposed
    /// paths), the row-gather `mul`, `transpose_packed`, and the row
    /// AND-popcount behind `mul_vec`. The `SYMPHASE_SIMD` override and the
    /// bench `--simd` flag force exactly these levels, so this is the
    /// contract that makes forcing safe.
    #[test]
    fn kernels_bit_identical_across_simd_levels(
        case in (ragged_dim(), ragged_dim(), ragged_dim()).prop_flat_map(|(m, k, n)| {
            let abits = proptest::collection::vec(any::<bool>(), (m * k).max(1));
            let bbits = proptest::collection::vec(any::<bool>(), (k * n).max(1));
            (Just(m), Just(k), Just(n), abits, bbits)
        }),
    ) {
        let (m, k, n, abits, bbits) = case;
        let a = BitMatrix::from_fn(m, k, |r, c| abits[r * k + c]);
        let b = BitMatrix::from_fn(k, n, |r, c| bbits[r * n + c]);
        let v = BitVec::from_fn(k, |i| abits[i % abits.len()]);
        let reference = simd::with_level(simd::SimdLevel::Scalar, || {
            (a.mul_blocked(&b), a.mul(&b), a.transpose(), a.mul_vec(&v))
        });
        for level in simd::available_levels() {
            let got = simd::with_level(level, || {
                (a.mul_blocked(&b), a.mul(&b), a.transpose(), a.mul_vec(&v))
            });
            prop_assert_eq!(&got.0, &reference.0, "mul_blocked diverged at {}", level.name());
            prop_assert_eq!(&got.1, &reference.1, "mul diverged at {}", level.name());
            prop_assert_eq!(&got.2, &reference.2, "transpose diverged at {}", level.name());
            prop_assert_eq!(&got.3, &reference.3, "mul_vec diverged at {}", level.name());
        }
    }

    /// The narrow-shot transposed path (tall `a`, sub-word `b`) is also
    /// level-independent — it routes through `transpose_packed` twice, so
    /// it exercises the vectorized swap network hardest.
    #[test]
    fn narrow_shot_path_bit_identical_across_levels(
        rows in 256usize..400,
        cols in 1usize..63,
        seed in any::<u64>(),
    ) {
        let a = BitMatrix::from_fn(rows, 129, |r, c| {
            (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17)) ^ seed as usize).is_multiple_of(3)
        });
        let b = BitMatrix::from_fn(129, cols, |r, c| {
            (r.wrapping_mul(13).wrapping_add(c.wrapping_mul(7)) ^ seed as usize).is_multiple_of(2)
        });
        let reference = simd::with_level(simd::SimdLevel::Scalar, || a.mul_blocked(&b));
        for level in simd::available_levels() {
            let got = simd::with_level(level, || a.mul_blocked(&b));
            prop_assert_eq!(&got, &reference, "diverged at {}", level.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn layouts_conform(
        rows in 5usize..90,
        cols in 5usize..90,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<usize>(), any::<usize>(), any::<bool>()),
            1..40,
        ),
    ) {
        layout_conformance::<ChpLayout>(rows, cols, &ops);
        layout_conformance::<StimLayout>(rows, cols, &ops);
        layout_conformance::<SymLayout512>(rows, cols, &ops);
    }
}
