//! Property tests for the F₂ linear-algebra substrate.

use proptest::prelude::*;

use symphase_bitmat::gauss::{express_in_rows, nullspace, rank, row_reduce};
use symphase_bitmat::layout::{ChpLayout, StimLayout, SymLayout512, TableauLayout};
use symphase_bitmat::{BitMatrix, BitVec, SparseBitVec};

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(BitVec::from_bools)
}

fn bitmatrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = BitMatrix> {
    proptest::collection::vec(any::<bool>(), rows * cols)
        .prop_map(move |bits| BitMatrix::from_fn(rows, cols, |r, c| bits[r * cols + c]))
}

fn xor_matrices(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    BitMatrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) ^ b.get(r, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitvec_xor_is_involution(a in bitvec_strategy(150), b in bitvec_strategy(150)) {
        let mut x = a.clone();
        x.xor_assign(&b);
        x.xor_assign(&b);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn bitvec_xor_commutes(a in bitvec_strategy(130), b in bitvec_strategy(130)) {
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut ba = b.clone();
        ba.xor_assign(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn bitvec_iter_ones_roundtrip(a in bitvec_strategy(200)) {
        let rebuilt = BitVec::from_fn(200, |i| a.iter_ones().any(|j| j == i));
        prop_assert_eq!(rebuilt, a.clone());
        prop_assert_eq!(a.iter_ones().count(), a.count_ones());
    }

    #[test]
    fn bitvec_parity_is_popcount_mod_2(a in bitvec_strategy(170)) {
        prop_assert_eq!(a.parity(), a.count_ones() % 2 == 1);
    }

    #[test]
    fn dot_is_bilinear(
        a in bitvec_strategy(96),
        b in bitvec_strategy(96),
        c in bitvec_strategy(96),
    ) {
        let mut bc = b.clone();
        bc.xor_assign(&c);
        prop_assert_eq!(a.dot(&bc), a.dot(&b) ^ a.dot(&c));
    }

    #[test]
    fn transpose_is_involution(m in bitmatrix_strategy(37, 75)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_distributes_over_xor(
        a in bitmatrix_strategy(9, 20),
        b in bitmatrix_strategy(20, 13),
        c in bitmatrix_strategy(20, 13),
    ) {
        let left = a.mul(&xor_matrices(&b, &c));
        let right = xor_matrices(&a.mul(&b), &a.mul(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn transpose_reverses_products(
        a in bitmatrix_strategy(8, 18),
        b in bitmatrix_strategy(18, 11),
    ) {
        prop_assert_eq!(a.mul(&b).transpose(), b.transpose().mul(&a.transpose()));
    }

    #[test]
    fn rank_is_transpose_invariant(m in bitmatrix_strategy(14, 29)) {
        prop_assert_eq!(rank(&m), rank(&m.transpose()));
    }

    #[test]
    fn rank_bounds(m in bitmatrix_strategy(12, 33)) {
        let r = rank(&m);
        prop_assert!(r <= 12);
        let reduced = row_reduce(m.clone());
        prop_assert_eq!(reduced.rank(), r);
        // Pivots are strictly increasing columns.
        for w in reduced.pivots.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn rank_nullity_theorem(m in bitmatrix_strategy(11, 27)) {
        prop_assert_eq!(rank(&m) + nullspace(&m).len(), 27);
    }

    #[test]
    fn express_in_rows_reconstructs(
        m in bitmatrix_strategy(9, 24),
        select in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let mut v = BitVec::zeros(24);
        for (r, &s) in select.iter().enumerate() {
            if s {
                v.xor_assign(&m.row_bitvec(r));
            }
        }
        let combo = express_in_rows(&m, &v).expect("v is in the row space");
        let mut rebuilt = BitVec::zeros(24);
        for r in combo {
            rebuilt.xor_assign(&m.row_bitvec(r));
        }
        prop_assert_eq!(rebuilt, v);
    }

    #[test]
    fn sparse_tracks_dense(a in bitvec_strategy(180), b in bitvec_strategy(180)) {
        let mut sa = SparseBitVec::from_bitvec(&a);
        let sb = SparseBitVec::from_bitvec(&b);
        sa.xor_assign(&sb);
        let mut dense = a.clone();
        dense.xor_assign(&b);
        prop_assert_eq!(sa.to_bitvec(180), dense);
    }

    #[test]
    fn sparse_eval_matches_dot(a in bitvec_strategy(140), assign in bitvec_strategy(140)) {
        let s = SparseBitVec::from_bitvec(&a);
        prop_assert_eq!(s.eval(&assign), a.dot(&assign));
    }
}

/// Drives the same random operation schedule through a layout and a plain
/// `BitMatrix`, then compares.
fn layout_conformance<L: TableauLayout>(
    rows: usize,
    cols: usize,
    ops: &[(bool, usize, usize, bool)],
) {
    let mut layout = L::zeros(rows, cols);
    let mut reference = BitMatrix::zeros(rows, cols);
    // Seed some content deterministically.
    for r in 0..rows {
        for c in 0..cols {
            if (r * 31 + c * 17) % 5 == 0 {
                layout.set(r, c, true);
                reference.set(r, c, true);
            }
        }
    }
    for &(is_col, a, b, switch) in ops {
        if is_col {
            let (src, dst) = (a % cols, b % cols);
            if src == dst {
                continue;
            }
            layout.xor_col_into(src, dst);
            for r in 0..rows {
                let v = reference.get(r, dst) ^ reference.get(r, src);
                reference.set(r, dst, v);
            }
        } else {
            let (src, dst) = (a % rows, b % rows);
            if src == dst {
                continue;
            }
            layout.xor_row_into(src, dst);
            reference.xor_row_into(src, dst);
        }
        if switch {
            layout.ensure_row_mode();
        } else {
            layout.ensure_col_mode();
        }
    }
    assert_eq!(layout.to_bitmatrix(), reference, "{} diverged", L::NAME);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn layouts_conform(
        rows in 5usize..90,
        cols in 5usize..90,
        ops in proptest::collection::vec(
            (any::<bool>(), any::<usize>(), any::<usize>(), any::<bool>()),
            1..40,
        ),
    ) {
        layout_conformance::<ChpLayout>(rows, cols, &ops);
        layout_conformance::<StimLayout>(rows, cols, &ops);
        layout_conformance::<SymLayout512>(rows, cols, &ops);
    }
}
