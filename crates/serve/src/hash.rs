//! Content hashing for the circuit cache: a pure-`std` SHA-256 and the
//! [`CircuitHash`] the serve cache keys on.
//!
//! The cache key is the SHA-256 of the parsed circuit's canonical
//! [`Display`](std::fmt::Display) form — not of the raw file bytes — so
//! whitespace/comment-equivalent circuit files share one cache entry,
//! and any client that can parse a circuit can predict its key offline
//! (`symphase hash -c FILE`). SHA-256 (rather than a fast 64-bit hash)
//! because a key collision in a content-addressed cache would silently
//! serve samples of the *wrong circuit*; at 256 bits that failure mode is
//! off the table.

use symphase_circuit::Circuit;

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 (FIPS 180-4), implemented over `std` only —
/// the build environment has no crates.io access, and the serve cache
/// needs a collision-resistant key.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    /// Total message bytes absorbed.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let take = bytes.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len < 64 {
                return; // input exhausted; remainder stays buffered
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while bytes.len() >= 64 {
            let (block, rest) = bytes.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            bytes = rest;
        }
        self.buf[..bytes.len()].copy_from_slice(bytes);
        self.buf_len = bytes.len();
    }

    /// Pads, finalizes, and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length words are part of the final block; bypass `update`'s
        // total accounting (already captured above).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `bytes`.
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize()
}

/// The canonical content hash of a circuit — SHA-256 of its canonical
/// `Display` form. This is the serve cache key and the payload of
/// by-hash requests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CircuitHash(pub [u8; 32]);

impl CircuitHash {
    /// Lowercase hex, 64 chars — the `symphase hash` output line.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            use std::fmt::Write as _;
            write!(s, "{b:02x}").expect("string write");
        }
        s
    }

    /// Parses 64 hex chars (case-insensitive).
    pub fn from_hex(hex: &str) -> Option<CircuitHash> {
        let hex = hex.trim();
        if hex.len() != 64 || !hex.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in hex.as_bytes().chunks_exact(2).enumerate() {
            let s = std::str::from_utf8(pair).ok()?;
            out[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(CircuitHash(out))
    }
}

impl std::fmt::Display for CircuitHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl std::fmt::Debug for CircuitHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CircuitHash({})", self.to_hex())
    }
}

/// The content hash of `circuit`: SHA-256 of its canonical `Display`
/// rendering. Two source files that parse to the same circuit (different
/// whitespace, comments, argument spelling) hash identically.
pub fn circuit_hash(circuit: &Circuit) -> CircuitHash {
    CircuitHash(sha256(circuit.to_string().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        CircuitHash(sha256(bytes)).to_hex()
    }

    #[test]
    fn sha256_fips_vectors() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A million 'a's, fed in awkward increments to exercise buffering.
        let mut h = Sha256::new();
        let chunk = [b'a'; 997];
        let mut left = 1_000_000;
        while left > 0 {
            let take = left.min(chunk.len());
            h.update(&chunk[..take]);
            left -= take;
        }
        assert_eq!(
            CircuitHash(h.finalize()).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_across_split_points() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 + 3) as u8).collect();
        let whole = sha256(&data);
        for split in [0, 1, 63, 64, 65, 128, 200, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let h = CircuitHash(sha256(b"round trip"));
        assert_eq!(CircuitHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(CircuitHash::from_hex(&h.to_hex().to_uppercase()), Some(h));
        assert_eq!(CircuitHash::from_hex("abc"), None);
        assert_eq!(CircuitHash::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn equivalent_sources_share_a_hash_and_distinct_circuits_do_not() {
        let a = Circuit::parse("H 0\nCX 0 1\nM 0 1\n").expect("parse");
        let b = Circuit::parse("# a comment\n  H   0\n\nCX 0 1   # tail\nM 0 1").expect("parse");
        let c = Circuit::parse("H 0\nCX 0 1\nM 1 0\n").expect("parse");
        assert_eq!(circuit_hash(&a), circuit_hash(&b));
        assert_ne!(circuit_hash(&a), circuit_hash(&c));
    }
}
