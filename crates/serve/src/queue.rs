//! A bounded MPMC queue with non-blocking producers — the backpressure
//! primitive between the accept loop and the worker pool.
//!
//! The accept loop calls [`BoundedQueue::try_push`], which **never
//! blocks**: when the queue is full the connection comes straight back so
//! the server can answer with a `BUSY` frame instead of letting latency
//! pile up invisibly. Workers block in [`BoundedQueue::pop`] until work
//! arrives or the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded queue: non-blocking `try_push`, blocking `pop`, cooperative
/// close for shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed —
    /// the caller decides what backpressure looks like (a BUSY frame).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// **and** drained (workers finish queued requests before exiting).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: producers are refused, consumers drain and exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_at_capacity_and_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(4).is_ok());
        q.close();
        assert_eq!(q.try_push(5), Err(5));
        // Close drains before ending.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for v in 0..10 {
            // Producers spin on backpressure in this test; the server's
            // accept loop would answer BUSY instead.
            let mut item = v;
            while let Err(back) = q.try_push(item) {
                item = back;
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
