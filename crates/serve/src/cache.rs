//! The content-hash LRU circuit cache.
//!
//! SymPhase front-loads all the expensive work into symbolic
//! initialization; after that, sampling is a cheap F₂ product. The cache
//! exploits that asymmetry: a circuit is parsed and each engine's sampler
//! is built **once**, keyed by the canonical content hash
//! ([`crate::hash::circuit_hash`]), and every later request for the same
//! (circuit, engine) pair reuses the initialized `Arc<dyn Sampler>` —
//! workers sample from it concurrently without re-initialization.
//!
//! Eviction is LRU at circuit granularity: one entry holds the parsed
//! circuit plus up to one sampler per engine, and the least recently
//! *used* entry (any engine) is evicted when the capacity is exceeded.
//! Hit/miss counters are exposed for the stats frame and are pinned by
//! the warm-cache e2e tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use symphase_backend::{EngineKind, Sampler};
use symphase_circuit::Circuit;

use crate::hash::CircuitHash;

/// Why [`CircuitCache::get_or_build`] failed.
#[derive(Debug)]
pub enum CacheError<E> {
    /// A by-hash request named a circuit that is not (or no longer) cached.
    UnknownHash,
    /// The caller's build closure failed (parse passed, construction
    /// didn't) — carries the caller's error.
    Build(E),
}

struct Entry {
    circuit: Circuit,
    /// One slot per [`EngineKind::ALL`] position; built on first use.
    samplers: [Option<Arc<dyn Sampler>>; EngineKind::ALL.len()],
    /// LRU clock value of the last touch.
    last_used: u64,
}

struct Inner {
    map: HashMap<CircuitHash, Entry>,
    clock: u64,
}

/// A bounded, thread-safe circuit → sampler cache (see module docs).
pub struct CircuitCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CircuitCache {
    /// A cache holding at most `capacity` circuits (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Requests that found their (circuit, engine) sampler already built.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to build (and cache) a sampler.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Circuits currently cached.
    pub fn entries(&self) -> u64 {
        self.inner.lock().expect("cache lock").map.len() as u64
    }

    /// The sampler for `(hash, engine)`, building and caching it on miss.
    ///
    /// * `circuit` supplies the parsed circuit when the caller has one (a
    ///   by-text request); `None` means the caller only knows the hash,
    ///   and a missing entry is [`CacheError::UnknownHash`].
    /// * `build` runs at most once, under the cache lock — concurrent
    ///   requests for the same circuit therefore initialize it exactly
    ///   once and every other worker waits for the warm sampler instead
    ///   of duplicating the work.
    ///
    /// Returns the sampler and whether it was a cache **hit** (sampler
    /// already initialized).
    pub fn get_or_build<E>(
        &self,
        hash: CircuitHash,
        circuit: Option<Circuit>,
        engine: EngineKind,
        build: impl FnOnce(&Circuit) -> Result<Box<dyn Sampler>, E>,
    ) -> Result<(Arc<dyn Sampler>, bool), CacheError<E>> {
        let slot = EngineKind::ALL
            .iter()
            .position(|k| *k == engine)
            .expect("EngineKind::ALL is complete");
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.map.get_mut(&hash) {
            entry.last_used = clock;
            if let Some(sampler) = &entry.samplers[slot] {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(sampler), true));
            }
            let sampler: Arc<dyn Sampler> =
                Arc::from(build(&entry.circuit).map_err(CacheError::Build)?);
            entry.samplers[slot] = Some(Arc::clone(&sampler));
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((sampler, false));
        }
        let circuit = circuit.ok_or(CacheError::UnknownHash)?;
        let sampler: Arc<dyn Sampler> = Arc::from(build(&circuit).map_err(CacheError::Build)?);
        let mut entry = Entry {
            circuit,
            samplers: Default::default(),
            last_used: clock,
        };
        entry.samplers[slot] = Some(Arc::clone(&sampler));
        inner.map.insert(hash, entry);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if inner.map.len() > self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(h, _)| *h)
                .expect("cache over capacity implies nonempty");
            inner.map.remove(&victim);
        }
        Ok((sampler, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::circuit_hash;
    use symphase_backend::SampleBatch;

    struct NullSampler;
    impl Sampler for NullSampler {
        fn name(&self) -> &'static str {
            "null"
        }
        fn num_measurements(&self) -> usize {
            0
        }
        fn num_detectors(&self) -> usize {
            0
        }
        fn num_observables(&self) -> usize {
            0
        }
        fn sample_into(&self, _batch: &mut SampleBatch, _rng: &mut dyn rand::RngCore) {}
    }

    fn circ(text: &str) -> (CircuitHash, Circuit) {
        let c = Circuit::parse(text).expect("parse");
        (circuit_hash(&c), c)
    }

    fn build_ok(_c: &Circuit) -> Result<Box<dyn Sampler>, String> {
        Ok(Box::new(NullSampler))
    }

    #[test]
    fn second_request_hits_and_counters_track() {
        let cache = CircuitCache::new(4);
        let (h, c) = circ("H 0\nM 0\n");
        let (_, hit) = cache
            .get_or_build(h, Some(c.clone()), EngineKind::Frame, build_ok)
            .expect("build");
        assert!(!hit);
        // Same engine: hit. Different engine on the same circuit: a miss
        // that builds into the existing entry — by hash only, no text.
        let (_, hit) = cache
            .get_or_build::<String>(h, None, EngineKind::Frame, |_| {
                panic!("must not rebuild on hit")
            })
            .expect("hit");
        assert!(hit);
        let (_, hit) = cache
            .get_or_build(h, None, EngineKind::Tableau, build_ok)
            .expect("build");
        assert!(!hit);
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (1, 2, 1));
    }

    #[test]
    fn unknown_hash_is_typed_and_counts_nothing() {
        let cache = CircuitCache::new(4);
        let (h, _) = circ("H 0\nM 0\n");
        match cache.get_or_build(h, None, EngineKind::Frame, build_ok) {
            Err(CacheError::UnknownHash) => {}
            other => panic!("want UnknownHash, got {:?}", other.map(|(_, hit)| hit)),
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn build_failure_is_not_cached() {
        let cache = CircuitCache::new(4);
        let (h, c) = circ("H 0\nM 0\n");
        let r = cache.get_or_build(h, Some(c.clone()), EngineKind::Frame, |_| {
            Err::<Box<dyn Sampler>, _>("too big".to_string())
        });
        assert!(matches!(r, Err(CacheError::Build(ref m)) if m == "too big"));
        assert_eq!(cache.entries(), 0);
        // A later good build still works.
        let (_, hit) = cache
            .get_or_build(h, Some(c), EngineKind::Frame, build_ok)
            .expect("build");
        assert!(!hit);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_circuit() {
        let cache = CircuitCache::new(2);
        let (ha, ca) = circ("H 0\nM 0\n");
        let (hb, cb) = circ("H 1\nM 1\n");
        let (hc, cc) = circ("H 2\nM 2\n");
        cache
            .get_or_build(ha, Some(ca), EngineKind::Frame, build_ok)
            .expect("a");
        cache
            .get_or_build(hb, Some(cb), EngineKind::Frame, build_ok)
            .expect("b");
        // Touch A so B becomes the LRU victim when C arrives.
        cache
            .get_or_build(ha, None, EngineKind::Frame, build_ok)
            .expect("a again");
        cache
            .get_or_build(hc, Some(cc), EngineKind::Frame, build_ok)
            .expect("c");
        assert_eq!(cache.entries(), 2);
        assert!(matches!(
            cache.get_or_build(hb, None, EngineKind::Frame, build_ok),
            Err(CacheError::UnknownHash)
        ));
        let (_, hit) = cache
            .get_or_build(ha, None, EngineKind::Frame, build_ok)
            .expect("a cached");
        assert!(hit, "A must have survived eviction");
    }
}
