//! The `symphase request` client: one connection, one request, one
//! streamed (or typed-error) response.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    copy_stream, read_error_message, read_response_head, write_request, ErrorCode, Request,
    ResponseHead, SampleRequest, StatsReply, WireError,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Protocol(String),
    /// The server answered with a typed error frame — including `Busy`,
    /// which callers treat as "retry later".
    Server {
        /// The typed code.
        code: ErrorCode,
        /// The server's diagnostic text.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{}]: {message}", code.name())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Malformed(m) => ClientError::Protocol(m),
        }
    }
}

impl ClientError {
    /// Whether this is the server's backpressure signal.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

/// What a successful sample request reports alongside the payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleReply {
    /// Whether the server found the (circuit, engine) sampler cached.
    pub cache_hit: bool,
    /// Records per shot under the requested source.
    pub rows: u64,
    /// Shots streamed (`end - start`).
    pub shots: u64,
    /// Formatted payload bytes written to `out`.
    pub bytes: u64,
}

fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpStream> {
    let conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    Ok(conn)
}

/// Sends `request` to `addr`, streaming the formatted sample payload into
/// `out`. The payload bytes are exactly what the offline CLI would write
/// for the same (circuit, seed, range, format, source).
pub fn request_sample(
    addr: impl ToSocketAddrs,
    request: &SampleRequest,
    out: &mut dyn Write,
) -> Result<SampleReply, ClientError> {
    let conn = connect(addr)?;
    let mut w = BufWriter::new(conn.try_clone()?);
    write_request(&mut w, &Request::Sample(request.clone()))?;
    w.flush()?;
    drop(w);
    let mut r = BufReader::with_capacity(128 * 1024, conn);
    match read_response_head(&mut r)? {
        ResponseHead::Stream {
            cache_hit,
            rows,
            shots,
        } => {
            let bytes = copy_stream(&mut r, out)?;
            Ok(SampleReply {
                cache_hit,
                rows,
                shots,
                bytes,
            })
        }
        ResponseHead::Error { code } => {
            let message = read_error_message(&mut r)?;
            Err(ClientError::Server { code, message })
        }
        ResponseHead::Stats(_) => Err(ClientError::Protocol(
            "stats reply to a sample request".into(),
        )),
    }
}

/// Fetches the server's counters.
pub fn request_stats(addr: impl ToSocketAddrs) -> Result<StatsReply, ClientError> {
    let mut conn = connect(addr)?;
    write_request(&mut conn, &Request::Stats)?;
    conn.flush()?;
    match read_response_head(&mut BufReader::new(&mut conn))? {
        ResponseHead::Stats(stats) => Ok(stats),
        ResponseHead::Error { .. } => Err(ClientError::Protocol(
            "error reply to a stats request".into(),
        )),
        ResponseHead::Stream { .. } => Err(ClientError::Protocol(
            "stream reply to a stats request".into(),
        )),
    }
}

/// A raw connection that deliberately never sends a request — it occupies
/// a queue slot (and, once popped, a worker) until dropped or timed out.
/// This is how tests and the CI smoke fill the queue to make `BUSY`
/// deterministic; `_guard`-style ownership keeps the socket open.
pub struct HeldConnection {
    conn: TcpStream,
}

impl HeldConnection {
    /// Connects without sending anything.
    pub fn open(addr: impl ToSocketAddrs) -> io::Result<HeldConnection> {
        Ok(HeldConnection {
            conn: connect(addr)?,
        })
    }

    /// Reads the server's response, if any — a held connection that got
    /// rejected at admission receives a `BUSY` frame.
    pub fn read_reply(mut self) -> Result<(ErrorCode, String), ClientError> {
        let head = read_response_head(&mut self.conn)?;
        match head {
            ResponseHead::Error { code } => {
                let message = read_error_message(&mut self.conn)?;
                Ok((code, message))
            }
            other => Err(ClientError::Protocol(format!(
                "expected an error frame on a held connection, got {other:?}"
            ))),
        }
    }
}
