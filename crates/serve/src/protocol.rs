//! The `SPH1` length-prefixed binary wire protocol.
//!
//! All multi-byte integers are **little-endian**, matching the `b8`
//! sample format (`docs/formats.md`). One connection carries one request
//! and one response; framing is self-delimiting so either side can sit
//! behind a buffering transport.
//!
//! # Request
//!
//! ```text
//! magic      [4]  b"SPH1"
//! kind       u8   1 = sample by circuit text, 2 = sample by hash, 3 = stats
//! -- kinds 1 and 2 only --
//! engine     u8   index into EngineKind::ALL
//! source     u8   0 = M, 1 = D, 2 = L, 3 = D+L        (RecordSource)
//! format     u8   index into SampleFormat::ALL (counts is rejected)
//! seed       u64
//! start      u64  first shot of the requested range (chunk-aligned)
//! end        u64  one past the last shot (= the request's total shots)
//! payload    u32 len + bytes: UTF-8 circuit text (kind 1) or the
//!                 32-byte content hash (kind 2, len must be 32)
//! ```
//!
//! # Response
//!
//! ```text
//! magic      [4]  b"SPH1"
//! status     u8   0 = sample stream, 1 = stats, >=2 = error (ErrorCode)
//! -- status 0 --
//! cache_hit  u8   1 if the (circuit, engine) sampler was already cached
//! rows       u64  records per shot under the requested source
//! shots      u64  end - start
//! frames:    tag u8 = 1: u32 len + len bytes of formatted sample data
//!            tag u8 = 2: u32 len = 8 + u64 total payload bytes (final)
//! -- status 1 --
//! hits misses entries served busy   5 × u64 counters
//! -- status >= 2 --
//! message    u32 len + UTF-8 diagnostic
//! ```
//!
//! The chunk boundaries of tag-1 frames are a transport detail (a server
//! may split anywhere); the **concatenated payload** is the contract, and
//! it is byte-identical to the same format/source/range written locally
//! by `symphase sample`/`detect`.

use std::io::{self, Read, Write};

use symphase_backend::formats::{RecordSource, SampleFormat};
use symphase_backend::EngineKind;

use crate::hash::CircuitHash;

/// Protocol magic, first bytes of every request and response.
pub const MAGIC: [u8; 4] = *b"SPH1";

/// Response status byte for a sample stream.
pub const STATUS_OK: u8 = 0;
/// Response status byte for a stats reply.
pub const STATUS_STATS: u8 = 1;

/// Frame tag: sample payload chunk.
pub const FRAME_DATA: u8 = 1;
/// Frame tag: end of stream (payload = total byte count).
pub const FRAME_END: u8 = 2;

/// Typed error statuses (the response status byte, values `>= 2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The bounded request queue was full; retry later.
    Busy = 2,
    /// The request did not parse (bad magic, short read, bad enum byte).
    Malformed = 3,
    /// The circuit text did not parse.
    Parse = 4,
    /// `build_sampler` rejected the (circuit, config) pair.
    Build = 5,
    /// A by-hash request named a circuit the cache has never seen.
    UnknownHash = 6,
    /// The shot range is inverted or its start is not chunk-aligned.
    BadRange = 7,
    /// The request asked for something the wire cannot carry (the
    /// aggregated `counts` format).
    Unsupported = 8,
    /// The server's `--lint` gate rejected the circuit.
    Lint = 9,
    /// Unexpected server-side failure.
    Internal = 10,
}

impl ErrorCode {
    /// Every code, for decode.
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::Busy,
        ErrorCode::Malformed,
        ErrorCode::Parse,
        ErrorCode::Build,
        ErrorCode::UnknownHash,
        ErrorCode::BadRange,
        ErrorCode::Unsupported,
        ErrorCode::Lint,
        ErrorCode::Internal,
    ];

    /// Stable lowercase name (client-side display).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Parse => "parse",
            ErrorCode::Build => "build",
            ErrorCode::UnknownHash => "unknown-hash",
            ErrorCode::BadRange => "bad-range",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Lint => "lint",
            ErrorCode::Internal => "internal",
        }
    }

    /// Decodes a response status byte.
    pub fn from_status(status: u8) -> Option<ErrorCode> {
        Self::ALL.into_iter().find(|c| *c as u8 == status)
    }
}

/// How a sample request names its circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitRef {
    /// Full circuit text; the server parses, hashes, and caches it.
    Text(String),
    /// Content hash of a circuit the server is expected to have cached.
    Hash(CircuitHash),
}

/// A decoded sample request (kinds 1 and 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleRequest {
    /// The circuit, by text or by content hash.
    pub circuit: CircuitRef,
    /// Engine to sample with.
    pub engine: EngineKind,
    /// Which record rows to stream.
    pub source: RecordSource,
    /// Serialization format (the aggregated `counts` is rejected).
    pub format: SampleFormat,
    /// Base RNG seed; chunk `i` of the global schedule draws from
    /// `chunk_seed(seed, i)` regardless of the requested range.
    pub seed: u64,
    /// First shot of the range (must be a multiple of the server's chunk
    /// width).
    pub start: u64,
    /// One past the last shot — equal to the total shots of the logical
    /// request the range is a window of.
    pub end: u64,
}

/// Any decoded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Stream a shot range.
    Sample(SampleRequest),
    /// Report cache/queue counters.
    Stats,
}

/// Server counters carried by a stats reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Cache hits: requests that found their (circuit, engine) sampler
    /// already initialized.
    pub hits: u64,
    /// Cache misses: requests that had to build a sampler.
    pub misses: u64,
    /// Circuits currently cached.
    pub entries: u64,
    /// Requests answered (any status except BUSY).
    pub served: u64,
    /// Connections rejected with a BUSY frame.
    pub busy: u64,
}

/// A malformed frame, distinguished from transport `io::Error`.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport failure.
    Io(io::Error),
    /// The bytes violated the protocol; human-readable reason.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// Caps the length prefix of a request payload (circuit text): 64 MiB —
/// far beyond any real circuit file, small enough that a corrupt length
/// cannot drive an allocation bomb.
pub const MAX_PAYLOAD: u32 = 64 << 20;

// ---- primitive reads/writes ------------------------------------------

pub(crate) fn write_u32(w: &mut dyn Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64(w: &mut dyn Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u8(r: &mut dyn Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

pub(crate) fn read_u32(r: &mut dyn Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64(r: &mut dyn Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_magic(r: &mut dyn Read) -> Result<(), WireError> {
    let mut m = [0u8; 4];
    r.read_exact(&mut m)?;
    if m != MAGIC {
        return Err(malformed(format!("bad magic {m:02x?}, want \"SPH1\"")));
    }
    Ok(())
}

// ---- enum codes ------------------------------------------------------

const SOURCES: [RecordSource; 4] = [
    RecordSource::Measurements,
    RecordSource::Detectors,
    RecordSource::Observables,
    RecordSource::DetectorsAndObservables,
];

fn engine_code(engine: EngineKind) -> u8 {
    EngineKind::ALL
        .iter()
        .position(|k| *k == engine)
        .expect("EngineKind::ALL is complete") as u8
}

fn source_code(source: RecordSource) -> u8 {
    SOURCES
        .iter()
        .position(|s| *s == source)
        .expect("SOURCES is complete") as u8
}

fn format_code(format: SampleFormat) -> u8 {
    SampleFormat::ALL
        .iter()
        .position(|f| *f == format)
        .expect("SampleFormat::ALL is complete") as u8
}

// ---- request encode/decode -------------------------------------------

/// Writes `request` (unflushed) to `w`.
pub fn write_request(w: &mut dyn Write, request: &Request) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    match request {
        Request::Stats => w.write_all(&[3]),
        Request::Sample(s) => {
            let kind = match &s.circuit {
                CircuitRef::Text(_) => 1u8,
                CircuitRef::Hash(_) => 2u8,
            };
            w.write_all(&[
                kind,
                engine_code(s.engine),
                source_code(s.source),
                format_code(s.format),
            ])?;
            write_u64(w, s.seed)?;
            write_u64(w, s.start)?;
            write_u64(w, s.end)?;
            match &s.circuit {
                CircuitRef::Text(text) => {
                    write_u32(w, text.len() as u32)?;
                    w.write_all(text.as_bytes())
                }
                CircuitRef::Hash(h) => {
                    write_u32(w, 32)?;
                    w.write_all(&h.0)
                }
            }
        }
    }
}

/// Reads one request from `r`.
pub fn read_request(r: &mut dyn Read) -> Result<Request, WireError> {
    read_magic(r)?;
    let kind = read_u8(r)?;
    if kind == 3 {
        return Ok(Request::Stats);
    }
    if kind != 1 && kind != 2 {
        return Err(malformed(format!("unknown request kind {kind}")));
    }
    let engine_b = read_u8(r)?;
    let engine = *EngineKind::ALL
        .get(engine_b as usize)
        .ok_or_else(|| malformed(format!("unknown engine code {engine_b}")))?;
    let source_b = read_u8(r)?;
    let source = *SOURCES
        .get(source_b as usize)
        .ok_or_else(|| malformed(format!("unknown record-source code {source_b}")))?;
    let format_b = read_u8(r)?;
    let format = *SampleFormat::ALL
        .get(format_b as usize)
        .ok_or_else(|| malformed(format!("unknown format code {format_b}")))?;
    let seed = read_u64(r)?;
    let start = read_u64(r)?;
    let end = read_u64(r)?;
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(malformed(format!(
            "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let circuit = if kind == 1 {
        let mut text = vec![0u8; len as usize];
        r.read_exact(&mut text)?;
        CircuitRef::Text(
            String::from_utf8(text).map_err(|e| malformed(format!("circuit text: {e}")))?,
        )
    } else {
        if len != 32 {
            return Err(malformed(format!(
                "hash payload must be 32 bytes, got {len}"
            )));
        }
        let mut h = [0u8; 32];
        r.read_exact(&mut h)?;
        CircuitRef::Hash(CircuitHash(h))
    };
    Ok(Request::Sample(SampleRequest {
        circuit,
        engine,
        source,
        format,
        seed,
        start,
        end,
    }))
}

// ---- response encode/decode ------------------------------------------

/// Writes a typed error response (flushes).
pub fn write_error(w: &mut dyn Write, code: ErrorCode, message: &str) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[code as u8])?;
    write_u32(w, message.len() as u32)?;
    w.write_all(message.as_bytes())?;
    w.flush()
}

/// Writes a stats response (flushes).
pub fn write_stats(w: &mut dyn Write, stats: &StatsReply) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[STATUS_STATS])?;
    for v in [
        stats.hits,
        stats.misses,
        stats.entries,
        stats.served,
        stats.busy,
    ] {
        write_u64(w, v)?;
    }
    w.flush()
}

/// Writes the fixed header of a sample stream (tag-1/tag-2 frames follow).
pub fn write_ok_header(
    w: &mut dyn Write,
    cache_hit: bool,
    rows: u64,
    shots: u64,
) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&[STATUS_OK, cache_hit as u8])?;
    write_u64(w, rows)?;
    write_u64(w, shots)
}

/// The decoded header of a response, before any stream payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseHead {
    /// A sample stream follows as tag-1 data frames ending in tag-2.
    Stream {
        /// Whether the server found the sampler cached.
        cache_hit: bool,
        /// Records per shot.
        rows: u64,
        /// Shots in the range.
        shots: u64,
    },
    /// A stats reply (fully decoded — stats carry no stream).
    Stats(StatsReply),
    /// A typed error.
    Error {
        /// The error code.
        code: ErrorCode,
    },
}

/// Reads a response header. For `ResponseHead::Error` the caller should
/// next call [`read_error_message`]; for `Stream`, [`copy_stream`].
pub fn read_response_head(r: &mut dyn Read) -> Result<ResponseHead, WireError> {
    read_magic(r)?;
    let status = read_u8(r)?;
    if status == STATUS_OK {
        let cache_hit = match read_u8(r)? {
            0 => false,
            1 => true,
            other => return Err(malformed(format!("bad cache_hit byte {other}"))),
        };
        let rows = read_u64(r)?;
        let shots = read_u64(r)?;
        return Ok(ResponseHead::Stream {
            cache_hit,
            rows,
            shots,
        });
    }
    if status == STATUS_STATS {
        let mut vals = [0u64; 5];
        for v in &mut vals {
            *v = read_u64(r)?;
        }
        let [hits, misses, entries, served, busy] = vals;
        return Ok(ResponseHead::Stats(StatsReply {
            hits,
            misses,
            entries,
            served,
            busy,
        }));
    }
    match ErrorCode::from_status(status) {
        Some(code) => Ok(ResponseHead::Error { code }),
        None => Err(malformed(format!("unknown response status {status}"))),
    }
}

/// Reads the message that follows an error status.
pub fn read_error_message(r: &mut dyn Read) -> Result<String, WireError> {
    let len = read_u32(r)?;
    if len > MAX_PAYLOAD {
        return Err(malformed(format!("error message length {len} too large")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| malformed(format!("error message: {e}")))
}

/// Copies a tag-framed sample stream from `r` into `out`, returning the
/// total payload bytes after validating the tag-2 trailer against the
/// bytes actually copied.
pub fn copy_stream(r: &mut dyn Read, out: &mut dyn Write) -> Result<u64, WireError> {
    let mut total: u64 = 0;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let tag = read_u8(r)?;
        let len = read_u32(r)?;
        match tag {
            FRAME_DATA => {
                if len > MAX_PAYLOAD {
                    return Err(malformed(format!("data frame length {len} too large")));
                }
                let mut left = len as usize;
                while left > 0 {
                    let take = left.min(buf.len());
                    r.read_exact(&mut buf[..take])?;
                    out.write_all(&buf[..take])?;
                    left -= take;
                }
                total += len as u64;
            }
            FRAME_END => {
                if len != 8 {
                    return Err(malformed(format!("end frame length {len}, want 8")));
                }
                let declared = read_u64(r)?;
                if declared != total {
                    return Err(malformed(format!(
                        "stream truncated: end frame declares {declared} bytes, received {total}"
                    )));
                }
                return Ok(total);
            }
            other => return Err(malformed(format!("unknown frame tag {other}"))),
        }
    }
}

/// An `io::Write` that packages bytes into tag-1 data frames, flushing a
/// frame whenever the internal buffer fills. [`ChunkFrameWriter::end`]
/// emits the tag-2 trailer. Format sinks write into this to put their
/// byte stream on the wire unchanged.
pub struct ChunkFrameWriter<'w> {
    w: &'w mut dyn Write,
    buf: Vec<u8>,
    frame_len: usize,
    total: u64,
}

impl<'w> ChunkFrameWriter<'w> {
    /// Frames bytes onto `w`, buffering up to about `frame_len` per data
    /// frame (a single larger write becomes a single larger frame).
    pub fn new(w: &'w mut dyn Write, frame_len: usize) -> Self {
        let frame_len = frame_len.max(1);
        Self {
            w,
            buf: Vec::with_capacity(frame_len),
            frame_len,
            total: 0,
        }
    }

    fn flush_frame(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.w.write_all(&[FRAME_DATA])?;
        write_u32(self.w, self.buf.len() as u32)?;
        self.w.write_all(&self.buf)?;
        self.total += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes any buffered frame and writes the tag-2 trailer (flushes
    /// the underlying writer).
    pub fn end(mut self) -> io::Result<u64> {
        self.flush_frame()?;
        self.w.write_all(&[FRAME_END])?;
        write_u32(self.w, 8)?;
        write_u64(self.w, self.total)?;
        self.w.flush()?;
        Ok(self.total)
    }
}

impl Write for ChunkFrameWriter<'_> {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= self.frame_len {
            self.flush_frame()?;
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Deliberately NOT frame-flushing here: format sinks flush at
        // finish, and tiny trailing frames would fragment the stream. The
        // trailer path (`end`) performs the real flush.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Stats,
            Request::Sample(SampleRequest {
                circuit: CircuitRef::Text("H 0\nM 0\n".into()),
                engine: EngineKind::Frame,
                source: RecordSource::DetectorsAndObservables,
                format: SampleFormat::B8,
                seed: 0xDEAD_BEEF,
                start: 4096,
                end: 10_000,
            }),
            Request::Sample(SampleRequest {
                circuit: CircuitRef::Hash(CircuitHash(sha256(b"x"))),
                engine: EngineKind::StateVec,
                source: RecordSource::Measurements,
                format: SampleFormat::Plain01,
                seed: 7,
                start: 0,
                end: 1,
            }),
        ];
        for req in reqs {
            let mut wire = Vec::new();
            write_request(&mut wire, &req).expect("encode");
            let got = read_request(&mut wire.as_slice()).expect("decode");
            assert_eq!(got, req);
        }
    }

    #[test]
    fn malformed_requests_are_typed_not_io() {
        // Bad magic.
        let e = read_request(&mut &b"NOPE\x03"[..]).unwrap_err();
        assert!(matches!(e, WireError::Malformed(_)), "{e}");
        // Unknown engine code.
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.extend_from_slice(&[1, 200, 0, 0]);
        wire.extend_from_slice(&[0; 24]); // seed/start/end
        wire.extend_from_slice(&0u32.to_le_bytes());
        let e = read_request(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(e, WireError::Malformed(_)), "{e}");
        // Truncated stream is Io, not Malformed.
        let e = read_request(&mut &MAGIC[..]).unwrap_err();
        assert!(matches!(e, WireError::Io(_)), "{e}");
    }

    #[test]
    fn error_and_stats_round_trip() {
        let mut wire = Vec::new();
        write_error(&mut wire, ErrorCode::BadRange, "start 3 unaligned").expect("encode");
        let mut r = wire.as_slice();
        match read_response_head(&mut r).expect("decode") {
            ResponseHead::Error { code } => {
                assert_eq!(code, ErrorCode::BadRange);
                assert_eq!(
                    read_error_message(&mut r).expect("msg"),
                    "start 3 unaligned"
                );
            }
            other => panic!("unexpected head {other:?}"),
        }

        let stats = StatsReply {
            hits: 5,
            misses: 2,
            entries: 2,
            served: 7,
            busy: 1,
        };
        let mut wire = Vec::new();
        write_stats(&mut wire, &stats).expect("encode");
        assert_eq!(
            read_response_head(&mut wire.as_slice()).expect("decode"),
            ResponseHead::Stats(stats)
        );
    }

    #[test]
    fn frame_writer_stream_round_trips() {
        // Frame the bytes with a tiny frame budget (forcing many frames),
        // then copy the stream back out: payload and totals must match.
        let payload: Vec<u8> = (0u32..10_000).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        write_ok_header(&mut wire, true, 3, 100).expect("header");
        {
            let mut fw = ChunkFrameWriter::new(&mut wire, 64);
            use std::io::Write as _;
            fw.write_all(&payload).expect("frame");
            assert_eq!(fw.end().expect("end"), payload.len() as u64);
        }
        let mut r = wire.as_slice();
        match read_response_head(&mut r).expect("head") {
            ResponseHead::Stream {
                cache_hit,
                rows,
                shots,
            } => {
                assert!(cache_hit);
                assert_eq!((rows, shots), (3, 100));
            }
            other => panic!("unexpected head {other:?}"),
        }
        let mut out = Vec::new();
        let total = copy_stream(&mut r, &mut out).expect("copy");
        assert_eq!(total, payload.len() as u64);
        assert_eq!(out, payload);
        assert!(r.is_empty(), "trailing bytes after end frame");
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut wire = Vec::new();
        {
            let mut fw = ChunkFrameWriter::new(&mut wire, 16);
            use std::io::Write as _;
            for piece in [16, 16, 8] {
                fw.write_all(&vec![7u8; piece]).expect("frame");
            }
            fw.end().expect("end");
        }
        // Drop the first data frame (tag 1 + len u32 + 16 bytes = 21 bytes):
        // the end trailer still declares 40 payload bytes, only 24 arrive.
        let cut: Vec<u8> = wire[21..].to_vec();
        let e = copy_stream(&mut cut.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(
            matches!(&e, WireError::Malformed(m) if m.contains("truncated")),
            "{e}"
        );
    }
}
