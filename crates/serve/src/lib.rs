//! Sampling-as-a-service for SymPhase: the `symphase serve` daemon and
//! the `symphase request` client, over `std::net` only.
//!
//! The SymPhase cost model (FangY24) front-loads all expensive work into
//! one symbolic initialization; after that, sampling is an embarrassingly
//! parallel F₂ product. This crate turns that asymmetry into a service
//! boundary:
//!
//! * [`hash`] — the canonical content hash ([`CircuitHash`], SHA-256 of
//!   the parsed circuit's `Display` form) that keys the cache and lets
//!   clients resend only a 32-byte hash after the first request;
//! * [`protocol`] — the `SPH1` length-prefixed binary wire protocol:
//!   sample requests (by text or hash, with engine/source/format/seed and
//!   a shot range), streamed data frames reusing the `formats` sinks
//!   byte-for-byte, typed error frames, and a stats frame;
//! * [`cache`] — the LRU circuit cache: parse + build (+ optional
//!   optimize/lint) happen once per (circuit, engine); later requests
//!   reuse the initialized `Arc<dyn Sampler>`;
//! * [`queue`] — the bounded request queue whose overflow becomes a
//!   `BUSY` frame (backpressure is explicit, not silent latency);
//! * [`server`] / [`client`] — the daemon (accept loop + worker pool)
//!   and the one-shot client calls.
//!
//! # Determinism contract
//!
//! A request names a shot range `[start, end)` of a logical `end`-shot
//! run. `start` must be a multiple of the server's chunk width; every
//! chunk is then seeded by its **global** schedule index
//! (`chunk_seed(seed, global_chunk)`), so the streamed bytes are
//! identical to the same window of a local `symphase sample -n end`
//! run — whoever computes them, at whatever thread count, across however
//! many concurrent connections. Disjoint chunk-aligned ranges
//! concatenate exactly: `[0,N)` + `[N,2N)` == `[0,2N)`. See
//! `docs/serve.md` for the full spec.

pub mod cache;
pub mod client;
pub mod hash;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheError, CircuitCache};
pub use client::{request_sample, request_stats, ClientError, HeldConnection, SampleReply};
pub use hash::{circuit_hash, sha256, CircuitHash, Sha256};
pub use protocol::{CircuitRef, ErrorCode, Request, SampleRequest, StatsReply};
pub use queue::BoundedQueue;
pub use server::{LintGate, SamplerFactory, ServeOptions, Server, ServerHandle};
