//! The sampling daemon: accept loop, bounded queue, worker pool.
//!
//! Architecture (one connection = one request = one response):
//!
//! ```text
//! accept loop ──try_push──▶ BoundedQueue ──pop──▶ worker × N
//!      │ full?                                       │
//!      ▼                                             ▼
//!   BUSY frame                        read request → cache → stream range
//! ```
//!
//! The accept thread never reads from a connection, so a slow (or
//! malicious) client cannot stall admission; it only enqueues the raw
//! socket or answers `BUSY` when the queue is full. Workers own the whole
//! request lifecycle under a read timeout. Within one request, sampling
//! fans out over the vendored work-stealing rayon pool according to the
//! server's `--threads` budget — and because every chunk is seeded by its
//! *global* schedule index, the bytes served for a (circuit, seed, range)
//! are identical however the work is split (see
//! `symphase_backend::stream_range_with_config`).

use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use symphase_backend::formats::SampleFormat;
use symphase_backend::sink::ShotSpec;
use symphase_backend::{stream_range_with_config, BuildError, Sampler, SimConfig, CHUNK_SHOTS};
use symphase_circuit::Circuit;

use crate::cache::{CacheError, CircuitCache};
use crate::hash::circuit_hash;
use crate::protocol::{
    read_request, write_error, write_ok_header, write_stats, ChunkFrameWriter, CircuitRef,
    ErrorCode, Request, SampleRequest, StatsReply, WireError,
};
use crate::queue::BoundedQueue;

/// Builds a sampler for a cached circuit — injected by the binary so this
/// crate never depends on the engine crates (the facade's
/// `backend::build_sampler` is the production factory).
pub type SamplerFactory =
    Arc<dyn Fn(&Circuit, &SimConfig) -> Result<Box<dyn Sampler>, BuildError> + Send + Sync>;

/// An optional admission gate run before a circuit's first sampler build
/// (the CLI's `--lint` wires `symphase_analysis` in here); `Err` text is
/// returned to the client in a `Lint` error frame.
pub type LintGate = Arc<dyn Fn(&Circuit) -> Result<(), String> + Send + Sync>;

/// Server tuning knobs (every one surfaced as a `symphase serve` flag).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling requests (each may fan sampling out
    /// further per `threads`).
    pub workers: usize,
    /// Queued connections admitted beyond the ones being worked; the
    /// next connection gets a `BUSY` frame.
    pub max_queue: usize,
    /// Circuits kept initialized in the LRU cache.
    pub cache_capacity: usize,
    /// Per-request sampling thread budget (`0` = all cores, `1` =
    /// serial), passed through to `stream_range_with_config`.
    pub threads: usize,
    /// Chunk width in shots; range starts must be multiples of this.
    pub chunk_shots: usize,
    /// Run the verified optimizer once per circuit before caching.
    pub optimize: bool,
    /// Per-connection read timeout (a stalled client frees its worker).
    pub read_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_queue: 32,
            cache_capacity: 64,
            threads: 0,
            chunk_shots: CHUNK_SHOTS,
            optimize: false,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

struct Shared {
    cache: CircuitCache,
    queue: BoundedQueue<TcpStream>,
    options: ServeOptions,
    factory: SamplerFactory,
    lint: Option<LintGate>,
    served: AtomicU64,
    busy: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats(&self) -> StatsReply {
        StatsReply {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            entries: self.cache.entries(),
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread (the CLI path); [`Server::spawn`] runs everything on background
/// threads and returns a [`ServerHandle`] (the test and bench path).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7app` or `127.0.0.1:0` for an
    /// ephemeral test port) with the given options and sampler factory.
    pub fn bind(
        addr: impl ToSocketAddrs,
        options: ServeOptions,
        factory: SamplerFactory,
        lint: Option<LintGate>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: CircuitCache::new(options.cache_capacity),
            queue: BoundedQueue::new(options.max_queue),
            options,
            factory,
            lint,
            served: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (reports the ephemeral port after `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn spawn_workers(&self) -> Vec<JoinHandle<()>> {
        (0..self.shared.options.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || {
                    while let Some(conn) = shared.queue.pop() {
                        handle_conn(&shared, conn);
                    }
                })
            })
            .collect()
    }

    /// Runs the server on the calling thread until the process dies (the
    /// `symphase serve` CLI path: lifetime management is the caller's —
    /// CI kills the daemon; interactive users hit Ctrl-C).
    pub fn run(self) -> io::Result<()> {
        let workers = self.spawn_workers();
        let result = accept_loop(&self.listener, &self.shared);
        self.shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        result
    }

    /// Runs the accept loop and workers on background threads, returning
    /// a handle that can stop them cleanly.
    pub fn spawn(self) -> ServerHandle {
        let workers = self.spawn_workers();
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) -> io::Result<()> {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let conn = match conn {
            Ok(c) => c,
            // Transient per-connection failures must not kill the daemon.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if let Err(mut conn) = shared.queue.try_push(conn) {
            shared.busy.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(
                &mut conn,
                ErrorCode::Busy,
                "request queue full; retry later",
            );
        }
    }
    Ok(())
}

/// A running server; dropping the handle **without** calling
/// [`ServerHandle::shutdown`] leaks the background threads (they keep
/// serving), so tests should always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<io::Result<()>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters (the same numbers a stats request reports).
    pub fn stats(&self) -> StatsReply {
        self.shared.stats()
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let accept_result = match self.accept.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("accept thread panicked"))),
            None => Ok(()),
        };
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        accept_result
    }
}

/// One request lifecycle on a worker thread. All response errors are
/// best-effort: a client that hung up mid-reply is not a server problem.
fn handle_conn(shared: &Shared, mut conn: TcpStream) {
    let _ = conn.set_read_timeout(shared.options.read_timeout);
    let _ = conn.set_nodelay(true);
    match read_request(&mut conn) {
        // Transport failure before a full request: nothing to answer.
        Err(WireError::Io(_)) => {}
        Err(WireError::Malformed(m)) => {
            let _ = write_error(&mut conn, ErrorCode::Malformed, &m);
        }
        Ok(Request::Stats) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            let _ = write_stats(&mut conn, &shared.stats());
        }
        Ok(Request::Sample(req)) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            let mut out = BufWriter::with_capacity(128 * 1024, conn);
            if let Err(Reject { code, message }) = serve_sample(shared, &mut out, &req) {
                // Reach the raw socket again: the rejection must not sit
                // behind an unflushed buffer.
                let _ = out.flush();
                if let Ok(conn) = out.into_inner() {
                    let mut conn = conn;
                    let _ = write_error(&mut conn, code, &message);
                }
            }
        }
    }
}

/// A typed rejection: becomes an error frame on the wire.
struct Reject {
    code: ErrorCode,
    message: String,
}

fn reject(code: ErrorCode, message: impl Into<String>) -> Reject {
    Reject {
        code,
        message: message.into(),
    }
}

fn serve_sample<W: Write>(shared: &Shared, out: &mut W, req: &SampleRequest) -> Result<(), Reject> {
    if req.format == SampleFormat::Counts {
        return Err(reject(
            ErrorCode::Unsupported,
            "the aggregated 'counts' format is not streamable over the wire; \
             request '01', 'b8', 'hits', or 'dets' and aggregate client-side",
        ));
    }
    let chunk_shots = shared.options.chunk_shots;
    let (start, end) = (req.start, req.end);
    if start > end {
        return Err(reject(
            ErrorCode::BadRange,
            format!("inverted shot range [{start}, {end})"),
        ));
    }
    if start % (chunk_shots as u64) != 0 {
        return Err(reject(
            ErrorCode::BadRange,
            format!(
                "shot-range start {start} is not a multiple of the server's \
                 chunk width {chunk_shots}; unaligned starts would break \
                 byte-identity with the full-run chunk schedule"
            ),
        ));
    }
    let (start, end) = match (usize::try_from(start), usize::try_from(end)) {
        (Ok(s), Ok(e)) => (s, e),
        _ => return Err(reject(ErrorCode::BadRange, "shot range exceeds usize")),
    };
    let (hash, parsed) = match &req.circuit {
        CircuitRef::Text(text) => {
            let circuit = Circuit::parse(text)
                .map_err(|e| reject(ErrorCode::Parse, format!("circuit did not parse: {e}")))?;
            (circuit_hash(&circuit), Some(circuit))
        }
        CircuitRef::Hash(h) => (*h, None),
    };
    let config = SimConfig::new()
        .with_engine(req.engine)
        .with_seed(req.seed)
        .with_threads(shared.options.threads)
        .with_chunk_shots(chunk_shots)
        .with_optimize(shared.options.optimize);
    let (sampler, cache_hit) = shared
        .cache
        .get_or_build(hash, parsed, req.engine, |circuit| {
            if let Some(lint) = &shared.lint {
                lint(circuit).map_err(|m| reject(ErrorCode::Lint, m))?;
            }
            (shared.factory)(circuit, &config).map_err(|e| reject(ErrorCode::Build, e.to_string()))
        })
        .map_err(|e| match e {
            CacheError::UnknownHash => reject(
                ErrorCode::UnknownHash,
                format!("no cached circuit with hash {hash}; send the circuit text once"),
            ),
            CacheError::Build(r) => r,
        })?;
    let shots = end - start;
    let rows = req.source.rows(&ShotSpec::of(&*sampler, shots)) as u64;
    // From here on every failure is transport i/o: the client is gone and
    // there is nobody to send an error frame to.
    let mut stream = || -> io::Result<()> {
        write_ok_header(out, cache_hit, rows, shots as u64)?;
        let mut frames = ChunkFrameWriter::new(out, 256 * 1024);
        {
            let mut sink = req.format.sink(&mut frames, req.source);
            stream_range_with_config(&*sampler, start, end, &config, sink.as_mut())?;
        }
        frames.end()?;
        Ok(())
    };
    stream().map_err(|e| reject(ErrorCode::Internal, format!("stream aborted: {e}")))
}
