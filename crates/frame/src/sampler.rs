//! The Stim-style batch sampler: reference sample + frame propagation.

use rand::{Rng, RngCore};

use symphase_backend::{record, SampleBatch, Sampler};
use symphase_bitmat::{BitMatrix, BitVec, Word};
use symphase_circuit::{pauli_product_plan, Circuit, Instruction, NoiseChannel, PauliKind};
use symphase_tableau::reference_sample;

use crate::batch::FrameBatch;

/// A measurement sampler that propagates Pauli frames per shot, exactly the
/// architecture the paper's Table 1 attributes to Stim.
///
/// Construction ("initializing the sampler" in Fig. 3) runs one noiseless
/// tableau simulation to obtain the reference sample. Each
/// [`FrameSampler::sample`] call then traverses the circuit once **per
/// batch**, with per-shot cost proportional to circuit size — the cost that
/// `symphase-core`'s Algorithm 1 replaces with a matrix multiplication.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::ghz;
/// use symphase_frame::FrameSampler;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let sampler = FrameSampler::new(&ghz(3));
/// let s = sampler.sample(128, &mut StdRng::seed_from_u64(2));
/// assert_eq!(s.rows(), 3);
/// assert_eq!(s.cols(), 128);
/// ```
#[derive(Clone, Debug)]
pub struct FrameSampler {
    circuit: Circuit,
    reference: BitVec,
    det_sets: Vec<Vec<usize>>,
    obs_sets: Vec<Vec<usize>>,
}

impl FrameSampler {
    /// Builds the sampler: computes the noiseless reference sample with the
    /// tableau simulator.
    pub fn new(circuit: &Circuit) -> Self {
        Self {
            circuit: circuit.clone(),
            reference: reference_sample(circuit),
            det_sets: record::detector_measurement_sets(circuit),
            obs_sets: record::observable_measurement_sets(circuit),
        }
    }

    /// The noiseless reference sample.
    pub fn reference(&self) -> &BitVec {
        &self.reference
    }

    /// Samples `shots` measurement records; the result is
    /// measurement-major (`num_measurements × shots`).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> BitMatrix {
        let nm = self.circuit.num_measurements();
        let mut out = BitMatrix::zeros(nm, shots);
        self.sample_measurements_into(&mut out, rng);
        out
    }

    /// Propagates one frame batch, writing measurement records into `out`
    /// (`num_measurements × shots`, zeroed by the caller).
    fn sample_measurements_into(&self, out: &mut BitMatrix, rng: &mut impl Rng) {
        let n = self.circuit.num_qubits() as usize;
        let shots = out.cols();
        let mut frame = FrameBatch::new(n, shots, rng);
        let mut measured = 0usize;
        // Correlated-chain fire mask, owned across chain elements.
        let mut chain: Vec<Word> = Vec::new();

        for inst in self.circuit.flat_instructions() {
            match inst {
                Instruction::Gate { gate, targets } => frame.apply_gate(*gate, targets),
                Instruction::Measure { basis, targets } => {
                    for &q in targets {
                        conjugated(&mut frame, *basis, q, |frame| {
                            self.record_measurement(out, measured, frame, q as usize);
                            frame.randomize_z(q as usize, rng);
                        });
                        measured += 1;
                    }
                }
                Instruction::Reset { basis, targets } => {
                    for &q in targets {
                        conjugated(&mut frame, *basis, q, |frame| {
                            frame.clear_x(q as usize);
                            frame.randomize_z(q as usize, rng);
                        });
                    }
                }
                Instruction::MeasureReset { basis, targets } => {
                    for &q in targets {
                        conjugated(&mut frame, *basis, q, |frame| {
                            self.record_measurement(out, measured, frame, q as usize);
                            frame.clear_x(q as usize);
                            frame.randomize_z(q as usize, rng);
                        });
                        measured += 1;
                    }
                }
                Instruction::MeasurePauliProduct { products } => {
                    for product in products {
                        // Same compute/measure/uncompute plan as the
                        // reference run, so frame bits line up with it.
                        let (ops, anchor) = pauli_product_plan(product);
                        for op in &ops {
                            frame.apply_gate(op.gate, op.targets());
                        }
                        self.record_measurement(out, measured, &frame, anchor as usize);
                        frame.randomize_z(anchor as usize, rng);
                        for op in ops.iter().rev() {
                            frame.apply_gate(op.gate, op.targets());
                        }
                        measured += 1;
                    }
                }
                Instruction::Noise { channel, targets } => {
                    apply_noise(&mut frame, *channel, targets, rng);
                }
                Instruction::CorrelatedError {
                    probability,
                    product,
                    else_branch,
                } => {
                    frame.correlated_error(*probability, product, *else_branch, &mut chain, rng);
                }
                Instruction::Feedback {
                    pauli,
                    lookback,
                    target,
                } => {
                    let m = (measured as i64 + lookback) as usize;
                    // The reference run already applied feedback for the
                    // reference outcomes; only the per-shot flip difference
                    // propagates into the frame.
                    let flips = out.row(m).to_vec();
                    let (fx, fz) = pauli.xz();
                    frame.xor_row_into(*target as usize, &flips, fx, fz);
                }
                Instruction::Detector { .. }
                | Instruction::ObservableInclude { .. }
                | Instruction::Tick
                | Instruction::QubitCoords { .. }
                | Instruction::ShiftCoords { .. } => {}
                Instruction::Repeat { .. } => {
                    unreachable!("flat_instructions expands REPEAT blocks")
                }
            }
        }
    }

    /// Writes `reference[m] ⊕ frame.x[q]` into output row `m`.
    fn record_measurement(&self, out: &mut BitMatrix, m: usize, frame: &FrameBatch, q: usize) {
        let stride = out.stride();
        let tail = symphase_bitmat::word::tail_mask(out.cols());
        let row = &mut out.words_mut()[m * stride..(m + 1) * stride];
        let xr = frame.x_row(q);
        if self.reference.get(m) {
            for (d, s) in row.iter_mut().zip(xr) {
                *d = !*s;
            }
            // Keep slack bits canonical after the negation path.
            if let Some(last) = row.last_mut() {
                *last &= tail;
            }
        } else {
            row.copy_from_slice(xr);
        }
    }
}

impl Sampler for FrameSampler {
    fn name(&self) -> &'static str {
        "frame"
    }

    fn num_measurements(&self) -> usize {
        self.circuit.num_measurements()
    }

    fn num_detectors(&self) -> usize {
        self.det_sets.len()
    }

    fn num_observables(&self) -> usize {
        self.obs_sets.len()
    }

    fn sample_into(&self, batch: &mut SampleBatch, mut rng: &mut dyn RngCore) {
        // Detector/observable derivation accumulates by XOR; clear so
        // reused batches don't mix draws.
        batch.clear();
        self.sample_measurements_into(&mut batch.measurements, &mut rng);
        record::xor_rows_into(&self.det_sets, &batch.measurements, &mut batch.detectors);
        record::xor_rows_into(&self.obs_sets, &batch.measurements, &mut batch.observables);
    }
}

/// Runs `f` inside the basis conjugation of `basis` on qubit `q`: the
/// self-inverse basis-change gate conjugates the frame before and after,
/// so Z-basis record/reset primitives act on the requested basis. The
/// reference run performs the identical conjugation, keeping the
/// reference-XOR-frame decomposition aligned.
fn conjugated(frame: &mut FrameBatch, basis: PauliKind, q: u32, f: impl FnOnce(&mut FrameBatch)) {
    let gate = basis.z_conjugator();
    if let Some(g) = gate {
        frame.apply_gate(g, &[q]);
    }
    f(frame);
    if let Some(g) = gate {
        frame.apply_gate(g, &[q]);
    }
}

fn apply_noise(frame: &mut FrameBatch, channel: NoiseChannel, targets: &[u32], rng: &mut impl Rng) {
    match channel {
        NoiseChannel::XError(p) => {
            for &q in targets {
                frame.xor_biased(q as usize, p, true, false, rng);
            }
        }
        NoiseChannel::YError(p) => {
            for &q in targets {
                frame.xor_biased(q as usize, p, true, true, rng);
            }
        }
        NoiseChannel::ZError(p) => {
            for &q in targets {
                frame.xor_biased(q as usize, p, false, true, rng);
            }
        }
        NoiseChannel::Depolarize1(p) => {
            for &q in targets {
                frame.depolarize1(q as usize, p, rng);
            }
        }
        NoiseChannel::Depolarize2(p) => {
            for pair in targets.chunks_exact(2) {
                frame.depolarize2(pair[0] as usize, pair[1] as usize, p, rng);
            }
        }
        NoiseChannel::PauliChannel1 { px, py, pz } => {
            for &q in targets {
                frame.pauli_channel1(q as usize, px, py, pz, rng);
            }
        }
        NoiseChannel::PauliChannel2 { probs } => {
            for pair in targets.chunks_exact(2) {
                frame.pauli_channel2(pair[0] as usize, pair[1] as usize, &probs, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symphase_circuit::generators::{bell_pair, ghz, teleportation};
    use symphase_circuit::Circuit;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_circuit_reproduces_reference() {
        let mut c = Circuit::new(3);
        c.x(0);
        c.cx(0, 1);
        c.measure_all();
        let s = FrameSampler::new(&c);
        let out = s.sample(100, &mut rng(1));
        for shot in 0..100 {
            assert!(out.get(0, shot));
            assert!(out.get(1, shot));
            assert!(!out.get(2, shot));
        }
    }

    #[test]
    fn bell_pair_correlated_and_fair() {
        let s = FrameSampler::new(&bell_pair());
        let shots = 20_000;
        let out = s.sample(shots, &mut rng(2));
        let mut ones = 0usize;
        for shot in 0..shots {
            assert_eq!(
                out.get(0, shot),
                out.get(1, shot),
                "Bell outcomes must agree"
            );
            ones += usize::from(out.get(0, shot));
        }
        let dev = (ones as f64 - shots as f64 / 2.0).abs();
        assert!(
            dev < 6.0 * (shots as f64 / 4.0).sqrt(),
            "unfair coin: {ones}/{shots}"
        );
    }

    #[test]
    fn ghz_outcomes_identical_within_shot() {
        let s = FrameSampler::new(&ghz(5));
        let out = s.sample(512, &mut rng(3));
        for shot in 0..512 {
            let first = out.get(0, shot);
            for q in 1..5 {
                assert_eq!(out.get(q, shot), first);
            }
        }
    }

    #[test]
    fn teleportation_with_feedback_always_verifies() {
        let s = FrameSampler::new(&teleportation());
        let out = s.sample(1024, &mut rng(4));
        for shot in 0..1024 {
            assert!(!out.get(2, shot), "teleportation failed in shot {shot}");
        }
    }

    #[test]
    fn x_error_flip_rate() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(0.2), &[0]);
        c.measure(0);
        let s = FrameSampler::new(&c);
        let shots = 100_000;
        let out = s.sample(shots, &mut rng(5));
        let ones: usize = (0..shots).filter(|&i| out.get(0, i)).count();
        let expect = 0.2 * shots as f64;
        assert!(
            (ones as f64 - expect).abs() < 6.0 * (shots as f64 * 0.2 * 0.8).sqrt(),
            "flip rate off: {ones}"
        );
    }

    #[test]
    fn z_error_invisible_in_z_basis() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::ZError(0.5), &[0]);
        c.measure(0);
        let s = FrameSampler::new(&c);
        let out = s.sample(1000, &mut rng(6));
        assert_eq!((0..1000).filter(|&i| out.get(0, i)).count(), 0);
    }

    #[test]
    fn mid_circuit_reset_clears_errors() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.reset(0);
        c.measure(0);
        let s = FrameSampler::new(&c);
        let out = s.sample(256, &mut rng(7));
        assert_eq!((0..256).filter(|&i| out.get(0, i)).count(), 0);
    }

    #[test]
    fn repeated_measurements_consistent() {
        // Measure the same random qubit twice: outcomes must agree per shot.
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        c.measure(0);
        let s = FrameSampler::new(&c);
        let out = s.sample(4096, &mut rng(8));
        for shot in 0..4096 {
            assert_eq!(out.get(0, shot), out.get(1, shot));
        }
    }

    #[test]
    fn independent_random_measurements_decorrelate() {
        // H;M twice on the same qubit with a reset between: independent.
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0);
        c.reset(0);
        c.h(0);
        c.measure(0);
        let s = FrameSampler::new(&c);
        let shots = 40_000;
        let out = s.sample(shots, &mut rng(9));
        let mut agree = 0usize;
        for shot in 0..shots {
            agree += usize::from(out.get(0, shot) == out.get(1, shot));
        }
        let dev = (agree as f64 - shots as f64 / 2.0).abs();
        assert!(
            dev < 6.0 * (shots as f64 / 4.0).sqrt(),
            "correlated: {agree}/{shots}"
        );
    }
}
