//! Pauli-frame batch sampling — the baseline the paper compares against.
//!
//! This crate reimplements the sampling architecture of Stim [Gidney 2021],
//! which the paper's Table 1 lists as "Stim's": a noiseless *reference
//! sample* is computed once with the stabilizer tableau, then each shot
//! propagates a Pauli *frame* (the difference between the noisy and
//! noiseless state) through the circuit [Rall et al. 2019]. Sixty-four
//! shots travel per machine word.
//!
//! Per-shot sampling cost is `O(n_g + n_m + n_p)` — it grows with the
//! number of gates. That is exactly the term Algorithm 1 (crate
//! `symphase-core`) removes, which is the paper's headline comparison
//! (Fig. 3).
//!
//! # Example
//!
//! ```
//! use symphase_circuit::generators::bell_pair;
//! use symphase_frame::FrameSampler;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let sampler = FrameSampler::new(&bell_pair());
//! let samples = sampler.sample(256, &mut StdRng::seed_from_u64(5));
//! for shot in 0..256 {
//!     assert_eq!(samples.get(0, shot), samples.get(1, shot));
//! }
//! ```

mod batch;
mod sampler;

pub use batch::FrameBatch;
pub use sampler::FrameSampler;
