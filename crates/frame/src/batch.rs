//! The batched Pauli frame: one X/Z bit per (qubit, shot).

use rand::Rng;

use symphase_bitmat::bernoulli::fill_bernoulli;
use symphase_bitmat::{words_for, Word, WORD_BITS};
use symphase_circuit::{pauli_channel_2_bits, pauli_channel_2_select, Gate, PauliKind};

/// A batch of Pauli frames, one per shot, stored as per-qubit shot-rows
/// (64 shots per word).
///
/// The frame tracks the Pauli difference between the noisy state of each
/// shot and the noiseless reference state. Clifford gates conjugate it
/// (signs are irrelevant — only the X component at measurement time is
/// observable), noise XORs sampled Paulis into it, and measurements read
/// the X component.
#[derive(Clone, Debug)]
pub struct FrameBatch {
    num_qubits: usize,
    shots: usize,
    /// Words per shot-row.
    wps: usize,
    /// `x[q * wps + w]`: X component of qubit `q` for shots `64w..64w+64`.
    x: Vec<Word>,
    /// `z[q * wps + w]`: Z component.
    z: Vec<Word>,
    /// Scratch for noise masks.
    mask: Vec<Word>,
}

impl FrameBatch {
    /// Creates the frame batch for `num_qubits` qubits and `shots` shots,
    /// with the Z components uniformly random (the `Z_ERROR(0.5)`
    /// initialization that makes random measurement outcomes random across
    /// shots — every qubit starts stabilized by `Z`, so this is physically
    /// a no-op).
    pub fn new(num_qubits: usize, shots: usize, rng: &mut impl Rng) -> Self {
        let wps = words_for(shots);
        let mut b = Self {
            num_qubits,
            shots,
            wps,
            x: vec![0; num_qubits * wps],
            z: vec![0; num_qubits * wps],
            mask: vec![0; wps],
        };
        for q in 0..num_qubits {
            b.randomize_z(q, rng);
        }
        b
    }

    /// Number of shots in the batch.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Words per shot-row.
    pub fn words_per_row(&self) -> usize {
        self.wps
    }

    /// The X component row of qubit `q`.
    pub fn x_row(&self, q: usize) -> &[Word] {
        &self.x[q * self.wps..(q + 1) * self.wps]
    }

    /// The Z component row of qubit `q`.
    pub fn z_row(&self, q: usize) -> &[Word] {
        &self.z[q * self.wps..(q + 1) * self.wps]
    }

    /// Reads the frame Pauli of `(qubit, shot)` as an (x, z) pair.
    pub fn pauli(&self, q: usize, shot: usize) -> (bool, bool) {
        let (w, b) = (shot / WORD_BITS, shot % WORD_BITS);
        (
            (self.x[q * self.wps + w] >> b) & 1 == 1,
            (self.z[q * self.wps + w] >> b) & 1 == 1,
        )
    }

    /// Applies a Clifford gate to the frame (broadcast targets).
    ///
    /// # Panics
    ///
    /// Panics if targets are out of range or malformed.
    pub fn apply_gate(&mut self, gate: Gate, targets: &[u32]) {
        match gate.arity() {
            1 => {
                for &q in targets {
                    self.apply_single(gate, q as usize);
                }
            }
            _ => {
                for pair in targets.chunks_exact(2) {
                    self.apply_pair(gate, pair[0] as usize, pair[1] as usize);
                }
            }
        }
    }

    fn apply_single(&mut self, gate: Gate, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let action = gate.xz_action1();
        // Frames track only the Pauli difference modulo sign, so the
        // shared dispatch table's phase reports are dropped — and gates
        // whose bit action is the identity (I, X, Y, Z) are free.
        if action.is_identity_bit_action() {
            return;
        }
        let wps = self.wps;
        let xr = &mut self.x[q * wps..(q + 1) * wps];
        let zr = &mut self.z[q * wps..(q + 1) * wps];
        symphase_circuit::apply_action1(action, xr, zr, |_, _| {});
    }

    fn apply_pair(&mut self, gate: Gate, a: usize, b: usize) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(a, b, "pair targets must differ");
        let wps = self.wps;
        let (xa, xb) = two_rows(&mut self.x, a, b, wps);
        let (za, zb) = two_rows(&mut self.z, a, b, wps);
        symphase_circuit::apply_action2(gate.xz_action2(), xa, za, xb, zb, |_, _| {});
    }

    /// Re-randomizes the Z component of qubit `q` (after measurement or
    /// reset the state is a Z eigenstate, so this is physically a no-op
    /// that decorrelates later non-commuting observables across shots).
    pub fn randomize_z(&mut self, q: usize, rng: &mut impl Rng) {
        fill_bernoulli(&mut self.mask, self.shots, 0.5, rng);
        let zr = &mut self.z[q * self.wps..(q + 1) * self.wps];
        for (d, m) in zr.iter_mut().zip(&self.mask) {
            *d ^= *m;
        }
    }

    /// Zeroes the X component of qubit `q` (reset to `|0⟩` discards bit
    /// flips).
    pub fn clear_x(&mut self, q: usize) {
        let xr = &mut self.x[q * self.wps..(q + 1) * self.wps];
        xr.iter_mut().for_each(|w| *w = 0);
    }

    /// XORs a sampled Bernoulli(`p`) mask into the X and/or Z components of
    /// qubit `q` (the X/Y/Z error channels).
    pub fn xor_biased(&mut self, q: usize, p: f64, flip_x: bool, flip_z: bool, rng: &mut impl Rng) {
        fill_bernoulli(&mut self.mask, self.shots, p, rng);
        if flip_x {
            let xr = &mut self.x[q * self.wps..(q + 1) * self.wps];
            for (d, m) in xr.iter_mut().zip(&self.mask) {
                *d ^= *m;
            }
        }
        if flip_z {
            let zr = &mut self.z[q * self.wps..(q + 1) * self.wps];
            for (d, m) in zr.iter_mut().zip(&self.mask) {
                *d ^= *m;
            }
        }
    }

    /// Single-qubit depolarizing on qubit `q`: each shot independently
    /// fires with probability `p` and then applies a uniformly random
    /// non-identity Pauli.
    pub fn depolarize1(&mut self, q: usize, p: f64, rng: &mut impl Rng) {
        fill_bernoulli(&mut self.mask, self.shots, p, rng);
        for w in 0..self.wps {
            let mut fired = self.mask[w];
            while fired != 0 {
                let bit = fired.trailing_zeros();
                fired &= fired - 1;
                let which = rng.random_range(0..3u32); // 0=X, 1=Y, 2=Z
                if which != 2 {
                    self.x[q * self.wps + w] ^= 1 << bit;
                }
                if which != 0 {
                    self.z[q * self.wps + w] ^= 1 << bit;
                }
            }
        }
    }

    /// Two-qubit depolarizing on `(a, b)`: each shot fires with probability
    /// `p` and applies a uniformly random non-identity two-qubit Pauli.
    pub fn depolarize2(&mut self, a: usize, b: usize, p: f64, rng: &mut impl Rng) {
        fill_bernoulli(&mut self.mask, self.shots, p, rng);
        for w in 0..self.wps {
            let mut fired = self.mask[w];
            while fired != 0 {
                let bit = fired.trailing_zeros();
                fired &= fired - 1;
                let k = rng.random_range(1..16u32);
                if k & 1 != 0 {
                    self.x[a * self.wps + w] ^= 1 << bit;
                }
                if k & 2 != 0 {
                    self.z[a * self.wps + w] ^= 1 << bit;
                }
                if k & 4 != 0 {
                    self.x[b * self.wps + w] ^= 1 << bit;
                }
                if k & 8 != 0 {
                    self.z[b * self.wps + w] ^= 1 << bit;
                }
            }
        }
    }

    /// Biased two-qubit Pauli channel on `(a, b)` with the 15 outcome
    /// probabilities of `PAULI_CHANNEL_2` (Stim argument order).
    pub fn pauli_channel2(&mut self, a: usize, b: usize, probs: &[f64; 15], rng: &mut impl Rng) {
        let total: f64 = probs.iter().sum();
        fill_bernoulli(&mut self.mask, self.shots, total.min(1.0), rng);
        for w in 0..self.wps {
            let mut fired = self.mask[w];
            while fired != 0 {
                let bit = fired.trailing_zeros();
                fired &= fired - 1;
                let u: f64 = rng.random::<f64>() * total;
                let bits = pauli_channel_2_bits(pauli_channel_2_select(u, probs));
                if bits[0] {
                    self.x[a * self.wps + w] ^= 1 << bit;
                }
                if bits[1] {
                    self.z[a * self.wps + w] ^= 1 << bit;
                }
                if bits[2] {
                    self.x[b * self.wps + w] ^= 1 << bit;
                }
                if bits[3] {
                    self.z[b * self.wps + w] ^= 1 << bit;
                }
            }
        }
    }

    /// One correlated-error chain element (`E` / `ELSE_CORRELATED_ERROR`):
    /// draws a Bernoulli(`p`) fire mask, restricts `else_branch` elements
    /// to shots where `chain` has not fired, updates `chain`, and XORs the
    /// whole product into the fired shots' frames at once.
    ///
    /// `chain` is the caller-held per-shot chain state (resized here).
    pub fn correlated_error(
        &mut self,
        p: f64,
        product: &[(PauliKind, u32)],
        else_branch: bool,
        chain: &mut Vec<Word>,
        rng: &mut impl Rng,
    ) {
        chain.resize(self.wps, 0);
        fill_bernoulli(&mut self.mask, self.shots, p, rng);
        if else_branch {
            for (f, c) in self.mask.iter_mut().zip(chain.iter_mut()) {
                *f &= !*c;
                *c |= *f;
            }
        } else {
            chain.copy_from_slice(&self.mask);
        }
        for &(kind, q) in product {
            let (fx, fz) = kind.xz();
            let q = q as usize;
            for w in 0..self.wps {
                if fx {
                    self.x[q * self.wps + w] ^= self.mask[w];
                }
                if fz {
                    self.z[q * self.wps + w] ^= self.mask[w];
                }
            }
        }
    }

    /// Biased single-qubit Pauli channel on `q`.
    pub fn pauli_channel1(&mut self, q: usize, px: f64, py: f64, pz: f64, rng: &mut impl Rng) {
        let total = px + py + pz;
        fill_bernoulli(&mut self.mask, self.shots, total, rng);
        for w in 0..self.wps {
            let mut fired = self.mask[w];
            while fired != 0 {
                let bit = fired.trailing_zeros();
                fired &= fired - 1;
                let u: f64 = rng.random::<f64>() * total;
                let (fx, fz) = if u < px {
                    (true, false)
                } else if u < px + py {
                    (true, true)
                } else {
                    (false, true)
                };
                if fx {
                    self.x[q * self.wps + w] ^= 1 << bit;
                }
                if fz {
                    self.z[q * self.wps + w] ^= 1 << bit;
                }
            }
        }
    }

    /// XORs an external shot-row (e.g. a recorded measurement-flip row)
    /// into the X and/or Z components of qubit `q` — the feedback path.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the shot-row width.
    pub fn xor_row_into(&mut self, q: usize, row: &[Word], flip_x: bool, flip_z: bool) {
        assert!(row.len() >= self.wps, "row too short");
        if flip_x {
            let xr = &mut self.x[q * self.wps..(q + 1) * self.wps];
            for (d, s) in xr.iter_mut().zip(row) {
                *d ^= *s;
            }
        }
        if flip_z {
            let zr = &mut self.z[q * self.wps..(q + 1) * self.wps];
            for (d, s) in zr.iter_mut().zip(row) {
                *d ^= *s;
            }
        }
    }
}

fn two_rows(v: &mut [Word], a: usize, b: usize, wps: usize) -> (&mut [Word], &mut [Word]) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b * wps);
        (&mut lo[a * wps..(a + 1) * wps], &mut hi[..wps])
    } else {
        let (lo, hi) = v.split_at_mut(a * wps);
        let (rb, ra) = (&mut lo[b * wps..(b + 1) * wps], &mut hi[..wps]);
        (ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use symphase_circuit::SmallPauli;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    /// Frame conjugation must match the reference semantics modulo sign.
    #[test]
    fn gate_bit_action_matches_reference() {
        let mut r = rng();
        for gate in Gate::ALL {
            if gate.arity() != 1 {
                continue;
            }
            for (x, z) in [(true, false), (false, true), (true, true)] {
                let mut b = FrameBatch::new(1, 64, &mut r);
                // Overwrite shot 0 deterministically.
                b.x[0] = u64::from(x);
                b.z[0] = u64::from(z);
                b.apply_gate(gate, &[0]);
                let mut input = SmallPauli::two(x, z, false, false);
                if x && z {
                    input = input.phased(1);
                }
                let expect = gate.conjugate(input);
                let (gx, gz) = b.pauli(0, 0);
                assert_eq!((gx, gz), (expect.x0, expect.z0), "{gate} on x={x} z={z}");
            }
        }
        for gate in [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap] {
            for bits in 1..16u8 {
                let (x0, z0, x1, z1) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                let mut b = FrameBatch::new(2, 64, &mut r);
                b.x[0] = u64::from(x0);
                b.z[0] = u64::from(z0);
                b.x[1] = u64::from(x1);
                b.z[1] = u64::from(z1);
                b.apply_gate(gate, &[0, 1]);
                let mut input = SmallPauli::two(x0, z0, x1, z1);
                if x0 && z0 {
                    input = input.phased(1);
                }
                if x1 && z1 {
                    input = input.phased(1);
                }
                let expect = gate.conjugate(input);
                let (gx0, gz0) = b.pauli(0, 0);
                let (gx1, gz1) = b.pauli(1, 0);
                assert_eq!(
                    (gx0, gz0, gx1, gz1),
                    (expect.x0, expect.z0, expect.x1, expect.z1),
                    "{gate} on bits {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn x_error_probability_one_flips_all_shots() {
        let mut r = rng();
        let mut b = FrameBatch::new(1, 200, &mut r);
        b.xor_biased(0, 1.0, true, false, &mut r);
        for shot in 0..200 {
            assert!(b.pauli(0, shot).0);
        }
    }

    #[test]
    fn clear_x_resets() {
        let mut r = rng();
        let mut b = FrameBatch::new(2, 100, &mut r);
        b.xor_biased(1, 1.0, true, true, &mut r);
        b.clear_x(1);
        for shot in 0..100 {
            assert!(!b.pauli(1, shot).0);
        }
    }

    #[test]
    fn depolarize1_density() {
        let mut r = rng();
        let shots = 100_000;
        let mut b = FrameBatch::new(1, shots, &mut r);
        // Cancel the random initial Z so only channel flips remain.
        let z0: Vec<u64> = b.z_row(0).to_vec();
        let p = 0.3;
        b.depolarize1(0, p, &mut r);
        let mut x_only = 0usize;
        let mut z_only = 0usize;
        let mut both = 0usize;
        for shot in 0..shots {
            let (x, z) = b.pauli(0, shot);
            let z = z ^ ((z0[shot / 64] >> (shot % 64)) & 1 == 1);
            match (x, z) {
                (true, false) => x_only += 1,
                (false, true) => z_only += 1,
                (true, true) => both += 1,
                (false, false) => {}
            }
        }
        let each = p / 3.0 * shots as f64;
        for (name, count) in [("X", x_only), ("Z", z_only), ("Y", both)] {
            assert!(
                (count as f64 - each).abs() < 6.0 * (each).sqrt() + 10.0,
                "{name} count {count} far from {each}"
            );
        }
    }

    #[test]
    fn initial_z_is_random_x_is_zero() {
        let mut r = rng();
        let b = FrameBatch::new(4, 10_000, &mut r);
        for q in 0..4 {
            assert_eq!(symphase_bitmat::word::count_ones(b.x_row(q)), 0);
            let ones = symphase_bitmat::word::count_ones(b.z_row(q));
            assert!(ones > 4000 && ones < 6000, "z not ~uniform: {ones}");
        }
    }
}
