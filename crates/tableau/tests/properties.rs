//! Property tests for the tableau simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use symphase_circuit::{Circuit, Gate};
use symphase_tableau::verify::check_invariants;
use symphase_tableau::{
    reference_sample, Collapse, ConcretePhases, PhaseStore, Tableau, TableauSimulator,
};

#[derive(Clone, Debug)]
enum Op {
    Gate1(usize, usize),
    Gate2(usize, usize, usize),
    Measure(usize),
}

const G1: [Gate; 12] = [
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::H,
    Gate::S,
    Gate::SDag,
    Gate::SqrtX,
    Gate::SqrtXDag,
    Gate::SqrtY,
    Gate::SqrtYDag,
    Gate::CXyz,
    Gate::HYz,
];
const G2: [Gate; 4] = [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap];

fn ops_strategy(n: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..12, 0..n).prop_map(|(g, q)| Op::Gate1(g, q)),
        (0usize..4, 0..n, 1..n).prop_map(move |(g, a, off)| Op::Gate2(g, a, (a + off) % n)),
        (0..n).prop_map(Op::Measure),
    ];
    proptest::collection::vec(op, 1..80)
}

fn apply_ops(tab: &mut Tableau<ConcretePhases>, ops: &[Op], coin_seed: u64) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(coin_seed);
    for op in ops {
        match *op {
            Op::Gate1(g, q) => tab.apply_gate(G1[g], &[q as u32]),
            Op::Gate2(g, a, b) => {
                if a != b {
                    tab.apply_gate(G2[g], &[a as u32, b as u32]);
                }
            }
            Op::Measure(q) => match tab.collapse_z(q) {
                Collapse::Random { pivot } => {
                    let coin: bool = rng.random();
                    tab.phases_mut().set_constant_bit(pivot, coin);
                }
                Collapse::Deterministic => tab.accumulate_deterministic(q),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The group-theoretic tableau invariants survive any operation
    /// sequence.
    #[test]
    fn invariants_always_hold(ops in ops_strategy(7), seed in any::<u64>()) {
        let mut tab: Tableau<ConcretePhases> = Tableau::new(7);
        apply_ops(&mut tab, &ops, seed);
        prop_assert!(check_invariants(&tab).is_ok());
    }

    /// Applying a gate then its inverse restores every generator.
    #[test]
    fn gate_inverse_roundtrip(
        ops in ops_strategy(6),
        seed in any::<u64>(),
        g1 in 0usize..12,
        q in 0usize..6,
    ) {
        let mut tab: Tableau<ConcretePhases> = Tableau::new(6);
        apply_ops(&mut tab, &ops, seed);
        let before: Vec<String> = (0..6).map(|i| tab.stabilizer(i).to_string()).collect();
        let gate = G1[g1];
        tab.apply_gate(gate, &[q as u32]);
        tab.apply_gate(gate.inverse(), &[q as u32]);
        let after: Vec<String> = (0..6).map(|i| tab.stabilizer(i).to_string()).collect();
        prop_assert_eq!(before, after);
    }

    /// Measuring the same qubit twice in a row gives the same outcome, and
    /// the second collapse is always deterministic.
    #[test]
    fn repeated_measurement_is_stable(ops in ops_strategy(5), seed in any::<u64>(), q in 0usize..5) {
        let mut tab: Tableau<ConcretePhases> = Tableau::new(5);
        apply_ops(&mut tab, &ops, seed);
        let first = match tab.collapse_z(q) {
            Collapse::Random { pivot } => {
                tab.phases_mut().set_constant_bit(pivot, true);
                true
            }
            Collapse::Deterministic => {
                tab.accumulate_deterministic(q);
                tab.phases().constant_bit(tab.scratch_row())
            }
        };
        // Second measurement must be deterministic and equal.
        prop_assert_eq!(tab.collapse_z(q), Collapse::Deterministic);
        tab.accumulate_deterministic(q);
        prop_assert_eq!(tab.phases().constant_bit(tab.scratch_row()), first);
    }

    /// The reference sample is reproducible and independent of simulator
    /// RNG state.
    #[test]
    fn reference_sample_is_deterministic(ops in ops_strategy(5)) {
        let mut c = Circuit::new(5);
        for op in &ops {
            match *op {
                Op::Gate1(g, q) => {
                    c.gate(G1[g], &[q as u32]);
                }
                Op::Gate2(g, a, b) => {
                    if a != b {
                        c.gate(G2[g], &[a as u32, b as u32]);
                    }
                }
                Op::Measure(q) => {
                    c.measure(q as u32);
                }
            }
        }
        c.measure_all();
        prop_assert_eq!(reference_sample(&c), reference_sample(&c));
    }

    /// Two simulators with the same seed produce identical records.
    #[test]
    fn seeded_runs_are_reproducible(ops in ops_strategy(5), seed in any::<u64>()) {
        let mut c = Circuit::new(5);
        for op in &ops {
            match *op {
                Op::Gate1(g, q) => {
                    c.gate(G1[g], &[q as u32]);
                }
                Op::Gate2(g, a, b) => {
                    if a != b {
                        c.gate(G2[g], &[a as u32, b as u32]);
                    }
                }
                Op::Measure(q) => {
                    c.measure(q as u32);
                }
            }
        }
        c.measure_all();
        let a = TableauSimulator::new(5, StdRng::seed_from_u64(seed)).run(&c);
        let b = TableauSimulator::new(5, StdRng::seed_from_u64(seed)).run(&c);
        prop_assert_eq!(a, b);
    }
}
