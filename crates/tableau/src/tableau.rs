//! The destabilizer/stabilizer tableau with column-major X/Z storage.

use symphase_bitmat::{BitVec, WORD_BITS};
use symphase_circuit::Gate;

use crate::pauli::PauliString;
use crate::phases::{mask_words, PhaseStore};

/// Result of collapsing a qubit for a Z-basis measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Collapse {
    /// The outcome is random; the stabilizer at `pivot` has been replaced by
    /// `+Z_a` (outcome fixed to 0) and the caller decides the actual
    /// outcome: a coin flip for concrete simulation, a fresh symbol plus
    /// `X^s` for phase symbolization (paper Init-M).
    Random {
        /// Stabilizer row index (`n ≤ pivot < 2n`) that anticommuted with
        /// `Z_a`.
        pivot: usize,
    },
    /// The outcome is determined by the current generators; call
    /// [`Tableau::accumulate_deterministic`] and read the scratch-row phase.
    Deterministic,
}

/// A-G phase-product table: `G_TABLE[p1][p2]` is the power of `i` produced
/// when multiplying single-qubit Paulis `p1 · p2`, with `p = 2x + z`
/// (`0=I, 2=X, 1=Z, 3=Y`). Values are in `{-1, 0, 1}`.
const G_TABLE: [[i32; 4]; 4] = {
    // index = 2x + z: 0 = I, 1 = Z, 2 = X, 3 = Y
    let mut t = [[0i32; 4]; 4];
    // P1 = X: g = z2 * (2x2 - 1)
    t[2][1] = -1; // X·Z
    t[2][3] = 1; // X·Y
                 // P1 = Y: g = z2 - x2
    t[3][1] = 1; // Y·Z
    t[3][2] = -1; // Y·X
                  // P1 = Z: g = x2 * (1 - 2z2)
    t[1][2] = 1; // Z·X
    t[1][3] = -1; // Z·Y
    t
};

/// The 2n×(2n+1) Aaronson–Gottesman tableau (plus one scratch row), generic
/// over the phase representation.
///
/// * Rows `0..n` hold destabilizer generators, rows `n..2n` stabilizer
///   generators, row `2n` is scratch space for deterministic measurements.
/// * X and Z bits are stored **column-major by qubit**: the bits of qubit
///   `q` across all rows form a contiguous word slice, so Clifford gates are
///   word-parallel (paper Fact 1 turns into `xor_constant_word` calls on the
///   phase store).
///
/// # Example
///
/// ```
/// use symphase_tableau::{ConcretePhases, Tableau};
/// use symphase_circuit::Gate;
///
/// let mut t: Tableau<ConcretePhases> = Tableau::new(2);
/// t.apply_gate(Gate::H, &[0]);
/// t.apply_gate(Gate::Cx, &[0, 1]);
/// assert_eq!(t.stabilizer(0).to_string(), "+XX");
/// assert_eq!(t.stabilizer(1).to_string(), "+ZZ");
/// ```
#[derive(Clone, Debug)]
pub struct Tableau<P: PhaseStore> {
    n: usize,
    rows: usize,
    wpc: usize,
    /// `x[q * wpc + w]`: X bits of qubit `q`, rows packed 64 per word.
    x: Vec<u64>,
    /// `z[q * wpc + w]`: Z bits of qubit `q`.
    z: Vec<u64>,
    phases: P,
}

impl<P: PhaseStore> Tableau<P> {
    /// Creates the tableau of `|0…0⟩`: destabilizers `X_i`, stabilizers
    /// `Z_i`, all phases `+1`.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let wpc = mask_words(rows);
        let mut t = Self {
            n,
            rows,
            wpc,
            x: vec![0; n * wpc],
            z: vec![0; n * wpc],
            phases: P::with_rows(rows),
        };
        for i in 0..n {
            t.set_x_bit(i, i, true); // destabilizer i = X_i
            t.set_z_bit(n + i, i, true); // stabilizer i = Z_i
        }
        t
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of rows (2n + 1, including the scratch row).
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Words per column.
    pub fn words_per_col(&self) -> usize {
        self.wpc
    }

    /// Index of the scratch row.
    pub fn scratch_row(&self) -> usize {
        2 * self.n
    }

    /// Borrow of the phase store.
    pub fn phases(&self) -> &P {
        &self.phases
    }

    /// Mutable borrow of the phase store (used by the symbolic engine to
    /// attach symbols).
    pub fn phases_mut(&mut self) -> &mut P {
        &mut self.phases
    }

    /// The packed X column of qubit `q` (bit `r` of word `r/64` is row `r`).
    pub fn x_col(&self, q: usize) -> &[u64] {
        &self.x[q * self.wpc..(q + 1) * self.wpc]
    }

    /// The packed Z column of qubit `q`.
    pub fn z_col(&self, q: usize) -> &[u64] {
        &self.z[q * self.wpc..(q + 1) * self.wpc]
    }

    /// Reads the X bit at (`row`, qubit `q`).
    #[inline]
    pub fn x_bit(&self, row: usize, q: usize) -> bool {
        (self.x[q * self.wpc + row / WORD_BITS] >> (row % WORD_BITS)) & 1 == 1
    }

    /// Reads the Z bit at (`row`, qubit `q`).
    #[inline]
    pub fn z_bit(&self, row: usize, q: usize) -> bool {
        (self.z[q * self.wpc + row / WORD_BITS] >> (row % WORD_BITS)) & 1 == 1
    }

    #[inline]
    fn set_x_bit(&mut self, row: usize, q: usize, v: bool) {
        let w = &mut self.x[q * self.wpc + row / WORD_BITS];
        if v {
            *w |= 1 << (row % WORD_BITS);
        } else {
            *w &= !(1 << (row % WORD_BITS));
        }
    }

    #[inline]
    fn set_z_bit(&mut self, row: usize, q: usize, v: bool) {
        let w = &mut self.z[q * self.wpc + row / WORD_BITS];
        if v {
            *w |= 1 << (row % WORD_BITS);
        } else {
            *w &= !(1 << (row % WORD_BITS));
        }
    }

    /// Extracts stabilizer generator `i` (`0 ≤ i < n`) as a [`PauliString`].
    /// The sign reflects the constant phase term only.
    pub fn stabilizer(&self, i: usize) -> PauliString {
        self.row_pauli(self.n + i)
    }

    /// Extracts destabilizer generator `i`.
    pub fn destabilizer(&self, i: usize) -> PauliString {
        self.row_pauli(i)
    }

    /// Extracts an arbitrary row as a [`PauliString`].
    pub fn row_pauli(&self, row: usize) -> PauliString {
        let x = BitVec::from_fn(self.n, |q| self.x_bit(row, q));
        let z = BitVec::from_fn(self.n, |q| self.z_bit(row, q));
        PauliString::from_xz(x, z, self.phases.constant_bit(row))
    }

    // -- gates --------------------------------------------------------

    /// Applies `gate` to broadcast `targets` (pairs for two-qubit gates).
    ///
    /// # Panics
    ///
    /// Panics if targets are out of range or malformed for the gate's arity.
    pub fn apply_gate(&mut self, gate: Gate, targets: &[u32]) {
        match gate.arity() {
            1 => {
                for &q in targets {
                    self.apply_single(gate, q as usize);
                }
            }
            _ => {
                assert!(
                    targets.len().is_multiple_of(2),
                    "two-qubit gate needs pairs"
                );
                for pair in targets.chunks_exact(2) {
                    self.apply_pair(gate, pair[0] as usize, pair[1] as usize);
                }
            }
        }
    }

    fn apply_single(&mut self, gate: Gate, a: usize) {
        assert!(a < self.n, "qubit {a} out of range");
        let wpc = self.wpc;
        let xa = &mut self.x[a * wpc..(a + 1) * wpc];
        let za = &mut self.z[a * wpc..(a + 1) * wpc];
        let phases = &mut self.phases;
        // One shared dispatch table (derived from the reference conjugation
        // semantics) supplies both the F₂ bit action and the sign flips.
        symphase_circuit::apply_action1(gate.xz_action1(), xa, za, |w, m| {
            phases.xor_constant_word(w, m);
        });
    }

    fn apply_pair(&mut self, gate: Gate, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "qubit out of range");
        assert_ne!(a, b, "two-qubit gate targets must differ");
        let wpc = self.wpc;
        let (xa, xb) = two_slices(&mut self.x, a, b, wpc);
        let (za, zb) = two_slices(&mut self.z, a, b, wpc);
        let phases = &mut self.phases;
        symphase_circuit::apply_action2(gate.xz_action2(), xa, za, xb, zb, |w, m| {
            phases.xor_constant_word(w, m);
        });
    }

    // -- row operations -----------------------------------------------

    /// A-G `rowsum`: replaces generator `h` with the product
    /// `generator(i) · generator(h)`, updating phases through the store.
    pub fn rowsum(&mut self, h: usize, i: usize) {
        debug_assert!(h < self.rows && i < self.rows && h != i);
        let mut g_sum: i32 = 0;
        let (wh, bh) = (h / WORD_BITS, (h % WORD_BITS) as u32);
        let (wi, bi) = (i / WORD_BITS, (i % WORD_BITS) as u32);
        for q in 0..self.n {
            let base = q * self.wpc;
            let x1 = (self.x[base + wi] >> bi) & 1;
            let z1 = (self.z[base + wi] >> bi) & 1;
            let x2 = (self.x[base + wh] >> bh) & 1;
            let z2 = (self.z[base + wh] >> bh) & 1;
            g_sum += G_TABLE[(2 * x1 + z1) as usize][(2 * x2 + z2) as usize];
            self.x[base + wh] ^= x1 << bh;
            self.z[base + wh] ^= z1 << bh;
        }
        // For commuting rows the total phase exponent 2r_h + 2r_i + Σg is 0
        // or 2 mod 4; the constant correction is the Σg ≡ 2 case.
        let extra = (g_sum.rem_euclid(4) & 2) != 0;
        self.phases.add_row_into(i, h, extra);
    }

    /// Copies row `src` onto row `dst` (bits and phase).
    pub fn copy_row(&mut self, src: usize, dst: usize) {
        debug_assert!(src != dst);
        let (ws, bs) = (src / WORD_BITS, (src % WORD_BITS) as u32);
        let (wd, bd) = (dst / WORD_BITS, (dst % WORD_BITS) as u32);
        for q in 0..self.n {
            let base = q * self.wpc;
            let xv = (self.x[base + ws] >> bs) & 1;
            let zv = (self.z[base + ws] >> bs) & 1;
            self.x[base + wd] = (self.x[base + wd] & !(1 << bd)) | (xv << bd);
            self.z[base + wd] = (self.z[base + wd] & !(1 << bd)) | (zv << bd);
        }
        self.phases.copy_row(src, dst);
    }

    /// Zeroes row `row` (bits and phase).
    pub fn clear_row(&mut self, row: usize) {
        let (w, b) = (row / WORD_BITS, (row % WORD_BITS) as u32);
        for q in 0..self.n {
            let base = q * self.wpc;
            self.x[base + w] &= !(1 << b);
            self.z[base + w] &= !(1 << b);
        }
        self.phases.clear_row(row);
    }

    // -- measurement --------------------------------------------------

    /// Collapses qubit `a` for a Z-basis measurement (the phase-independent
    /// part of A-G's measurement; paper Fact 2).
    ///
    /// In the random case the new stabilizer at the pivot is left as `+Z_a`
    /// — the outcome is fixed to 0 and the caller supplies the randomness
    /// (concrete coin, or fresh symbol + `X^s` for Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn collapse_z(&mut self, a: usize) -> Collapse {
        assert!(a < self.n, "qubit {a} out of range");
        let Some(pivot) = self.find_pivot(a) else {
            return Collapse::Deterministic;
        };
        // Multiply every other row that anticommutes with Z_a by the pivot.
        let anticommuting: Vec<usize> = self
            .rows_with_x_bit(a)
            .filter(|&r| r != pivot && r < 2 * self.n)
            .collect();
        for r in anticommuting {
            self.rowsum(r, pivot);
        }
        // The old pivot becomes the destabilizer; the new stabilizer is +Z_a.
        self.copy_row(pivot, pivot - self.n);
        self.clear_row(pivot);
        self.set_z_bit(pivot, a, true);
        Collapse::Random { pivot }
    }

    /// For a deterministic measurement of qubit `a` (after [`Self::collapse_z`]
    /// returned [`Collapse::Deterministic`]): accumulates into the scratch
    /// row the product of stabilizers indicated by the destabilizers that
    /// anticommute with `Z_a`. The outcome is the scratch row's phase.
    pub fn accumulate_deterministic(&mut self, a: usize) {
        assert!(a < self.n, "qubit {a} out of range");
        let scratch = self.scratch_row();
        self.clear_row(scratch);
        let indicated: Vec<usize> = self
            .rows_with_x_bit(a)
            .filter(|&r| r < self.n)
            .map(|r| r + self.n)
            .collect();
        for r in indicated {
            self.rowsum(scratch, r);
        }
        debug_assert!(
            (0..self.n).all(|q| !self.x_bit(scratch, q)),
            "deterministic scratch row must be Z-type"
        );
    }

    /// First stabilizer row whose X bit at qubit `a` is set.
    fn find_pivot(&self, a: usize) -> Option<usize> {
        self.rows_with_x_bit(a)
            .find(|&r| r >= self.n && r < 2 * self.n)
    }

    /// Iterates rows (ascending) whose X bit at qubit `a` is set, snapshot
    /// at call time.
    fn rows_with_x_bit(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        let col = self.x_col(a).to_vec();
        let rows = self.rows;
        col.into_iter().enumerate().flat_map(move |(w, mut word)| {
            let mut out = Vec::new();
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                word &= word - 1;
                let r = w * WORD_BITS + b;
                if r < rows {
                    out.push(r);
                }
            }
            out
        })
    }
}

/// Splits two distinct same-length column slices out of the backing vector.
fn two_slices(v: &mut [u64], a: usize, b: usize, wpc: usize) -> (&mut [u64], &mut [u64]) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b * wpc);
        (&mut lo[a * wpc..(a + 1) * wpc], &mut hi[..wpc])
    } else {
        let (lo, hi) = v.split_at_mut(a * wpc);
        let (xb, xa) = (&mut lo[b * wpc..(b + 1) * wpc], &mut hi[..wpc]);
        (xa, xb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::ConcretePhases;
    use symphase_circuit::SmallPauli;

    type T = Tableau<ConcretePhases>;

    #[test]
    fn initial_state_generators() {
        let t = T::new(3);
        assert_eq!(t.stabilizer(0).to_string(), "+ZII");
        assert_eq!(t.stabilizer(2).to_string(), "+IIZ");
        assert_eq!(t.destabilizer(1).to_string(), "+IXI");
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut t = T::new(2);
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Cx, &[0, 1]);
        assert_eq!(t.stabilizer(0).to_string(), "+XX");
        assert_eq!(t.stabilizer(1).to_string(), "+ZZ");
    }

    /// Exhaustively checks every gate's tableau update against the
    /// reference conjugation semantics from `symphase-circuit`.
    #[test]
    fn gate_updates_match_reference_conjugation() {
        // Single-qubit gates: prepare each Pauli as the row of a 1-qubit
        // tableau by direct injection.
        for gate in Gate::ALL {
            if gate.arity() != 1 {
                continue;
            }
            for (x, z, neg) in [
                (false, true, false),
                (true, false, false),
                (true, true, false),
                (false, true, true),
                (true, false, true),
                (true, true, true),
            ] {
                let mut t = T::new(1);
                t.set_x_bit(1, 0, x);
                t.set_z_bit(1, 0, z);
                t.phases.set_constant_bit(1, neg);
                t.apply_gate(gate, &[0]);
                let got = t.stabilizer(0);

                let mut input = SmallPauli::two(x, z, false, false);
                if x && z {
                    input = input.phased(1); // physical Y
                }
                if neg {
                    input = input.negated();
                }
                let expect = gate.conjugate(input);
                let got_x = got.x_bits().get(0);
                let got_z = got.z_bits().get(0);
                assert_eq!(
                    (got_x, got_z, got.sign_is_negative()),
                    (expect.x0, expect.z0, expect.sign_is_negative()),
                    "{gate} on (x={x},z={z},neg={neg})"
                );
            }
        }
        // Two-qubit gates: all 16 Pauli patterns, both signs.
        for gate in [Gate::Cx, Gate::Cy, Gate::Cz, Gate::Swap] {
            for bits in 0..16u8 {
                for neg in [false, true] {
                    let (x0, z0, x1, z1) =
                        (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                    let mut t = T::new(2);
                    t.set_x_bit(2, 0, x0);
                    t.set_z_bit(2, 0, z0);
                    t.set_x_bit(2, 1, x1);
                    t.set_z_bit(2, 1, z1);
                    t.phases.set_constant_bit(2, neg);
                    t.apply_gate(gate, &[0, 1]);
                    let got = t.stabilizer(0);

                    let mut input = SmallPauli::two(x0, z0, x1, z1);
                    if x0 && z0 {
                        input = input.phased(1);
                    }
                    if x1 && z1 {
                        input = input.phased(1);
                    }
                    if neg {
                        input = input.negated();
                    }
                    let expect = gate.conjugate(input);
                    assert_eq!(
                        (
                            got.x_bits().get(0),
                            got.z_bits().get(0),
                            got.x_bits().get(1),
                            got.z_bits().get(1),
                            got.sign_is_negative()
                        ),
                        (
                            expect.x0,
                            expect.z0,
                            expect.x1,
                            expect.z1,
                            expect.sign_is_negative()
                        ),
                        "{gate} on bits={bits:04b} neg={neg}"
                    );
                }
            }
        }
    }

    #[test]
    fn measurement_of_zero_state_is_deterministic_zero() {
        let mut t = T::new(2);
        assert_eq!(t.collapse_z(0), Collapse::Deterministic);
        t.accumulate_deterministic(0);
        assert!(!t.phases().constant_bit(t.scratch_row()));
    }

    #[test]
    fn measurement_after_x_is_deterministic_one() {
        let mut t = T::new(1);
        t.apply_gate(Gate::X, &[0]);
        assert_eq!(t.collapse_z(0), Collapse::Deterministic);
        t.accumulate_deterministic(0);
        assert!(t.phases().constant_bit(t.scratch_row()));
    }

    #[test]
    fn measurement_after_h_is_random_then_repeatable() {
        let mut t = T::new(1);
        t.apply_gate(Gate::H, &[0]);
        let Collapse::Random { pivot } = t.collapse_z(0) else {
            panic!("expected random outcome");
        };
        assert_eq!(pivot, 1);
        // Fix the outcome to 1 and measure again: now deterministic 1.
        t.phases_mut().set_constant_bit(pivot, true);
        assert_eq!(t.collapse_z(0), Collapse::Deterministic);
        t.accumulate_deterministic(0);
        assert!(t.phases().constant_bit(t.scratch_row()));
    }

    #[test]
    fn bell_pair_measurements_correlate() {
        let mut t = T::new(2);
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Cx, &[0, 1]);
        let Collapse::Random { pivot } = t.collapse_z(0) else {
            panic!("Bell measurement must be random");
        };
        t.phases_mut().set_constant_bit(pivot, true); // outcome 1
        assert_eq!(t.collapse_z(1), Collapse::Deterministic);
        t.accumulate_deterministic(1);
        assert!(
            t.phases().constant_bit(t.scratch_row()),
            "outcomes must agree"
        );
    }

    #[test]
    fn ghz_third_qubit_follows_first() {
        let mut t = T::new(3);
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Cx, &[0, 1, 1, 2]);
        let Collapse::Random { pivot } = t.collapse_z(0) else {
            panic!("random expected");
        };
        t.phases_mut().set_constant_bit(pivot, false); // outcome 0
        for q in [1usize, 2] {
            assert_eq!(t.collapse_z(q), Collapse::Deterministic);
            t.accumulate_deterministic(q);
            assert!(!t.phases().constant_bit(t.scratch_row()));
        }
    }

    #[test]
    fn invariants_hold_after_random_circuit() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20);
        let n = 12;
        let mut t = T::new(n);
        for _ in 0..300 {
            match rng.random_range(0..5) {
                0 => t.apply_gate(Gate::H, &[rng.random_range(0..n as u32)]),
                1 => t.apply_gate(Gate::S, &[rng.random_range(0..n as u32)]),
                2 => {
                    let a = rng.random_range(0..n as u32);
                    let mut b = rng.random_range(0..n as u32);
                    if a == b {
                        b = (b + 1) % n as u32;
                    }
                    t.apply_gate(Gate::Cx, &[a, b]);
                }
                3 => t.apply_gate(Gate::SqrtY, &[rng.random_range(0..n as u32)]),
                _ => {
                    let a = rng.random_range(0..n);
                    if let Collapse::Random { pivot } = t.collapse_z(a) {
                        t.phases_mut().set_constant_bit(pivot, rng.random());
                    }
                }
            }
            crate::verify::check_invariants(&t).expect("invariants violated");
        }
    }

    #[test]
    fn swap_moves_generators() {
        let mut t = T::new(2);
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Swap, &[0, 1]);
        assert_eq!(t.stabilizer(0).to_string(), "+IX");
        assert_eq!(t.stabilizer(1).to_string(), "+ZI");
    }
}
