//! The phase-store abstraction (paper Facts 1 and 2).
//!
//! Pauli gates and faults only touch the phase column of the tableau
//! (Fact 1), and the A-G control flow never branches on phases (Fact 2).
//! [`Tableau`](crate::Tableau) therefore drives all X/Z bit manipulation
//! itself and delegates every phase effect to a [`PhaseStore`]:
//!
//! * [`ConcretePhases`] keeps one sign bit per row — the classic simulator;
//! * `symphase-core`'s dense/sparse symbolic stores keep a whole
//!   bit-vector of symbol coefficients per row (paper Eq. (2)/(3)).

use symphase_bitmat::{BitVec, WORD_BITS};

/// Storage for the phase column(s) of a stabilizer tableau.
///
/// Row indices follow the tableau convention: `0..n` destabilizers, `n..2n`
/// stabilizers, row `2n` the scratch row used by deterministic
/// measurements.
pub trait PhaseStore {
    /// Creates a store for `rows` tableau rows, all phases `+1`.
    fn with_rows(rows: usize) -> Self;

    /// Number of rows.
    fn rows(&self) -> usize;

    /// XORs a 64-row mask into the *constant* term of the phases: rows
    /// whose bit is set in `mask` flip sign. `word_index` selects which
    /// group of 64 rows. This is the word-parallel path used by Clifford
    /// gates (paper Fact 1).
    fn xor_constant_word(&mut self, word_index: usize, mask: u64);

    /// Row multiplication phase update: `phase[dst] ⊕= phase[src] ⊕
    /// extra_constant` where `extra_constant` carries the mod-4 sign
    /// correction of the Pauli product (the `Σg ≡ 2 (mod 4)` case of A-G's
    /// `rowsum`). Symbolic stores XOR the full coefficient vectors.
    fn add_row_into(&mut self, src: usize, dst: usize, extra_constant: bool);

    /// Copies the phase of `src` over the phase of `dst`.
    fn copy_row(&mut self, src: usize, dst: usize);

    /// Resets the phase of `row` to `+1` (all coefficients zero).
    fn clear_row(&mut self, row: usize);

    /// The constant term of the phase of `row`.
    fn constant_bit(&self, row: usize) -> bool;

    /// Sets the constant term of the phase of `row`.
    fn set_constant_bit(&mut self, row: usize, value: bool);
}

/// The classic concrete phase store: one sign bit per tableau row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcretePhases {
    bits: BitVec,
}

impl ConcretePhases {
    /// Borrows the underlying sign bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }
}

impl PhaseStore for ConcretePhases {
    fn with_rows(rows: usize) -> Self {
        Self {
            bits: BitVec::zeros(rows),
        }
    }

    fn rows(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    fn xor_constant_word(&mut self, word_index: usize, mask: u64) {
        debug_assert!(word_index < self.bits.words().len());
        debug_assert!(
            word_index + 1 < self.bits.words().len()
                || mask & !symphase_bitmat::word::tail_mask(self.bits.len()) == 0,
            "mask touches slack bits"
        );
        self.bits.words_mut()[word_index] ^= mask;
    }

    #[inline]
    fn add_row_into(&mut self, src: usize, dst: usize, extra_constant: bool) {
        let v = self.bits.get(dst) ^ self.bits.get(src) ^ extra_constant;
        self.bits.set(dst, v);
    }

    #[inline]
    fn copy_row(&mut self, src: usize, dst: usize) {
        let v = self.bits.get(src);
        self.bits.set(dst, v);
    }

    #[inline]
    fn clear_row(&mut self, row: usize) {
        self.bits.set(row, false);
    }

    #[inline]
    fn constant_bit(&self, row: usize) -> bool {
        self.bits.get(row)
    }

    #[inline]
    fn set_constant_bit(&mut self, row: usize, value: bool) {
        self.bits.set(row, value);
    }
}

/// Number of words needed for a row-mask over `rows` rows (helper shared
/// with `Tableau`).
pub(crate) fn mask_words(rows: usize) -> usize {
    rows.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_phases_basics() {
        let mut p = ConcretePhases::with_rows(70);
        assert_eq!(p.rows(), 70);
        assert!(!p.constant_bit(69));
        p.set_constant_bit(69, true);
        assert!(p.constant_bit(69));
        p.clear_row(69);
        assert!(!p.constant_bit(69));
    }

    #[test]
    fn xor_constant_word_flips_rows() {
        let mut p = ConcretePhases::with_rows(70);
        p.xor_constant_word(0, 0b101);
        assert!(p.constant_bit(0));
        assert!(!p.constant_bit(1));
        assert!(p.constant_bit(2));
        p.xor_constant_word(1, 1 << 5);
        assert!(p.constant_bit(69));
    }

    #[test]
    fn add_row_into_xors_with_extra() {
        let mut p = ConcretePhases::with_rows(4);
        p.set_constant_bit(0, true);
        p.add_row_into(0, 1, false);
        assert!(p.constant_bit(1)); // 0 ⊕ 1 ⊕ 0
        p.add_row_into(0, 1, true);
        assert!(p.constant_bit(1)); // 1 ⊕ 1 ⊕ 1
        p.add_row_into(0, 1, false);
        assert!(!p.constant_bit(1)); // 1 ⊕ 1 ⊕ 0
        p.copy_row(0, 3);
        assert!(p.constant_bit(3));
    }

    #[test]
    fn mask_words_matches_bitvec() {
        assert_eq!(mask_words(1), 1);
        assert_eq!(mask_words(64), 1);
        assert_eq!(mask_words(65), 2);
    }
}
