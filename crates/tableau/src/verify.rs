//! Stabilizer-tableau invariant checking.
//!
//! A valid destabilizer/stabilizer tableau satisfies, for all `i ≠ j`:
//!
//! * stabilizers commute pairwise, destabilizers commute pairwise;
//! * destabilizer `i` anticommutes with stabilizer `i` and commutes with
//!   stabilizer `j`;
//! * the 2n rows are linearly independent over F₂ (full rank 2n).
//!
//! These checks are phase-independent, so they apply to both concrete and
//! symbolic tableaux; property tests run them after every mutation.

use symphase_bitmat::{gauss, BitMatrix};

use crate::phases::PhaseStore;
use crate::tableau::Tableau;

/// Checks all tableau invariants.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_invariants<P: PhaseStore>(tab: &Tableau<P>) -> Result<(), String> {
    let n = tab.num_qubits();
    // Symplectic products via per-row bit extraction (test-path code; no
    // need for word parallelism here).
    let sym = |a: usize, b: usize| -> bool {
        // true = anticommute
        let mut acc = false;
        for q in 0..n {
            acc ^= (tab.x_bit(a, q) & tab.z_bit(b, q)) ^ (tab.z_bit(a, q) & tab.x_bit(b, q));
        }
        acc
    };

    for i in 0..n {
        for j in 0..n {
            if i != j && sym(n + i, n + j) {
                return Err(format!("stabilizers {i} and {j} anticommute"));
            }
            if i != j && sym(i, j) {
                return Err(format!("destabilizers {i} and {j} anticommute"));
            }
        }
    }
    for i in 0..n {
        if !sym(i, n + i) {
            return Err(format!("destabilizer {i} commutes with stabilizer {i}"));
        }
        for j in 0..n {
            if i != j && sym(i, n + j) {
                return Err(format!("destabilizer {i} anticommutes with stabilizer {j}"));
            }
        }
    }

    // Full rank of the 2n × 2n check matrix.
    let m = BitMatrix::from_fn(2 * n, 2 * n, |r, c| {
        if c < n {
            tab.x_bit(r, c)
        } else {
            tab.z_bit(r, c - n)
        }
    });
    if gauss::rank(&m) != 2 * n {
        return Err("tableau rows are linearly dependent".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{ConcretePhases, PhaseStore};
    use crate::tableau::Collapse;
    use symphase_circuit::Gate;

    #[test]
    fn fresh_tableau_is_valid() {
        let t: Tableau<ConcretePhases> = Tableau::new(5);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn corrupted_tableau_detected() {
        let mut t: Tableau<ConcretePhases> = Tableau::new(2);
        // Make stabilizer 0 equal to stabilizer 1 by brute force: apply a
        // CX and then manually break a row via collapse misuse is awkward;
        // instead check that a duplicated-row matrix is caught by rank.
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Cx, &[0, 1]);
        check_invariants(&t).unwrap();
        // Clearing a stabilizer row (turning it into identity) breaks rank
        // and the anticommutation pairing.
        t.clear_row(2);
        assert!(check_invariants(&t).is_err());
    }

    #[test]
    fn invariants_survive_measurement() {
        let mut t: Tableau<ConcretePhases> = Tableau::new(3);
        t.apply_gate(Gate::H, &[0]);
        t.apply_gate(Gate::Cx, &[0, 1, 1, 2]);
        if let Collapse::Random { pivot } = t.collapse_z(1) {
            t.phases_mut().set_constant_bit(pivot, true);
        }
        check_invariants(&t).unwrap();
    }
}
