//! Aaronson–Gottesman stabilizer-tableau simulation, generic over the phase
//! representation.
//!
//! The central type is [`Tableau`], the destabilizer/stabilizer tableau of
//! [Aaronson & Gottesman 2004] with `X`/`Z` bits stored column-major by
//! qubit (so Clifford gates are word-parallel column operations) and phases
//! held behind the [`PhaseStore`] trait.
//!
//! The paper's Fact 2 — *the control flow of the A-G algorithm is
//! independent of the phase values* — is made structural here: the same
//! `Tableau` code runs with
//!
//! * [`ConcretePhases`] (one sign bit per generator) for the classic
//!   simulator ([`TableauSimulator`], [`reference_sample`]), and
//! * the symbolic phase stores of the `symphase-core` crate for Algorithm 1.
//!
//! # Example
//!
//! ```
//! use symphase_circuit::Circuit;
//! use symphase_tableau::TableauSimulator;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! c.measure_all();
//! let record = TableauSimulator::new(2, StdRng::seed_from_u64(1)).run(&c);
//! assert_eq!(record.get(0), record.get(1)); // Bell pair: outcomes agree
//! ```
//!
//! [Aaronson & Gottesman 2004]: https://doi.org/10.1103/PhysRevA.70.052328

mod pauli;
mod phases;
pub mod record;
mod simulator;
mod tableau;
pub mod verify;

pub use pauli::PauliString;
pub use phases::{ConcretePhases, PhaseStore};
pub use simulator::{reference_sample, TableauSampler, TableauSimulator};
pub use tableau::{Collapse, Tableau};
