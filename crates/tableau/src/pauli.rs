//! Packed n-qubit Pauli strings with sign tracking.

use std::fmt;

use symphase_bitmat::BitVec;
use symphase_circuit::PauliKind;

/// An `n`-qubit Pauli string `i^e · X^x Z^z` with per-qubit x/z bit-vectors
/// and a global phase exponent mod 4.
///
/// Used for extracting stabilizer generators from a tableau, the invariant
/// verifier, and tests; the simulators themselves use column-packed storage.
///
/// # Example
///
/// ```
/// use symphase_tableau::PauliString;
///
/// let a: PauliString = "+XXI".parse()?;
/// let b: PauliString = "+ZZI".parse()?;
/// assert!(a.commutes_with(&b));
/// let prod = a.mul(&b);
/// assert_eq!(prod.to_string(), "-YYI");
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    x: BitVec,
    z: BitVec,
    /// Power of `i` in `i^e · X^x Z^z` form.
    phase_exp: u8,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Self {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
            phase_exp: 0,
        }
    }

    /// Builds from x/z bit-vectors and a physical sign.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_xz(x: BitVec, z: BitVec, negative: bool) -> Self {
        assert_eq!(x.len(), z.len(), "x/z length mismatch");
        // Physical sign (−1)^neg · Π P_q; each Y contributes i to the XZ form.
        let ys = {
            let mut t = x.clone();
            t.and_assign(&z);
            t.count_ones()
        };
        let phase_exp = ((ys % 4) as u8 + if negative { 2 } else { 0 }) % 4;
        Self { x, z, phase_exp }
    }

    /// Number of qubits.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` for the zero-qubit string.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The Pauli at qubit `q` (`None` for identity).
    pub fn pauli_at(&self, q: usize) -> Option<PauliKind> {
        match (self.x.get(q), self.z.get(q)) {
            (false, false) => None,
            (true, false) => Some(PauliKind::X),
            (true, true) => Some(PauliKind::Y),
            (false, true) => Some(PauliKind::Z),
        }
    }

    /// Sets the Pauli at qubit `q`.
    pub fn set_pauli(&mut self, q: usize, p: Option<PauliKind>) {
        // Remove the old Y's implicit i, add the new one's.
        if self.x.get(q) && self.z.get(q) {
            self.phase_exp = (self.phase_exp + 3) % 4;
        }
        let (x, z) = p.map_or((false, false), PauliKind::xz);
        self.x.set(q, x);
        self.z.set(q, z);
        if x && z {
            self.phase_exp = (self.phase_exp + 1) % 4;
        }
    }

    /// `true` if the physical sign is `-1`.
    ///
    /// # Panics
    ///
    /// Panics if the string has an imaginary prefactor (cannot happen for
    /// stabilizer-group elements).
    pub fn sign_is_negative(&self) -> bool {
        let ys = {
            let mut t = self.x.clone();
            t.and_assign(&self.z);
            t.count_ones()
        };
        let e = (self.phase_exp as usize + 4 - ys % 4) % 4;
        assert!(e.is_multiple_of(2), "Pauli string has imaginary phase");
        e == 2
    }

    /// Flips the physical sign.
    pub fn negate(&mut self) {
        self.phase_exp = (self.phase_exp + 2) % 4;
    }

    /// Borrow of the X bit-vector.
    pub fn x_bits(&self) -> &BitVec {
        &self.x
    }

    /// Borrow of the Z bit-vector.
    pub fn z_bits(&self) -> &BitVec {
        &self.z
    }

    /// `true` if `self` and `other` commute (symplectic product is even).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "length mismatch");
        !(self.x.dot(&other.z) ^ self.z.dot(&other.x))
    }

    /// The product `self · other` with exact phase tracking, computed with
    /// word-parallel popcounts.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.len(), other.len(), "length mismatch");
        // (X^x1 Z^z1)(X^x2 Z^z2): moving X^x2 through Z^z1 costs (−1)^(z1·x2).
        let anti = self
            .z
            .words()
            .iter()
            .zip(other.x.words())
            .fold(0u32, |acc, (a, b)| acc.wrapping_add((a & b).count_ones()));
        let mut x = self.x.clone();
        x.xor_assign(&other.x);
        let mut z = self.z.clone();
        z.xor_assign(&other.z);
        PauliString {
            x,
            z,
            phase_exp: ((self.phase_exp as u32 + other.phase_exp as u32 + 2 * anti) % 4) as u8,
        }
    }

    /// The power of `i` in the `i^e · X^x Z^z` form (mod 4). Products of
    /// anticommuting strings are imaginary in this form even though each
    /// factor is real.
    pub fn phase_exponent(&self) -> u8 {
        self.phase_exp
    }

    /// Number of non-identity Paulis.
    pub fn weight(&self) -> usize {
        let mut t = self.x.clone();
        t.or_assign(&self.z);
        t.count_ones()
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.sign_is_negative() { '-' } else { '+' })?;
        for q in 0..self.len() {
            let c = match self.pauli_at(q) {
                None => 'I',
                Some(PauliKind::X) => 'X',
                Some(PauliKind::Y) => 'Y',
                Some(PauliKind::Z) => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString({self})")
    }
}

impl std::str::FromStr for PauliString {
    type Err = String;

    /// Parses strings like `"+XIZ"`, `"-YY"`, or `"XZ"` (implicit `+`).
    fn from_str(s: &str) -> Result<Self, String> {
        let (neg, body) = match s.as_bytes().first() {
            Some(b'+') => (false, &s[1..]),
            Some(b'-') => (true, &s[1..]),
            _ => (false, s),
        };
        let n = body.len();
        let mut p = PauliString::identity(n);
        for (q, ch) in body.chars().enumerate() {
            let kind = match ch {
                'I' | '_' => None,
                'X' => Some(PauliKind::X),
                'Y' => Some(PauliKind::Y),
                'Z' => Some(PauliKind::Z),
                _ => return Err(format!("invalid Pauli character '{ch}'")),
            };
            p.set_pauli(q, kind);
        }
        if neg {
            p.negate();
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["+XIZ", "-YY", "+IIII", "-XYZI"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert_eq!(p("XZ").to_string(), "+XZ");
    }

    #[test]
    fn single_qubit_products() {
        // Products of anticommuting Paulis are imaginary: X·Z = −iY, i.e.
        // (x=1, z=1, e=0) in i^e·X^xZ^z form (Y itself is e=1).
        let case = |a: &str, b: &str, x: bool, z: bool, e: u8| {
            let prod = p(a).mul(&p(b));
            assert_eq!(
                (
                    prod.x_bits().get(0),
                    prod.z_bits().get(0),
                    prod.phase_exponent()
                ),
                (x, z, e),
                "{a}·{b}"
            );
        };
        case("X", "Z", true, true, 0); // −iY
        case("Z", "X", true, true, 2); // +iY
        case("X", "Y", false, true, 1); // +iZ
        case("Y", "X", false, true, 3); // −iZ
        case("Y", "Z", true, false, 1); // +iX
        case("Z", "Y", true, false, 3); // −iX
        assert_eq!(p("X").mul(&p("X")).to_string(), "+I");
        assert_eq!(p("Y").mul(&p("Y")).to_string(), "+I");
        // (XZ)² = −I confirms the −i prefactor of XZ.
        let xz = p("X").mul(&p("Z"));
        assert_eq!(xz.mul(&xz).to_string(), "-I");
    }

    #[test]
    fn multi_qubit_products_and_signs() {
        assert_eq!(p("+XXI").mul(&p("+ZZI")).to_string(), "-YYI");
        assert_eq!(p("-XI").mul(&p("+XI")).to_string(), "-II");
        assert_eq!(p("+XZ").mul(&p("+ZX")).to_string(), "+YY");
    }

    #[test]
    fn commutation() {
        assert!(p("XX").commutes_with(&p("ZZ")));
        assert!(!p("XI").commutes_with(&p("ZI")));
        assert!(p("XI").commutes_with(&p("IZ")));
        // X↔Y and Z↔X anticommute at two positions: overall they commute.
        assert!(p("XYZ").commutes_with(&p("YYX")));
        // A single anticommuting position makes the strings anticommute.
        assert!(!p("XYZ").commutes_with(&p("YYZ")));
    }

    #[test]
    fn anticommuting_product_order_flips_sign() {
        let a = p("XI");
        let b = p("ZI");
        let ab = a.mul(&b);
        let mut ba = b.mul(&a);
        ba.negate();
        assert_eq!(ab, ba);
    }

    #[test]
    fn mul_is_associative() {
        let strs = ["+XYZ", "-ZZX", "+YIX", "-XXY"];
        for a in strs {
            for b in strs {
                for c in strs {
                    let left = p(a).mul(&p(b)).mul(&p(c));
                    let right = p(a).mul(&p(b).mul(&p(c)));
                    assert_eq!(left, right, "({a})({b})({c})");
                }
            }
        }
    }

    #[test]
    fn weight_counts_support() {
        assert_eq!(p("+XIZY").weight(), 3);
        assert_eq!(p("+IIII").weight(), 0);
    }

    #[test]
    fn set_pauli_tracks_phase() {
        let mut q = PauliString::identity(2);
        q.set_pauli(0, Some(PauliKind::Y));
        assert_eq!(q.to_string(), "+YI");
        q.set_pauli(0, Some(PauliKind::X));
        assert_eq!(q.to_string(), "+XI");
        q.set_pauli(0, None);
        assert_eq!(q.to_string(), "+II");
    }

    #[test]
    fn from_xz_sign_roundtrip() {
        let s = p("-XYZ");
        let rebuilt = PauliString::from_xz(s.x_bits().clone(), s.z_bits().clone(), true);
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn invalid_parse_rejected() {
        assert!("+XQ".parse::<PauliString>().is_err());
    }
}
