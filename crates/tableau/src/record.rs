//! Detector/observable record evaluation — re-exported from the backend
//! layer.
//!
//! The implementation moved to `symphase_backend::record` so that every
//! engine (including the dense state-vector simulator, which does not
//! depend on this crate) resolves detector and observable measurement
//! sets identically. This module remains as a compatibility path:
//! `symphase_tableau::record::detector_matrix` and friends keep working.

pub use symphase_backend::record::{
    detector_matrix, detector_measurement_sets, detector_values, observable_matrix,
    observable_measurement_sets, observable_values, xor_rows, xor_rows_into,
};
