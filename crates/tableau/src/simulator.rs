//! Single-shot concrete tableau simulation and reference sampling.
//!
//! The instruction-walk state machine (record bookkeeping, resets,
//! feedback, trajectory noise) lives in `symphase_backend::exec`; this
//! module supplies only the tableau-specific primitives through
//! [`ShotState`] and wraps them as [`TableauSimulator`] (one shot at a
//! time) and [`TableauSampler`] (the [`Sampler`] backend that loops
//! shots).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use symphase_backend::exec::{run_shot, ShotBatcher, ShotState};
use symphase_backend::{SampleBatch, Sampler};
use symphase_bitmat::BitVec;
use symphase_circuit::{Circuit, Gate};

use crate::phases::{ConcretePhases, PhaseStore};
use crate::tableau::{Collapse, Tableau};

/// The concrete tableau as a single-shot execution state: the classic
/// Aaronson–Gottesman algorithm with one sign bit per generator.
pub(crate) struct ConcreteShot {
    tab: Tableau<ConcretePhases>,
}

impl ConcreteShot {
    pub(crate) fn new(num_qubits: usize) -> Self {
        Self {
            tab: Tableau::new(num_qubits),
        }
    }
}

impl ShotState for ConcreteShot {
    fn apply_gate(&mut self, gate: Gate, targets: &[u32]) {
        self.tab.apply_gate(gate, targets);
    }

    fn measure(&mut self, q: u32, rng: &mut dyn RngCore, reference: bool) -> bool {
        match self.tab.collapse_z(q as usize) {
            Collapse::Random { pivot } => {
                let outcome = if reference { false } else { rng.random() };
                self.tab.phases_mut().set_constant_bit(pivot, outcome);
                outcome
            }
            Collapse::Deterministic => {
                self.tab.accumulate_deterministic(q as usize);
                self.tab.phases().constant_bit(self.tab.scratch_row())
            }
        }
    }
}

/// A single-shot stabilizer simulator with concrete phases: the classic
/// Aaronson–Gottesman algorithm, including Pauli noise sampled during the
/// traversal, resets, and classically-controlled Paulis.
///
/// Sampling `k` shots with this simulator traverses the circuit `k` times —
/// the cost model Algorithm 1 avoids. It is the correctness anchor for the
/// faster engines. For batch sampling through the shared backend layer,
/// use [`TableauSampler`].
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::ghz;
/// use symphase_tableau::TableauSimulator;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let record = TableauSimulator::new(4, StdRng::seed_from_u64(7)).run(&ghz(4));
/// // All four GHZ outcomes agree.
/// assert!(record.iter_ones().count() == 0 || record.iter_ones().count() == 4);
/// ```
#[derive(Debug)]
pub struct TableauSimulator<R: Rng> {
    n: usize,
    rng: R,
}

impl<R: Rng> TableauSimulator<R> {
    /// Creates a simulator for `num_qubits` qubits driven by `rng`.
    pub fn new(num_qubits: usize, rng: R) -> Self {
        Self { n: num_qubits, rng }
    }

    /// Runs one shot of `circuit` from `|0…0⟩` and returns the measurement
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references more qubits than the simulator has.
    pub fn run(&mut self, circuit: &Circuit) -> BitVec {
        assert!(
            circuit.num_qubits() as usize <= self.n,
            "circuit needs {} qubits, simulator has {}",
            circuit.num_qubits(),
            self.n
        );
        let mut state = ConcreteShot::new(self.n);
        run_shot(&mut state, circuit, &mut self.rng, false)
    }
}

/// Computes the canonical noiseless *reference sample*: noise instructions
/// are skipped and every random measurement outcome is fixed to 0 (exactly
/// the convention of Algorithm 1's Init-M and of the Pauli-frame baseline).
pub fn reference_sample(circuit: &Circuit) -> BitVec {
    // RNG is never consulted in reference mode.
    let mut rng = StdRng::seed_from_u64(0);
    let mut state = ConcreteShot::new(circuit.num_qubits() as usize);
    run_shot(&mut state, circuit, &mut rng, true)
}

/// The tableau engine as a [`Sampler`] backend: every shot is an
/// independent noisy tableau trajectory.
///
/// Per-shot cost is `O(n_g · n + n_m · n²)` — the slowest backend by far,
/// but it exercises the textbook algorithm directly, which makes it the
/// arbiter when the fast engines disagree.
#[derive(Clone, Debug)]
pub struct TableauSampler {
    circuit: Circuit,
    batcher: ShotBatcher,
}

impl TableauSampler {
    /// Builds the backend for `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        Self {
            circuit: circuit.clone(),
            batcher: ShotBatcher::new(circuit),
        }
    }
}

impl Sampler for TableauSampler {
    fn name(&self) -> &'static str {
        "tableau"
    }

    fn num_measurements(&self) -> usize {
        self.circuit.num_measurements()
    }

    fn num_detectors(&self) -> usize {
        self.batcher.num_detectors()
    }

    fn num_observables(&self) -> usize {
        self.batcher.num_observables()
    }

    fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore) {
        let n = self.circuit.num_qubits() as usize;
        self.batcher
            .sample_into(&self.circuit, || ConcreteShot::new(n), batch, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::{bell_pair, ghz, teleportation};
    use symphase_circuit::{NoiseChannel, PauliKind};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bell_outcomes_agree_and_vary() {
        let c = bell_pair();
        let mut ones = 0;
        for seed in 0..64 {
            let rec = TableauSimulator::new(2, rng(seed)).run(&c);
            assert_eq!(rec.get(0), rec.get(1), "Bell outcomes must agree");
            ones += usize::from(rec.get(0));
        }
        assert!(
            ones > 10 && ones < 54,
            "Bell outcome should be ~fair, got {ones}/64"
        );
    }

    #[test]
    fn ghz_outcomes_all_equal() {
        let c = ghz(6);
        for seed in 0..16 {
            let rec = TableauSimulator::new(6, rng(seed)).run(&c);
            let count = rec.iter_ones().count();
            assert!(count == 0 || count == 6);
        }
    }

    #[test]
    fn reference_sample_fixes_random_outcomes_to_zero() {
        let c = bell_pair();
        let r = reference_sample(&c);
        assert!(!r.get(0) && !r.get(1));
    }

    #[test]
    fn reference_sample_keeps_deterministic_values() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure(0);
        assert!(reference_sample(&c).get(0));
    }

    #[test]
    fn reference_sample_skips_noise() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.measure(0);
        assert!(!reference_sample(&c).get(0));
        // ... but a real run applies it.
        let rec = TableauSimulator::new(1, rng(1)).run(&c);
        assert!(rec.get(0));
    }

    #[test]
    fn teleportation_always_verifies() {
        let c = teleportation();
        for seed in 0..32 {
            let rec = TableauSimulator::new(3, rng(seed)).run(&c);
            assert!(
                !rec.get(2),
                "teleportation verification failed (seed {seed})"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(1, rng(3)).run(&c);
        assert!(!rec.get(0));
    }

    #[test]
    fn reset_of_entangled_qubit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(2, rng(4)).run(&c);
        assert!(!rec.get(0));
    }

    #[test]
    fn measure_reset_records_then_clears() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(1, rng(5)).run(&c);
        assert!(rec.get(0));
        assert!(!rec.get(1));
    }

    #[test]
    fn deterministic_noise_probability_one() {
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::ZError(1.0), &[0]); // Z on |0⟩: no effect
        c.noise(NoiseChannel::XError(1.0), &[1]);
        c.measure_all();
        let rec = TableauSimulator::new(2, rng(6)).run(&c);
        assert!(!rec.get(0));
        assert!(rec.get(1));
    }

    #[test]
    fn feedback_applies_conditionally() {
        // Measure |1⟩, then feedback-X another qubit: it must flip.
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let rec = TableauSimulator::new(2, rng(7)).run(&c);
        assert!(rec.get(0) && rec.get(1));

        // Measure |0⟩: feedback must not fire.
        let mut c = Circuit::new(2);
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let rec = TableauSimulator::new(2, rng(8)).run(&c);
        assert!(!rec.get(0) && !rec.get(1));
    }

    #[test]
    fn depolarize2_probability_one_changes_state_sometimes() {
        // With p = 1 a non-identity Pauli is applied; measuring in Z basis
        // detects X components ~ often. Just check it runs and stays valid.
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::Depolarize2(1.0), &[0, 1]);
        c.measure_all();
        let mut flips = 0;
        for seed in 0..40 {
            let rec = TableauSimulator::new(2, rng(seed)).run(&c);
            flips += rec.iter_ones().count();
        }
        assert!(flips > 0, "two-qubit depolarizing never flipped anything");
    }

    #[test]
    fn sampler_backend_matches_single_shot_statistics() {
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::XError(0.3), &[0]);
        c.measure_all();
        c.detector(&[-2]);
        let s = TableauSampler::new(&c);
        assert_eq!(s.num_measurements(), 2);
        assert_eq!(s.num_detectors(), 1);
        let shots = 20_000;
        let batch = s.sample(shots, &mut rng(9));
        let ones = (0..shots).filter(|&i| batch.measurements.get(0, i)).count();
        assert!(
            (ones as f64 - 6000.0).abs() < 6.0 * (shots as f64 * 0.3 * 0.7).sqrt(),
            "X error rate off: {ones}"
        );
        // Detector mirrors measurement 0 here.
        for shot in 0..200 {
            assert_eq!(
                batch.detectors.get(0, shot),
                batch.measurements.get(0, shot)
            );
        }
    }

    #[test]
    fn sampler_backend_par_is_deterministic() {
        let c = bell_pair();
        let s = TableauSampler::new(&c);
        let a = s.sample_seeded(5000, 77);
        let b = s.sample_par(5000, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn structured_repeat_matches_flattened_trajectories() {
        // The tableau engine streams REPEAT blocks through the shared
        // driver; for equal seeds the trajectory must be bit-identical to
        // running the materialized flattening.
        let text = "R 0 1\nH 0\nM 0\nREPEAT 8 {\n CX rec[-1] 1\n DEPOLARIZE1(0.3) 0\n MR 1\n DETECTOR rec[-1] rec[-2]\n}\n";
        let structured = Circuit::parse(text).unwrap();
        let flat = structured.flattened();
        for seed in 0..8 {
            let a = TableauSimulator::new(2, rng(seed)).run(&structured);
            let b = TableauSimulator::new(2, rng(seed)).run(&flat);
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
