//! Single-shot concrete tableau simulation and reference sampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use symphase_bitmat::BitVec;
use symphase_circuit::{Circuit, Gate, Instruction, NoiseChannel, PauliKind};

use crate::phases::{ConcretePhases, PhaseStore};
use crate::tableau::{Collapse, Tableau};

/// A single-shot stabilizer simulator with concrete phases: the classic
/// Aaronson–Gottesman algorithm, including Pauli noise sampled during the
/// traversal, resets, and classically-controlled Paulis.
///
/// Sampling `k` shots with this simulator traverses the circuit `k` times —
/// the cost model Algorithm 1 avoids. It is the correctness anchor for the
/// faster engines.
///
/// # Example
///
/// ```
/// use symphase_circuit::generators::ghz;
/// use symphase_tableau::TableauSimulator;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let record = TableauSimulator::new(4, StdRng::seed_from_u64(7)).run(&ghz(4));
/// // All four GHZ outcomes agree.
/// assert!(record.iter_ones().count() == 0 || record.iter_ones().count() == 4);
/// ```
#[derive(Debug)]
pub struct TableauSimulator<R: Rng> {
    n: usize,
    rng: R,
}

impl<R: Rng> TableauSimulator<R> {
    /// Creates a simulator for `num_qubits` qubits driven by `rng`.
    pub fn new(num_qubits: usize, rng: R) -> Self {
        Self { n: num_qubits, rng }
    }

    /// Runs one shot of `circuit` from `|0…0⟩` and returns the measurement
    /// record.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references more qubits than the simulator has.
    pub fn run(&mut self, circuit: &Circuit) -> BitVec {
        assert!(
            circuit.num_qubits() as usize <= self.n,
            "circuit needs {} qubits, simulator has {}",
            circuit.num_qubits(),
            self.n
        );
        run_once(self.n, circuit, &mut self.rng, false)
    }
}

/// Computes the canonical noiseless *reference sample*: noise instructions
/// are skipped and every random measurement outcome is fixed to 0 (exactly
/// the convention of Algorithm 1's Init-M and of the Pauli-frame baseline).
pub fn reference_sample(circuit: &Circuit) -> BitVec {
    // RNG is never consulted in reference mode.
    let mut rng = StdRng::seed_from_u64(0);
    run_once(circuit.num_qubits() as usize, circuit, &mut rng, true)
}

fn run_once(n: usize, circuit: &Circuit, rng: &mut impl Rng, reference: bool) -> BitVec {
    let mut tab: Tableau<ConcretePhases> = Tableau::new(n);
    let mut record = BitVec::new();
    for inst in circuit.instructions() {
        match inst {
            Instruction::Gate { gate, targets } => tab.apply_gate(*gate, targets),
            Instruction::Measure { targets } => {
                for &q in targets {
                    let m = measure(&mut tab, q as usize, rng, reference);
                    record.push(m);
                }
            }
            Instruction::Reset { targets } => {
                for &q in targets {
                    let m = measure(&mut tab, q as usize, rng, reference);
                    if m {
                        tab.apply_gate(Gate::X, &[q]);
                    }
                }
            }
            Instruction::MeasureReset { targets } => {
                for &q in targets {
                    let m = measure(&mut tab, q as usize, rng, reference);
                    record.push(m);
                    if m {
                        tab.apply_gate(Gate::X, &[q]);
                    }
                }
            }
            Instruction::Noise { channel, targets } => {
                if !reference {
                    apply_noise(&mut tab, *channel, targets, rng);
                }
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => {
                let idx = record.len() as i64 + lookback;
                assert!(idx >= 0, "lookback validated at construction");
                if record.get(idx as usize) {
                    let gate = match pauli {
                        PauliKind::X => Gate::X,
                        PauliKind::Y => Gate::Y,
                        PauliKind::Z => Gate::Z,
                    };
                    tab.apply_gate(gate, &[*target]);
                }
            }
            Instruction::Detector { .. }
            | Instruction::ObservableInclude { .. }
            | Instruction::Tick => {}
        }
    }
    record
}

fn measure(
    tab: &mut Tableau<ConcretePhases>,
    q: usize,
    rng: &mut impl Rng,
    reference: bool,
) -> bool {
    match tab.collapse_z(q) {
        Collapse::Random { pivot } => {
            let outcome = if reference { false } else { rng.random() };
            tab.phases_mut().set_constant_bit(pivot, outcome);
            outcome
        }
        Collapse::Deterministic => {
            tab.accumulate_deterministic(q);
            tab.phases().constant_bit(tab.scratch_row())
        }
    }
}

/// Samples and applies one realization of a noise channel (trajectory
/// simulation).
fn apply_noise(
    tab: &mut Tableau<ConcretePhases>,
    channel: NoiseChannel,
    targets: &[u32],
    rng: &mut impl Rng,
) {
    match channel {
        NoiseChannel::XError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    tab.apply_gate(Gate::X, &[q]);
                }
            }
        }
        NoiseChannel::YError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    tab.apply_gate(Gate::Y, &[q]);
                }
            }
        }
        NoiseChannel::ZError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    tab.apply_gate(Gate::Z, &[q]);
                }
            }
        }
        NoiseChannel::Depolarize1(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    let gate = [Gate::X, Gate::Y, Gate::Z][rng.random_range(0..3)];
                    tab.apply_gate(gate, &[q]);
                }
            }
        }
        NoiseChannel::Depolarize2(p) => {
            for pair in targets.chunks_exact(2) {
                if rng.random_bool(p) {
                    // One of the 15 non-identity two-qubit Paulis.
                    let k = rng.random_range(1..16u32);
                    for (bit_x, bit_z, q) in
                        [(k & 1, k & 2, pair[0]), (k & 4, k & 8, pair[1])]
                    {
                        match (bit_x != 0, bit_z != 0) {
                            (true, false) => tab.apply_gate(Gate::X, &[q]),
                            (true, true) => tab.apply_gate(Gate::Y, &[q]),
                            (false, true) => tab.apply_gate(Gate::Z, &[q]),
                            (false, false) => {}
                        }
                    }
                }
            }
        }
        NoiseChannel::PauliChannel1 { px, py, pz } => {
            for &q in targets {
                let u: f64 = rng.random();
                if u < px {
                    tab.apply_gate(Gate::X, &[q]);
                } else if u < px + py {
                    tab.apply_gate(Gate::Y, &[q]);
                } else if u < px + py + pz {
                    tab.apply_gate(Gate::Z, &[q]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::generators::{bell_pair, ghz, teleportation};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bell_outcomes_agree_and_vary() {
        let c = bell_pair();
        let mut ones = 0;
        for seed in 0..64 {
            let rec = TableauSimulator::new(2, rng(seed)).run(&c);
            assert_eq!(rec.get(0), rec.get(1), "Bell outcomes must agree");
            ones += usize::from(rec.get(0));
        }
        assert!(ones > 10 && ones < 54, "Bell outcome should be ~fair, got {ones}/64");
    }

    #[test]
    fn ghz_outcomes_all_equal() {
        let c = ghz(6);
        for seed in 0..16 {
            let rec = TableauSimulator::new(6, rng(seed)).run(&c);
            let count = rec.iter_ones().count();
            assert!(count == 0 || count == 6);
        }
    }

    #[test]
    fn reference_sample_fixes_random_outcomes_to_zero() {
        let c = bell_pair();
        let r = reference_sample(&c);
        assert!(!r.get(0) && !r.get(1));
    }

    #[test]
    fn reference_sample_keeps_deterministic_values() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure(0);
        assert!(reference_sample(&c).get(0));
    }

    #[test]
    fn reference_sample_skips_noise() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.measure(0);
        assert!(!reference_sample(&c).get(0));
        // ... but a real run applies it.
        let rec = TableauSimulator::new(1, rng(1)).run(&c);
        assert!(rec.get(0));
    }

    #[test]
    fn teleportation_always_verifies() {
        let c = teleportation();
        for seed in 0..32 {
            let rec = TableauSimulator::new(3, rng(seed)).run(&c);
            assert!(!rec.get(2), "teleportation verification failed (seed {seed})");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(1, rng(3)).run(&c);
        assert!(!rec.get(0));
    }

    #[test]
    fn reset_of_entangled_qubit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(2, rng(4)).run(&c);
        assert!(!rec.get(0));
    }

    #[test]
    fn measure_reset_records_then_clears() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_reset(0);
        c.measure(0);
        let rec = TableauSimulator::new(1, rng(5)).run(&c);
        assert!(rec.get(0));
        assert!(!rec.get(1));
    }

    #[test]
    fn deterministic_noise_probability_one() {
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::ZError(1.0), &[0]); // Z on |0⟩: no effect
        c.noise(NoiseChannel::XError(1.0), &[1]);
        c.measure_all();
        let rec = TableauSimulator::new(2, rng(6)).run(&c);
        assert!(!rec.get(0));
        assert!(rec.get(1));
    }

    #[test]
    fn feedback_applies_conditionally() {
        // Measure |1⟩, then feedback-X another qubit: it must flip.
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let rec = TableauSimulator::new(2, rng(7)).run(&c);
        assert!(rec.get(0) && rec.get(1));

        // Measure |0⟩: feedback must not fire.
        let mut c = Circuit::new(2);
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let rec = TableauSimulator::new(2, rng(8)).run(&c);
        assert!(!rec.get(0) && !rec.get(1));
    }

    #[test]
    fn depolarize2_probability_one_changes_state_sometimes() {
        // With p = 1 a non-identity Pauli is applied; measuring in Z basis
        // detects X components ~ often. Just check it runs and stays valid.
        let mut c = Circuit::new(2);
        c.noise(NoiseChannel::Depolarize2(1.0), &[0, 1]);
        c.measure_all();
        let mut flips = 0;
        for seed in 0..40 {
            let rec = TableauSimulator::new(2, rng(seed)).run(&c);
            flips += rec.iter_ones().count();
        }
        assert!(flips > 0, "two-qubit depolarizing never flipped anything");
    }
}
