//! The shared single-shot execution driver.
//!
//! The concrete tableau simulator and the dense state-vector simulator
//! used to duplicate the whole instruction-walk state machine (measure /
//! reset / measure-reset record bookkeeping, feedback lookback, noise
//! trajectory sampling). [`run_shot`] is that state machine, written once:
//! an engine only supplies its representation-specific primitives through
//! [`ShotState`].

use rand::{Rng, RngCore};
use symphase_bitmat::BitVec;
use symphase_circuit::{
    pauli_channel_2_bits, pauli_channel_2_select, pauli_product_plan, Circuit, Gate, Instruction,
    NoiseChannel, PauliKind,
};

use crate::{record, SampleBatch};

/// The per-representation primitives a single-shot engine provides.
pub trait ShotState {
    /// Applies a Clifford gate to broadcast targets.
    fn apply_gate(&mut self, gate: Gate, targets: &[u32]);

    /// Z-basis measurement of qubit `q`, collapsing the state.
    ///
    /// When `reference` is set the engine must fix random outcomes to 0
    /// (the canonical reference-sample convention); deterministic
    /// outcomes are returned as-is.
    fn measure(&mut self, q: u32, rng: &mut dyn RngCore, reference: bool) -> bool;

    /// Applies a concrete Pauli (from a fired noise site or feedback).
    fn apply_pauli(&mut self, kind: PauliKind, q: u32) {
        self.apply_gate(pauli_gate(kind), &[q]);
    }
}

/// The gate corresponding to a Pauli kind.
pub fn pauli_gate(kind: PauliKind) -> Gate {
    match kind {
        PauliKind::X => Gate::X,
        PauliKind::Y => Gate::Y,
        PauliKind::Z => Gate::Z,
    }
}

/// Runs one shot of `circuit` on `state` and returns the measurement
/// record.
///
/// The circuit is traversed through the streaming
/// `Circuit::flat_instructions` iterator, so structured `REPEAT` blocks
/// execute without being materialized. Feedback lookbacks resolve against
/// the record built so far — inside a repeat body that can be the
/// previous iteration's measurements.
///
/// With `reference` set, noise instructions are skipped and random
/// measurement outcomes are fixed to 0 — the noiseless reference-sample
/// convention shared by Algorithm 1's Init-M and the Pauli-frame baseline.
///
/// # Panics
///
/// Panics if a feedback lookback reaches before the first measurement
/// (circuit construction validates this, so only hand-built instruction
/// streams can trip it).
pub fn run_shot<S: ShotState + ?Sized>(
    state: &mut S,
    circuit: &Circuit,
    rng: &mut dyn RngCore,
    reference: bool,
) -> BitVec {
    let mut record = BitVec::new();
    // Whether the current correlated-error chain has fired (chains are
    // contiguous by construction, so one flag suffices).
    let mut chain_fired = false;
    for inst in circuit.flat_instructions() {
        match inst {
            Instruction::Gate { gate, targets } => state.apply_gate(*gate, targets),
            Instruction::Measure { basis, targets } => {
                for &q in targets {
                    let m = conjugated(state, *basis, q, |s| s.measure(q, rng, reference));
                    record.push(m);
                }
            }
            Instruction::Reset { basis, targets } => {
                for &q in targets {
                    conjugated(state, *basis, q, |s| {
                        if s.measure(q, rng, reference) {
                            s.apply_pauli(PauliKind::X, q);
                        }
                    });
                }
            }
            Instruction::MeasureReset { basis, targets } => {
                for &q in targets {
                    let m = conjugated(state, *basis, q, |s| {
                        let m = s.measure(q, rng, reference);
                        if m {
                            s.apply_pauli(PauliKind::X, q);
                        }
                        m
                    });
                    record.push(m);
                }
            }
            Instruction::MeasurePauliProduct { products } => {
                for product in products {
                    // Reduce measure(P) to a Z measurement of the anchor
                    // (compute), measure, uncompute — the shared plan every
                    // engine runs, so trajectories stay aligned.
                    let (ops, anchor) = pauli_product_plan(product);
                    for op in &ops {
                        state.apply_gate(op.gate, op.targets());
                    }
                    let m = state.measure(anchor, rng, reference);
                    record.push(m);
                    for op in ops.iter().rev() {
                        state.apply_gate(op.gate, op.targets());
                    }
                }
            }
            Instruction::Noise { channel, targets } => {
                if !reference {
                    sample_trajectory(*channel, targets, rng, &mut |kind, q| {
                        state.apply_pauli(kind, q)
                    });
                }
            }
            Instruction::CorrelatedError {
                probability,
                product,
                else_branch,
            } => {
                if !reference {
                    let fire = if *else_branch && chain_fired {
                        false
                    } else {
                        rng.random_bool(*probability)
                    };
                    if *else_branch {
                        chain_fired |= fire;
                    } else {
                        chain_fired = fire;
                    }
                    if fire {
                        for &(kind, q) in product {
                            state.apply_pauli(kind, q);
                        }
                    }
                }
            }
            Instruction::Feedback {
                pauli,
                lookback,
                target,
            } => {
                let idx = record.len() as i64 + lookback;
                assert!(idx >= 0, "lookback validated at construction");
                if record.get(idx as usize) {
                    state.apply_pauli(*pauli, *target);
                }
            }
            Instruction::Detector { .. }
            | Instruction::ObservableInclude { .. }
            | Instruction::Tick
            | Instruction::QubitCoords { .. }
            | Instruction::ShiftCoords { .. } => {}
            Instruction::Repeat { .. } => {
                unreachable!("flat_instructions expands REPEAT blocks")
            }
        }
    }
    record
}

/// Runs `f` inside the basis conjugation of `basis` on qubit `q`: for X
/// and Y bases the self-inverse basis-change gate (`H` / `H_YZ`) is
/// applied before and after, reducing the operation to the engine's
/// Z-basis primitive.
fn conjugated<S: ShotState + ?Sized, T>(
    state: &mut S,
    basis: PauliKind,
    q: u32,
    f: impl FnOnce(&mut S) -> T,
) -> T {
    let gate = basis.z_conjugator();
    if let Some(g) = gate {
        state.apply_gate(g, &[q]);
    }
    let out = f(state);
    if let Some(g) = gate {
        state.apply_gate(g, &[q]);
    }
    out
}

/// The shared batch adapter for per-shot engines (tableau, statevec):
/// resolved detector/observable measurement sets plus the loop turning
/// independent [`run_shot`] trajectories into a [`SampleBatch`].
#[derive(Clone, Debug)]
pub struct ShotBatcher {
    det_sets: Vec<Vec<usize>>,
    obs_sets: Vec<Vec<usize>>,
}

impl ShotBatcher {
    /// Resolves the record sets of `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        Self {
            det_sets: record::detector_measurement_sets(circuit),
            obs_sets: record::observable_measurement_sets(circuit),
        }
    }

    /// Number of detectors.
    pub fn num_detectors(&self) -> usize {
        self.det_sets.len()
    }

    /// Number of observables.
    pub fn num_observables(&self) -> usize {
        self.obs_sets.len()
    }

    /// Fills `batch` (cleared first) by running one fresh shot state per
    /// column, then derives detectors and observables from the recorded
    /// measurements.
    pub fn sample_into<S: ShotState>(
        &self,
        circuit: &Circuit,
        mut new_state: impl FnMut() -> S,
        batch: &mut SampleBatch,
        rng: &mut dyn RngCore,
    ) {
        // Detector/observable derivation accumulates by XOR; clear so
        // reused batches don't mix draws.
        batch.clear();
        for shot in 0..batch.shots() {
            let mut state = new_state();
            let rec = run_shot(&mut state, circuit, rng, false);
            for m in 0..rec.len() {
                batch.measurements.set(m, shot, rec.get(m));
            }
        }
        record::xor_rows_into(&self.det_sets, &batch.measurements, &mut batch.detectors);
        record::xor_rows_into(&self.obs_sets, &batch.measurements, &mut batch.observables);
    }
}

/// Samples one concrete realization of a noise channel (trajectory
/// simulation) and reports every fired Pauli through `apply`.
///
/// This is the single dispatch point for per-site noise semantics; the
/// tableau and state-vector engines both draw their trajectories here, so
/// channel definitions cannot drift apart.
pub fn sample_trajectory(
    channel: NoiseChannel,
    targets: &[u32],
    rng: &mut dyn RngCore,
    apply: &mut dyn FnMut(PauliKind, u32),
) {
    match channel {
        NoiseChannel::XError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    apply(PauliKind::X, q);
                }
            }
        }
        NoiseChannel::YError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    apply(PauliKind::Y, q);
                }
            }
        }
        NoiseChannel::ZError(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    apply(PauliKind::Z, q);
                }
            }
        }
        NoiseChannel::Depolarize1(p) => {
            for &q in targets {
                if rng.random_bool(p) {
                    let kind =
                        [PauliKind::X, PauliKind::Y, PauliKind::Z][rng.random_range(0..3usize)];
                    apply(kind, q);
                }
            }
        }
        NoiseChannel::Depolarize2(p) => {
            for pair in targets.chunks_exact(2) {
                if rng.random_bool(p) {
                    // One of the 15 non-identity two-qubit Paulis.
                    let k = rng.random_range(1..16u32);
                    for (bit_x, bit_z, q) in [(k & 1, k & 2, pair[0]), (k & 4, k & 8, pair[1])] {
                        match (bit_x != 0, bit_z != 0) {
                            (true, false) => apply(PauliKind::X, q),
                            (true, true) => apply(PauliKind::Y, q),
                            (false, true) => apply(PauliKind::Z, q),
                            (false, false) => {}
                        }
                    }
                }
            }
        }
        NoiseChannel::PauliChannel1 { px, py, pz } => {
            for &q in targets {
                let u: f64 = rng.random();
                if u < px {
                    apply(PauliKind::X, q);
                } else if u < px + py {
                    apply(PauliKind::Y, q);
                } else if u < px + py + pz {
                    apply(PauliKind::Z, q);
                }
            }
        }
        NoiseChannel::PauliChannel2 { probs } => {
            let total: f64 = probs.iter().sum();
            for pair in targets.chunks_exact(2) {
                if total > 0.0 && rng.random_bool(total.min(1.0)) {
                    let u: f64 = rng.random::<f64>() * total;
                    let m = pauli_channel_2_select(u, &probs);
                    apply_pauli2_bits(pauli_channel_2_bits(m), pair, apply);
                }
            }
        }
    }
}

/// Applies the `(x_a, z_a, x_b, z_b)` bit pattern of a two-qubit Pauli
/// outcome to a target pair through `apply`.
fn apply_pauli2_bits(bits: [bool; 4], pair: &[u32], apply: &mut dyn FnMut(PauliKind, u32)) {
    for (i, &q) in pair.iter().enumerate() {
        match (bits[2 * i], bits[2 * i + 1]) {
            (true, false) => apply(PauliKind::X, q),
            (true, true) => apply(PauliKind::Y, q),
            (false, true) => apply(PauliKind::Z, q),
            (false, false) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A toy classical state: one bit per qubit, X flips it, everything
    /// else is ignored; measurements read the bit.
    struct Bits(Vec<bool>);

    impl ShotState for Bits {
        fn apply_gate(&mut self, gate: Gate, targets: &[u32]) {
            if matches!(gate, Gate::X | Gate::Y) {
                for &q in targets {
                    self.0[q as usize] = !self.0[q as usize];
                }
            }
        }

        fn measure(&mut self, q: u32, _rng: &mut dyn RngCore, _reference: bool) -> bool {
            self.0[q as usize]
        }
    }

    #[test]
    fn driver_records_and_feeds_back() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure(0);
        c.feedback(PauliKind::X, -1, 1);
        c.measure(1);
        let mut rng = StdRng::seed_from_u64(0);
        let rec = run_shot(&mut Bits(vec![false; 2]), &c, &mut rng, false);
        assert!(rec.get(0));
        assert!(rec.get(1), "feedback must have fired");
    }

    #[test]
    fn reset_clears_through_driver() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.reset(0);
        c.measure(0);
        let mut rng = StdRng::seed_from_u64(0);
        let rec = run_shot(&mut Bits(vec![false; 1]), &c, &mut rng, false);
        assert!(!rec.get(0));
    }

    #[test]
    fn reference_mode_skips_noise() {
        let mut c = Circuit::new(1);
        c.noise(NoiseChannel::XError(1.0), &[0]);
        c.measure(0);
        let mut rng = StdRng::seed_from_u64(0);
        let rec = run_shot(&mut Bits(vec![false; 1]), &c, &mut rng, true);
        assert!(!rec.get(0));
        let rec = run_shot(&mut Bits(vec![false; 1]), &c, &mut rng, false);
        assert!(rec.get(0));
    }

    #[test]
    fn trajectory_rates_match_channel() {
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let mut fired = 0usize;
        for _ in 0..trials {
            sample_trajectory(
                NoiseChannel::Depolarize1(0.3),
                &[0],
                &mut rng,
                &mut |_, _| fired += 1,
            );
        }
        let expect = 0.3 * trials as f64;
        assert!(
            (fired as f64 - expect).abs() < 6.0 * (expect * 0.7).sqrt(),
            "fire count {fired} vs {expect}"
        );
    }

    #[test]
    fn depolarize2_never_applies_identity() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..2000 {
            let mut n = 0;
            sample_trajectory(
                NoiseChannel::Depolarize2(1.0),
                &[0, 1],
                &mut rng,
                &mut |_, _| n += 1,
            );
            assert!((1..=2).contains(&n), "fired {n} Paulis");
        }
    }
}
