//! Simulation configuration: engine selection, per-engine knobs, and the
//! fallible construction contract.
//!
//! This module is the data half of the sampler-construction API. A
//! [`SimConfig`] names an engine ([`EngineKind`]) plus every tuning knob
//! the workspace exposes — symbolic phase store ([`PhaseRepr`]), `M · B`
//! multiplication strategy ([`SamplingMethod`]), RNG seed, thread budget,
//! and streaming chunk width — and validates the combination up front,
//! reporting problems as a [`BuildError`] instead of panicking deep inside
//! an engine. The construction half, `symphase::backend::build_sampler`,
//! lives in the facade crate (it must link every engine); everything a
//! caller writes *before* touching a circuit is here.

use symphase_circuit::Circuit;

use crate::CHUNK_SHOTS;

/// Which symbolic phase store Initialization uses (paper Eq. (3) dense
/// bit-matrix vs sparse rows; ablation A2 in DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PhaseRepr {
    /// Choose per circuit (the paper's conclusion suggests "dynamically
    /// determining the layout based on the type/pattern of the circuit"):
    /// heavily-interacting noisy circuits mix phases until sparse rows
    /// degenerate, so pick [`PhaseRepr::Dense`] when the expected symbol
    /// density is high and [`PhaseRepr::Sparse`] otherwise.
    #[default]
    Auto,
    /// Sorted symbol lists per tableau row (best for QEC-style circuits,
    /// where each generator carries few symbols).
    Sparse,
    /// Packed coefficient bit-rows (the paper's dense picture; best for
    /// dense random circuits with pervasive noise).
    Dense,
}

impl PhaseRepr {
    /// Resolves `Auto` against a circuit's statistics.
    ///
    /// Heuristic: the sparse store wins while expressions stay short. Long
    /// expressions come from deep mixing of *noise* symbols: every random
    /// measurement contributes exactly one coin, so coins cannot tell
    /// circuits apart and are excluded from the ratio. The crossover is
    /// pinned at 8 noise symbols per measurement — a noiseless circuit
    /// scores 0 and always takes the sparse store, however many
    /// measurements it records. (`tests/phase_repr.rs` pins the crossover
    /// on representative circuits.)
    pub fn resolve(self, circuit: &Circuit) -> PhaseRepr {
        match self {
            PhaseRepr::Auto => {
                let s = circuit.stats();
                let per_meas = s.noise_symbols as f64 / s.measurements.max(1) as f64;
                if per_meas > 8.0 {
                    PhaseRepr::Dense
                } else {
                    PhaseRepr::Sparse
                }
            }
            other => other,
        }
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseRepr::Auto => "auto",
            PhaseRepr::Sparse => "sparse",
            PhaseRepr::Dense => "dense",
        }
    }
}

/// How the Sampling step multiplies `M · B` (ablation A1 in DESIGN.md).
///
/// Every strategy consumes the RNG stream identically (they all draw the
/// same assignment matrix `B`, group by group), so for a fixed seed all
/// methods — including the one [`SamplingMethod::Auto`] picks — produce
/// **bit-identical** samples; only the kernel computing `M · B` differs.
/// `tests/sampling_methods.rs` pins this equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingMethod {
    /// Choose per circuit (mirroring [`PhaseRepr::Auto`]): dense
    /// measurement rows — determined outcomes downstream of noise and
    /// entanglement — promote to the blocked
    /// [`SamplingMethod::DenseMatMul`] kernel; at realistic (small) fault
    /// rates the event-driven [`SamplingMethod::Hybrid`] wins; in
    /// between, [`SamplingMethod::SparseRows`]. See
    /// [`SamplingMethod::resolve`] for the statistics-only rule and
    /// `SymPhaseSampler::resolved_method` (in `symphase-core`) for the
    /// matrix-informed refinement.
    #[default]
    Auto,
    /// Coins (fair measurement randomness) are multiplied densely — they
    /// fire every shot — while fault symbols are handled *event-wise*:
    /// for each fired noise site the affected measurement bits are flipped
    /// through a symbol → measurements index. For realistic fault rates
    /// almost no sites fire, so the noise cost is proportional to the
    /// number of actual fault events, the strongest form of the paper's
    /// column-sparsity argument (Table 1's `O(n_smp · n_m)` sparse case).
    Hybrid,
    /// Per-measurement XOR of the symbol shot-rows selected by the sparse
    /// measurement row — the paper's "sparse implementation of matrix
    /// multiplication" (§5).
    SparseRows,
    /// Dense F₂ matrix product against the densified measurement matrix,
    /// computed with the blocked Four-Russians kernel
    /// ([`symphase_bitmat::m4r`]): 8-bit Gray-code XOR tables over row
    /// groups, tiled over the shot dimension, with scratch buffers reused
    /// across shot batches.
    DenseMatMul,
}

impl SamplingMethod {
    /// Resolves `Auto` against a circuit's pre-initialization statistics;
    /// fixed methods resolve to themselves.
    ///
    /// From counts alone only the event-rate side is observable: if the
    /// mean noise fire probability is at most `1/64`, fault sites fire
    /// less than once per packed word of shots, so flipping individual
    /// bits per event ([`SamplingMethod::Hybrid`]) beats XORing whole
    /// shot-rows; otherwise [`SamplingMethod::SparseRows`].
    ///
    /// The *density* side — promoting to the blocked
    /// [`SamplingMethod::DenseMatMul`] when measurement rows carry more
    /// set bits than the kernel has column groups — needs the measurement
    /// matrix itself, which only exists after Initialization; the SymPhase
    /// sampler applies that refinement itself. (Deep *random* circuits do
    /// not densify `M`: random outcomes are fresh coins, so fault symbols
    /// stay out of their rows. Density comes from *determined*
    /// measurements downstream of noise and entanglement — see
    /// `noisy_ghz_chain`.)
    pub fn resolve(self, circuit: &Circuit) -> SamplingMethod {
        match self {
            SamplingMethod::Auto => {
                if circuit.mean_noise_probability() <= 1.0 / 64.0 {
                    SamplingMethod::Hybrid
                } else {
                    SamplingMethod::SparseRows
                }
            }
            other => other,
        }
    }

    /// CLI name (`--sampling` value).
    pub fn name(self) -> &'static str {
        match self {
            SamplingMethod::Auto => "auto",
            SamplingMethod::Hybrid => "hybrid",
            SamplingMethod::SparseRows => "sparse",
            SamplingMethod::DenseMatMul => "dense",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<SamplingMethod> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Every method, in documentation order.
    pub const ALL: [SamplingMethod; 4] = [
        SamplingMethod::Auto,
        SamplingMethod::Hybrid,
        SamplingMethod::SparseRows,
        SamplingMethod::DenseMatMul,
    ];
}

/// The selectable simulation engines.
///
/// This is pure selection data — names, parsing, capability flags. The
/// factory turning an `EngineKind` into a live `Box<dyn Sampler>` is
/// `symphase::backend::build_sampler` in the facade crate, which is the
/// only layer that links every engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// SymPhase (Algorithm 1) honoring the configured [`PhaseRepr`]
    /// (`Auto` picks the store per circuit).
    SymPhase,
    /// SymPhase pinned to the sparse phase store.
    SymPhaseSparse,
    /// SymPhase pinned to the dense phase store.
    SymPhaseDense,
    /// Stim-style Pauli-frame batch propagation.
    Frame,
    /// Per-shot concrete Aaronson–Gottesman tableau trajectories.
    Tableau,
    /// Per-shot dense state-vector trajectories (small circuits only).
    StateVec,
}

impl EngineKind {
    /// Every engine, in documentation order.
    pub const ALL: [EngineKind; 6] = [
        EngineKind::SymPhase,
        EngineKind::SymPhaseSparse,
        EngineKind::SymPhaseDense,
        EngineKind::Frame,
        EngineKind::Tableau,
        EngineKind::StateVec,
    ];

    /// The CLI name (`--engine` value).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::SymPhase => "symphase",
            EngineKind::SymPhaseSparse => "symphase-sparse",
            EngineKind::SymPhaseDense => "symphase-dense",
            EngineKind::Frame => "frame",
            EngineKind::Tableau => "tableau",
            EngineKind::StateVec => "statevec",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<EngineKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this is one of the SymPhase variants (the engines that
    /// honor a [`PhaseRepr`] / [`SamplingMethod`] choice — only they
    /// multiply a measurement matrix).
    pub fn is_symphase(self) -> bool {
        matches!(
            self,
            EngineKind::SymPhase | EngineKind::SymPhaseSparse | EngineKind::SymPhaseDense
        )
    }
}

/// Everything needed to build and drive a sampler, with validation up
/// front: engine, phase store, sampling method, seed, thread budget, and
/// streaming chunk width.
///
/// `SimConfig` is a by-value builder — start from [`SimConfig::new`] (or
/// `Default`) and chain `with_*` setters:
///
/// ```
/// use symphase_backend::{EngineKind, SamplingMethod, SimConfig};
///
/// let cfg = SimConfig::new()
///     .with_engine(EngineKind::SymPhase)
///     .with_sampling(SamplingMethod::Hybrid)
///     .with_seed(42)
///     .with_threads(4);
/// assert!(cfg.validate().is_ok());
/// ```
///
/// Validation ([`SimConfig::validate`]) rejects contradictory requests —
/// a sampling method on an engine without a measurement matrix, a phase
/// store conflicting with a pinned engine variant, a chunk width that
/// breaks word alignment — as typed [`BuildError`]s. The factory
/// (`symphase::backend::build_sampler`) validates again, so a config that
/// skipped `validate` still cannot build a broken sampler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    engine: EngineKind,
    phase_repr: PhaseRepr,
    sampling: SamplingMethod,
    seed: u64,
    threads: usize,
    chunk_shots: usize,
    optimize: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            engine: EngineKind::SymPhase,
            phase_repr: PhaseRepr::Auto,
            sampling: SamplingMethod::Auto,
            seed: 0,
            threads: 1,
            chunk_shots: CHUNK_SHOTS,
            optimize: false,
        }
    }
}

impl SimConfig {
    /// The default configuration: the `symphase` engine with automatic
    /// phase store and sampling method, seed 0, serial sampling, and the
    /// standard [`CHUNK_SHOTS`] chunk width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the engine by CLI name, failing with
    /// [`BuildError::UnknownEngine`] on an unrecognized name.
    pub fn with_engine_name(self, name: &str) -> Result<Self, BuildError> {
        match EngineKind::from_name(name) {
            Some(engine) => Ok(self.with_engine(engine)),
            None => Err(BuildError::UnknownEngine { name: name.into() }),
        }
    }

    /// Selects the symbolic phase store (SymPhase engines only).
    pub fn with_phase_repr(mut self, repr: PhaseRepr) -> Self {
        self.phase_repr = repr;
        self
    }

    /// Selects the `M · B` multiplication strategy (SymPhase engines
    /// only).
    pub fn with_sampling(mut self, method: SamplingMethod) -> Self {
        self.sampling = method;
        self
    }

    /// Selects the sampling method by CLI name, failing with
    /// [`BuildError::UnknownSamplingMethod`] on an unrecognized name.
    pub fn with_sampling_name(self, name: &str) -> Result<Self, BuildError> {
        match SamplingMethod::from_name(name) {
            Some(method) => Ok(self.with_sampling(method)),
            None => Err(BuildError::UnknownSamplingMethod { name: name.into() }),
        }
    }

    /// Sets the RNG seed of the chunk-seeding schedule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread budget: `1` samples serially, `0` means "use every
    /// available core", anything else caps the fan-out. Whatever the
    /// budget, outputs stay bit-identical for equal seeds.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the streaming chunk width in shots. Must be a nonzero
    /// multiple of 64 (chunk boundaries stay word-aligned in the
    /// bit-packed output); violations surface as
    /// [`BuildError::InvalidChunkShots`] from [`SimConfig::validate`].
    ///
    /// The width is honored by the config-driven streaming entry point
    /// ([`crate::sink::stream_with_config`], which the CLI runs) and the
    /// explicit-width `stream_seeded`/`stream_par` functions; the
    /// `Sampler` trait shorthands (`sample_to`, `sample_seeded`, …) pin
    /// the standard [`CHUNK_SHOTS`] width. Changing the chunk width
    /// changes the chunk-seeding schedule, so outputs are only
    /// comparable between runs using the same width.
    pub fn with_chunk_shots(mut self, chunk_shots: usize) -> Self {
        self.chunk_shots = chunk_shots;
        self
    }

    /// Enables (or disables) the verified pre-simulation optimizer: when
    /// set, the factory (`symphase::backend::build_sampler`) runs
    /// `analysis::optimize` on the circuit *before* symbolic
    /// initialization and builds the engine from the optimized circuit.
    /// Sampling is then bit-identical per seed to sampling the
    /// optimizer's output circuit directly; raw measurement records may
    /// differ from the unoptimized circuit at the optimizer's reported
    /// sign-flipped positions (detector and observable semantics are
    /// preserved exactly).
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Whether the factory optimizes the circuit before initialization.
    pub fn optimize(&self) -> bool {
        self.optimize
    }

    /// The selected engine.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The selected phase store.
    pub fn phase_repr(&self) -> PhaseRepr {
        self.phase_repr
    }

    /// The phase store the engine will actually be built with: the pinned
    /// engine variants (`symphase-sparse`, `symphase-dense`) override the
    /// configured store; plain `symphase` honors it.
    pub fn effective_phase_repr(&self) -> PhaseRepr {
        match self.engine {
            EngineKind::SymPhaseSparse => PhaseRepr::Sparse,
            EngineKind::SymPhaseDense => PhaseRepr::Dense,
            _ => self.phase_repr,
        }
    }

    /// The selected sampling method.
    pub fn sampling(&self) -> SamplingMethod {
        self.sampling
    }

    /// The chunk-schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw thread budget (`0` = all available cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The streaming chunk width in shots.
    pub fn chunk_shots(&self) -> usize {
        self.chunk_shots
    }

    /// Checks the configuration for internal contradictions. This needs
    /// no circuit, so callers (the CLI in particular) can reject bad
    /// requests *before* any expensive work; circuit-dependent checks
    /// (the state-vector qubit cap) happen in the factory.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.chunk_shots == 0 || !self.chunk_shots.is_multiple_of(64) {
            return Err(BuildError::InvalidChunkShots {
                got: self.chunk_shots,
            });
        }
        if !self.engine.is_symphase() {
            if self.sampling != SamplingMethod::Auto {
                return Err(BuildError::SamplingMethodUnsupported {
                    engine: self.engine.name(),
                    method: self.sampling.name(),
                });
            }
            if self.phase_repr != PhaseRepr::Auto {
                return Err(BuildError::PhaseReprUnsupported {
                    engine: self.engine.name(),
                    repr: self.phase_repr.name(),
                });
            }
        }
        match (self.engine, self.phase_repr) {
            (EngineKind::SymPhaseSparse, PhaseRepr::Dense)
            | (EngineKind::SymPhaseDense, PhaseRepr::Sparse) => {
                Err(BuildError::PhaseReprConflict {
                    engine: self.engine.name(),
                    repr: self.phase_repr.name(),
                })
            }
            _ => Ok(()),
        }
    }
}

/// Why a sampler could not be built from a [`SimConfig`] — the typed
/// diagnostics that replace the panics and scattered ad-hoc validation of
/// the pre-`SimConfig` constructor paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// `with_engine_name` saw a name that is not a known engine.
    UnknownEngine {
        /// The rejected name.
        name: String,
    },
    /// `with_sampling_name` saw a name that is not a known method.
    UnknownSamplingMethod {
        /// The rejected name.
        name: String,
    },
    /// The circuit exceeds the engine's size limit (the dense
    /// state-vector ground truth caps at `symphase_statevec::MAX_QUBITS`).
    CircuitTooLarge {
        /// Engine name.
        engine: &'static str,
        /// Qubits the circuit uses.
        qubits: u32,
        /// The engine's cap.
        max_qubits: u32,
    },
    /// A non-`Auto` sampling method was configured for an engine without
    /// a measurement-matrix product.
    SamplingMethodUnsupported {
        /// Engine name.
        engine: &'static str,
        /// The rejected method name.
        method: &'static str,
    },
    /// A non-`Auto` phase store was configured for a non-SymPhase engine.
    PhaseReprUnsupported {
        /// Engine name.
        engine: &'static str,
        /// The rejected store name.
        repr: &'static str,
    },
    /// A phase store conflicting with a pinned engine variant (e.g.
    /// `symphase-sparse` plus [`PhaseRepr::Dense`]).
    PhaseReprConflict {
        /// Engine name.
        engine: &'static str,
        /// The conflicting store name.
        repr: &'static str,
    },
    /// The chunk width is zero or not a multiple of 64, which would break
    /// word alignment of the bit-packed chunk boundaries.
    InvalidChunkShots {
        /// The rejected width.
        got: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownEngine { name } => {
                let names: Vec<&str> = EngineKind::ALL.iter().map(|k| k.name()).collect();
                write!(
                    f,
                    "unknown engine '{name}' (expected one of: {})",
                    names.join(", ")
                )
            }
            BuildError::UnknownSamplingMethod { name } => {
                let names: Vec<&str> = SamplingMethod::ALL.iter().map(|m| m.name()).collect();
                write!(
                    f,
                    "unknown sampling method '{name}' (expected one of: {})",
                    names.join(", ")
                )
            }
            BuildError::CircuitTooLarge {
                engine,
                qubits,
                max_qubits,
            } => write!(
                f,
                "engine '{engine}' cannot simulate this circuit \
                 ({qubits} qubits exceed its limit of {max_qubits})"
            ),
            BuildError::SamplingMethodUnsupported { engine, method } => write!(
                f,
                "--sampling {method} only applies to symphase engines, not '{engine}'"
            ),
            BuildError::PhaseReprUnsupported { engine, repr } => write!(
                f,
                "phase representation '{repr}' only applies to symphase engines, not '{engine}'"
            ),
            BuildError::PhaseReprConflict { engine, repr } => write!(
                f,
                "engine '{engine}' pins its phase store and conflicts with \
                 the requested '{repr}' representation"
            ),
            BuildError::InvalidChunkShots { got } => write!(
                f,
                "chunk width must be a nonzero multiple of 64 shots, got {got}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EngineKind::from_name("bogus"), None);
    }

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::new().validate(), Ok(()));
        assert_eq!(SimConfig::new().engine(), EngineKind::SymPhase);
        assert_eq!(SimConfig::new().chunk_shots(), CHUNK_SHOTS);
    }

    #[test]
    fn name_setters_reject_unknown_values() {
        let e = SimConfig::new().with_engine_name("warp-drive").unwrap_err();
        assert!(matches!(e, BuildError::UnknownEngine { .. }), "{e}");
        assert!(e.to_string().contains("symphase-sparse"));
        let e = SimConfig::new().with_sampling_name("quantum").unwrap_err();
        assert!(matches!(e, BuildError::UnknownSamplingMethod { .. }), "{e}");
    }

    #[test]
    fn validate_rejects_contradictions() {
        let e = SimConfig::new()
            .with_engine(EngineKind::Frame)
            .with_sampling(SamplingMethod::DenseMatMul)
            .validate()
            .unwrap_err();
        assert!(matches!(e, BuildError::SamplingMethodUnsupported { .. }));

        let e = SimConfig::new()
            .with_engine(EngineKind::Tableau)
            .with_phase_repr(PhaseRepr::Dense)
            .validate()
            .unwrap_err();
        assert!(matches!(e, BuildError::PhaseReprUnsupported { .. }));

        let e = SimConfig::new()
            .with_engine(EngineKind::SymPhaseSparse)
            .with_phase_repr(PhaseRepr::Dense)
            .validate()
            .unwrap_err();
        assert!(matches!(e, BuildError::PhaseReprConflict { .. }));

        for bad in [0usize, 1, 63, 100] {
            let e = SimConfig::new()
                .with_chunk_shots(bad)
                .validate()
                .unwrap_err();
            assert_eq!(e, BuildError::InvalidChunkShots { got: bad });
        }
        assert!(SimConfig::new().with_chunk_shots(128).validate().is_ok());
    }

    #[test]
    fn pinned_engines_override_the_phase_store() {
        let cfg = SimConfig::new().with_engine(EngineKind::SymPhaseDense);
        assert_eq!(cfg.effective_phase_repr(), PhaseRepr::Dense);
        let cfg = SimConfig::new()
            .with_engine(EngineKind::SymPhase)
            .with_phase_repr(PhaseRepr::Sparse);
        assert_eq!(cfg.effective_phase_repr(), PhaseRepr::Sparse);
    }
}
