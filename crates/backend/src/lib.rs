//! The shared sampler backend layer.
//!
//! Every simulator in this workspace — the SymPhase sampler
//! (`symphase-core`), the Pauli-frame baseline (`symphase-frame`), the
//! concrete tableau simulator (`symphase-tableau`), and the dense
//! state-vector ground truth (`symphase-statevec`) — implements the
//! [`Sampler`] trait defined here, producing the one bit-packed
//! [`SampleBatch`] type. The CLI, the benchmark harness, and the
//! cross-backend equivalence tests all select backends dynamically through
//! `Box<dyn Sampler>`, so adding an engine is implementing one trait.
//!
//! The crate also hosts the pieces the engines used to duplicate:
//!
//! * [`exec`] — the single-shot instruction-walk driver (measure / reset /
//!   measure-reset / feedback bookkeeping) and the trajectory sampling of
//!   noise channels into concrete Paulis;
//! * [`record`] — detector/observable measurement-set resolution and
//!   record evaluation (moved here from the tableau crate so every layer,
//!   including the dense simulator, shares it).
//!
//! # Chunk-seeded and parallel sampling
//!
//! [`Sampler::sample_seeded`] splits a request into [`CHUNK_SHOTS`]-wide
//! chunks and draws each chunk from an RNG seeded by
//! [`chunk_seed`]`(seed, chunk_index)`. [`Sampler::sample_par`] runs the
//! *same* chunk schedule across threads with a rayon-style fork-join, so
//! the two agree **shot for shot** — parallelism never changes results.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use symphase_bitmat::BitMatrix;

pub mod exec;
pub mod record;

/// Shots per sampling chunk: a multiple of 64 (so chunk boundaries stay
/// word-aligned in the bit-packed output) that keeps per-chunk working
/// sets cache-resident.
pub const CHUNK_SHOTS: usize = 4096;

/// Samples of everything a shot batch produces, shot-aligned: column `j`
/// of each matrix belongs to the same assignment draw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleBatch {
    /// `num_measurements × shots`.
    pub measurements: BitMatrix,
    /// `num_detectors × shots`.
    pub detectors: BitMatrix,
    /// `num_observables × shots`.
    pub observables: BitMatrix,
}

impl SampleBatch {
    /// An all-zero batch with the given row counts and `shots` columns.
    pub fn zeros(
        num_measurements: usize,
        num_detectors: usize,
        num_observables: usize,
        shots: usize,
    ) -> Self {
        Self {
            measurements: BitMatrix::zeros(num_measurements, shots),
            detectors: BitMatrix::zeros(num_detectors, shots),
            observables: BitMatrix::zeros(num_observables, shots),
        }
    }

    /// Number of shots (columns).
    pub fn shots(&self) -> usize {
        self.measurements.cols()
    }

    /// Zeroes every bit, keeping the shape (so a batch can be reused
    /// across [`Sampler::sample_into`] calls).
    pub fn clear(&mut self) {
        self.measurements.words_mut().fill(0);
        self.detectors.words_mut().fill(0);
        self.observables.words_mut().fill(0);
    }

    /// Copies every row of `chunk` into `self` starting at shot column
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a multiple of 64 or the chunk does not fit.
    pub fn paste_columns(&mut self, chunk: &SampleBatch, start: usize) {
        paste_matrix(&chunk.measurements, &mut self.measurements, start);
        paste_matrix(&chunk.detectors, &mut self.detectors, start);
        paste_matrix(&chunk.observables, &mut self.observables, start);
    }
}

/// Copies `src` (a shot window) into `dst` at word-aligned column `start`.
fn paste_matrix(src: &BitMatrix, dst: &mut BitMatrix, start: usize) {
    assert_eq!(start % 64, 0, "chunk starts must be word-aligned");
    assert_eq!(src.rows(), dst.rows(), "row count mismatch");
    assert!(start + src.cols() <= dst.cols(), "chunk does not fit");
    let word_off = start / 64;
    let sstride = src.stride();
    let dstride = dst.stride();
    for r in 0..src.rows() {
        let dst_row =
            &mut dst.words_mut()[r * dstride + word_off..r * dstride + word_off + sstride];
        dst_row.copy_from_slice(src.row(r));
    }
}

/// Derives the RNG seed of chunk `chunk` of a request seeded with `seed`
/// (SplitMix64 over the pair, so chunk streams are decorrelated).
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(chunk.wrapping_mul(0xD129_0B22_96D4_D32F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A measurement/detector/observable sampler over a fixed circuit: the one
/// interface all four simulation engines implement.
///
/// Implementors provide the record shape and [`Sampler::sample_into`]; the
/// provided methods layer allocation, deterministic chunk seeding, and
/// parallel sampling on top. The trait is object-safe — the CLI and the
/// bench harness hold backends as `Box<dyn Sampler>`.
pub trait Sampler: Send + Sync {
    /// Short stable name (CLI `--engine` value, bench series label).
    fn name(&self) -> &'static str;

    /// Builds this backend from a circuit (the engine's initialization —
    /// a symbolic traversal for SymPhase, a reference sample for the
    /// frame baseline, a circuit copy for the per-shot engines).
    fn from_circuit(circuit: &symphase_circuit::Circuit) -> Self
    where
        Self: Sized;

    /// Number of measurement outcomes per shot.
    fn num_measurements(&self) -> usize;

    /// Number of detectors per shot.
    fn num_detectors(&self) -> usize;

    /// Number of observables per shot.
    fn num_observables(&self) -> usize;

    /// Fills every column of `batch` with freshly drawn shots.
    ///
    /// `batch` must be shaped by [`SampleBatch::zeros`] with this
    /// sampler's row counts. Implementations overwrite all previous
    /// contents (they clear the batch first), so a batch may be reused
    /// across calls.
    fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore);

    /// Samples `shots` shots from a caller-supplied RNG stream.
    fn sample(&self, shots: usize, rng: &mut dyn RngCore) -> SampleBatch {
        let mut batch = SampleBatch::zeros(
            self.num_measurements(),
            self.num_detectors(),
            self.num_observables(),
            shots,
        );
        self.sample_into(&mut batch, rng);
        batch
    }

    /// Samples `shots` shots deterministically from `seed` using the
    /// per-chunk seeding schedule ([`CHUNK_SHOTS`], [`chunk_seed`]).
    ///
    /// This is the serial reference for [`Sampler::sample_par`]: both run
    /// the identical schedule, so their outputs are bit-identical.
    fn sample_seeded(&self, shots: usize, seed: u64) -> SampleBatch {
        let mut out = SampleBatch::zeros(
            self.num_measurements(),
            self.num_detectors(),
            self.num_observables(),
            shots,
        );
        let spans: Vec<(usize, usize)> = chunk_spans(shots).collect();
        sample_chunk_range(self, &spans, 0, seed, &mut out, 0);
        out
    }

    /// Samples `shots` shots across threads, chunked by [`CHUNK_SHOTS`]
    /// with per-chunk seeding — bit-identical to
    /// [`Sampler::sample_seeded`] with the same arguments.
    ///
    /// Fan-out is bounded by `rayon::current_num_threads()`; on a
    /// single-core machine this degenerates to the serial schedule with
    /// no thread spawns.
    fn sample_par(&self, shots: usize, seed: u64) -> SampleBatch {
        sample_par_with_threads(self, shots, seed, rayon::current_num_threads())
    }
}

/// Samples a contiguous chunk range of the `seed` schedule into `out`
/// (whose shot 0 corresponds to absolute shot `out_origin`), through one
/// reused chunk buffer — only the (smaller) final chunk ever forces a
/// reallocation. This is **the** chunk loop: both the serial
/// [`Sampler::sample_seeded`] and each parallel leaf of
/// [`sample_par_with_threads`] run it, which is what keeps the two
/// bit-identical.
fn sample_chunk_range<S: Sampler + ?Sized>(
    sampler: &S,
    spans: &[(usize, usize)],
    first_chunk: usize,
    seed: u64,
    out: &mut SampleBatch,
    out_origin: usize,
) {
    let mut buf: Option<SampleBatch> = None;
    for (i, &(start, width)) in spans.iter().enumerate() {
        if buf.as_ref().is_none_or(|b| b.shots() != width) {
            buf = Some(SampleBatch::zeros(
                sampler.num_measurements(),
                sampler.num_detectors(),
                sampler.num_observables(),
                width,
            ));
        }
        let chunk = buf.as_mut().expect("buffer just ensured");
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, (first_chunk + i) as u64));
        sampler.sample_into(chunk, &mut rng);
        out.paste_columns(chunk, start - out_origin);
    }
}

/// The chunk schedule for `shots` shots: `(start, width)` spans, all but
/// the last [`CHUNK_SHOTS`] wide.
pub fn chunk_spans(shots: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..shots)
        .step_by(CHUNK_SHOTS)
        .map(move |start| (start, CHUNK_SHOTS.min(shots - start)))
}

/// [`Sampler::sample_par`] with an explicit thread budget (exposed so the
/// parallel path stays testable on single-core machines).
pub fn sample_par_with_threads<S: Sampler + ?Sized>(
    sampler: &S,
    shots: usize,
    seed: u64,
    threads: usize,
) -> SampleBatch {
    let spans: Vec<(usize, usize)> = chunk_spans(shots).collect();
    if threads <= 1 || spans.len() <= 1 {
        return sampler.sample_seeded(shots, seed);
    }
    let mut out = SampleBatch::zeros(
        sampler.num_measurements(),
        sampler.num_detectors(),
        sampler.num_observables(),
        shots,
    );
    let groups = par_sample_groups(sampler, &spans, 0, seed, threads.min(spans.len()));
    for (start, group) in &groups {
        out.paste_columns(group, *start);
    }
    out
}

/// Recursive fork-join over contiguous chunk groups: splits the span list
/// proportionally to the thread budget (`rayon::join` per split), so at
/// most `threads` OS threads run, each sampling its chunk range serially.
/// Each leaf samples its contiguous range into **one** group batch through
/// a single reused chunk buffer — per-thread scratch, so steady-state
/// parallel sampling allocates one buffer and one output slab per thread
/// instead of one batch per chunk. Returns `(shot offset, group batch)`
/// pairs in chunk order.
fn par_sample_groups<S: Sampler + ?Sized>(
    sampler: &S,
    spans: &[(usize, usize)],
    first_chunk: usize,
    seed: u64,
    threads: usize,
) -> Vec<(usize, SampleBatch)> {
    if threads <= 1 || spans.len() <= 1 {
        let Some(&(group_start, _)) = spans.first() else {
            return Vec::new();
        };
        let total: usize = spans.iter().map(|&(_, width)| width).sum();
        let mut group = SampleBatch::zeros(
            sampler.num_measurements(),
            sampler.num_detectors(),
            sampler.num_observables(),
            total,
        );
        sample_chunk_range(sampler, spans, first_chunk, seed, &mut group, group_start);
        return vec![(group_start, group)];
    }
    let left_threads = threads / 2;
    let right_threads = threads - left_threads;
    // Split chunks proportionally to the thread budget of each side.
    let mid = (spans.len() * left_threads / threads).max(1);
    let (left, right) = spans.split_at(mid);
    let (mut a, b) = rayon::join(
        || par_sample_groups(sampler, left, first_chunk, seed, left_threads),
        || par_sample_groups(sampler, right, first_chunk + mid, seed, right_threads),
    );
    a.extend(b);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake engine: measurement `m` of shot `j` is
    /// `parity(rng_stream)`, so chunk seeding differences are visible.
    struct FakeSampler {
        nm: usize,
    }

    impl Sampler for FakeSampler {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn from_circuit(_circuit: &symphase_circuit::Circuit) -> Self {
            Self { nm: 0 }
        }

        fn num_measurements(&self) -> usize {
            self.nm
        }

        fn num_detectors(&self) -> usize {
            0
        }

        fn num_observables(&self) -> usize {
            0
        }

        fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore) {
            for shot in 0..batch.shots() {
                for m in 0..self.nm {
                    let bit = rng.next_u64() & 1 == 1;
                    batch.measurements.set(m, shot, bit);
                }
            }
        }
    }

    #[test]
    fn chunk_schedule_covers_all_shots() {
        let spans: Vec<_> = chunk_spans(CHUNK_SHOTS * 2 + 100).collect();
        assert_eq!(
            spans,
            vec![
                (0, CHUNK_SHOTS),
                (CHUNK_SHOTS, CHUNK_SHOTS),
                (2 * CHUNK_SHOTS, 100)
            ]
        );
        assert_eq!(chunk_spans(0).count(), 0);
        assert_eq!(chunk_spans(64).collect::<Vec<_>>(), vec![(0, 64)]);
    }

    #[test]
    fn par_matches_seeded_bit_for_bit() {
        let s = FakeSampler { nm: 5 };
        for shots in [
            0,
            1,
            63,
            64,
            CHUNK_SHOTS,
            CHUNK_SHOTS + 1,
            3 * CHUNK_SHOTS + 7,
        ] {
            let a = s.sample_seeded(shots, 0xFEED);
            let b = s.sample_par(shots, 0xFEED);
            assert_eq!(a, b, "mismatch at {shots} shots");
            // Force the threaded path regardless of the machine's core
            // count, with budgets that do and don't divide the chunks.
            for threads in [2, 3, 8] {
                let c = sample_par_with_threads(&s, shots, 0xFEED, threads);
                assert_eq!(a, c, "mismatch at {shots} shots / {threads} threads");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = FakeSampler { nm: 3 };
        let a = s.sample_seeded(256, 1);
        let b = s.sample_seeded(256, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn chunks_are_decorrelated() {
        // Same relative shot in two different chunks must not repeat (the
        // per-chunk seeds differ).
        let s = FakeSampler { nm: 8 };
        let out = s.sample_seeded(2 * CHUNK_SHOTS, 9);
        let first: Vec<bool> = (0..8).map(|m| out.measurements.get(m, 0)).collect();
        let second: Vec<bool> = (0..8)
            .map(|m| out.measurements.get(m, CHUNK_SHOTS))
            .collect();
        assert_ne!(first, second);
    }

    #[test]
    fn paste_rejects_unaligned_start() {
        let mut dst = SampleBatch::zeros(1, 0, 0, 128);
        let src = SampleBatch::zeros(1, 0, 0, 64);
        let err = std::panic::catch_unwind(move || dst.paste_columns(&src, 32));
        assert!(err.is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Sampler> = Box::new(FakeSampler { nm: 2 });
        let out = boxed.sample_seeded(100, 3);
        assert_eq!(out.measurements.rows(), 2);
        assert_eq!(out.shots(), 100);
        assert_eq!(boxed.name(), "fake");
    }
}
