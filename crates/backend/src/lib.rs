//! The shared sampler backend layer.
//!
//! Every simulator in this workspace — the SymPhase sampler
//! (`symphase-core`), the Pauli-frame baseline (`symphase-frame`), the
//! concrete tableau simulator (`symphase-tableau`), and the dense
//! state-vector ground truth (`symphase-statevec`) — implements the
//! [`Sampler`] trait defined here, producing the one bit-packed
//! [`SampleBatch`] type. The CLI, the benchmark harness, and the
//! cross-backend equivalence tests all select backends dynamically through
//! `Box<dyn Sampler>`, so adding an engine is implementing one trait.
//!
//! The crate also hosts the pieces the engines used to duplicate:
//!
//! * [`config`] — the [`SimConfig`] builder (engine kind, phase store,
//!   sampling method, seed, threads, chunk width) and the typed
//!   [`BuildError`] diagnostics of fallible sampler construction;
//! * [`sink`] — the streaming delivery layer: the [`ShotSink`] trait and
//!   the serial/parallel chunk streaming engines behind
//!   [`Sampler::sample_to`];
//! * [`formats`] — `ShotSink`s serializing shots to any `io::Write` in
//!   the `01`, `counts`, `b8`, `hits`, and `dets` formats (spec in
//!   `docs/formats.md`);
//! * [`exec`] — the single-shot instruction-walk driver (measure / reset /
//!   measure-reset / feedback bookkeeping) and the trajectory sampling of
//!   noise channels into concrete Paulis;
//! * [`record`] — detector/observable measurement-set resolution and
//!   record evaluation (moved here from the tableau crate so every layer,
//!   including the dense simulator, shares it).
//!
//! # Streaming, chunk-seeded, and parallel sampling
//!
//! [`Sampler::sample_to`] is the primary sampling entry point: it splits a
//! request into [`CHUNK_SHOTS`]-wide chunks, draws each chunk from an RNG
//! seeded by [`chunk_seed`]`(seed, chunk_index)`, and hands the chunks to
//! a [`ShotSink`] in schedule order — memory stays `O(chunk)` however
//! many shots are requested. [`Sampler::sample_seeded`] and
//! [`Sampler::sample_par`] are thin wrappers collecting the same stream
//! into one in-memory batch, and [`Sampler::sample_to_par`] runs the
//! *same* chunk schedule across threads (drawing chunks out of order but
//! presenting them to the sink in order), so every path agrees **shot for
//! shot** — parallelism and streaming never change results.

use rand::RngCore;
use symphase_bitmat::BitMatrix;

pub mod config;
pub mod exec;
pub mod formats;
pub mod record;
pub mod sink;

pub use config::{BuildError, EngineKind, PhaseRepr, SamplingMethod, SimConfig};
pub use sink::{
    range_chunk_spans, stream_range_par, stream_range_seeded, stream_range_with_config,
    CollectSink, CountingSink, FanoutSink, ShotSink, ShotSpec,
};

/// Shots per sampling chunk: a multiple of 64 (so chunk boundaries stay
/// word-aligned in the bit-packed output) that keeps per-chunk working
/// sets cache-resident.
pub const CHUNK_SHOTS: usize = 4096;

/// Samples of everything a shot batch produces, shot-aligned: column `j`
/// of each matrix belongs to the same assignment draw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampleBatch {
    /// `num_measurements × shots`.
    pub measurements: BitMatrix,
    /// `num_detectors × shots`.
    pub detectors: BitMatrix,
    /// `num_observables × shots`.
    pub observables: BitMatrix,
}

impl SampleBatch {
    /// An all-zero batch with the given row counts and `shots` columns.
    pub fn zeros(
        num_measurements: usize,
        num_detectors: usize,
        num_observables: usize,
        shots: usize,
    ) -> Self {
        Self {
            measurements: BitMatrix::zeros(num_measurements, shots),
            detectors: BitMatrix::zeros(num_detectors, shots),
            observables: BitMatrix::zeros(num_observables, shots),
        }
    }

    /// Number of shots (columns).
    pub fn shots(&self) -> usize {
        self.measurements.cols()
    }

    /// Zeroes every bit, keeping the shape (so a batch can be reused
    /// across [`Sampler::sample_into`] calls).
    pub fn clear(&mut self) {
        self.measurements.words_mut().fill(0);
        self.detectors.words_mut().fill(0);
        self.observables.words_mut().fill(0);
    }

    /// Copies every row of `chunk` into `self` starting at shot column
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a multiple of 64 or the chunk does not fit.
    pub fn paste_columns(&mut self, chunk: &SampleBatch, start: usize) {
        paste_matrix(&chunk.measurements, &mut self.measurements, start);
        paste_matrix(&chunk.detectors, &mut self.detectors, start);
        paste_matrix(&chunk.observables, &mut self.observables, start);
    }
}

/// Copies `src` (a shot window) into `dst` at word-aligned column `start`.
fn paste_matrix(src: &BitMatrix, dst: &mut BitMatrix, start: usize) {
    assert_eq!(start % 64, 0, "chunk starts must be word-aligned");
    assert_eq!(src.rows(), dst.rows(), "row count mismatch");
    assert!(start + src.cols() <= dst.cols(), "chunk does not fit");
    let word_off = start / 64;
    let sstride = src.stride();
    let dstride = dst.stride();
    for r in 0..src.rows() {
        let dst_row =
            &mut dst.words_mut()[r * dstride + word_off..r * dstride + word_off + sstride];
        dst_row.copy_from_slice(src.row(r));
    }
}

/// Derives the RNG seed of chunk `chunk` of a request seeded with `seed`
/// (SplitMix64 over the pair, so chunk streams are decorrelated).
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(chunk.wrapping_mul(0xD129_0B22_96D4_D32F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A measurement/detector/observable sampler over a fixed circuit: the one
/// interface all four simulation engines implement.
///
/// Implementors provide the record shape and [`Sampler::sample_into`]; the
/// provided methods layer allocation, deterministic chunk seeding,
/// streaming delivery, and parallel sampling on top. The trait is
/// object-safe — the CLI and the bench harness hold backends as
/// `Box<dyn Sampler>`, built through `symphase::backend::build_sampler`
/// from a [`SimConfig`].
pub trait Sampler: Send + Sync {
    /// Short stable name (CLI `--engine` value, bench series label).
    fn name(&self) -> &'static str;

    /// Number of measurement outcomes per shot.
    fn num_measurements(&self) -> usize;

    /// Number of detectors per shot.
    fn num_detectors(&self) -> usize;

    /// Number of observables per shot.
    fn num_observables(&self) -> usize;

    /// Fills every column of `batch` with freshly drawn shots.
    ///
    /// `batch` must be shaped by [`SampleBatch::zeros`] with this
    /// sampler's row counts. Implementations overwrite all previous
    /// contents (they clear the batch first), so a batch may be reused
    /// across calls.
    fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore);

    /// Samples `shots` shots from a caller-supplied RNG stream.
    fn sample(&self, shots: usize, rng: &mut dyn RngCore) -> SampleBatch {
        let mut batch = SampleBatch::zeros(
            self.num_measurements(),
            self.num_detectors(),
            self.num_observables(),
            shots,
        );
        self.sample_into(&mut batch, rng);
        batch
    }

    /// **The primary sampling entry point**: streams `shots`
    /// deterministic, chunk-seeded shots into `sink`, one
    /// [`CHUNK_SHOTS`]-wide [`SampleBatch`] at a time — memory stays
    /// `O(chunk)` however many shots are requested.
    ///
    /// The bytes a sink receives are bit-identical to the batch
    /// [`Sampler::sample_seeded`] returns for equal arguments (that
    /// method *is* this one with an in-memory [`CollectSink`]).
    fn sample_to(&self, shots: usize, seed: u64, sink: &mut dyn ShotSink) -> std::io::Result<()> {
        sink::stream_seeded(self, shots, seed, CHUNK_SHOTS, sink)
    }

    /// [`Sampler::sample_to`] across up to `threads` threads (`0` = all
    /// available cores): chunks are drawn concurrently in waves but
    /// presented to `sink` in schedule order, so output is bit-identical
    /// to the serial stream for equal seeds. Peak memory is
    /// `O(threads × chunk)`.
    fn sample_to_par(
        &self,
        shots: usize,
        seed: u64,
        threads: usize,
        sink: &mut dyn ShotSink,
    ) -> std::io::Result<()> {
        sink::stream_par(self, shots, seed, CHUNK_SHOTS, threads, sink)
    }

    /// Samples `shots` shots deterministically from `seed` using the
    /// per-chunk seeding schedule ([`CHUNK_SHOTS`], [`chunk_seed`]) into
    /// one in-memory batch — a [`Sampler::sample_to`] wrapper with a
    /// [`CollectSink`]. Prefer `sample_to` when the shots are bound for a
    /// file or aggregator; this method holds all of them in memory.
    fn sample_seeded(&self, shots: usize, seed: u64) -> SampleBatch {
        let mut out = CollectSink::new();
        sink::stream_seeded(self, shots, seed, CHUNK_SHOTS, &mut out)
            .expect("in-memory collection cannot fail");
        out.into_batch()
    }

    /// Samples `shots` shots across threads, chunked by [`CHUNK_SHOTS`]
    /// with per-chunk seeding — bit-identical to
    /// [`Sampler::sample_seeded`] with the same arguments.
    ///
    /// Fan-out is bounded by `rayon::current_num_threads()`; on a
    /// single-core machine this degenerates to the serial schedule with
    /// no thread spawns.
    fn sample_par(&self, shots: usize, seed: u64) -> SampleBatch {
        sample_par_with_threads(self, shots, seed, rayon::current_num_threads())
    }
}

/// The chunk schedule for `shots` shots: `(start, width)` spans, all but
/// the last [`CHUNK_SHOTS`] wide.
pub fn chunk_spans(shots: usize) -> impl Iterator<Item = (usize, usize)> {
    chunk_spans_with(shots, CHUNK_SHOTS)
}

/// [`chunk_spans`] with an explicit chunk width.
///
/// # Panics
///
/// Panics if `chunk_shots` is zero — a zero-width schedule would "cover"
/// the request with empty spans and silently sample nothing.
pub fn chunk_spans_with(shots: usize, chunk_shots: usize) -> impl Iterator<Item = (usize, usize)> {
    assert!(chunk_shots > 0, "chunk width must be nonzero");
    (0..shots)
        .step_by(chunk_shots)
        .map(move |start| (start, chunk_shots.min(shots - start)))
}

/// [`Sampler::sample_par`] with an explicit thread budget (exposed so the
/// parallel path stays testable on single-core machines) — a
/// [`sink::stream_par`] wrapper with a [`CollectSink`].
pub fn sample_par_with_threads<S: Sampler + ?Sized>(
    sampler: &S,
    shots: usize,
    seed: u64,
    threads: usize,
) -> SampleBatch {
    let mut out = CollectSink::new();
    sink::stream_par(sampler, shots, seed, CHUNK_SHOTS, threads, &mut out)
        .expect("in-memory collection cannot fail");
    out.into_batch()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic fake engine: measurement `m` of shot `j` is
    /// `parity(rng_stream)`, so chunk seeding differences are visible.
    struct FakeSampler {
        nm: usize,
    }

    impl Sampler for FakeSampler {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn num_measurements(&self) -> usize {
            self.nm
        }

        fn num_detectors(&self) -> usize {
            0
        }

        fn num_observables(&self) -> usize {
            0
        }

        fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore) {
            for shot in 0..batch.shots() {
                for m in 0..self.nm {
                    let bit = rng.next_u64() & 1 == 1;
                    batch.measurements.set(m, shot, bit);
                }
            }
        }
    }

    #[test]
    fn chunk_schedule_covers_all_shots() {
        let spans: Vec<_> = chunk_spans(CHUNK_SHOTS * 2 + 100).collect();
        assert_eq!(
            spans,
            vec![
                (0, CHUNK_SHOTS),
                (CHUNK_SHOTS, CHUNK_SHOTS),
                (2 * CHUNK_SHOTS, 100)
            ]
        );
        assert_eq!(chunk_spans(0).count(), 0);
        assert_eq!(chunk_spans(64).collect::<Vec<_>>(), vec![(0, 64)]);
        assert_eq!(
            chunk_spans_with(200, 128).collect::<Vec<_>>(),
            vec![(0, 128), (128, 72)]
        );
    }

    #[test]
    fn par_matches_seeded_bit_for_bit() {
        let s = FakeSampler { nm: 5 };
        for shots in [
            0,
            1,
            63,
            64,
            CHUNK_SHOTS,
            CHUNK_SHOTS + 1,
            3 * CHUNK_SHOTS + 7,
        ] {
            let a = s.sample_seeded(shots, 0xFEED);
            let b = s.sample_par(shots, 0xFEED);
            assert_eq!(a, b, "mismatch at {shots} shots");
            // Force the threaded path regardless of the machine's core
            // count, with budgets that do and don't divide the chunks.
            for threads in [2, 3, 8] {
                let c = sample_par_with_threads(&s, shots, 0xFEED, threads);
                assert_eq!(a, c, "mismatch at {shots} shots / {threads} threads");
            }
        }
    }

    #[test]
    fn range_shards_reassemble_the_full_run_bit_for_bit() {
        let s = FakeSampler { nm: 5 };
        let cw = 64;
        let total = 4 * cw + 17; // final chunk is partial
        let seed = 0xB00F;
        let mut full = CollectSink::new();
        sink::stream_seeded(&s, total, seed, cw, &mut full).expect("in-memory");
        let full = full.into_batch();
        // Shard the run into chunk-aligned ranges (the serve daemon's
        // contract), draw each independently — serial and threaded — and
        // paste the shards back together: the reassembly must equal the
        // full local run byte for byte.
        for threads in [1, 3] {
            let mut pasted = SampleBatch::zeros(5, 0, 0, total);
            for (start, end) in [(0, cw), (cw, 3 * cw), (3 * cw, total)] {
                let mut out = CollectSink::new();
                stream_range_par(&s, start, end, seed, cw, threads, &mut out).expect("in-memory");
                let shard = out.into_batch();
                assert_eq!(shard.shots(), end - start);
                pasted.paste_columns(&shard, start);
            }
            assert_eq!(
                pasted, full,
                "shard reassembly mismatch at {threads} threads"
            );
        }
        // An empty range is a well-formed zero-shot stream.
        let mut empty = CollectSink::new();
        stream_range_seeded(&s, cw, cw, seed, cw, &mut empty).expect("in-memory");
        assert_eq!(empty.into_batch().shots(), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the chunk width")]
    fn range_start_must_be_chunk_aligned() {
        let s = FakeSampler { nm: 1 };
        let mut out = CollectSink::new();
        let _ = stream_range_seeded(&s, 32, 128, 0, 64, &mut out);
    }

    #[test]
    fn streaming_sink_sees_chunks_in_schedule_order() {
        struct OrderCheck {
            began: bool,
            finished: bool,
            next_start: usize,
            chunks: usize,
        }
        impl ShotSink for OrderCheck {
            fn begin(&mut self, spec: &ShotSpec) -> std::io::Result<()> {
                assert!(!self.began);
                self.began = true;
                assert_eq!(spec.num_measurements, 3);
                Ok(())
            }
            fn chunk(&mut self, chunk: &SampleBatch, start: usize) -> std::io::Result<()> {
                assert!(self.began && !self.finished);
                assert_eq!(start, self.next_start, "chunks out of order");
                assert!(chunk.shots() <= CHUNK_SHOTS);
                self.next_start += chunk.shots();
                self.chunks += 1;
                Ok(())
            }
            fn finish(&mut self) -> std::io::Result<()> {
                self.finished = true;
                Ok(())
            }
        }
        let s = FakeSampler { nm: 3 };
        for threads in [1, 2, 5] {
            let mut sink = OrderCheck {
                began: false,
                finished: false,
                next_start: 0,
                chunks: 0,
            };
            s.sample_to_par(3 * CHUNK_SHOTS + 70, 4, threads, &mut sink)
                .unwrap();
            assert!(sink.finished);
            assert_eq!(sink.next_start, 3 * CHUNK_SHOTS + 70);
            assert_eq!(sink.chunks, 4);
        }
        // Zero shots still produce a well-formed begin/finish envelope.
        let mut sink = OrderCheck {
            began: false,
            finished: false,
            next_start: 0,
            chunks: 0,
        };
        s.sample_to(0, 4, &mut sink).unwrap();
        assert!(sink.began && sink.finished);
        assert_eq!(sink.chunks, 0);
    }

    #[test]
    fn stream_par_concurrency_stays_within_thread_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts concurrent `sample_into` calls and records the
        /// high-water mark.
        struct Gauge {
            nm: usize,
            live: AtomicUsize,
            high: AtomicUsize,
        }
        impl Sampler for Gauge {
            fn name(&self) -> &'static str {
                "gauge"
            }
            fn num_measurements(&self) -> usize {
                self.nm
            }
            fn num_detectors(&self) -> usize {
                0
            }
            fn num_observables(&self) -> usize {
                0
            }
            fn sample_into(&self, batch: &mut SampleBatch, rng: &mut dyn RngCore) {
                let live = self.live.fetch_add(1, Ordering::SeqCst) + 1;
                self.high.fetch_max(live, Ordering::SeqCst);
                // Give other lanes a chance to overlap.
                std::thread::sleep(std::time::Duration::from_millis(1));
                for m in 0..self.nm {
                    let word = rng.next_u64();
                    batch.measurements.set(m, 0, word & 1 == 1);
                }
                self.live.fetch_sub(1, Ordering::SeqCst);
            }
        }

        // A `SimConfig` thread budget of N must bound the in-flight
        // chunk draws to N, whatever the pool size: `stream_par` fans a
        // wave out over at most `threads` lanes.
        for budget in [1usize, 2, 4] {
            let gauge = Gauge {
                nm: 2,
                live: AtomicUsize::new(0),
                high: AtomicUsize::new(0),
            };
            let config = crate::SimConfig::new().with_threads(budget);
            assert_eq!(config.threads(), budget, "budget must survive the config");
            let mut out = CountingSink::default();
            sink::stream_with_config(&gauge, 16 * 64, &config.with_chunk_shots(64), &mut out)
                .unwrap();
            assert_eq!(out.shots, 16 * 64);
            let high = gauge.high.load(Ordering::SeqCst);
            assert!(high >= 1, "sampler never ran");
            assert!(
                high <= budget,
                "budget {budget} exceeded: {high} concurrent draws"
            );
        }
    }

    #[test]
    fn sink_errors_abort_the_stream() {
        struct FailingSink {
            chunks_before_failure: usize,
            chunks_after_failure: usize,
        }
        impl ShotSink for FailingSink {
            fn chunk(&mut self, _chunk: &SampleBatch, _start: usize) -> std::io::Result<()> {
                if self.chunks_before_failure == 0 {
                    self.chunks_after_failure += 1;
                    return Err(std::io::Error::other("sink full"));
                }
                self.chunks_before_failure -= 1;
                Ok(())
            }
        }
        let s = FakeSampler { nm: 2 };
        let mut sink = FailingSink {
            chunks_before_failure: 1,
            chunks_after_failure: 0,
        };
        let err = s.sample_to(3 * CHUNK_SHOTS, 7, &mut sink).unwrap_err();
        assert_eq!(err.to_string(), "sink full");
        // The failing call happened exactly once: the stream stopped.
        assert_eq!(sink.chunks_after_failure, 1);
    }

    #[test]
    fn different_seeds_differ() {
        let s = FakeSampler { nm: 3 };
        let a = s.sample_seeded(256, 1);
        let b = s.sample_seeded(256, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn chunks_are_decorrelated() {
        // Same relative shot in two different chunks must not repeat (the
        // per-chunk seeds differ).
        let s = FakeSampler { nm: 8 };
        let out = s.sample_seeded(2 * CHUNK_SHOTS, 9);
        let first: Vec<bool> = (0..8).map(|m| out.measurements.get(m, 0)).collect();
        let second: Vec<bool> = (0..8)
            .map(|m| out.measurements.get(m, CHUNK_SHOTS))
            .collect();
        assert_ne!(first, second);
    }

    #[test]
    fn paste_rejects_unaligned_start() {
        let mut dst = SampleBatch::zeros(1, 0, 0, 128);
        let src = SampleBatch::zeros(1, 0, 0, 64);
        let err = std::panic::catch_unwind(move || dst.paste_columns(&src, 32));
        assert!(err.is_err());
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Sampler> = Box::new(FakeSampler { nm: 2 });
        let out = boxed.sample_seeded(100, 3);
        assert_eq!(out.measurements.rows(), 2);
        assert_eq!(out.shots(), 100);
        assert_eq!(boxed.name(), "fake");
        let mut counting = CountingSink::default();
        boxed.sample_to(100, 3, &mut counting).unwrap();
        assert_eq!(counting.shots, 100);
        assert_eq!(
            counting.measurement_ones,
            out.measurements.count_ones() as u64
        );
    }
}
