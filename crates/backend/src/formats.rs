//! Shot output formats: [`ShotSink`]s that write sampled records straight
//! to any [`io::Write`], plus round-trip readers used by the property
//! tests.
//!
//! The full byte-level specification of every format lives in
//! `docs/formats.md`; in brief (`n` = selected record rows per shot):
//!
//! | name     | per shot | notes |
//! |----------|----------|-------|
//! | `01`     | `n` ASCII `0`/`1` chars + `\n` | detectors and observables separated by one space when both stream |
//! | `counts` | — | aggregated: sorted `bitstring count` lines at finish |
//! | `b8`     | `⌈n/8⌉` raw bytes | record `r` at bit `r % 8` of byte `r / 8` (little-endian bit order) |
//! | `hits`   | comma-separated ascending indices of set records + `\n` | empty line when none fire |
//! | `dets`   | `shot` then ` D<i>`/` L<j>` labels + `\n` | detector/observable flavor |
//!
//! Every writer is a [`ShotSink`], so a sampling run streams to disk in
//! `O(chunk)` memory (`counts` additionally holds one counter per
//! *distinct* bit pattern — aggregation is the format's point). Writers
//! flush on `finish`.
//!
//! Which record rows a sink serializes is chosen by [`RecordSource`]:
//! measurements for `sample`-style output, detectors and/or observables
//! for `detect`-style output.

use std::collections::BTreeMap;
use std::io::{self, Write};

use symphase_bitmat::BitMatrix;

use crate::sink::{ShotSink, ShotSpec};
use crate::SampleBatch;

/// Which rows of a [`SampleBatch`] a format sink serializes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordSource {
    /// Measurement rows (the `sample` command).
    Measurements,
    /// Detector rows only (`detect` with observables split off).
    Detectors,
    /// Observable rows only (the `--obs-out` stream).
    Observables,
    /// Detector rows followed by observable rows (the combined `detect`
    /// output; `01`/`counts` render the two groups separated by one
    /// space, `b8`/`hits` concatenate the index spaces).
    DetectorsAndObservables,
}

impl RecordSource {
    /// Rows per shot this source selects under `spec`.
    pub fn rows(self, spec: &ShotSpec) -> usize {
        match self {
            RecordSource::Measurements => spec.num_measurements,
            RecordSource::Detectors => spec.num_detectors,
            RecordSource::Observables => spec.num_observables,
            RecordSource::DetectorsAndObservables => spec.num_detectors + spec.num_observables,
        }
    }

    /// The selected matrices of `batch`, in serialization order.
    fn parts(self, batch: &SampleBatch) -> [Option<&BitMatrix>; 2] {
        match self {
            RecordSource::Measurements => [Some(&batch.measurements), None],
            RecordSource::Detectors => [Some(&batch.detectors), None],
            RecordSource::Observables => [Some(&batch.observables), None],
            RecordSource::DetectorsAndObservables => {
                [Some(&batch.detectors), Some(&batch.observables)]
            }
        }
    }
}

/// The named shot output formats (CLI `--format` values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleFormat {
    /// ASCII `0`/`1` lines, one per shot.
    Plain01,
    /// Aggregated `bitstring count` lines (sorted), written at finish.
    Counts,
    /// Packed little-endian binary, `⌈rows/8⌉` bytes per shot.
    B8,
    /// Comma-separated indices of set records, one line per shot.
    Hits,
    /// `shot D<i> L<j>` event lines (detector/observable flavor).
    Dets,
}

impl SampleFormat {
    /// Every format, in documentation order.
    pub const ALL: [SampleFormat; 5] = [
        SampleFormat::Plain01,
        SampleFormat::Counts,
        SampleFormat::B8,
        SampleFormat::Hits,
        SampleFormat::Dets,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SampleFormat::Plain01 => "01",
            SampleFormat::Counts => "counts",
            SampleFormat::B8 => "b8",
            SampleFormat::Hits => "hits",
            SampleFormat::Dets => "dets",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<SampleFormat> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Whether the format output is binary (unsafe to treat as UTF-8).
    pub fn is_binary(self) -> bool {
        matches!(self, SampleFormat::B8)
    }

    /// Builds the [`ShotSink`] writing this format's serialization of
    /// `source` to `w`. Callers hand in any writer; buffering is the
    /// caller's choice (the CLI wraps files in `BufWriter`).
    pub fn sink<'w>(
        self,
        w: &'w mut (dyn Write + 'w),
        source: RecordSource,
    ) -> Box<dyn ShotSink + 'w> {
        match self {
            SampleFormat::Plain01 => Box::new(Sink01::new(w, source)),
            SampleFormat::Counts => Box::new(SinkCounts::new(w, source)),
            SampleFormat::B8 => Box::new(SinkB8::new(w, source)),
            SampleFormat::Hits => Box::new(SinkHits::new(w, source)),
            SampleFormat::Dets => Box::new(SinkDets::new(w, source)),
        }
    }
}

/// Appends shot `shot` of `m` to `line` as ASCII `0`/`1`.
fn push_bits_01(line: &mut Vec<u8>, m: &BitMatrix, shot: usize) {
    for r in 0..m.rows() {
        line.push(if m.get(r, shot) { b'1' } else { b'0' });
    }
}

/// Renders one shot of `source` as its `01` text (no newline): the bit
/// chars of each selected part, space-separated when **both** groups are
/// nonempty (a single-group line carries no separator).
fn render_01_line(line: &mut Vec<u8>, source: RecordSource, batch: &SampleBatch, shot: usize) {
    line.clear();
    let [first, second] = source.parts(batch);
    if let Some(m) = first {
        push_bits_01(line, m, shot);
    }
    if let Some(m) = second {
        if m.rows() > 0 {
            if !line.is_empty() {
                line.push(b' ');
            }
            push_bits_01(line, m, shot);
        }
    }
}

/// The `01` format: one ASCII line of `0`/`1` per shot.
pub struct Sink01<W: Write> {
    w: W,
    source: RecordSource,
    line: Vec<u8>,
}

impl<W: Write> Sink01<W> {
    /// A `01` writer of `source` into `w`.
    pub fn new(w: W, source: RecordSource) -> Self {
        Self {
            w,
            source,
            line: Vec::new(),
        }
    }
}

impl<W: Write> ShotSink for Sink01<W> {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        for shot in 0..chunk.shots() {
            render_01_line(&mut self.line, self.source, chunk, shot);
            self.line.push(b'\n');
            self.w.write_all(&self.line)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// The `counts` format: aggregates shots by their `01` rendering and
/// writes sorted `bitstring count` lines at finish. Memory is one `u64`
/// per *distinct* observed pattern — aggregation is the format's point —
/// never per shot.
pub struct SinkCounts<W: Write> {
    w: W,
    source: RecordSource,
    counts: BTreeMap<Vec<u8>, u64>,
    line: Vec<u8>,
}

impl<W: Write> SinkCounts<W> {
    /// A `counts` writer of `source` into `w`.
    pub fn new(w: W, source: RecordSource) -> Self {
        Self {
            w,
            source,
            counts: BTreeMap::new(),
            line: Vec::new(),
        }
    }
}

impl<W: Write> ShotSink for SinkCounts<W> {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        for shot in 0..chunk.shots() {
            render_01_line(&mut self.line, self.source, chunk, shot);
            if let Some(n) = self.counts.get_mut(self.line.as_slice()) {
                *n += 1;
            } else {
                self.counts.insert(self.line.clone(), 1);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        for (pattern, n) in &self.counts {
            self.w.write_all(pattern)?;
            writeln!(self.w, " {n}")?;
        }
        self.w.flush()
    }
}

/// The `b8` format: `⌈rows/8⌉` raw bytes per shot, record `r` stored at
/// bit `r % 8` of byte `r / 8` (little-endian bit order, padding bits
/// zero). No separators — shot boundaries are implied by the row count.
///
/// Single-matrix sources serialize through the word-blocked
/// `transpose_packed` kernel (the record matrices are bit-packed along
/// the shot dimension, so shot-major bytes are exactly a packed
/// transpose) — serialization never dominates the sampling kernel. The
/// combined detector+observable source bit-concatenates at an arbitrary
/// offset and keeps the scalar path.
pub struct SinkB8<W: Write> {
    w: W,
    source: RecordSource,
    buf: Vec<u8>,
    transposed: Vec<u64>,
}

impl<W: Write> SinkB8<W> {
    /// A `b8` writer of `source` into `w`.
    pub fn new(w: W, source: RecordSource) -> Self {
        Self {
            w,
            source,
            buf: Vec::new(),
            transposed: Vec::new(),
        }
    }

    /// The packed fast path: transpose the `rows × shots` matrix into
    /// shot-major words, then emit the first `⌈rows/8⌉` little-endian
    /// bytes of each shot row.
    fn write_single(&mut self, m: &BitMatrix, shots: usize) -> io::Result<()> {
        let rows = m.rows();
        let bytes = rows.div_ceil(8);
        if bytes == 0 || shots == 0 {
            return Ok(());
        }
        let dst_stride = rows.div_ceil(64);
        self.transposed.clear();
        self.transposed.resize(shots * dst_stride, 0);
        symphase_bitmat::transpose::transpose_packed(
            m.words(),
            rows,
            shots,
            m.stride(),
            &mut self.transposed,
            dst_stride,
        );
        self.buf.clear();
        self.buf.reserve(shots * bytes);
        for shot in 0..shots {
            let row = &self.transposed[shot * dst_stride..(shot + 1) * dst_stride];
            let mut remaining = bytes;
            for w in row {
                let take = remaining.min(8);
                self.buf.extend_from_slice(&w.to_le_bytes()[..take]);
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
        }
        self.w.write_all(&self.buf)
    }
}

impl<W: Write> ShotSink for SinkB8<W> {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        let parts = self.source.parts(chunk);
        if let [Some(m), None] = parts {
            return self.write_single(m, chunk.shots());
        }
        let rows: usize = parts.iter().flatten().map(|m| m.rows()).sum();
        let bytes = rows.div_ceil(8);
        for shot in 0..chunk.shots() {
            self.buf.clear();
            self.buf.resize(bytes, 0);
            let mut r = 0usize;
            for m in parts.iter().flatten() {
                for row in 0..m.rows() {
                    if m.get(row, shot) {
                        self.buf[r / 8] |= 1 << (r % 8);
                    }
                    r += 1;
                }
            }
            self.w.write_all(&self.buf)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// The `hits` format: per shot, the comma-separated ascending indices of
/// set records, newline-terminated (an empty line when nothing fired).
/// With [`RecordSource::DetectorsAndObservables`], observable `j` appears
/// as index `num_detectors + j`.
pub struct SinkHits<W: Write> {
    w: W,
    source: RecordSource,
    line: Vec<u8>,
}

impl<W: Write> SinkHits<W> {
    /// A `hits` writer of `source` into `w`.
    pub fn new(w: W, source: RecordSource) -> Self {
        Self {
            w,
            source,
            line: Vec::new(),
        }
    }
}

impl<W: Write> ShotSink for SinkHits<W> {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        let parts = self.source.parts(chunk);
        for shot in 0..chunk.shots() {
            self.line.clear();
            let mut base = 0usize;
            for m in parts.iter().flatten() {
                for row in 0..m.rows() {
                    if m.get(row, shot) {
                        if !self.line.is_empty() {
                            self.line.push(b',');
                        }
                        self.line
                            .extend_from_slice((base + row).to_string().as_bytes());
                    }
                }
                base += m.rows();
            }
            self.line.push(b'\n');
            self.w.write_all(&self.line)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// The `dets` format: per shot, the word `shot` followed by ` D<i>` for
/// each fired detector and ` L<j>` for each fired observable. With a
/// single-matrix source only that group's labels appear (`D` for
/// detectors, `L` for observables, `M` for measurements).
pub struct SinkDets<W: Write> {
    w: W,
    source: RecordSource,
    line: Vec<u8>,
}

impl<W: Write> SinkDets<W> {
    /// A `dets` writer of `source` into `w`.
    pub fn new(w: W, source: RecordSource) -> Self {
        Self {
            w,
            source,
            line: Vec::new(),
        }
    }
}

impl<W: Write> ShotSink for SinkDets<W> {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        let labeled: [(u8, Option<&BitMatrix>); 2] = match self.source {
            RecordSource::Measurements => [(b'M', Some(&chunk.measurements)), (b'L', None)],
            RecordSource::Detectors => [(b'D', Some(&chunk.detectors)), (b'L', None)],
            RecordSource::Observables => [(b'L', Some(&chunk.observables)), (b'D', None)],
            RecordSource::DetectorsAndObservables => [
                (b'D', Some(&chunk.detectors)),
                (b'L', Some(&chunk.observables)),
            ],
        };
        for shot in 0..chunk.shots() {
            self.line.clear();
            self.line.extend_from_slice(b"shot");
            for (label, m) in labeled.iter() {
                let Some(m) = m else { continue };
                for row in 0..m.rows() {
                    if m.get(row, shot) {
                        self.line.push(b' ');
                        self.line.push(*label);
                        self.line.extend_from_slice(row.to_string().as_bytes());
                    }
                }
            }
            self.line.push(b'\n');
            self.w.write_all(&self.line)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// A malformed serialized shot stream (the round-trip readers' error).
#[derive(Debug, PartialEq, Eq)]
pub struct FormatParseError(pub String);

impl std::fmt::Display for FormatParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FormatParseError {}

fn parse_err(msg: impl Into<String>) -> FormatParseError {
    FormatParseError(msg.into())
}

/// Reads `01` text of a single record group back into a `rows × shots`
/// matrix (shots = lines).
pub fn read_01(text: &str, rows: usize) -> Result<BitMatrix, FormatParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = BitMatrix::zeros(rows, lines.len());
    for (shot, line) in lines.iter().enumerate() {
        if line.len() != rows {
            return Err(parse_err(format!(
                "line {shot}: expected {rows} chars, got {}",
                line.len()
            )));
        }
        for (r, c) in line.bytes().enumerate() {
            match c {
                b'0' => {}
                b'1' => out.set(r, shot, true),
                other => return Err(parse_err(format!("line {shot}: bad char {other:#x}"))),
            }
        }
    }
    Ok(out)
}

/// Reads the combined `01` detect flavor (`detectors SP observables`,
/// the space omitted when either group is empty) back into the two
/// matrices.
pub fn read_01_dets(
    text: &str,
    det_rows: usize,
    obs_rows: usize,
) -> Result<(BitMatrix, BitMatrix), FormatParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut dets = BitMatrix::zeros(det_rows, lines.len());
    let mut obs = BitMatrix::zeros(obs_rows, lines.len());
    for (shot, line) in lines.iter().enumerate() {
        let (d, o) = if obs_rows > 0 && det_rows > 0 {
            line.split_once(' ')
                .ok_or_else(|| parse_err(format!("line {shot}: missing separator")))?
        } else if obs_rows > 0 {
            ("", *line)
        } else {
            (*line, "")
        };
        if d.len() != det_rows || o.len() != obs_rows {
            return Err(parse_err(format!("line {shot}: group length mismatch")));
        }
        for (r, c) in d.bytes().enumerate() {
            if c == b'1' {
                dets.set(r, shot, true);
            } else if c != b'0' {
                return Err(parse_err(format!("line {shot}: bad char {c:#x}")));
            }
        }
        for (r, c) in o.bytes().enumerate() {
            if c == b'1' {
                obs.set(r, shot, true);
            } else if c != b'0' {
                return Err(parse_err(format!("line {shot}: bad char {c:#x}")));
            }
        }
    }
    Ok((dets, obs))
}

/// Reads `b8` bytes back into a `rows × shots` matrix. With `rows == 0`
/// each shot serializes to zero bytes, so the shot count is not
/// recoverable — the stream must be empty and the reader returns a
/// `0 × 0` matrix.
pub fn read_b8(bytes: &[u8], rows: usize) -> Result<BitMatrix, FormatParseError> {
    let per_shot = rows.div_ceil(8);
    if per_shot == 0 {
        if bytes.is_empty() {
            return Ok(BitMatrix::zeros(0, 0));
        }
        return Err(parse_err("zero-row b8 stream must be empty"));
    }
    if !bytes.len().is_multiple_of(per_shot) {
        return Err(parse_err(format!(
            "stream length {} is not a multiple of the {per_shot}-byte shot size",
            bytes.len()
        )));
    }
    let shots = bytes.len() / per_shot;
    let mut out = BitMatrix::zeros(rows, shots);
    for (shot, rec) in bytes.chunks_exact(per_shot).enumerate() {
        for r in 0..rows {
            if rec[r / 8] & (1 << (r % 8)) != 0 {
                out.set(r, shot, true);
            }
        }
        for (i, &b) in rec.iter().enumerate() {
            let used = (rows - 8 * i).min(8);
            if used < 8 && b >> used != 0 {
                return Err(parse_err(format!("shot {shot}: nonzero padding bits")));
            }
        }
    }
    Ok(out)
}

/// Reads `hits` text back into a `rows × shots` matrix (shots = lines).
pub fn read_hits(text: &str, rows: usize) -> Result<BitMatrix, FormatParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = BitMatrix::zeros(rows, lines.len());
    for (shot, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        for tok in line.split(',') {
            let idx: usize = tok
                .parse()
                .map_err(|_| parse_err(format!("line {shot}: bad index '{tok}'")))?;
            if idx >= rows {
                return Err(parse_err(format!(
                    "line {shot}: index {idx} out of range (rows = {rows})"
                )));
            }
            out.set(idx, shot, true);
        }
    }
    Ok(out)
}

/// Reads `dets` text (the `D`/`L` flavor) back into detector and
/// observable matrices (shots = lines).
pub fn read_dets(
    text: &str,
    det_rows: usize,
    obs_rows: usize,
) -> Result<(BitMatrix, BitMatrix), FormatParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut dets = BitMatrix::zeros(det_rows, lines.len());
    let mut obs = BitMatrix::zeros(obs_rows, lines.len());
    for (shot, line) in lines.iter().enumerate() {
        let mut toks = line.split(' ');
        if toks.next() != Some("shot") {
            return Err(parse_err(format!("line {shot}: missing 'shot' prefix")));
        }
        for tok in toks {
            let (target, rows, label) = match tok.as_bytes().first() {
                Some(b'D') => (&mut dets, det_rows, 'D'),
                Some(b'L') => (&mut obs, obs_rows, 'L'),
                _ => return Err(parse_err(format!("line {shot}: bad token '{tok}'"))),
            };
            let idx: usize = tok[1..]
                .parse()
                .map_err(|_| parse_err(format!("line {shot}: bad token '{tok}'")))?;
            if idx >= rows {
                return Err(parse_err(format!("line {shot}: {label}{idx} out of range")));
            }
            target.set(idx, shot, true);
        }
    }
    Ok((dets, obs))
}

/// Reads the `M`-labeled `dets` flavor — what [`SinkDets`] emits for
/// [`RecordSource::Measurements`] — back into a `rows × shots`
/// measurement matrix (shots = lines).
pub fn read_dets_measurements(text: &str, rows: usize) -> Result<BitMatrix, FormatParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = BitMatrix::zeros(rows, lines.len());
    for (shot, line) in lines.iter().enumerate() {
        let mut toks = line.split(' ');
        if toks.next() != Some("shot") {
            return Err(parse_err(format!("line {shot}: missing 'shot' prefix")));
        }
        for tok in toks {
            let idx: usize = tok
                .strip_prefix('M')
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| parse_err(format!("line {shot}: bad token '{tok}'")))?;
            if idx >= rows {
                return Err(parse_err(format!("line {shot}: M{idx} out of range")));
            }
            out.set(idx, shot, true);
        }
    }
    Ok(out)
}

/// Reads `counts` text back into the pattern → count map.
pub fn read_counts(text: &str) -> Result<BTreeMap<String, u64>, FormatParseError> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let (pattern, n) = line
            .rsplit_once(' ')
            .ok_or_else(|| parse_err(format!("line {i}: missing count")))?;
        let n: u64 = n
            .parse()
            .map_err(|_| parse_err(format!("line {i}: bad count '{n}'")))?;
        if out.insert(pattern.to_string(), n).is_some() {
            return Err(parse_err(format!("line {i}: duplicate pattern")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_from(meas: &[&[u8]], dets: &[&[u8]], obs: &[&[u8]], shots: usize) -> SampleBatch {
        let fill = |rows: &[&[u8]]| {
            let mut m = BitMatrix::zeros(rows.len(), shots);
            for (r, row) in rows.iter().enumerate() {
                for (c, &bit) in row.iter().enumerate() {
                    m.set(r, c, bit != 0);
                }
            }
            m
        };
        SampleBatch {
            measurements: fill(meas),
            detectors: fill(dets),
            observables: fill(obs),
        }
    }

    fn run_sink(format: SampleFormat, source: RecordSource, batch: &SampleBatch) -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut w: &mut dyn Write = &mut out;
            let mut sink = format.sink(&mut w, source);
            let spec = ShotSpec {
                num_measurements: batch.measurements.rows(),
                num_detectors: batch.detectors.rows(),
                num_observables: batch.observables.rows(),
                shots: batch.shots(),
            };
            sink.begin(&spec).unwrap();
            sink.chunk(batch, 0).unwrap();
            sink.finish().unwrap();
        }
        out
    }

    #[test]
    fn format_names_round_trip() {
        for f in SampleFormat::ALL {
            assert_eq!(SampleFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(SampleFormat::from_name("base64"), None);
    }

    #[test]
    fn plain01_renders_rows_per_shot() {
        let b = batch_from(&[&[1, 0, 1], &[0, 0, 1]], &[], &[], 3);
        let out = run_sink(SampleFormat::Plain01, RecordSource::Measurements, &b);
        assert_eq!(out, b"10\n00\n11\n");
    }

    #[test]
    fn plain01_dets_obs_space_separated() {
        let b = batch_from(&[], &[&[1], &[0]], &[&[1]], 1);
        let out = run_sink(
            SampleFormat::Plain01,
            RecordSource::DetectorsAndObservables,
            &b,
        );
        assert_eq!(out, b"10 1\n");
    }

    #[test]
    fn b8_packs_little_endian() {
        // 9 rows: bits 0..8 of byte 0, bit 8 -> bit 0 of byte 1.
        let rows: Vec<&[u8]> = vec![&[1], &[0], &[0], &[0], &[0], &[0], &[0], &[1], &[1]];
        let b = batch_from(&rows, &[], &[], 1);
        let out = run_sink(SampleFormat::B8, RecordSource::Measurements, &b);
        assert_eq!(out, vec![0b1000_0001, 0b0000_0001]);
        let back = read_b8(&out, 9).unwrap();
        assert_eq!(back, b.measurements);
    }

    #[test]
    fn hits_lists_ascending_indices() {
        let b = batch_from(&[&[1, 0], &[0, 0], &[1, 1]], &[], &[], 2);
        let out = run_sink(SampleFormat::Hits, RecordSource::Measurements, &b);
        assert_eq!(out, b"0,2\n2\n");
        assert_eq!(
            read_hits(std::str::from_utf8(&out).unwrap(), 3).unwrap(),
            b.measurements
        );
    }

    #[test]
    fn dets_labels_detectors_and_observables() {
        let b = batch_from(&[], &[&[1], &[0], &[1]], &[&[1]], 1);
        let out = run_sink(
            SampleFormat::Dets,
            RecordSource::DetectorsAndObservables,
            &b,
        );
        assert_eq!(out, b"shot D0 D2 L0\n");
        let (d, o) = read_dets(std::str::from_utf8(&out).unwrap(), 3, 1).unwrap();
        assert_eq!(d, b.detectors);
        assert_eq!(o, b.observables);
    }

    #[test]
    fn dets_measurement_flavor_round_trips() {
        let b = batch_from(&[&[1, 0], &[0, 1], &[1, 1]], &[], &[], 2);
        let out = run_sink(SampleFormat::Dets, RecordSource::Measurements, &b);
        assert_eq!(out, b"shot M0 M2\nshot M1 M2\n");
        let back = read_dets_measurements(std::str::from_utf8(&out).unwrap(), 3).unwrap();
        assert_eq!(back, b.measurements);
    }

    #[test]
    fn counts_aggregates_and_sorts() {
        let b = batch_from(&[&[1, 0, 1, 1]], &[], &[], 4);
        let out = run_sink(SampleFormat::Counts, RecordSource::Measurements, &b);
        assert_eq!(out, b"0 1\n1 3\n");
        let m = read_counts(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(m.get("1"), Some(&3));
    }

    #[test]
    fn readers_reject_malformed_input() {
        assert!(read_01("10\n2\n", 2).is_err());
        assert!(read_b8(&[1, 2, 3], 16).is_err());
        assert!(read_hits("5\n", 3).is_err());
        assert!(read_dets("D0\n", 1, 0).is_err());
        assert!(read_counts("10\n").is_err());
    }

    #[test]
    fn zero_rows_zero_shots_are_well_formed() {
        let b = batch_from(&[], &[], &[], 5);
        let out = run_sink(SampleFormat::Plain01, RecordSource::Measurements, &b);
        assert_eq!(out, b"\n\n\n\n\n");
        assert!(run_sink(SampleFormat::B8, RecordSource::Measurements, &b).is_empty());
        let empty = batch_from(&[&[]], &[], &[], 0);
        assert!(run_sink(SampleFormat::Plain01, RecordSource::Measurements, &empty).is_empty());
    }
}
