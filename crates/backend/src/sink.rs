//! Streaming shot delivery: the [`ShotSink`] trait and the chunk
//! streaming engine behind `Sampler::sample_to`.
//!
//! The SymPhase cost model makes shots cheap — a per-chunk F₂ product —
//! so the limiting resource of a long sampling run should be the sink
//! (a file, a socket, an aggregator), never memory. This module delivers
//! shots to a [`ShotSink`] one [`SampleBatch`] chunk at a time:
//!
//! * [`stream_seeded`] — the serial reference: one reused chunk buffer,
//!   memory `O(chunk)` whatever the shot count;
//! * [`stream_par`] — the same chunk-seeding schedule fanned out in
//!   *waves* of up to `threads` chunks (`rayon`-style fork-join inside a
//!   wave), memory `O(threads × chunk)`. Chunks are drawn out of order
//!   inside a wave but **presented to the sink in schedule order**, so a
//!   sink never needs to reorder — and because every chunk's RNG is
//!   seeded by `chunk_seed(seed, index)`, the bytes a sink sees are
//!   bit-identical between the serial and parallel paths.
//!
//! `Sampler::sample_seeded` and `Sampler::sample_par` are thin wrappers
//! over these functions with an in-memory [`CollectSink`].

use std::io;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::SampleBatch;
use crate::{chunk_seed, Sampler};

/// The fixed per-request shape a sink learns before the first chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShotSpec {
    /// Measurement rows per shot.
    pub num_measurements: usize,
    /// Detector rows per shot.
    pub num_detectors: usize,
    /// Observable rows per shot.
    pub num_observables: usize,
    /// Total shots the request will deliver across all chunks.
    pub shots: usize,
}

impl ShotSpec {
    /// The spec of sampling `shots` shots from `sampler`.
    pub fn of(sampler: &(impl Sampler + ?Sized), shots: usize) -> Self {
        Self {
            num_measurements: sampler.num_measurements(),
            num_detectors: sampler.num_detectors(),
            num_observables: sampler.num_observables(),
            shots,
        }
    }
}

/// A consumer of streamed shot chunks.
///
/// The streaming engine guarantees the call sequence
/// `begin, chunk*, finish`, with chunks arriving in schedule order:
/// `start` values are strictly increasing and each chunk directly follows
/// the previous one (`start` = previous `start` + previous width). A
/// request of zero shots still produces `begin` and `finish`, so sinks
/// with headers/footers emit well-formed empty output.
///
/// Errors (typically `io::Error` from an underlying writer) abort the
/// stream: once a call fails, no further calls are made.
pub trait ShotSink {
    /// Called once before the first chunk with the request's shape.
    fn begin(&mut self, spec: &ShotSpec) -> io::Result<()> {
        let _ = spec;
        Ok(())
    }

    /// Called once per chunk, in schedule order; `start` is the absolute
    /// shot index of the chunk's first column.
    fn chunk(&mut self, chunk: &SampleBatch, start: usize) -> io::Result<()>;

    /// Called once after the last chunk (flush buffers, write footers).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory sink: collects every chunk into one full [`SampleBatch`].
/// This is the adapter that turns the streaming path back into the
/// batch-returning API (`Sampler::sample_seeded` / `Sampler::sample_par`)
/// — and the reference sink of the streaming-equality tests.
#[derive(Debug, Default)]
pub struct CollectSink {
    batch: Option<SampleBatch>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected batch; panics if the stream never began.
    pub fn into_batch(self) -> SampleBatch {
        self.batch.expect("stream never began")
    }
}

impl ShotSink for CollectSink {
    fn begin(&mut self, spec: &ShotSpec) -> io::Result<()> {
        self.batch = Some(SampleBatch::zeros(
            spec.num_measurements,
            spec.num_detectors,
            spec.num_observables,
            spec.shots,
        ));
        Ok(())
    }

    fn chunk(&mut self, chunk: &SampleBatch, start: usize) -> io::Result<()> {
        self.batch
            .as_mut()
            .expect("chunk before begin")
            .paste_columns(chunk, start);
        Ok(())
    }
}

/// A counting sink: tracks delivered shots and set bits without storing
/// anything — the cheapest way to drive a full streaming run (benchmarks,
/// smoke tests) while still observing every byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingSink {
    /// Shots delivered so far.
    pub shots: usize,
    /// Chunks delivered so far.
    pub chunks: usize,
    /// Set measurement bits seen so far.
    pub measurement_ones: u64,
    /// Set detector bits seen so far.
    pub detector_ones: u64,
    /// Set observable bits seen so far.
    pub observable_ones: u64,
}

impl ShotSink for CountingSink {
    fn chunk(&mut self, chunk: &SampleBatch, _start: usize) -> io::Result<()> {
        self.shots += chunk.shots();
        self.chunks += 1;
        self.measurement_ones += chunk.measurements.count_ones() as u64;
        self.detector_ones += chunk.detectors.count_ones() as u64;
        self.observable_ones += chunk.observables.count_ones() as u64;
        Ok(())
    }
}

/// A fan-out sink: forwards every call to each inner sink in order, so
/// one sampling pass can feed several outputs (the CLI's `--out` plus
/// `--obs-out`, say) without re-drawing shots.
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn ShotSink>,
}

impl<'a> FanoutSink<'a> {
    /// A fan-out over `sinks` (delivery order = slice order).
    pub fn new(sinks: Vec<&'a mut dyn ShotSink>) -> Self {
        Self { sinks }
    }
}

impl ShotSink for FanoutSink<'_> {
    fn begin(&mut self, spec: &ShotSpec) -> io::Result<()> {
        for s in &mut self.sinks {
            s.begin(spec)?;
        }
        Ok(())
    }

    fn chunk(&mut self, chunk: &SampleBatch, start: usize) -> io::Result<()> {
        for s in &mut self.sinks {
            s.chunk(chunk, start)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        for s in &mut self.sinks {
            s.finish()?;
        }
        Ok(())
    }
}

/// Asserts the chunk-width contract shared by the streaming entry points.
fn check_chunk_shots(chunk_shots: usize) {
    assert!(
        chunk_shots > 0 && chunk_shots.is_multiple_of(64),
        "chunk width must be a nonzero multiple of 64 shots, got {chunk_shots} \
         (SimConfig::validate rejects this before sampling starts)"
    );
}

/// Asserts the shot-range contract shared by the range streaming entry
/// points: the start must sit on a chunk boundary (so the range is a
/// suffix-aligned window of the global chunk schedule) and the range must
/// not be inverted.
fn check_range(start: usize, end: usize, chunk_shots: usize) {
    assert!(
        start.is_multiple_of(chunk_shots),
        "shot-range start must be a multiple of the chunk width \
         ({chunk_shots}), got {start} — unaligned ranges would re-draw a \
         chunk at a different width and break byte-identity with the \
         full-run schedule"
    );
    assert!(start <= end, "inverted shot range [{start}, {end})");
}

/// The chunk schedule covering shot range `[start, end)` of a request of
/// `end` total shots: `(global_start, width)` spans, all but the last
/// `chunk_shots` wide. `start` must be chunk-aligned, so the spans are
/// exactly the suffix of [`crate::chunk_spans_with`]`(end, chunk_shots)` that
/// begins at `start` — which is what makes range-streamed bytes identical
/// to the corresponding window of a full local run.
pub fn range_chunk_spans(
    start: usize,
    end: usize,
    chunk_shots: usize,
) -> impl Iterator<Item = (usize, usize)> {
    check_chunk_shots(chunk_shots);
    check_range(start, end, chunk_shots);
    (start..end)
        .step_by(chunk_shots)
        .map(move |s| (s, chunk_shots.min(end - s)))
}

/// Streams `shots` shots into `sink` honoring every knob of `config`:
/// seed, thread budget (`1` = serial, `0` = all cores), and chunk width.
/// This is the config-driven entry point the CLI runs; the `Sampler`
/// trait methods (`sample_to` / `sample_to_par`) are the fixed
/// [`crate::CHUNK_SHOTS`]-width shorthand.
///
/// The configuration should be validated first
/// ([`crate::SimConfig::validate`], or by building the sampler through
/// `build_sampler`); an invalid chunk width panics here.
pub fn stream_with_config<S: Sampler + ?Sized>(
    sampler: &S,
    shots: usize,
    config: &crate::SimConfig,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    stream_range_with_config(sampler, 0, shots, config, sink)
}

/// [`stream_with_config`] restricted to the shot range `[start, end)` of
/// a request of `end` total shots — the sharding entry point the
/// `symphase serve` daemon runs.
///
/// `start` must be a multiple of the configured chunk width; the range is
/// then exactly a window of the global chunk schedule, so the bytes a
/// sink receives are **identical** to the corresponding window of a full
/// `stream_with_config(sampler, end, ..)` run — whether the range is
/// computed locally, by one worker, or split across machines. The sink
/// sees chunk starts *relative to* `start` (a range request delivers a
/// self-contained `[0, end - start)` stream).
///
/// # Panics
///
/// Panics if `start` is not chunk-aligned or `start > end` (the serve
/// protocol validates ranges before sampling starts).
pub fn stream_range_with_config<S: Sampler + ?Sized>(
    sampler: &S,
    start: usize,
    end: usize,
    config: &crate::SimConfig,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    if config.threads() == 1 {
        stream_range_seeded(
            sampler,
            start,
            end,
            config.seed(),
            config.chunk_shots(),
            sink,
        )
    } else {
        stream_range_par(
            sampler,
            start,
            end,
            config.seed(),
            config.chunk_shots(),
            config.threads(),
            sink,
        )
    }
}

/// Streams `shots` chunk-seeded shots serially into `sink`, holding one
/// reused chunk buffer — memory `O(chunk_shots)` however many shots are
/// requested. With `chunk_shots == CHUNK_SHOTS` the bytes delivered are
/// bit-identical to `Sampler::sample_seeded(shots, seed)`.
///
/// # Panics
///
/// Panics if `chunk_shots` is zero or not a multiple of 64 (validated
/// earlier by `SimConfig::validate` on the configured path).
pub fn stream_seeded<S: Sampler + ?Sized>(
    sampler: &S,
    shots: usize,
    seed: u64,
    chunk_shots: usize,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    stream_range_seeded(sampler, 0, shots, seed, chunk_shots, sink)
}

/// [`stream_seeded`] restricted to the shot range `[start, end)` of a
/// request of `end` total shots: serially streams exactly the chunks of
/// the global schedule that cover the range, each seeded by its *global*
/// chunk index, delivering chunk starts relative to `start`. The bytes a
/// sink receives are therefore identical to the `[start, end)` window of
/// `stream_seeded(sampler, end, seed, chunk_shots, ..)` — the property
/// the serve daemon's shot-range sharding rests on.
///
/// # Panics
///
/// Panics if `chunk_shots` is zero or not a multiple of 64, if `start` is
/// not a multiple of `chunk_shots`, or if `start > end`.
pub fn stream_range_seeded<S: Sampler + ?Sized>(
    sampler: &S,
    start: usize,
    end: usize,
    seed: u64,
    chunk_shots: usize,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    check_chunk_shots(chunk_shots);
    check_range(start, end, chunk_shots);
    sink.begin(&ShotSpec::of(sampler, end - start))?;
    let mut buf: Option<SampleBatch> = None;
    for (gstart, width) in range_chunk_spans(start, end, chunk_shots) {
        if buf.as_ref().is_none_or(|b| b.shots() != width) {
            buf = Some(SampleBatch::zeros(
                sampler.num_measurements(),
                sampler.num_detectors(),
                sampler.num_observables(),
                width,
            ));
        }
        let chunk = buf.as_mut().expect("buffer just ensured");
        let chunk_index = (gstart / chunk_shots) as u64;
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, chunk_index));
        sampler.sample_into(chunk, &mut rng);
        sink.chunk(chunk, gstart - start)?;
    }
    sink.finish()
}

/// Streams `shots` chunk-seeded shots into `sink` across up to `threads`
/// threads (`0` = all available cores), bit-identical to
/// [`stream_seeded`] with the same arguments.
///
/// Chunks are processed in waves of `threads`: each wave is drawn
/// concurrently (rayon-style fork-join, one buffer per lane, reused
/// across waves), then handed to the sink **in schedule order**. Peak
/// memory is `O(threads × chunk_shots)`; the sink — which is typically
/// not thread-safe, it holds a writer — only ever runs on the calling
/// thread.
///
/// # Panics
///
/// Panics if `chunk_shots` is zero or not a multiple of 64.
pub fn stream_par<S: Sampler + ?Sized>(
    sampler: &S,
    shots: usize,
    seed: u64,
    chunk_shots: usize,
    threads: usize,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    stream_range_par(sampler, 0, shots, seed, chunk_shots, threads, sink)
}

/// [`stream_par`] restricted to the shot range `[start, end)` of a
/// request of `end` total shots — the parallel twin of
/// [`stream_range_seeded`], bit-identical to it for the same arguments.
/// Chunk RNGs are seeded by *global* chunk index, so a range drawn here
/// matches the corresponding window of a full run regardless of the
/// thread count on either side.
///
/// # Panics
///
/// Panics if `chunk_shots` is zero or not a multiple of 64, if `start` is
/// not a multiple of `chunk_shots`, or if `start > end`.
pub fn stream_range_par<S: Sampler + ?Sized>(
    sampler: &S,
    start: usize,
    end: usize,
    seed: u64,
    chunk_shots: usize,
    threads: usize,
    sink: &mut dyn ShotSink,
) -> io::Result<()> {
    check_chunk_shots(chunk_shots);
    check_range(start, end, chunk_shots);
    let threads = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    let spans: Vec<(usize, usize)> = range_chunk_spans(start, end, chunk_shots).collect();
    if threads <= 1 || spans.len() <= 1 {
        return stream_range_seeded(sampler, start, end, seed, chunk_shots, sink);
    }
    sink.begin(&ShotSpec::of(sampler, end - start))?;
    let first_chunk = start / chunk_shots;
    let mut bufs: Vec<SampleBatch> = Vec::new();
    for (wave_index, wave) in spans.chunks(threads).enumerate() {
        while bufs.len() < wave.len() {
            // Shots == 0 placeholder; `fill_wave` reshapes lanes on use.
            bufs.push(SampleBatch::zeros(0, 0, 0, 0));
        }
        fill_wave(
            sampler,
            wave,
            first_chunk + wave_index * threads,
            seed,
            &mut bufs[..wave.len()],
        );
        for (lane, &(gstart, _)) in wave.iter().enumerate() {
            sink.chunk(&bufs[lane], gstart - start)?;
        }
    }
    sink.finish()
}

/// Draws one wave of chunks concurrently: recursive binary fork-join over
/// the `(span, buffer)` lanes. Lane `i` of the wave samples chunk
/// `first_chunk + i` of the schedule into `bufs[i]`, reshaping the lane
/// buffer only when the width changes (the final, narrower chunk).
fn fill_wave<S: Sampler + ?Sized>(
    sampler: &S,
    spans: &[(usize, usize)],
    first_chunk: usize,
    seed: u64,
    bufs: &mut [SampleBatch],
) {
    debug_assert_eq!(spans.len(), bufs.len());
    match spans {
        [] => {}
        [(_, width)] => {
            let width = *width;
            let buf = &mut bufs[0];
            if buf.shots() != width
                || buf.measurements.rows() != sampler.num_measurements()
                || buf.detectors.rows() != sampler.num_detectors()
                || buf.observables.rows() != sampler.num_observables()
            {
                *buf = SampleBatch::zeros(
                    sampler.num_measurements(),
                    sampler.num_detectors(),
                    sampler.num_observables(),
                    width,
                );
            }
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, first_chunk as u64));
            sampler.sample_into(buf, &mut rng);
        }
        _ => {
            let mid = spans.len() / 2;
            let (left_spans, right_spans) = spans.split_at(mid);
            let (left_bufs, right_bufs) = bufs.split_at_mut(mid);
            rayon::join(
                || fill_wave(sampler, left_spans, first_chunk, seed, left_bufs),
                || fill_wave(sampler, right_spans, first_chunk + mid, seed, right_bufs),
            );
        }
    }
}
