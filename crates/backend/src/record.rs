//! Evaluating detector and observable annotations over measurement records.
//!
//! A detector is the XOR of a set of measurement outcomes that is
//! deterministic (0) in the absence of faults; an observable accumulates
//! outcomes into a logical readout. Both are linear over F₂, so they apply
//! equally to a single record ([`detector_values`]) and to a batch of shots
//! stored as a measurement-major bit-matrix ([`detector_matrix`]).
//!
//! (Hoisted from `symphase-tableau` into the backend layer so that every
//! engine — including the dense state-vector ground truth, which does not
//! depend on the tableau — derives detectors and observables from the same
//! resolution code.)

use symphase_bitmat::{BitMatrix, BitVec};
use symphase_circuit::{Circuit, Instruction};

/// Collects `(measurement_indices)` for every detector in order.
///
/// The circuit is streamed in flattened execution order, so detectors
/// inside `REPEAT` bodies resolve their lookbacks per iteration against
/// the running record position (a lookback may reach the previous
/// iteration's measurements).
pub fn detector_measurement_sets(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut measured = 0usize;
    for inst in circuit.flat_instructions() {
        match inst {
            Instruction::Detector { lookbacks, .. } => {
                out.push(resolve(lookbacks, measured));
            }
            _ => measured += inst.measurements_added(),
        }
    }
    out
}

/// Collects `(measurement_indices)` for every observable `0..num_observables`
/// (streamed like [`detector_measurement_sets`]).
pub fn observable_measurement_sets(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); circuit.num_observables()];
    let mut measured = 0usize;
    for inst in circuit.flat_instructions() {
        match inst {
            Instruction::ObservableInclude { index, lookbacks } => {
                out[*index as usize].extend(resolve(lookbacks, measured));
            }
            _ => measured += inst.measurements_added(),
        }
    }
    out
}

fn resolve(lookbacks: &[i64], measured: usize) -> Vec<usize> {
    lookbacks
        .iter()
        .map(|&l| {
            let idx = measured as i64 + l;
            assert!(idx >= 0, "lookback validated at circuit construction");
            idx as usize
        })
        .collect()
}

/// Evaluates all detectors of `circuit` on a single measurement record.
///
/// # Panics
///
/// Panics if the record is shorter than the circuit's measurement count.
pub fn detector_values(circuit: &Circuit, record: &BitVec) -> BitVec {
    let sets = detector_measurement_sets(circuit);
    BitVec::from_fn(sets.len(), |d| {
        sets[d].iter().fold(false, |acc, &m| acc ^ record.get(m))
    })
}

/// Evaluates all observables of `circuit` on a single measurement record.
pub fn observable_values(circuit: &Circuit, record: &BitVec) -> BitVec {
    let sets = observable_measurement_sets(circuit);
    BitVec::from_fn(sets.len(), |o| {
        sets[o].iter().fold(false, |acc, &m| acc ^ record.get(m))
    })
}

/// Evaluates all detectors over a batch: `samples` is measurement-major
/// (`num_measurements × num_shots`); the result is `num_detectors ×
/// num_shots`.
///
/// # Panics
///
/// Panics if `samples` has fewer rows than the circuit has measurements.
pub fn detector_matrix(circuit: &Circuit, samples: &BitMatrix) -> BitMatrix {
    xor_rows(&detector_measurement_sets(circuit), samples)
}

/// Evaluates all observables over a batch (see [`detector_matrix`]).
pub fn observable_matrix(circuit: &Circuit, samples: &BitMatrix) -> BitMatrix {
    xor_rows(&observable_measurement_sets(circuit), samples)
}

/// XORs the selected measurement rows of `samples` into one output row per
/// set — shared by the batch evaluators and by [`Sampler`] implementations
/// that derive detectors from sampled measurements.
///
/// [`Sampler`]: crate::Sampler
pub fn xor_rows(sets: &[Vec<usize>], samples: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(sets.len(), samples.cols());
    xor_rows_into(sets, samples, &mut out);
    out
}

/// In-place variant of [`xor_rows`]: accumulates into `out`, which must be
/// `sets.len() × samples.cols()` and zeroed by the caller.
pub fn xor_rows_into(sets: &[Vec<usize>], samples: &BitMatrix, out: &mut BitMatrix) {
    assert_eq!(out.rows(), sets.len(), "output row count mismatch");
    assert_eq!(out.cols(), samples.cols(), "output shot count mismatch");
    for (d, set) in sets.iter().enumerate() {
        for &m in set {
            assert!(m < samples.rows(), "sample matrix too small");
            out.xor_words_into_row(d, samples.row(m));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::Circuit;

    fn annotated() -> Circuit {
        let mut c = Circuit::new(2);
        c.measure(0);
        c.measure(1);
        c.detector(&[-1, -2]);
        c.measure(0);
        c.detector(&[-1]);
        c.observable_include(0, &[-1, -3]);
        c
    }

    #[test]
    fn single_record_evaluation() {
        let c = annotated();
        // record: m0=1, m1=0, m2=1
        let record = BitVec::from_bools([true, false, true]);
        let d = detector_values(&c, &record);
        assert_eq!(d.len(), 2);
        assert!(d.get(0)); // m1 ⊕ m0 = 1
        assert!(d.get(1)); // m2 = 1
        let o = observable_values(&c, &record);
        assert!(!o.get(0)); // m2 ⊕ m0 = 0
    }

    #[test]
    fn batch_matches_single() {
        let c = annotated();
        let records = [
            BitVec::from_bools([true, false, true]),
            BitVec::from_bools([false, false, false]),
            BitVec::from_bools([true, true, false]),
        ];
        let mut samples = BitMatrix::zeros(3, records.len());
        for (shot, r) in records.iter().enumerate() {
            for m in 0..3 {
                samples.set(m, shot, r.get(m));
            }
        }
        let d = detector_matrix(&c, &samples);
        let o = observable_matrix(&c, &samples);
        for (shot, r) in records.iter().enumerate() {
            let dv = detector_values(&c, r);
            let ov = observable_values(&c, r);
            for i in 0..dv.len() {
                assert_eq!(d.get(i, shot), dv.get(i));
            }
            for i in 0..ov.len() {
                assert_eq!(o.get(i, shot), ov.get(i));
            }
        }
    }

    #[test]
    fn empty_annotations() {
        let mut c = Circuit::new(1);
        c.measure(0);
        assert_eq!(detector_values(&c, &BitVec::from_bools([true])).len(), 0);
        assert_eq!(observable_values(&c, &BitVec::from_bools([true])).len(), 0);
    }
}
