//! Symbolic constant detection: reuses the sparse symbolic initialization
//! (the paper's phase-symbolization front end) to find detectors whose
//! parity is a constant (`SP003`) and observables no symbol reaches
//! (`SP004`).
//!
//! The symbolic initializer produces, for every detector and observable,
//! a XOR expression over noise symbols and measurement coins. A detector
//! whose expression is constant `0` in a *noisy* circuit is vacuous: no
//! fault can ever flip it, so it carries no syndrome information (in a
//! noiseless circuit that is the expected state of every detector, so
//! constant-`0` findings are suppressed there). A detector whose
//! expression is constant `1` fires every shot — always a bug, flagged
//! regardless of noise. Observables follow the same rule: a constant
//! expression in a noisy circuit means the "logical" readout is
//! unfalsifiable.
//!
//! Cost control: the initialization is O(flattened circuit), so large
//! trip counts are first *clamped* — every `REPEAT n` becomes
//! `REPEAT min(n, 3)`, preserving first/middle/last iteration structure —
//! and the analysis is skipped entirely if the circuit is still too large
//! (or if clamping invalidates an after-loop lookback). A node inside a
//! `REPEAT` is flagged only when **every** analyzed instance of it is
//! constant.

use std::collections::HashMap;

use symphase_circuit::{Block, Circuit, Instruction};
use symphase_core::SymPhaseSampler;

use crate::{diag, walk_flat, walk_nodes, Diagnostic};

/// Upper bound on flattened work (gates + measurements + resets + noise
/// symbols) the symbolic pass (and the optimizer's translation
/// validator) will take on.
pub(crate) const MAX_SYMBOLIC_WORK: usize = 200_000;

/// Trip-count clamp applied before falling back to skipping.
const CLAMP: u64 = 3;

pub fn symbolic_lints(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    if circuit.num_detectors() == 0 && circuit.num_observables() == 0 {
        return;
    }
    let clamped;
    let target = if work(circuit) <= MAX_SYMBOLIC_WORK {
        circuit
    } else {
        match clamp_circuit(circuit) {
            Some(c) if work(&c) <= MAX_SYMBOLIC_WORK => {
                clamped = c;
                &clamped
            }
            _ => return, // still too large, or clamping broke a lookback
        }
    };

    let sampler = SymPhaseSampler::new(target);
    let noisy = target.stats().noise_sites > 0;

    // Group detector instances by declaring node; a node is vacuous only
    // if every analyzed instance is.
    let mut instances_by_node: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
    let mut node_order: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut path = Vec::new();
    walk_flat(target.instructions(), &mut path, &mut |path, ins| {
        if matches!(ins, Instruction::Detector { .. }) {
            instances_by_node
                .entry(path.to_vec())
                .or_insert_with(|| {
                    node_order.push(path.to_vec());
                    Vec::new()
                })
                .push(next);
            next += 1;
        }
    });
    debug_assert_eq!(next, sampler.num_detectors());

    for node in node_order {
        let instances = &instances_by_node[&node];
        let exprs: Vec<_> = instances
            .iter()
            .map(|&d| sampler.detector_expr(d))
            .collect();
        if !exprs.iter().all(symphase_core::SymExpr::is_constant) {
            continue;
        }
        let fires = exprs.iter().any(|e| e.constant_term());
        if fires {
            diags.push(diag(
                "SP003",
                &node,
                "vacuous detector: parity is the constant 1 — it fires every shot regardless of \
                 noise"
                    .to_string(),
            ));
        } else if noisy {
            diags.push(diag(
                "SP003",
                &node,
                "vacuous detector: no noise symbol reaches its parity, so it can never fire"
                    .to_string(),
            ));
        }
    }

    // Observables: one finding per index, anchored at the first
    // OBSERVABLE_INCLUDE node declaring it.
    let mut first_include: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut path = Vec::new();
    walk_nodes(target.instructions(), &mut path, &mut |path, ins| {
        if let Instruction::ObservableInclude { index, .. } = ins {
            first_include.entry(*index).or_insert_with(|| path.to_vec());
        }
    });
    let mut indices: Vec<_> = first_include.keys().copied().collect();
    indices.sort_unstable();
    for index in indices {
        let expr = sampler.observable_expr(index as usize);
        if expr.is_constant() && (noisy || expr.constant_term()) {
            diags.push(diag(
                "SP004",
                &first_include[&index],
                format!(
                    "deterministic observable: observable {index} evaluates to the constant {} — \
                     no noise or measurement randomness reaches it",
                    u8::from(expr.constant_term()),
                ),
            ));
        }
    }
}

pub(crate) fn work(circuit: &Circuit) -> usize {
    let s = circuit.stats();
    s.gates
        .saturating_add(s.measurements)
        .saturating_add(s.resets)
        .saturating_add(s.noise_symbols)
}

/// Rebuilds `circuit` with every `REPEAT` trip count clamped to
/// [`CLAMP`]. Returns `None` when the truncated circuit no longer
/// validates (an after-loop lookback needed the removed iterations).
pub(crate) fn clamp_circuit(circuit: &Circuit) -> Option<Circuit> {
    let mut out = Circuit::new(circuit.num_qubits());
    for ins in circuit.instructions() {
        out.try_push(clamp_instruction(ins)?).ok()?;
    }
    Some(out)
}

fn clamp_instruction(ins: &Instruction) -> Option<Instruction> {
    if let Instruction::Repeat { count, body } = ins {
        let mut new_body = Block::new();
        for inner in body.instructions() {
            new_body.try_push(clamp_instruction(inner)?).ok()?;
        }
        Some(Instruction::Repeat {
            count: (*count).min(CLAMP),
            body: Box::new(new_body),
        })
    } else {
        Some(ins.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::Circuit;

    fn codes_at(text: &str) -> Vec<(String, Vec<usize>)> {
        let circuit = Circuit::parse(text).unwrap();
        let mut diags = Vec::new();
        symbolic_lints(&circuit, &mut diags);
        diags
            .into_iter()
            .map(|d| (d.code.to_string(), d.path))
            .collect()
    }

    #[test]
    fn unreachable_detector_in_noisy_circuit_is_vacuous() {
        // Noise lives on qubit 0; the detector compares two back-to-back
        // measurements of untouched qubit 1 — identical coins cancel.
        let text = "X_ERROR(0.1) 0\nM 0\nH 1\nM 1 1\nDETECTOR rec[-1] rec[-2]\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP003".into(), vec![4])]);
    }

    #[test]
    fn noiseless_constant_detectors_are_expected() {
        let text = "M 0\nM 0\nDETECTOR rec[-1] rec[-2]\n";
        assert!(codes_at(text).is_empty());
    }

    #[test]
    fn always_firing_detector_flagged_even_noiseless() {
        // X flips between the two measurements: parity is constant 1.
        let text = "M 0\nX 0\nM 0\nDETECTOR rec[-1] rec[-2]\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP003".into(), vec![3])]);
    }

    #[test]
    fn live_detector_not_flagged() {
        // Noise *between* the compared measurements flips their parity.
        // (Before both, it would flip both and cancel — vacuous.)
        let text = "M 0\nX_ERROR(0.1) 0\nM 0\nDETECTOR rec[-1] rec[-2]\n";
        assert!(codes_at(text).is_empty());
    }

    #[test]
    fn deterministic_observable_in_noisy_circuit() {
        let text = "X_ERROR(0.1) 0\nM 0\nM 1\nOBSERVABLE_INCLUDE(0) rec[-1]\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP004".into(), vec![3])]);
        // Reached by the noise: clean.
        let text = "X_ERROR(0.1) 0\nM 0\nOBSERVABLE_INCLUDE(0) rec[-1]\n";
        assert!(codes_at(text).is_empty());
    }

    #[test]
    fn repeat_node_flagged_only_when_all_instances_constant() {
        // Iteration 1's detector compares the pre-loop measurement with
        // iteration 1's (both of an untouched qubit: constant), later
        // iterations likewise — all instances constant, node flagged.
        let text = "X_ERROR(0.1) 1\nM 0\nREPEAT 3 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\nM 1\nDETECTOR rec[-1]\n";
        let found = codes_at(text);
        assert_eq!(found, vec![("SP003".into(), vec![2, 1])]);
    }

    #[test]
    fn huge_repeat_is_clamped_not_skipped() {
        let text = "X_ERROR(0.1) 1\nM 0\nREPEAT 400000 {\n M 0\n DETECTOR rec[-1] rec[-2]\n}\n";
        let circuit = Circuit::parse(text).unwrap();
        assert!(work(&circuit) > MAX_SYMBOLIC_WORK);
        let mut diags = Vec::new();
        symbolic_lints(&circuit, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SP003");
    }
}
