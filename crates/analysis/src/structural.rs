//! Structural lints: facts read directly off the circuit's shape, no
//! dataflow required — unused qubits (`SP005`), probability-zero noise
//! (`SP008`), duplicate detectors (`SP009`), and shadowed
//! `ELSE_CORRELATED_ERROR` branches (`SP010`).

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};

use symphase_circuit::{Circuit, Instruction};

use crate::{diag, Diagnostic};

pub fn structural_lints(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    unused_qubits(circuit, diags);
    let mut walk = Walk {
        diags,
        seen_detectors: HashMap::new(),
        m_before: 0,
    };
    let mut path = Vec::new();
    walk.block(circuit.instructions(), &mut path, false);
}

/// `SP005`: qubits inside the circuit's index range that no operation ever
/// touches. `QUBIT_COORDS` intentionally does *not* count as use — an
/// annotated-but-idle qubit is exactly the mistake this catches.
fn unused_qubits(circuit: &Circuit, diags: &mut Vec<Diagnostic>) {
    let n = circuit.num_qubits() as usize;
    let mut used = vec![false; n];
    mark_used(circuit.instructions(), &mut used);
    let idle: Vec<String> = (0..n)
        .filter(|&q| !used[q])
        .map(|q| q.to_string())
        .collect();
    if !idle.is_empty() {
        diags.push(diag(
            "SP005",
            &[],
            format!(
                "unused qubit{}: {} {} never targeted by any gate, measurement, reset, or noise",
                if idle.len() == 1 { "" } else { "s" },
                idle.join(", "),
                if idle.len() == 1 { "is" } else { "are" },
            ),
        ));
    }
}

fn mark_used(instrs: &[Instruction], used: &mut [bool]) {
    fn mark(used: &mut [bool], q: u32) {
        if let Some(slot) = used.get_mut(q as usize) {
            *slot = true;
        }
    }
    for ins in instrs {
        match ins {
            Instruction::Gate { targets, .. }
            | Instruction::Measure { targets, .. }
            | Instruction::Reset { targets, .. }
            | Instruction::MeasureReset { targets, .. }
            | Instruction::Noise { targets, .. } => {
                targets.iter().for_each(|&q| mark(used, q));
            }
            Instruction::MeasurePauliProduct { products } => {
                for product in products {
                    product.iter().for_each(|&(_, q)| mark(used, q));
                }
            }
            Instruction::CorrelatedError { product, .. } => {
                product.iter().for_each(|&(_, q)| mark(used, q));
            }
            Instruction::Feedback { target, .. } => mark(used, *target),
            Instruction::Repeat { body, .. } => mark_used(body.instructions(), used),
            Instruction::Detector { .. }
            | Instruction::ObservableInclude { .. }
            | Instruction::Tick
            | Instruction::QubitCoords { .. }
            | Instruction::ShiftCoords { .. } => {}
        }
    }
}

struct Walk<'a> {
    diags: &'a mut Vec<Diagnostic>,
    /// XOR-canonical absolute-measurement-index sets of detectors already
    /// seen (first-iteration view for detectors inside `REPEAT` bodies),
    /// mapped to the first declaring node's path.
    seen_detectors: HashMap<Vec<u64>, Vec<usize>>,
    /// Measurements recorded before the current position. Inside a
    /// `REPEAT` body this is the first iteration's view; after the block
    /// it advances by the full `count × body` amount (saturating).
    m_before: u64,
}

impl Walk<'_> {
    fn block(&mut self, instrs: &[Instruction], path: &mut Vec<usize>, in_zero_meas_loop: bool) {
        // `SP010` chain state: whether some element of the *current*
        // contiguous correlated-error chain fires with certainty.
        let mut chain_saturated = false;
        for (i, ins) in instrs.iter().enumerate() {
            path.push(i);
            match ins {
                Instruction::CorrelatedError {
                    probability,
                    else_branch,
                    ..
                } => {
                    if *else_branch {
                        if chain_saturated {
                            self.diags.push(diag(
                                "SP010",
                                path,
                                "shadowed else branch: an earlier element of this correlated-error \
                                 chain fires with probability 1, so this branch can never fire"
                                    .to_string(),
                            ));
                        }
                    } else {
                        chain_saturated = false;
                    }
                    chain_saturated |= *probability >= 1.0;
                    if *probability == 0.0 {
                        self.diags.push(diag(
                            "SP008",
                            path,
                            "probability-zero correlated error never fires".to_string(),
                        ));
                    }
                }
                other => {
                    chain_saturated = false;
                    self.instruction(other, path, in_zero_meas_loop);
                }
            }
            self.m_before = self
                .m_before
                .saturating_add(ins.measurements_added() as u64);
            path.pop();
        }
    }

    fn instruction(&mut self, ins: &Instruction, path: &mut Vec<usize>, in_zero_meas_loop: bool) {
        match ins {
            Instruction::Noise { channel, .. } if channel.fire_probability() == 0.0 => {
                self.diags.push(diag(
                    "SP008",
                    path,
                    format!("probability-zero {} channel never fires", channel.name()),
                ));
            }
            Instruction::Detector { lookbacks, .. } => {
                // XOR-canonical key: a measurement referenced twice
                // cancels out of the parity.
                let mut key = BTreeSet::new();
                for lb in lookbacks {
                    let Some(idx) = self.m_before.checked_sub(lb.unsigned_abs()) else {
                        return; // out-of-range: reported as SP006 at parse time
                    };
                    if !key.remove(&idx) {
                        key.insert(idx);
                    }
                }
                if in_zero_meas_loop {
                    self.diags.push(diag(
                        "SP009",
                        path,
                        "duplicate detector: the enclosing REPEAT records no measurements per \
                         iteration, so every iteration re-declares a detector over the same \
                         outcomes"
                            .to_string(),
                    ));
                    return;
                }
                let key: Vec<u64> = key.into_iter().collect();
                match self.seen_detectors.entry(key) {
                    Entry::Occupied(first) => {
                        self.diags.push(diag(
                            "SP009",
                            path,
                            format!(
                                "duplicate detector: covers exactly the same measurements as the \
                                 detector at {}",
                                display_path(first.get()),
                            ),
                        ));
                    }
                    Entry::Vacant(slot) => {
                        slot.insert(path.clone());
                    }
                }
            }
            Instruction::Repeat { count, body } => {
                let zero = in_zero_meas_loop || (*count >= 2 && body.measurements() == 0);
                // The body is walked under the first iteration's record
                // view; the caller then advances by the block's full
                // `measurements_added` (count × body), so restore the
                // pre-block count here to avoid double-advancing.
                let m0 = self.m_before;
                self.block(body.instructions(), path, zero);
                self.m_before = m0;
            }
            _ => {}
        }
    }
}

fn display_path(path: &[usize]) -> String {
    format!(
        "instruction path [{}]",
        path.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(".")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_circuit::Circuit;

    fn codes(text: &str) -> Vec<String> {
        let circuit = Circuit::parse(text).unwrap();
        let mut diags = Vec::new();
        structural_lints(&circuit, &mut diags);
        diags.into_iter().map(|d| d.code.to_string()).collect()
    }

    #[test]
    fn gap_qubit_is_unused() {
        assert_eq!(codes("H 0\nM 2\n"), vec!["SP005"]);
        assert!(codes("H 0 1 2\nM 2\n").is_empty());
    }

    #[test]
    fn coords_only_qubit_is_unused() {
        assert_eq!(
            codes("QUBIT_COORDS(0, 1) 3\nH 0 1 2\nM 0 1 2\n"),
            vec!["SP005"]
        );
    }

    #[test]
    fn zero_probability_channels_flagged() {
        assert_eq!(codes("X_ERROR(0) 0\nM 0\n"), vec!["SP008"]);
        assert_eq!(codes("E(0) X0\nM 0\n"), vec!["SP008"]);
        assert_eq!(codes("PAULI_CHANNEL_1(0, 0, 0) 0\nM 0\n"), vec!["SP008"]);
        assert!(codes("X_ERROR(0.001) 0\nM 0\n").is_empty());
    }

    #[test]
    fn duplicate_detector_flagged_once() {
        let text = "M 0 1\nDETECTOR rec[-1] rec[-2]\nDETECTOR rec[-2] rec[-1]\n";
        assert_eq!(codes(text), vec!["SP009"]);
        // Different measurement sets: clean.
        assert!(codes("M 0 1\nDETECTOR rec[-1]\nDETECTOR rec[-2]\n").is_empty());
    }

    #[test]
    fn cancelling_lookbacks_canonicalize() {
        // rec[-1] rec[-1] cancels: both detectors cover the empty parity.
        let text = "M 0 1\nDETECTOR rec[-1] rec[-1]\nDETECTOR rec[-2] rec[-2]\n";
        assert_eq!(codes(text), vec!["SP009"]);
    }

    #[test]
    fn detector_in_zero_measurement_loop_is_duplicate() {
        let text = "M 0\nREPEAT 3 {\n H 0\n DETECTOR rec[-1]\n}\n";
        assert_eq!(codes(text), vec!["SP009"]);
        // With one measurement per iteration the detectors differ.
        assert!(codes("M 0\nREPEAT 3 {\n M 0\n DETECTOR rec[-1]\n}\n").is_empty());
    }

    #[test]
    fn detector_after_loop_uses_full_trip_count() {
        // After the loop, rec[-1] is iteration 3's measurement — not the
        // pre-loop one the first in-loop detector covered.
        let text = "M 0\nREPEAT 3 {\n M 0\n}\nDETECTOR rec[-1]\nDETECTOR rec[-4]\n";
        assert!(codes(text).is_empty());
    }

    #[test]
    fn shadowed_else_branch() {
        let text = "E(1) X0\nELSE_CORRELATED_ERROR(0.5) Z0\nM 0\n";
        assert_eq!(codes(text), vec!["SP010"]);
        // An unsaturated chain is fine.
        assert!(codes("E(0.5) X0\nELSE_CORRELATED_ERROR(0.5) Z0\nM 0\n").is_empty());
        // Saturation does not leak across chains (TICK breaks the chain
        // and a fresh E restarts it).
        let text = "E(1) X0\nTICK\nE(0.5) X0\nELSE_CORRELATED_ERROR(0.5) Z0\nM 0\n";
        assert!(codes(text).is_empty());
    }
}
