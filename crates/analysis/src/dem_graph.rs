//! The detector hypergraph: structural lints over a
//! [`DetectorErrorModel`].
//!
//! Nodes are detectors; hyperedges are error mechanisms together with
//! their observable masks. This is exactly the structure a matching-based
//! decoder (union-find, MWPM) consumes, and the lints check the
//! properties such a decoder requires:
//!
//! * `SP012` **undecomposable-hyperedge** — a mechanism flipping more
//!   than two detectors that cannot be written as a disjoint union of
//!   *graphlike* mechanisms (≤ 2 detectors) already present in the model,
//!   with matching observable XOR. Matching decoders can only represent
//!   graphlike edges; a `Y`-type hyperedge is fine as long as its `X` and
//!   `Z` components exist as mechanisms of their own.
//! * `SP013` **disconnected-detector** — a detector no mechanism flips.
//!   It can never fire, so it carries no syndrome information and wastes
//!   decoder work every shot. Suppressed when the model has no mechanisms
//!   at all (a noiseless circuit's expected state, mirroring `SP003`).
//! * `SP014` **dominated-mechanism** — two mechanisms with an identical
//!   detector + observable signature. Extraction merges these, so they
//!   only arise in hand-written `.dem` files; the probabilities should be
//!   XOR-combined into one mechanism.

use symphase_core::{DemError, DetectorErrorModel};

use crate::{diag, Diagnostic, Payload};

/// Adjacency view of a detector error model: per-detector incidence
/// lists over mechanism indices.
pub struct DemGraph<'a> {
    dem: &'a DetectorErrorModel,
    incident: Vec<Vec<usize>>,
}

/// Structural census of a [`DemGraph`], printed by `symphase analyze`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphSummary {
    /// Total mechanisms.
    pub mechanisms: usize,
    /// Mechanisms flipping ≤ 2 detectors.
    pub graphlike: usize,
    /// Mechanisms flipping > 2 detectors.
    pub hyperedges: usize,
    /// Hyperedges with no graphlike decomposition (`SP012`).
    pub undecomposable: usize,
    /// Detectors no mechanism flips (`SP013`).
    pub disconnected: usize,
    /// Mechanisms sharing another mechanism's signature (`SP014`).
    pub dominated: usize,
}

impl<'a> DemGraph<'a> {
    /// Builds the incidence structure. O(total symptom size).
    pub fn new(dem: &'a DetectorErrorModel) -> Self {
        let mut incident = vec![Vec::new(); dem.num_detectors()];
        for (i, e) in dem.errors().iter().enumerate() {
            for &d in &e.detectors {
                incident[d as usize].push(i);
            }
        }
        DemGraph { dem, incident }
    }

    /// The model this graph views.
    pub fn dem(&self) -> &DetectorErrorModel {
        self.dem
    }

    /// Mechanism indices flipping detector `d`.
    pub fn incident(&self, d: u32) -> &[usize] {
        &self.incident[d as usize]
    }

    /// Whether mechanism `i` is graphlike (≤ 2 detectors).
    pub fn graphlike(&self, i: usize) -> bool {
        self.dem.errors()[i].detectors.len() <= 2
    }

    /// Finds a disjoint cover of mechanism `i`'s detector set by
    /// graphlike mechanisms (excluding `i` itself) whose observable
    /// masks XOR to `i`'s, i.e. the decomposition a matching decoder
    /// would use. Returns the chosen mechanism indices, or `None` when
    /// no such cover exists.
    pub fn decompose(&self, i: usize) -> Option<Vec<usize>> {
        let target = &self.dem.errors()[i];
        let mut remaining = target.detectors.clone();
        let mut obs = Vec::new();
        let mut chosen = Vec::new();
        self.cover(
            &mut remaining,
            &mut obs,
            &target.observables,
            i,
            &mut chosen,
        )
        .then_some(chosen)
    }

    /// Exact-cover recursion on the lowest uncovered detector: every
    /// cover of a set must contain exactly one edge through its lowest
    /// element, so branching on that element explores each disjoint
    /// cover once.
    fn cover(
        &self,
        remaining: &mut Vec<u32>,
        obs: &mut Vec<u32>,
        target_obs: &[u32],
        exclude: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        let Some(&lowest) = remaining.first() else {
            return obs == target_obs;
        };
        for &m in &self.incident[lowest as usize] {
            if m == exclude || !self.graphlike(m) {
                continue;
            }
            let e = &self.dem.errors()[m];
            if !e
                .detectors
                .iter()
                .all(|d| remaining.binary_search(d).is_ok())
            {
                continue; // not disjoint from the part already covered
            }
            for d in &e.detectors {
                let pos = remaining.binary_search(d).expect("checked above");
                remaining.remove(pos);
            }
            xor_set(obs, &e.observables);
            chosen.push(m);
            if self.cover(remaining, obs, target_obs, exclude, chosen) {
                return true;
            }
            chosen.pop();
            xor_set(obs, &e.observables);
            for &d in &e.detectors {
                let pos = remaining.binary_search(&d).unwrap_err();
                remaining.insert(pos, d);
            }
        }
        false
    }

    /// Runs all three structural lints, appending findings to `diags`,
    /// and returns the census.
    pub fn lints(&self, diags: &mut Vec<Diagnostic>) -> GraphSummary {
        let mut summary = GraphSummary {
            mechanisms: self.dem.len(),
            ..GraphSummary::default()
        };

        for (i, e) in self.dem.errors().iter().enumerate() {
            if e.detectors.len() <= 2 {
                summary.graphlike += 1;
                continue;
            }
            summary.hyperedges += 1;
            if self.decompose(i).is_none() {
                summary.undecomposable += 1;
                let mut d = diag(
                    "SP012",
                    &[],
                    format!(
                        "undecomposable hyperedge: mechanism {i} ({}) flips {} detectors and has \
                         no disjoint graphlike decomposition in this model",
                        e,
                        e.detectors.len()
                    ),
                );
                d.payload = Some(Payload::Mechanisms {
                    indices: vec![i],
                    detectors: e.detectors.clone(),
                    observables: e.observables.clone(),
                });
                diags.push(d);
            }
        }

        if !self.dem.is_empty() {
            for (d, inc) in self.incident.iter().enumerate() {
                if !inc.is_empty() {
                    continue;
                }
                summary.disconnected += 1;
                let at = self
                    .dem
                    .detector_coords()
                    .get(d)
                    .filter(|c| !c.is_empty())
                    .map(|c| {
                        format!(
                            " (at {})",
                            c.iter()
                                .map(|x| x.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
                    .unwrap_or_default();
                let mut diagnostic = diag(
                    "SP013",
                    &[],
                    format!("disconnected detector: no error mechanism flips D{d}{at}"),
                );
                diagnostic.payload = Some(Payload::Detector { index: d as u32 });
                diags.push(diagnostic);
            }
        }

        // Dominated mechanisms: identical (detectors, observables)
        // signatures. Mechanisms are canonically sorted by signature, so
        // duplicates are adjacent — but parsed models keep file order, so
        // compare via a sorted index instead.
        let mut order: Vec<usize> = (0..self.dem.len()).collect();
        order.sort_by(|&a, &b| {
            signature(&self.dem.errors()[a]).cmp(&signature(&self.dem.errors()[b]))
        });
        let mut run = 0usize;
        for k in 1..=order.len() {
            let same = k < order.len()
                && signature(&self.dem.errors()[order[k]])
                    == signature(&self.dem.errors()[order[run]]);
            if same {
                continue;
            }
            if k - run > 1 {
                let mut indices: Vec<usize> = order[run..k].to_vec();
                indices.sort_unstable();
                summary.dominated += k - run;
                let e = &self.dem.errors()[indices[0]];
                let sig: Vec<String> = e
                    .detectors
                    .iter()
                    .map(|d| format!("D{d}"))
                    .chain(e.observables.iter().map(|o| format!("L{o}")))
                    .collect();
                let mut d = diag(
                    "SP014",
                    &[],
                    format!(
                        "dominated mechanisms: {} mechanisms share the signature `{}`; their \
                         probabilities should XOR-merge into one",
                        indices.len(),
                        sig.join(" "),
                    ),
                );
                d.payload = Some(Payload::Mechanisms {
                    indices,
                    detectors: e.detectors.clone(),
                    observables: e.observables.clone(),
                });
                diags.push(d);
            }
            run = k;
        }

        summary
    }
}

fn signature(e: &DemError) -> (&[u32], &[u32]) {
    (&e.detectors, &e.observables)
}

fn xor_set(acc: &mut Vec<u32>, items: &[u32]) {
    for &i in items {
        match acc.binary_search(&i) {
            Ok(pos) => {
                acc.remove(pos);
            }
            Err(pos) => acc.insert(pos, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphase_core::DetectorErrorModel;

    fn lint_model(text: &str) -> (Vec<Diagnostic>, GraphSummary) {
        let dem = DetectorErrorModel::parse(text).unwrap();
        let graph = DemGraph::new(&dem);
        let mut diags = Vec::new();
        let summary = graph.lints(&mut diags);
        (diags, summary)
    }

    #[test]
    fn decomposable_hyperedge_is_clean() {
        // D0 D1 D2 L0 = (D0 D1) + (D2 L0): a Y error whose X and Z parts
        // exist as mechanisms.
        let (diags, summary) =
            lint_model("error(0.1) D0 D1 D2 L0\nerror(0.1) D0 D1\nerror(0.1) D2 L0\n");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(summary.hyperedges, 1);
        assert_eq!(summary.undecomposable, 0);
    }

    #[test]
    fn observable_mismatch_blocks_decomposition() {
        // Same detector cover exists, but its observable XOR is L0 while
        // the hyperedge flips nothing — the decomposition would corrupt
        // the logical frame.
        let (diags, _) = lint_model("error(0.1) D0 D1 D2\nerror(0.1) D0 D1\nerror(0.1) D2 L0\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SP012");
        assert!(matches!(diags[0].payload, Some(Payload::Mechanisms { .. })));
    }

    #[test]
    fn missing_component_is_undecomposable() {
        let (diags, summary) = lint_model("error(0.1) D0 D1 D2\nerror(0.1) D0 D1\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SP012");
        assert_eq!(summary.undecomposable, 1);
    }

    #[test]
    fn disconnected_detector_found_via_coords() {
        let (diags, summary) = lint_model("detector(7, 0) D1\nerror(0.1) D0\nerror(0.1) D2 L0\n");
        let sp013: Vec<_> = diags.iter().filter(|d| d.code == "SP013").collect();
        assert_eq!(sp013.len(), 1);
        assert!(sp013[0].message.contains("D1"));
        assert!(sp013[0].message.contains("at 7, 0"));
        assert_eq!(sp013[0].payload, Some(Payload::Detector { index: 1 }));
        assert_eq!(summary.disconnected, 1);
    }

    #[test]
    fn empty_model_suppresses_disconnected() {
        let dem = DetectorErrorModel::parse("detector(0, 0) D0\n").unwrap();
        let mut diags = Vec::new();
        DemGraph::new(&dem).lints(&mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn dominated_mechanisms_share_signature() {
        let (diags, summary) =
            lint_model("error(0.1) D0 D1 L0\nerror(0.2) D0 D1 L0\nerror(0.1) D0 D1\n");
        let sp014: Vec<_> = diags.iter().filter(|d| d.code == "SP014").collect();
        assert_eq!(sp014.len(), 1);
        assert_eq!(
            sp014[0].payload,
            Some(Payload::Mechanisms {
                indices: vec![0, 1],
                detectors: vec![0, 1],
                observables: vec![0],
            })
        );
        assert_eq!(summary.dominated, 2);
    }

    #[test]
    fn chained_decomposition_recurses() {
        // Weight-4 hyperedge needs two graphlike edges.
        let (diags, summary) =
            lint_model("error(0.1) D0 D1 D2 D3 L1\nerror(0.1) D0 D2 L1\nerror(0.1) D1 D3\n");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(summary.hyperedges, 1);
        assert_eq!(summary.graphlike, 2);
    }
}
